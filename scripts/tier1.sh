#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): the whole workspace must build in release
# (benches included), every test must pass, formatting must be clean, the
# in-tree domain lint (`cargo xtask lint`) must be clean, and — when a
# clippy toolchain is installed offline — the clippy set must be
# warning-free. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --benches
cargo test -q --workspace
cargo fmt --all --check
# The domain lint needs no network and no extra toolchain components, so
# it runs unconditionally — clean or the gate fails.
cargo xtask lint
if cargo clippy --version >/dev/null 2>&1; then
    # First-party crates only — the vendored shims (vendor/*) mirror
    # third-party APIs and are not held to the repo's lint bar.
    cargo clippy -q --all-targets \
        -p fpsping -p fpsping-num -p fpsping-dist -p fpsping-traffic \
        -p fpsping-queue -p fpsping-sim -p fpsping-bench -p fpsping-obs \
        -p xtask \
        -- -D warnings
else
    echo "tier-1: clippy not installed; domain lint stands in:"
    cargo xtask lint --format summary
fi

# Metrics smoke: the observability layer must produce parseable JSON with
# live solver counters from a real (tiny) sweep run. The CLI sweep runs
# the batch engine config, so the continuation ζ solver must show up:
# warm solves outnumbering cold solves is the live form of the reduced
# per-cell Newton-polish ratio the batch path exists to deliver.
METRICS_TMP="$(mktemp /tmp/fpsping-metrics.XXXXXX.json)"
trap 'rm -f "$METRICS_TMP"' EXIT
./target/release/fpsping-cli sweep --metrics-out "$METRICS_TMP" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$METRICS_TMP" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["schema"] == "fpsping-obs/1", snap.get("schema")
counters = snap["counters"]
assert any(k.startswith("num.roots.") and v > 0 for k, v in counters.items()), \
    "no live num.roots.* counter in metrics JSON"
warm = counters.get("queue.dek1.zeta.warm_solves", 0)
cold = counters.get("queue.dek1.zeta.cold_solves", 0)
assert warm > 0, "batch engine sweep recorded no queue.dek1.zeta.warm_solves"
assert warm > cold, \
    "continuation not engaging: warm_solves=%d <= cold_solves=%d" % (warm, cold)
print("tier-1: metrics smoke OK (%d counters; zeta warm/cold = %d/%d)"
      % (len(counters), warm, cold))
PY
else
    grep -q '"schema": "fpsping-obs/1"' "$METRICS_TMP"
    grep -q '"num\.roots\.' "$METRICS_TMP"
    grep -q '"queue\.dek1\.zeta\.warm_solves"' "$METRICS_TMP"
    echo "tier-1: metrics smoke OK (grep fallback)"
fi

# Cold-batch bench contract: the checked-in BENCH_sweep.json must carry
# the batch-solver counter fields, stay inside the engine's documented
# batch tolerance, and show the batched cold path doing strictly less
# Newton-polish work per cell than the serial baseline.
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_sweep.json <<'PY'
import json, sys
b = json.load(open(sys.argv[1]))
for field in ("batch_rtt_tolerance_ms", "max_abs_delta_bit_exact",
              "max_abs_delta_vs_serial", "engine_cold_1job_cells_per_sec",
              "cold_speedup_vs_serial_1job",
              "zeta_serial_cold_solves", "zeta_serial_polish_steps_per_cell",
              "zeta_batch_cold_solves", "zeta_batch_warm_solves",
              "zeta_batch_warm_fallbacks", "zeta_batch_polish_steps_per_cell"):
    assert field in b, "BENCH_sweep.json missing %r" % field
assert b["max_abs_delta_bit_exact"] == 0.0, b["max_abs_delta_bit_exact"]
assert b["max_abs_delta_vs_serial"] <= b["batch_rtt_tolerance_ms"], \
    (b["max_abs_delta_vs_serial"], b["batch_rtt_tolerance_ms"])
assert b["zeta_batch_warm_solves"] > 0, "no warm solves in batch window"
assert b["zeta_batch_polish_steps_per_cell"] < b["zeta_serial_polish_steps_per_cell"], \
    "batch polish/cell %.3f not below serial %.3f" % (
        b["zeta_batch_polish_steps_per_cell"], b["zeta_serial_polish_steps_per_cell"])
print("tier-1: BENCH_sweep.json cold-batch OK (polish/cell %.3f -> %.3f, "
      "delta %.2e <= tol %.0e)"
      % (b["zeta_serial_polish_steps_per_cell"], b["zeta_batch_polish_steps_per_cell"],
         b["max_abs_delta_vs_serial"], b["batch_rtt_tolerance_ms"]))
PY
else
    grep -q '"zeta_batch_polish_steps_per_cell"' BENCH_sweep.json
    echo "tier-1: BENCH_sweep.json cold-batch OK (grep fallback)"
fi

# Scale bench contract: the checked-in BENCH_scale.json must carry the
# determinism flags and a sane curve — event totals strictly monotone in
# N, the N=10⁶ point present under the ~2 GiB peak-RSS bound, and the
# calendar-vs-heap trace replay at its >=2x acceptance figure.
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_scale.json <<'PY'
import json, sys
b = json.load(open(sys.argv[1]))
for field in ("shard_merge_deterministic", "calendar_parity", "curve",
              "events_monotone_vs_n", "peak_rss_mib_max",
              "calendar_speedup_vs_heap"):
    assert field in b, "BENCH_scale.json missing %r" % field
assert "bit-identical" in b["shard_merge_deterministic"], b["shard_merge_deterministic"]
assert b["events_monotone_vs_n"] is True
curve = b["curve"]
ns = [pt["n"] for pt in curve]
events = [pt["events"] for pt in curve]
assert ns == sorted(ns) and len(set(ns)) == len(ns), "curve N not ascending: %r" % ns
assert all(a < b_ for a, b_ in zip(events, events[1:])), \
    "event totals not monotone vs N: %r" % events
assert ns[-1] >= 1_000_000, "curve does not reach N=1e6: %r" % ns
assert b["peak_rss_mib_max"] < 2048, b["peak_rss_mib_max"]
assert b["calendar_speedup_vs_heap"] >= 2.0, b["calendar_speedup_vs_heap"]
print("tier-1: BENCH_scale.json OK (N=%d at %.0f MiB peak, calendar %.2fx vs heap)"
      % (ns[-1], b["peak_rss_mib_max"], b["calendar_speedup_vs_heap"]))
PY
else
    grep -q '"shard_merge_deterministic": "bit-identical' BENCH_scale.json
    grep -q '"events_monotone_vs_n": true' BENCH_scale.json
    grep -q '"n": 1000000' BENCH_scale.json
    echo "tier-1: BENCH_scale.json OK (grep fallback)"
fi

# Scale smoke: a fast N=10⁴ run (3 DSLAMs) must produce byte-identical
# CLI output across --shards 1 and --shards 2 — the sharding knob is
# worker parallelism only — and its metrics snapshot must show the
# bucket calendar doing real work.
SCALE_METRICS="$(mktemp /tmp/fpsping-scale-metrics.XXXXXX.json)"
SCALE_OUT1="$(mktemp /tmp/fpsping-scale-out1.XXXXXX)"
SCALE_OUT2="$(mktemp /tmp/fpsping-scale-out2.XXXXXX)"
trap 'rm -f "$METRICS_TMP" "$SCALE_METRICS" "$SCALE_OUT1" "$SCALE_OUT2"' EXIT
./target/release/fpsping-cli sim --scale-n 10000 --shards 1 --sim-seconds 2 \
    > "$SCALE_OUT1"
./target/release/fpsping-cli sim --scale-n 10000 --shards 2 --sim-seconds 2 \
    --metrics-out "$SCALE_METRICS" > "$SCALE_OUT2"
diff "$SCALE_OUT1" "$SCALE_OUT2" || {
    echo "tier-1: scale report differs between --shards 1 and --shards 2"
    exit 1
}
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SCALE_METRICS" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
counters = snap["counters"]
enq = counters.get("sim.calendar.enqueues", 0)
assert enq > 0, "scale smoke recorded no sim.calendar.enqueues"
assert counters.get("sim.scale.events", 0) > 0, "no sim.scale.events counter"
print("tier-1: scale smoke OK (shard-invariant report; %d calendar enqueues)" % enq)
PY
else
    grep -q '"sim\.calendar\.enqueues"' "$SCALE_METRICS"
    echo "tier-1: scale smoke OK (grep fallback)"
fi

echo "tier-1: OK"
