#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): the whole workspace must build in release
# (benches included), every test must pass, formatting must be clean, the
# in-tree domain lint (`cargo xtask lint`) must be clean, and — when a
# clippy toolchain is installed offline — the clippy set must be
# warning-free. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --benches
cargo test -q --workspace
cargo fmt --all --check
# The domain lint needs no network and no extra toolchain components, so
# it runs unconditionally — clean or the gate fails.
cargo xtask lint
if cargo clippy --version >/dev/null 2>&1; then
    # First-party crates only — the vendored shims (vendor/*) mirror
    # third-party APIs and are not held to the repo's lint bar.
    cargo clippy -q --all-targets \
        -p fpsping -p fpsping-num -p fpsping-dist -p fpsping-traffic \
        -p fpsping-queue -p fpsping-sim -p fpsping-bench -p fpsping-obs \
        -p xtask \
        -- -D warnings
else
    echo "tier-1: clippy not installed; domain lint stands in:"
    cargo xtask lint --format summary
fi

# Metrics smoke: the observability layer must produce parseable JSON with
# live solver counters from a real (tiny) sweep run.
METRICS_TMP="$(mktemp /tmp/fpsping-metrics.XXXXXX.json)"
trap 'rm -f "$METRICS_TMP"' EXIT
./target/release/fpsping-cli sweep --metrics-out "$METRICS_TMP" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$METRICS_TMP" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["schema"] == "fpsping-obs/1", snap.get("schema")
counters = snap["counters"]
assert any(k.startswith("num.roots.") and v > 0 for k, v in counters.items()), \
    "no live num.roots.* counter in metrics JSON"
print("tier-1: metrics smoke OK (%d counters)" % len(counters))
PY
else
    grep -q '"schema": "fpsping-obs/1"' "$METRICS_TMP"
    grep -q '"num\.roots\.' "$METRICS_TMP"
    echo "tier-1: metrics smoke OK (grep fallback)"
fi

echo "tier-1: OK"
