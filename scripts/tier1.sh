#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): the whole workspace must build in release
# (benches included), every test must pass, formatting must be clean, the
# in-tree domain lint (`cargo xtask lint`) must be clean, and — when a
# clippy toolchain is installed offline — the clippy set must be
# warning-free. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --benches
cargo test -q --workspace
cargo fmt --all --check
# The domain lint needs no network and no extra toolchain components, so
# it runs unconditionally — clean or the gate fails.
cargo xtask lint
if cargo clippy --version >/dev/null 2>&1; then
    # First-party crates only — the vendored shims (vendor/*) mirror
    # third-party APIs and are not held to the repo's lint bar.
    cargo clippy -q --all-targets \
        -p fpsping -p fpsping-num -p fpsping-dist -p fpsping-traffic \
        -p fpsping-queue -p fpsping-sim -p fpsping-bench -p fpsping-obs \
        -p fpsping-serve -p fpsping-loadgen -p xtask \
        -- -D warnings
else
    echo "tier-1: clippy not installed; domain lint stands in:"
    cargo xtask lint --format summary
fi

# Metrics smoke: the observability layer must produce parseable JSON with
# live solver counters from a real (tiny) sweep run. The CLI sweep runs
# the batch engine config, so the continuation ζ solver must show up:
# warm solves outnumbering cold solves is the live form of the reduced
# per-cell Newton-polish ratio the batch path exists to deliver.
METRICS_TMP="$(mktemp /tmp/fpsping-metrics.XXXXXX.json)"
trap 'rm -f "$METRICS_TMP"' EXIT
./target/release/fpsping-cli sweep --metrics-out "$METRICS_TMP" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$METRICS_TMP" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["schema"] == "fpsping-obs/1", snap.get("schema")
counters = snap["counters"]
assert any(k.startswith("num.roots.") and v > 0 for k, v in counters.items()), \
    "no live num.roots.* counter in metrics JSON"
warm = counters.get("queue.dek1.zeta.warm_solves", 0)
cold = counters.get("queue.dek1.zeta.cold_solves", 0)
assert warm > 0, "batch engine sweep recorded no queue.dek1.zeta.warm_solves"
assert warm > cold, \
    "continuation not engaging: warm_solves=%d <= cold_solves=%d" % (warm, cold)
# Release builds must compile the lockdep witness out entirely: the
# counters are still exported (schema stability) but must read zero.
assert counters.get("lockdep.checks", -1) == 0, \
    "lockdep active in a release build: checks=%r" % counters.get("lockdep.checks")
print("tier-1: metrics smoke OK (%d counters; zeta warm/cold = %d/%d)"
      % (len(counters), warm, cold))
PY
else
    grep -q '"schema": "fpsping-obs/1"' "$METRICS_TMP"
    grep -q '"num\.roots\.' "$METRICS_TMP"
    grep -q '"queue\.dek1\.zeta\.warm_solves"' "$METRICS_TMP"
    echo "tier-1: metrics smoke OK (grep fallback)"
fi

# Cold-batch bench contract: the checked-in BENCH_sweep.json must carry
# the batch-solver counter fields, stay inside the engine's documented
# batch tolerance, and show the batched cold path doing strictly less
# Newton-polish work per cell than the serial baseline.
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_sweep.json <<'PY'
import json, sys
b = json.load(open(sys.argv[1]))
for field in ("batch_rtt_tolerance_ms", "max_abs_delta_bit_exact",
              "max_abs_delta_vs_serial", "engine_cold_1job_cells_per_sec",
              "cold_speedup_vs_serial_1job",
              "zeta_serial_cold_solves", "zeta_serial_polish_steps_per_cell",
              "zeta_batch_cold_solves", "zeta_batch_warm_solves",
              "zeta_batch_warm_fallbacks", "zeta_batch_polish_steps_per_cell"):
    assert field in b, "BENCH_sweep.json missing %r" % field
assert b["max_abs_delta_bit_exact"] == 0.0, b["max_abs_delta_bit_exact"]
assert b["max_abs_delta_vs_serial"] <= b["batch_rtt_tolerance_ms"], \
    (b["max_abs_delta_vs_serial"], b["batch_rtt_tolerance_ms"])
assert b["zeta_batch_warm_solves"] > 0, "no warm solves in batch window"
assert b["zeta_batch_polish_steps_per_cell"] < b["zeta_serial_polish_steps_per_cell"], \
    "batch polish/cell %.3f not below serial %.3f" % (
        b["zeta_batch_polish_steps_per_cell"], b["zeta_serial_polish_steps_per_cell"])
print("tier-1: BENCH_sweep.json cold-batch OK (polish/cell %.3f -> %.3f, "
      "delta %.2e <= tol %.0e)"
      % (b["zeta_serial_polish_steps_per_cell"], b["zeta_batch_polish_steps_per_cell"],
         b["max_abs_delta_vs_serial"], b["batch_rtt_tolerance_ms"]))
PY
else
    grep -q '"zeta_batch_polish_steps_per_cell"' BENCH_sweep.json
    echo "tier-1: BENCH_sweep.json cold-batch OK (grep fallback)"
fi

# Scale bench contract: the checked-in BENCH_scale.json must carry the
# determinism flags and a sane curve — event totals strictly monotone in
# N, the N=10⁶ point present under the ~2 GiB peak-RSS bound, and the
# calendar-vs-heap trace replay at its >=2x acceptance figure.
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_scale.json <<'PY'
import json, sys
b = json.load(open(sys.argv[1]))
for field in ("shard_merge_deterministic", "calendar_parity", "curve",
              "events_monotone_vs_n", "peak_rss_mib_max",
              "calendar_speedup_vs_heap"):
    assert field in b, "BENCH_scale.json missing %r" % field
assert "bit-identical" in b["shard_merge_deterministic"], b["shard_merge_deterministic"]
assert b["events_monotone_vs_n"] is True
curve = b["curve"]
ns = [pt["n"] for pt in curve]
events = [pt["events"] for pt in curve]
assert ns == sorted(ns) and len(set(ns)) == len(ns), "curve N not ascending: %r" % ns
assert all(a < b_ for a, b_ in zip(events, events[1:])), \
    "event totals not monotone vs N: %r" % events
assert ns[-1] >= 1_000_000, "curve does not reach N=1e6: %r" % ns
assert b["peak_rss_mib_max"] < 2048, b["peak_rss_mib_max"]
assert b["calendar_speedup_vs_heap"] >= 2.0, b["calendar_speedup_vs_heap"]
print("tier-1: BENCH_scale.json OK (N=%d at %.0f MiB peak, calendar %.2fx vs heap)"
      % (ns[-1], b["peak_rss_mib_max"], b["calendar_speedup_vs_heap"]))
PY
else
    grep -q '"shard_merge_deterministic": "bit-identical' BENCH_scale.json
    grep -q '"events_monotone_vs_n": true' BENCH_scale.json
    grep -q '"n": 1000000' BENCH_scale.json
    echo "tier-1: BENCH_scale.json OK (grep fallback)"
fi

# Scale smoke: a fast N=10⁴ run (3 DSLAMs) must produce byte-identical
# CLI output across --shards 1 and --shards 2 — the sharding knob is
# worker parallelism only — and its metrics snapshot must show the
# bucket calendar doing real work.
SCALE_METRICS="$(mktemp /tmp/fpsping-scale-metrics.XXXXXX.json)"
SCALE_OUT1="$(mktemp /tmp/fpsping-scale-out1.XXXXXX)"
SCALE_OUT2="$(mktemp /tmp/fpsping-scale-out2.XXXXXX)"
trap 'rm -f "$METRICS_TMP" "$SCALE_METRICS" "$SCALE_OUT1" "$SCALE_OUT2"' EXIT
./target/release/fpsping-cli sim --scale-n 10000 --shards 1 --sim-seconds 2 \
    > "$SCALE_OUT1"
./target/release/fpsping-cli sim --scale-n 10000 --shards 2 --sim-seconds 2 \
    --metrics-out "$SCALE_METRICS" > "$SCALE_OUT2"
diff "$SCALE_OUT1" "$SCALE_OUT2" || {
    echo "tier-1: scale report differs between --shards 1 and --shards 2"
    exit 1
}
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SCALE_METRICS" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
counters = snap["counters"]
enq = counters.get("sim.calendar.enqueues", 0)
assert enq > 0, "scale smoke recorded no sim.calendar.enqueues"
assert counters.get("sim.scale.events", 0) > 0, "no sim.scale.events counter"
print("tier-1: scale smoke OK (shard-invariant report; %d calendar enqueues)" % enq)
PY
else
    grep -q '"sim\.calendar\.enqueues"' "$SCALE_METRICS"
    echo "tier-1: scale smoke OK (grep fallback)"
fi

# Estimator smoke: a 1 000-player run with the per-player RTT estimator
# on must show live traffic.estimator.* counters in the metrics JSON and
# a pooled p99 within the documented short-run tolerance of the analytic
# quantile (±20% at ~150 pings/player — the convergence study in
# BENCH_estimator.json shows the error collapsing with more pings).
EST_METRICS="$(mktemp /tmp/fpsping-est-metrics.XXXXXX.json)"
EST_OUT="$(mktemp /tmp/fpsping-est-out.XXXXXX)"
trap 'rm -f "$METRICS_TMP" "$SCALE_METRICS" "$SCALE_OUT1" "$SCALE_OUT2" \
    "$EST_METRICS" "$EST_OUT"' EXIT
./target/release/fpsping-cli sim --estimate --gamers 1000 --c-kbps 50000 \
    --sim-seconds 8 --seed 42 --metrics-out "$EST_METRICS" > "$EST_OUT"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$EST_METRICS" "$EST_OUT" <<'PY'
import json, re, sys
counters = json.load(open(sys.argv[1]))["counters"]
matches = counters.get("traffic.estimator.matches", 0)
assert matches > 0, "estimator run recorded no traffic.estimator.matches"
assert counters.get("traffic.estimator.invalid_samples", 1) == 0, \
    "estimator rejected samples in a clean run: %r" % counters
out = open(sys.argv[2]).read()
m = re.search(r"est p99\s*: .* err ([+-][0-9.]+)%", out)
assert m, "no estimator p99 line in CLI output:\n%s" % out
err = float(m.group(1))
assert abs(err) <= 20.0, \
    "estimator p99 off the analytic quantile by %.1f%% (tolerance 20%%)" % err
print("tier-1: estimator smoke OK (%d matches, p99 err %+.2f%%)" % (matches, err))
PY
else
    grep -q '"traffic\.estimator\.matches"' "$EST_METRICS"
    grep -q 'est p99' "$EST_OUT"
    echo "tier-1: estimator smoke OK (grep fallback)"
fi

# Estimator bench contract: the checked-in BENCH_estimator.json must show
# the convergence curve settling under the trust threshold, the pooled
# p99 within its acceptance bound, and the 1-core ingest floor.
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_estimator.json <<'PY'
import json, sys
b = json.load(open(sys.argv[1]))
for field in ("analytic_p99_ms", "pooled_p99_ms", "pooled_p99_err_pct",
              "convergence", "trust_threshold", "pings_to_trustworthy",
              "ingest_players", "ingest_packets_per_sec", "counters"):
    assert field in b, "BENCH_estimator.json missing %r" % field
assert abs(b["pooled_p99_err_pct"]) <= 10.0, b["pooled_p99_err_pct"]
curve = b["convergence"]
assert len(curve) >= 4, "convergence curve too short: %r" % curve
pings = [pt["pings"] for pt in curve]
assert pings == sorted(pings), "curve not checkpoint-ascending: %r" % pings
assert curve[-1]["median_rel_err"] < curve[0]["median_rel_err"], \
    "median error did not shrink along the curve"
assert curve[-1]["median_rel_err"] <= b["trust_threshold"], \
    "final median error %.4f above the trust threshold" % curve[-1]["median_rel_err"]
assert b["pings_to_trustworthy"] <= 500, b["pings_to_trustworthy"]
assert b["ingest_players"] >= 1000, b["ingest_players"]
assert b["ingest_packets_per_sec"] >= 1_000_000, \
    "ingest %.0f packets/s below the 1M floor" % b["ingest_packets_per_sec"]
assert b["counters"]["invalid_samples"] == 0, b["counters"]
print("tier-1: BENCH_estimator.json OK (trustworthy at %d pings, pooled p99 "
      "err %+.2f%%, ingest %.1fM packets/s)"
      % (b["pings_to_trustworthy"], b["pooled_p99_err_pct"],
         b["ingest_packets_per_sec"] / 1e6))
PY
else
    grep -q '"pings_to_trustworthy"' BENCH_estimator.json
    grep -q '"ingest_packets_per_sec"' BENCH_estimator.json
    echo "tier-1: BENCH_estimator.json OK (grep fallback)"
fi

# Serve smoke: boot the query server on an ephemeral port, replay a
# bounded loadgen burst against it, and require real live throughput, a
# warm cache, the eviction-parity gate at exactly zero, and a clean
# shutdown (the smoke's final frame is the shutdown op; the server
# process must exit on its own).
SERVE_LOG="$(mktemp /tmp/fpsping-serve-log.XXXXXX)"
SERVE_SMOKE="$(mktemp /tmp/fpsping-serve-smoke.XXXXXX.json)"
trap 'rm -f "$METRICS_TMP" "$SCALE_METRICS" "$SCALE_OUT1" "$SCALE_OUT2" \
    "$EST_METRICS" "$EST_OUT" "$SERVE_LOG" "$SERVE_SMOKE"' EXIT
./target/release/fpsping-serve --addr 127.0.0.1:0 --workers 2 \
    --cache-entries 16384 > "$SERVE_LOG" &
SERVE_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR="$(sed -n 's/^listening on //p' "$SERVE_LOG")"
    [ -n "$SERVE_ADDR" ] && break
    sleep 0.05
done
if [ -z "$SERVE_ADDR" ]; then
    echo "tier-1: fpsping-serve never reported its listen address"
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
./target/release/fpsping-loadgen --addr "$SERVE_ADDR" --smoke > "$SERVE_SMOKE"
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "tier-1: fpsping-serve did not shut down after the shutdown op"
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
wait "$SERVE_PID" 2>/dev/null || true
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SERVE_SMOKE" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["workload"] == "smoke", s
assert s["parity_max_abs_delta"] == 0.0, s["parity_max_abs_delta"]
assert s["clean_shutdown"] is True, s
# Weak live floor — the committed bench carries the real figures; this
# only catches a server that is limping (debug build, busy-wait, ...).
assert s["qps"] >= 10_000, "live smoke QPS %.0f below the 10k floor" % s["qps"]
assert s["cache_hit_rate"] >= 0.5, \
    "64-hot-cell smoke should be cache-dominated: hit rate %.3f" % s["cache_hit_rate"]
assert s["p99_us"] > 0, s
print("tier-1: serve smoke OK (%.0f qps live, p99 %.1f us, hit rate %.3f)"
      % (s["qps"], s["p99_us"], s["cache_hit_rate"]))
PY
else
    grep -q '"workload": "smoke"' "$SERVE_SMOKE"
    grep -q '"clean_shutdown": true' "$SERVE_SMOKE"
    echo "tier-1: serve smoke OK (grep fallback)"
fi

# Serve bench contract: the checked-in BENCH_serve.json must show the
# eviction-parity gate at exactly zero, the three workloads, the >=1M
# QPS hot-spot acceptance figure, and a flat RSS tail on the adversarial
# never-repeating stream (the capacity bound holding under pure churn).
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_serve.json <<'PY'
import json, sys
b = json.load(open(sys.argv[1]))
for field in ("eviction_parity_max_abs_delta", "runs", "server_requests",
              "server_peak_rss_mib"):
    assert field in b, "BENCH_serve.json missing %r" % field
assert b["eviction_parity_max_abs_delta"] == 0.0, b["eviction_parity_max_abs_delta"]
runs = {r["workload"]: r for r in b["runs"]}
assert set(runs) == {"uniform", "hotspot", "adversarial"}, sorted(runs)
for r in runs.values():
    for field in ("requests", "qps", "p50_us", "p99_us", "cache_hit_rate",
                  "evictions", "rss_mid_mib", "rss_end_mib"):
        assert field in r, "run %r missing %r" % (r.get("workload"), field)
    assert r["qps"] > 0 and r["p99_us"] >= r["p50_us"] > 0, r
assert runs["hotspot"]["qps"] >= 1_000_000, \
    "hot-spot QPS %.0f below the 1M acceptance figure" % runs["hotspot"]["qps"]
assert runs["hotspot"]["cache_hit_rate"] >= 0.99, runs["hotspot"]["cache_hit_rate"]
adv = runs["adversarial"]
assert adv["evictions"] > 0, "adversarial stream must overflow the cache bound"
assert adv["rss_end_mib"] - adv["rss_mid_mib"] <= 2.0, \
    "adversarial RSS still growing after cache fill: %.1f -> %.1f MiB" % (
        adv["rss_mid_mib"], adv["rss_end_mib"])
assert b["server_peak_rss_mib"] < 2048, b["server_peak_rss_mib"]
print("tier-1: BENCH_serve.json OK (hotspot %.2fM qps, parity 0, adversarial "
      "RSS flat at %.1f MiB over %d evictions)"
      % (runs["hotspot"]["qps"] / 1e6, adv["rss_end_mib"], adv["evictions"]))
PY
else
    grep -q '"eviction_parity_max_abs_delta": 0e0' BENCH_serve.json
    grep -q '"workload": "hotspot"' BENCH_serve.json
    echo "tier-1: BENCH_serve.json OK (grep fallback)"
fi

# Lockdep smoke: debug builds carry the fpsping_obs lock-order witness
# (asserted compiled-out in release by the metrics smoke above). Both
# hot paths must complete under it — the serve accept → batch → respond
# → stats-mirror cycle and the N=10⁴ scale simulation. A lock-order
# cycle or reentrant acquisition panics the process, so a clean exit IS
# the assertion; debug throughput gets no floor.
cargo build -q -p fpsping -p fpsping-serve -p fpsping-loadgen
LOCKDEP_LOG="$(mktemp /tmp/fpsping-lockdep-log.XXXXXX)"
LOCKDEP_SMOKE="$(mktemp /tmp/fpsping-lockdep-smoke.XXXXXX.json)"
LOCKDEP_METRICS="$(mktemp /tmp/fpsping-lockdep-metrics.XXXXXX.json)"
trap 'rm -f "$METRICS_TMP" "$SCALE_METRICS" "$SCALE_OUT1" "$SCALE_OUT2" \
    "$EST_METRICS" "$EST_OUT" "$SERVE_LOG" "$SERVE_SMOKE" "$LOCKDEP_LOG" \
    "$LOCKDEP_SMOKE" "$LOCKDEP_METRICS"' EXIT
./target/debug/fpsping-serve --addr 127.0.0.1:0 --workers 2 \
    --cache-entries 16384 > "$LOCKDEP_LOG" &
LOCKDEP_PID=$!
LOCKDEP_ADDR=""
for _ in $(seq 1 100); do
    LOCKDEP_ADDR="$(sed -n 's/^listening on //p' "$LOCKDEP_LOG")"
    [ -n "$LOCKDEP_ADDR" ] && break
    sleep 0.05
done
if [ -z "$LOCKDEP_ADDR" ]; then
    echo "tier-1: debug fpsping-serve never reported its listen address"
    kill "$LOCKDEP_PID" 2>/dev/null || true
    exit 1
fi
./target/debug/fpsping-loadgen --addr "$LOCKDEP_ADDR" --smoke > "$LOCKDEP_SMOKE"
for _ in $(seq 1 100); do
    kill -0 "$LOCKDEP_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$LOCKDEP_PID" 2>/dev/null; then
    echo "tier-1: debug fpsping-serve did not shut down (lockdep smoke)"
    kill "$LOCKDEP_PID" 2>/dev/null || true
    exit 1
fi
wait "$LOCKDEP_PID" 2>/dev/null || true
grep -q '"clean_shutdown": true' "$LOCKDEP_SMOKE" || {
    echo "tier-1: lockdep serve smoke did not shut down cleanly"
    exit 1
}
./target/debug/fpsping-cli sim --scale-n 10000 --shards 2 --sim-seconds 2 \
    --metrics-out "$LOCKDEP_METRICS" > /dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$LOCKDEP_METRICS" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
checks = counters.get("lockdep.checks", 0)
edges = counters.get("lockdep.edges", 0)
assert checks > 0, "debug build recorded no supervised lock acquisitions"
print("tier-1: lockdep smoke OK (serve + N=1e4 sim clean; "
      "%d checks, %d edges)" % (checks, edges))
PY
else
    grep -q '"lockdep\.checks"' "$LOCKDEP_METRICS"
    echo "tier-1: lockdep smoke OK (grep fallback)"
fi

# The obs-off escape hatch must keep building everywhere it is wired:
# fpsping-bench and fpsping-serve sit at the top of the two dependency
# stacks, so these two checks cover every crate forwarding the feature.
cargo check -q -p fpsping-bench --features obs-off
cargo check -q -p fpsping-serve --features obs-off
echo "tier-1: obs-off builds OK"

echo "tier-1: OK"
