#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): the whole workspace must build in release,
# every test must pass, and formatting must be clean. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --all --check

echo "tier-1: OK"
