//! Offline shim for the `proptest` crate.
//!
//! The build environment cannot reach a crates-io registry, so this
//! in-tree crate re-implements the subset of proptest that the workspace
//! uses: the [`proptest!`] item macro (with the `#![proptest_config]`
//! inner attribute), the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! assertion macros, [`strategy::Strategy`] implementations for numeric
//! ranges, `prop::collection::vec`, and a deterministic
//! [`test_runner::TestRunner`].
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case reports the drawn inputs verbatim.
//! * **Deterministic seeding.** Every test runs the same sequence of
//!   cases on every invocation (no persistence files needed; any
//!   `*.proptest-regressions` files are ignored).
//! * Only the strategies this workspace uses are implemented: `Range`
//!   and `RangeInclusive` over the primitive numeric types, tuples of up
//!   to four strategies, `prop::collection::vec` with a `Range<usize>`
//!   length, [`Just`], [`Strategy::prop_map`], and the [`prop_oneof!`]
//!   weighted union.
//!
//! [`Just`]: strategy::Just
//! [`Strategy::prop_map`]: strategy::Strategy::prop_map

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The type of the generated values.
        type Value: std::fmt::Debug;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream's `prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: std::fmt::Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: std::fmt::Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies of one value type — the
    /// expansion target of [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// A union over `(weight, strategy)` arms; weights must not all
        /// be zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof!: all weights are zero");
            Self { arms, total }
        }
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .field("total", &self.total)
                .finish()
        }
    }

    impl<V: std::fmt::Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("pick exceeds total weight");
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u = rng.unit_f64();
            self.start + u * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u = rng.unit_f64();
            self.start() + u * (self.end() - self.start())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    self.start() + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0 / 0, S1 / 1),
        (S0 / 0, S1 / 1, S2 / 2),
        (S0 / 0, S1 / 1, S2 / 2, S3 / 3),
    }

    /// A strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod test_runner {
    //! The deterministic case runner.

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed — the property is violated.
        Fail(String),
        /// The drawn inputs did not satisfy a `prop_assume!` precondition;
        /// the case is discarded without counting.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// A rejected (discarded) case with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections before the test errors out.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// The deterministic generator handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub(crate) fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)` with 53-bit resolution.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs the configured number of cases against a property closure.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with the given configuration and the fixed shim seed.
        pub fn new(config: ProptestConfig) -> Self {
            Self {
                config,
                rng: TestRng::new(0x5EED_F00D_CA5E_0001),
            }
        }

        /// Runs cases until `config.cases` pass, a case fails, or the
        /// reject budget is exhausted.
        pub fn run<F>(&mut self, mut case: F) -> Result<(), String>
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                match case(&mut self.rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            return Err(format!(
                                "too many prop_assume! rejections ({rejected}) after {passed} passing cases"
                            ));
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(format!("property failed on case {passed}: {msg}"));
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` path used by prelude gluers (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0.0f64..1.0, k in 1u32..=9) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`] — one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let outcome = runner.run(|__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        __proptest_rng,
                    );
                )*
                let __proptest_inputs: ::std::string::String =
                    [$( format!(concat!(stringify!($arg), " = {:?}"), $arg) ),*]
                        .join(", ");
                let __proptest_case =
                    || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                __proptest_case().map_err(|e| match e {
                    $crate::test_runner::TestCaseError::Fail(msg) => {
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "{msg}\n  inputs: {__proptest_inputs}"
                        ))
                    }
                    reject => reject,
                })
            });
            if let Err(msg) = outcome {
                panic!("{}", msg);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (with an optional formatted message) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type: `prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
}

/// Discards the current case (without counting it) when the precondition
/// is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_counts_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let mut calls = 0;
        runner
            .run(|_| {
                calls += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(calls, 10);
    }

    #[test]
    fn runner_reports_failures() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let r = runner.run(|_| Err(TestCaseError::fail("boom")));
        assert!(r.unwrap_err().contains("boom"));
    }

    #[test]
    fn runner_bounds_rejects() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1));
        let r = runner.run(|_| Err(TestCaseError::reject("never")));
        assert!(r.unwrap_err().contains("rejections"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds; assume/assert plumbing works.
        #[test]
        fn strategies_in_bounds(
            x in -2.0f64..3.0,
            k in 1u32..=25,
            n in 1u64..200,
            m in 1usize..4,
            v in prop::collection::vec(0.0f64..1.0, 1..50),
        ) {
            prop_assume!(x.is_finite());
            prop_assert!((-2.0..3.0).contains(&x), "x out of range: {x}");
            prop_assert!((1..=25).contains(&k));
            prop_assert!((1..200).contains(&n));
            prop_assert!((1..4).contains(&m));
            prop_assert!(v.len() < 50 && !v.is_empty());
            prop_assert!(v.iter().all(|u| (0.0..1.0).contains(u)));
            prop_assert_eq!(v.len(), v.iter().count());
        }

        /// `Just`, `prop_map`, and weighted/unweighted unions compose.
        #[test]
        fn union_map_and_just_compose(
            tagged in prop_oneof![
                3 => (0u64..10).prop_map(|n| (false, n)),
                1 => Just((true, 99u64)),
            ],
            flat in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            let (is_just, n) = tagged;
            prop_assert!(
                if is_just { n == 99u64 } else { n < 10u64 },
                "tag/value mismatch: ({is_just}, {n})"
            );
            prop_assert!(flat == 1u8 || flat == 2u8);
        }
    }

    #[test]
    fn union_weights_bias_the_draw() {
        use crate::strategy::{Just, Strategy, Union};
        let s: Union<u8> = Union::new(vec![
            (9, Box::new(Just(0u8)) as _),
            (1, Box::new(Just(1u8)) as _),
        ]);
        let mut rng = crate::test_runner::TestRng::new(42);
        let ones: u32 = (0..10_000).map(|_| u32::from(s.generate(&mut rng))).sum();
        // ~10% ± a comfortable band.
        assert!((500..2_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn union_rejects_zero_total_weight() {
        use crate::strategy::{Just, Union};
        let _ = Union::new(vec![(0, Box::new(Just(0u8)) as _)]);
    }
}
