//! Offline shim for the `rand` crate.
//!
//! The build environment cannot reach a crates-io registry, so this
//! in-tree crate provides the (small) subset of `rand`'s API that the
//! workspace uses: the object-safe [`RngCore`] trait, [`SeedableRng`]
//! with `seed_from_u64`, and [`rngs::StdRng`].
//!
//! `StdRng` here is **not** bit-compatible with upstream `rand`'s
//! ChaCha-based `StdRng`; it is a xoshiro256++ generator seeded through
//! SplitMix64 (the reference seeding procedure from Blackman & Vigna).
//! Every use in this workspace is Monte-Carlo estimation against
//! statistical tolerances, for which xoshiro256++'s quality is ample,
//! and determinism per seed is all the tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core random-number-generator trait (object safe — used as
/// `&mut dyn RngCore` throughout the workspace).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in upstream `rand`).
    type Seed: Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through SplitMix64
    /// exactly like upstream `rand` documents for small seeds.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (Steele, Lea & Flood).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // The all-zero state is the one invalid xoshiro state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.step();
                for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                    *b = s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_mapping_covers_unit_interval() {
        // The workspace's standard uniform recipe: (x >> 11) · 2⁻⁵³.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..n {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            assert!((0.0..1.0).contains(&u));
            sum += u;
            min = min.min(u);
            max = max.max(u);
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
        assert!(min < 1e-3 && max > 1.0 - 1e-3);
    }

    #[test]
    fn fill_bytes_is_nontrivial() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn object_safety() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.next_u64();
        let _ = dyn_rng.next_u32();
    }
}
