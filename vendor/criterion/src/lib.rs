//! Offline shim for the `criterion` crate.
//!
//! The build environment cannot reach a crates-io registry, so this
//! in-tree crate provides a minimal wall-clock benchmark harness with
//! the API surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Differences from upstream criterion, by design:
//!
//! * No statistical analysis, plots, or saved baselines — each bench
//!   reports the median time per iteration from a fixed number of
//!   timed batches.
//! * `--test` mode (what `cargo test --benches` passes) runs every
//!   bench exactly once, so benches double as smoke tests.
//! * Positional CLI arguments are treated as substring filters on the
//!   bench id, like upstream; all flags are accepted and ignored.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Runs the closure handed to [`Bencher::iter`] and times it.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier built from a parameter's `Display` form.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id whose text is the parameter itself (used inside groups).
    pub fn from_parameter<D: std::fmt::Display>(parameter: D) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// An id of the form `function_name/parameter`.
    pub fn new<S: Into<String>, D: std::fmt::Display>(function_name: S, parameter: D) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Clone)]
struct Settings {
    sample_count: u64,
    test_mode: bool,
    filters: Vec<String>,
}

impl Settings {
    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

fn run_one(settings: &Settings, id: &str, mut routine: impl FnMut(&mut Bencher)) {
    if !settings.matches(id) {
        return;
    }
    if settings.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        println!("{id}: ok (test mode)");
        return;
    }
    // Calibrate the per-batch iteration count so one batch takes
    // roughly 25 ms (or give up doubling beyond 2^20 iterations).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= Duration::from_millis(25) || iters >= (1 << 20) {
            break;
        }
        iters *= 2;
    }
    let mut samples = Vec::with_capacity(settings.sample_count as usize);
    for _ in 0..settings.sample_count {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let best = samples[0];
    println!(
        "{id}: median {} / best {} ({iters} iters x {} samples)",
        format_time(median),
        format_time(best),
        samples.len()
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// A named group of related benches sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench (upstream's
    /// `sample_size`; here each sample is one timed batch).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_count = (n as u64).max(2);
        self
    }

    /// Runs a bench named `{group}/{id}`.
    pub fn bench_function<S: std::fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.settings, &full, f);
        self
    }

    /// Runs a parameterised bench named `{group}/{id}` with `input`
    /// passed through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.settings, &full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; retained for API parity).
    pub fn finish(&mut self) {}
}

/// The top-level bench context.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            settings: Settings {
                sample_count: 10,
                test_mode: false,
                filters: Vec::new(),
            },
        }
    }
}

impl Criterion {
    /// Applies the CLI arguments cargo forwards to bench binaries:
    /// positional substring filters, `--test` (run once), everything
    /// else ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.settings.test_mode = true,
                "--bench" | "--profile-time" => {
                    // `--profile-time` takes a value; `--bench` is a bare
                    // marker flag from cargo.
                    if arg == "--profile-time" {
                        let _ = args.next();
                    }
                }
                s if s.starts_with("--") => {}
                s => self.settings.filters.push(s.to_string()),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            name: name.into(),
            settings,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone bench.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        run_one(&settings, id, f);
        self
    }
}

/// Declares a bench group function, matching upstream's signature.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 100);
        assert!(b.elapsed > Duration::ZERO || n == 100);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
        assert_eq!(BenchmarkId::new("solve", 9).to_string(), "solve/9");
    }

    #[test]
    fn filters_match_substrings() {
        let s = Settings {
            sample_count: 2,
            test_mode: true,
            filters: vec!["dek1".to_string()],
        };
        assert!(s.matches("dek1_solve/9"));
        assert!(!s.matches("rtt_quantile/k9"));
        let open = Settings {
            sample_count: 2,
            test_mode: true,
            filters: vec![],
        };
        assert!(open.matches("anything"));
    }

    #[test]
    fn group_runs_in_test_mode() {
        let mut c = Criterion::default();
        c.settings.test_mode = true;
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}
