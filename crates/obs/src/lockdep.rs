//! # lockdep — a runtime lock-order witness, Linux-style
//!
//! The static linter (xtask rules L10–L12) proves properties of lock
//! acquisitions it can *see*; this module witnesses the ones it cannot —
//! nesting that only materializes at runtime through call chains (a
//! counter's lazy registration acquiring the registry lock while a serve
//! stats guard is held, say). The design follows Linux lockdep:
//!
//! * every instrumented lock belongs to a **class** ([`LockClass`], a
//!   `static` with a stable name — all 16 `SharedCache` shards share one
//!   class, because they share one ordering role);
//! * each thread keeps a **held-set** of the classes it currently holds;
//! * acquiring class `B` while holding class `A` records the directed
//!   edge `A → B` in a process-global order graph, once per class pair —
//!   so a nesting only has to happen **once, on any thread**, to be
//!   checked against every nesting that ever happened before;
//! * an edge that would close a cycle (`B ⇒ A` already reachable) means
//!   two call paths disagree about the order — a latent ABBA deadlock —
//!   and the witness panics immediately with both offending class
//!   chains: the current thread's, and the first-seen chain recorded for
//!   every edge along the reverse path.
//!
//! ## Cost model
//!
//! Active only in debug builds without `obs-off`
//! (`cfg(all(debug_assertions, not(feature = "obs-off")))`). In release
//! or `obs-off` builds [`lock_class`] compiles down to the plain
//! [`crate::lock`] poison-recovering acquisition — no held-set, no
//! graph, no atomics. When active, the fast path (acquiring with an
//! empty held-set, i.e. almost always) is one thread-local push and one
//! relaxed counter increment; the graph mutex is touched only on real
//! nesting, and then almost always for an already-known edge.
//!
//! The witness's own state is guarded by a **plain uninstrumented**
//! mutex and counts checks/edges with plain atomics rather than
//! [`crate::Counter`]s: a counter's lazy registration would re-enter the
//! instrumented registry lock from inside the witness itself.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A lock *class*: the ordering identity shared by every lock instance
/// playing the same role (all cache shards, all instances of one field).
///
/// Declare one `static` per class and pass it to [`lock_class`]. The
/// name is the canonical `crate::Type::field` spelling — keep it equal
/// to the class name `cargo xtask lint` derives and `lockorder.toml`
/// documents, so the static and dynamic layers talk about the same
/// graph.
pub struct LockClass {
    name: &'static str,
}

impl LockClass {
    /// Declares a lock class. `const` so it can initialize a `static`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self { name }
    }

    /// The class's canonical name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Whether the witness is compiled in (debug build, `obs-off` absent).
pub const fn enabled() -> bool {
    cfg!(all(debug_assertions, not(feature = "obs-off")))
}

/// Acquires `m` under lockdep supervision as class `class`.
///
/// The order check runs **before** blocking on the mutex — a would-be
/// deadlock is reported even on executions where the interleaving
/// happens to win the race. Poison recovery matches [`crate::lock`]
/// (same contract: guarded structures must never be half-mutated across
/// a panic point).
pub fn lock_class<'a, T>(class: &'static LockClass, m: &'a Mutex<T>) -> TrackedGuard<'a, T> {
    note_acquire(class);
    TrackedGuard {
        guard: Some(crate::lock(m)),
        class,
    }
}

/// A [`MutexGuard`] whose lifetime is mirrored in the owning thread's
/// lockdep held-set. Dereferences to the guarded data.
pub struct TrackedGuard<'a, T> {
    /// `None` only transiently inside [`TrackedGuard::wait_timeout`].
    guard: Option<MutexGuard<'a, T>>,
    class: &'static LockClass,
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // lint:allow(unwrap): the Option is None only while ownership is inside wait_timeout, where no borrow can exist
        self.guard.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // lint:allow(unwrap): the Option is None only while ownership is inside wait_timeout, where no borrow can exist
        self.guard.as_mut().expect("guard present")
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            note_release(self.class);
        }
    }
}

impl<'a, T> TrackedGuard<'a, T> {
    /// Blocks on `cv` with the lock released, reacquiring it before
    /// returning — the tracked equivalent of [`Condvar::wait_timeout`].
    /// Returns the reacquired guard and whether the wait timed out.
    ///
    /// The held-set mirrors the real lock state: the class leaves it for
    /// the duration of the wait (the OS releases the mutex) and is
    /// re-checked on wakeup, exactly like a fresh acquisition.
    pub fn wait_timeout(mut self, cv: &Condvar, dur: Duration) -> (Self, bool) {
        // lint:allow(unwrap): the Option is None only while ownership is inside wait_timeout itself
        let g = self.guard.take().expect("guard present");
        note_release(self.class);
        let (g, res) = cv
            .wait_timeout(g, dur)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        note_acquire(self.class);
        self.guard = Some(g);
        (self, res.timed_out())
    }
}

/// `(edges, checks)` recorded so far: distinct ordered class pairs ever
/// observed nested, and total supervised acquisitions. `(0, 0)` when the
/// witness is compiled out. Exported as `lockdep.edges` /
/// `lockdep.checks` in metric snapshots.
pub fn stats() -> (u64, u64) {
    #[cfg(all(debug_assertions, not(feature = "obs-off")))]
    {
        active::stats()
    }
    #[cfg(not(all(debug_assertions, not(feature = "obs-off"))))]
    {
        (0, 0)
    }
}

/// The recorded order graph as `(held, acquired)` class-name pairs, in
/// deterministic (lexicographic) order. Empty when compiled out.
pub fn edges() -> Vec<(String, String)> {
    #[cfg(all(debug_assertions, not(feature = "obs-off")))]
    {
        active::edges()
    }
    #[cfg(not(all(debug_assertions, not(feature = "obs-off"))))]
    {
        Vec::new()
    }
}

#[cfg(all(debug_assertions, not(feature = "obs-off")))]
fn note_acquire(class: &'static LockClass) {
    active::acquire(class.name);
}

#[cfg(all(debug_assertions, not(feature = "obs-off")))]
fn note_release(class: &'static LockClass) {
    active::release(class.name);
}

#[cfg(not(all(debug_assertions, not(feature = "obs-off"))))]
fn note_acquire(_class: &'static LockClass) {}

#[cfg(not(all(debug_assertions, not(feature = "obs-off"))))]
fn note_release(_class: &'static LockClass) {}

#[cfg(all(debug_assertions, not(feature = "obs-off")))]
mod active {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet, VecDeque};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Supervised acquisitions (the `lockdep.checks` counter). Plain
    /// atomics on purpose — see the module docs on re-entrancy.
    static CHECKS: AtomicU64 = AtomicU64::new(0);
    /// Distinct ordered class pairs recorded (`lockdep.edges`).
    static EDGES: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        /// The classes this thread currently holds, outermost first.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// The process-global order graph.
    struct DepGraph {
        /// `held → acquired` adjacency.
        edges: BTreeMap<&'static str, BTreeSet<&'static str>>,
        /// First-seen full held chain per edge, for diagnostics.
        chains: BTreeMap<(&'static str, &'static str), String>,
    }

    static GRAPH: OnceLock<Mutex<DepGraph>> = OnceLock::new();

    fn graph() -> &'static Mutex<DepGraph> {
        GRAPH.get_or_init(|| {
            Mutex::new(DepGraph {
                edges: BTreeMap::new(),
                chains: BTreeMap::new(),
            })
        })
    }

    pub(super) fn stats() -> (u64, u64) {
        (
            EDGES.load(Ordering::Relaxed),
            CHECKS.load(Ordering::Relaxed),
        )
    }

    pub(super) fn edges() -> Vec<(String, String)> {
        let g = crate::lock(graph());
        g.edges
            .iter()
            .flat_map(|(a, bs)| bs.iter().map(move |b| ((*a).to_string(), (*b).to_string())))
            .collect()
    }

    pub(super) fn acquire(name: &'static str) {
        CHECKS.fetch_add(1, Ordering::Relaxed);
        let (outer, chain) = HELD.with(|h| {
            let held = h.borrow();
            if held.contains(&name) {
                // lint:allow(panic): a reentrant same-class acquisition is a certain self-deadlock; aborting loudly is the witness's entire job
                panic!(
                    "lockdep: reentrant acquisition of lock class `{name}` \
                     (held chain: {})",
                    held.join(" -> ")
                );
            }
            (held.last().copied(), held.join(" -> "))
        });
        if let Some(outer) = outer {
            record_edge(outer, name, &chain);
        }
        HELD.with(|h| h.borrow_mut().push(name));
    }

    pub(super) fn release(name: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&n| n == name) {
                held.remove(pos);
            }
        });
    }

    /// Records `outer → inner`, panicking if the reverse direction is
    /// already reachable (a lock-order cycle).
    fn record_edge(outer: &'static str, inner: &'static str, cur_chain: &str) {
        let mut g = crate::lock(graph());
        if g.edges.get(outer).is_some_and(|s| s.contains(inner)) {
            return; // known-good pair, checked when first recorded
        }
        if let Some(path) = path_between(&g.edges, inner, outer) {
            let mut report = String::new();
            for w in path.windows(2) {
                let chain = g
                    .chains
                    .get(&(w[0], w[1]))
                    .map(String::as_str)
                    .unwrap_or("?");
                report.push_str(&format!(
                    "\n  edge `{}` -> `{}` first recorded with held chain: [{}]",
                    w[0], w[1], chain
                ));
            }
            // lint:allow(panic): a lock-order cycle is a latent ABBA deadlock; aborting with both class chains is the witness's entire job
            panic!(
                "lockdep: lock-order cycle — acquiring `{inner}` while holding `{outer}` \
                 (this thread's chain: [{cur_chain} -> {inner}]), but the opposite order \
                 `{inner}` ->* `{outer}` is already recorded:{report}"
            );
        }
        g.edges.entry(outer).or_default().insert(inner);
        g.chains
            .insert((outer, inner), format!("{cur_chain} -> {inner}"));
        EDGES.fetch_add(1, Ordering::Relaxed);
    }

    /// BFS path `from ->* to` over the edge set, if one exists.
    fn path_between(
        edges: &BTreeMap<&'static str, BTreeSet<&'static str>>,
        from: &'static str,
        to: &'static str,
    ) -> Option<Vec<&'static str>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut parent: BTreeMap<&str, &'static str> = BTreeMap::new();
        let mut queue: VecDeque<&'static str> = VecDeque::new();
        queue.push_back(from);
        while let Some(node) = queue.pop_front() {
            for &next in edges.get(node).into_iter().flatten() {
                if next != from && !parent.contains_key(next) {
                    parent.insert(next, node);
                    if next == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(&p) = parent.get(cur) {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

#[cfg(all(test, debug_assertions, not(feature = "obs-off")))]
mod tests {
    use super::*;

    // Class names are process-global state; every test uses its own so
    // the edge table never couples tests.

    #[test]
    fn nested_acquisition_records_an_edge() {
        static A: LockClass = LockClass::new("obs::test_edge::a");
        static B: LockClass = LockClass::new("obs::test_edge::b");
        let (ma, mb) = (Mutex::new(0u32), Mutex::new(0u32));
        let (e0, c0) = stats();
        {
            let _ga = lock_class(&A, &ma);
            let _gb = lock_class(&B, &mb);
        }
        let (e1, c1) = stats();
        assert!(e1 > e0, "edge count must grow: {e0} -> {e1}");
        assert!(c1 >= c0 + 2, "check count must grow: {c0} -> {c1}");
        assert!(edges()
            .iter()
            .any(|(a, b)| a == "obs::test_edge::a" && b == "obs::test_edge::b"));
    }

    #[test]
    fn abba_cycle_is_caught_without_deadlocking() {
        static A: LockClass = LockClass::new("obs::test_abba::a");
        static B: LockClass = LockClass::new("obs::test_abba::b");
        let ma = Mutex::new(0u32);
        let mb = Mutex::new(0u32);
        {
            let _ga = lock_class(&A, &ma);
            let _gb = lock_class(&B, &mb);
        }
        // The reverse nesting on the *same* thread can never deadlock at
        // runtime — exactly the case only a witness catches.
        let err = std::panic::catch_unwind(|| {
            let _gb = lock_class(&B, &mb);
            let _ga = lock_class(&A, &ma);
        })
        .expect_err("lockdep must reject the ABBA inversion");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "{msg}");
        assert!(msg.contains("obs::test_abba::a"), "{msg}");
        assert!(msg.contains("obs::test_abba::b"), "{msg}");
        assert!(msg.contains("first recorded with held chain"), "{msg}");
        // The failed acquisition must not leak into the held-set.
        let _gb = lock_class(&B, &mb);
        drop(_gb);
    }

    #[test]
    fn diamond_order_is_accepted() {
        // a→b→d and a→c→d share endpoints but disagree nowhere.
        static A: LockClass = LockClass::new("obs::test_diamond::a");
        static B: LockClass = LockClass::new("obs::test_diamond::b");
        static C: LockClass = LockClass::new("obs::test_diamond::c");
        static D: LockClass = LockClass::new("obs::test_diamond::d");
        let (ma, mb, mc, md) = (
            Mutex::new(0u32),
            Mutex::new(0u32),
            Mutex::new(0u32),
            Mutex::new(0u32),
        );
        {
            let _ga = lock_class(&A, &ma);
            let _gb = lock_class(&B, &mb);
            let _gd = lock_class(&D, &md);
        }
        {
            let _ga = lock_class(&A, &ma);
            let _gc = lock_class(&C, &mc);
            let _gd = lock_class(&D, &md);
        }
    }

    #[test]
    fn transitive_cycle_is_caught() {
        // a→b, b→c recorded; then c→a must close the loop through b.
        static A: LockClass = LockClass::new("obs::test_trans::a");
        static B: LockClass = LockClass::new("obs::test_trans::b");
        static C: LockClass = LockClass::new("obs::test_trans::c");
        let (ma, mb, mc) = (Mutex::new(0u32), Mutex::new(0u32), Mutex::new(0u32));
        {
            let _ga = lock_class(&A, &ma);
            let _gb = lock_class(&B, &mb);
        }
        {
            let _gb = lock_class(&B, &mb);
            let _gc = lock_class(&C, &mc);
        }
        let err = std::panic::catch_unwind(|| {
            let _gc = lock_class(&C, &mc);
            let _ga = lock_class(&A, &ma);
        })
        .expect_err("transitive inversion must be rejected");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "reentrant acquisition")]
    fn reentrant_same_class_panics() {
        static A: LockClass = LockClass::new("obs::test_reent::a");
        let m1 = Mutex::new(0u32);
        let m2 = Mutex::new(0u32);
        // Different *instances*, same class: still rejected — instance
        // identity cannot order a class against itself.
        let _g1 = lock_class(&A, &m1);
        let _g2 = lock_class(&A, &m2);
    }

    #[test]
    fn wait_timeout_releases_and_reacquires_in_the_held_set() {
        static Q: LockClass = LockClass::new("obs::test_wait::q");
        static INNER: LockClass = LockClass::new("obs::test_wait::inner");
        let m = Mutex::new(0u32);
        let mi = Mutex::new(0u32);
        let cv = Condvar::new();
        let g = lock_class(&Q, &m);
        let (g, timed_out) = g.wait_timeout(&cv, Duration::from_millis(1));
        assert!(timed_out);
        // Still held after the wait: nesting under it must record.
        {
            let _gi = lock_class(&INNER, &mi);
        }
        drop(g);
        assert!(edges()
            .iter()
            .any(|(a, b)| a == "obs::test_wait::q" && b == "obs::test_wait::inner"));
        // And fully released after drop: a fresh same-class acquisition
        // must not be flagged reentrant.
        let _g = lock_class(&Q, &m);
    }

    #[test]
    fn guard_derefs_to_the_data() {
        static A: LockClass = LockClass::new("obs::test_deref::a");
        let m = Mutex::new(41u32);
        {
            let mut g = lock_class(&A, &m);
            *g += 1;
        }
        assert_eq!(*crate::lock(&m), 42);
    }
}
