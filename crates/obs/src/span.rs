//! Scoped wall-clock spans with nesting.
//!
//! [`span`] opens a span; dropping the returned [`SpanGuard`] closes it
//! and folds the elapsed wall-clock time into the registry, keyed by the
//! span's *path*: the `/`-joined chain of enclosing span names on the
//! same thread (`"cli.sweep/engine.rtt_vs_load"`). Aggregation is
//! `{count, total, max}` per path — bounded memory however hot the site,
//! and recording a path the registry has already seen allocates nothing
//! (the path is joined into a reusable thread-local buffer at close).
//!
//! Nesting is tracked per thread. A span opened on a worker thread starts
//! a fresh path there; cross-thread parentage is intentionally out of
//! scope (it would need either unsafe TLS tricks or a context parameter
//! on every call).
//!
//! Under `obs-off`, [`span`] returns an inert guard and records nothing.

#[cfg(not(feature = "obs-off"))]
mod active {
    use crate::{lock_class, registry};
    use std::cell::RefCell;
    use std::time::Instant;

    thread_local! {
        /// Names of the open spans on this thread (innermost last). Names
        /// are `&'static str` and the `/`-joined path is only materialized
        /// at close into `PATH_BUF`, so steady-state recording of a span
        /// whose path is already in the registry allocates nothing.
        static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        /// Reusable buffer for the `/`-joined path at close.
        static PATH_BUF: RefCell<String> = const { RefCell::new(String::new()) };
    }

    /// Live span: closes (and records) on drop.
    #[derive(Debug)]
    #[must_use = "a span records on drop; binding it to `_` closes it immediately"]
    pub struct SpanGuard {
        name: &'static str,
        depth: usize,
        start: Instant,
    }

    /// Opens a span named `name`, nested under the innermost open span on
    /// this thread (if any).
    pub fn span(name: &'static str) -> SpanGuard {
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len() - 1
        });
        SpanGuard {
            name,
            depth,
            start: Instant::now(),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            STACK.with(|s| {
                let mut s = s.borrow_mut();
                // Guards normally close LIFO, so our frame is `depth`;
                // tolerate out-of-order drops (e.g. a guard moved into an
                // outliving struct) by searching for the name instead.
                let idx = if s.get(self.depth) == Some(&self.name) {
                    Some(self.depth)
                } else {
                    s.iter().rposition(|n| *n == self.name)
                };
                let Some(idx) = idx else { return };
                PATH_BUF.with(|buf| {
                    let mut buf = buf.borrow_mut();
                    buf.clear();
                    for (i, name) in s[..=idx].iter().enumerate() {
                        if i > 0 {
                            buf.push('/');
                        }
                        buf.push_str(name);
                    }
                    let mut spans = lock_class(&crate::REG_SPANS, &registry().spans);
                    let stat = match spans.get_mut(buf.as_str()) {
                        Some(stat) => stat,
                        None => spans.entry(buf.clone()).or_default(),
                    };
                    stat.count += 1;
                    stat.total_ns = stat.total_ns.saturating_add(elapsed);
                    stat.max_ns = stat.max_ns.max(elapsed);
                });
                s.remove(idx);
            });
        }
    }
}

#[cfg(feature = "obs-off")]
mod active {
    /// Inert span guard (`obs-off` build).
    #[derive(Debug)]
    #[must_use = "a span records on drop; binding it to `_` closes it immediately"]
    pub struct SpanGuard {}

    /// No-op span (`obs-off` build).
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard {}
    }
}

pub use active::{span, SpanGuard};

#[cfg(test)]
mod tests {
    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn spans_nest_into_slash_paths() {
        use crate::{lock_class, registry, span};
        {
            let _outer = span("obs.test.outer");
            {
                let _inner = span("obs.test.inner");
            }
        }
        let spans = lock_class(&crate::REG_SPANS, &registry().spans);
        let outer = spans.get("obs.test.outer").copied();
        let inner = spans.get("obs.test.outer/obs.test.inner").copied();
        drop(spans);
        let outer = outer.expect("outer span recorded");
        let inner = inner.expect("nested path recorded");
        assert!(outer.count >= 1);
        assert!(inner.count >= 1);
        assert!(outer.max_ns >= inner.max_ns || outer.count > 1);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn sibling_threads_do_not_inherit_parents() {
        use crate::{lock_class, registry, span};
        let _outer = span("obs.test.parent_thread");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _worker = span("obs.test.worker_root");
            });
        });
        let spans = lock_class(&crate::REG_SPANS, &registry().spans);
        assert!(
            spans.contains_key("obs.test.worker_root"),
            "worker span must be a fresh root on its own thread"
        );
        assert!(!spans
            .keys()
            .any(|k| k == "obs.test.parent_thread/obs.test.worker_root"));
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn span_is_inert_under_obs_off() {
        let _g = crate::span("obs.test.noop");
    }
}
