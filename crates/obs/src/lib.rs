//! # fpsping-obs — zero-dependency observability for the fpsping workspace
//!
//! Pure `std`, fully offline, and cheap enough for solver inner loops:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] are `static`-friendly atomic
//!   primitives that register themselves lazily (on first record) in a
//!   global `OnceLock`-initialized registry, so instrumentation sites are
//!   one `static` declaration plus one relaxed atomic operation — no
//!   locks, no allocation on the hot path.
//! * [`span`] opens a scoped wall-clock span; spans nest through a
//!   thread-local stack (`"engine.sweep/cell"`-style paths) and aggregate
//!   `{count, total, max}` per path rather than storing every event, so
//!   memory stays bounded no matter how hot the span site is.
//! * [`snapshot`] captures everything at once; the [`Snapshot`] renders as
//!   a human table ([`Snapshot::render_table`]), an indented span tree
//!   ([`Snapshot::render_trace`]), or JSON ([`Snapshot::to_json`], schema
//!   `fpsping-obs/1`) — the format behind the CLI's `--metrics-out`.
//! * [`warn_once`] deduplicates operator-facing warnings by key (e.g. the
//!   parallelism-autodetection fallback) and records them in the registry
//!   so exports carry them too.
//!
//! ## Naming convention
//!
//! Metric names are dotted lower-case paths, `<crate>.<subsystem>.<what>`:
//! `engine.cache.dek.hits`, `num.roots.brent.iterations`, `sim.events`.
//! Names are `&'static str` by design — the registry never copies them.
//!
//! ## The `obs-off` feature
//!
//! Building with the `obs-off` cargo feature compiles every record
//! operation (counter adds, histogram records, span timing) down to a
//! no-op with no atomic traffic, for apples-to-apples benchmarking of the
//! instrumentation cost. Snapshots still work and simply report what was
//! recorded (zeros). [`warn_once`] stays active — it guards correctness
//! reporting, not measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

pub mod export;
pub mod lockdep;
pub mod metrics;
pub mod span;

pub use export::{snapshot, write_json, HistogramSnapshot, Snapshot, SpanSnapshot};
pub use lockdep::{lock_class, LockClass, TrackedGuard};
pub use metrics::{Counter, Gauge, Histogram, HistogramTimer};
pub use span::{span, SpanGuard};

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpanStat {
    /// Completed spans at this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_ns: u64,
    /// The single longest span in nanoseconds.
    pub max_ns: u64,
}

/// The process-global metric registry. Metric primitives push themselves
/// in on first record; spans and warnings aggregate here directly.
pub(crate) struct Registry {
    pub counters: Mutex<Vec<&'static metrics::Counter>>,
    pub gauges: Mutex<Vec<&'static metrics::Gauge>>,
    pub histograms: Mutex<Vec<&'static metrics::Histogram>>,
    pub spans: Mutex<BTreeMap<String, SpanStat>>,
    pub warn_keys: Mutex<BTreeSet<&'static str>>,
    pub warnings: Mutex<Vec<String>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// Lockdep classes for the registry's own locks. These are the innermost
/// classes in `lockorder.toml`: any instrumented lock in any crate may be
/// held when a metric's lazy registration or a span drop reaches the
/// registry, and the registry never calls back out while holding them.
pub(crate) static REG_COUNTERS: LockClass = LockClass::new("obs::Registry::counters");
pub(crate) static REG_GAUGES: LockClass = LockClass::new("obs::Registry::gauges");
pub(crate) static REG_HISTOGRAMS: LockClass = LockClass::new("obs::Registry::histograms");
pub(crate) static REG_SPANS: LockClass = LockClass::new("obs::Registry::spans");
pub(crate) static REG_WARN_KEYS: LockClass = LockClass::new("obs::Registry::warn_keys");
pub(crate) static REG_WARNINGS: LockClass = LockClass::new("obs::Registry::warnings");

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        spans: Mutex::new(BTreeMap::new()),
        warn_keys: Mutex::new(BTreeSet::new()),
        warnings: Mutex::new(Vec::new()),
    })
}

/// Acquires a mutex, recovering the contents if a panicking thread
/// poisoned it.
///
/// This is the workspace's one audited poison-recovery site (the metric
/// registry, the engine's solver caches, and the serve layer all route
/// through it). The recovery is sound **only** for structures that are
/// never left half-mutated across a panic point: every guarded structure
/// here only ever holds fully-constructed entries (pushes, single-map
/// inserts, field stores), so the data stays valid after any panic.
/// Callers adopting this helper inherit that contract — do not hold the
/// guard across fallible multi-step mutations.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonic stopwatch for *control flow* (deadlines, timeout budgets)
/// in library crates.
///
/// Measurement timing belongs in [`Histogram::start_timer`]; this type
/// exists for the other legitimate clock use — "how long has this
/// request been running" arithmetic — so `std::time::Instant` can stay
/// inside `crates/obs` (lint rule L08) without library crates smuggling
/// their own clocks in. Deliberately **not** disabled by `obs-off`:
/// timeouts are behavior, not instrumentation.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Starts the stopwatch now.
    #[must_use]
    pub fn start() -> Self {
        Self(std::time::Instant::now())
    }

    /// Whole microseconds elapsed since [`Stopwatch::start`] (saturating).
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Stopwatch::start`], as `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Emits `message` to stderr at most once per `key` (process-wide), and
/// records it in the registry so metric exports carry it. Subsequent
/// calls with the same key are no-ops regardless of the message text.
///
/// Stays active under `obs-off`: these are operator-facing correctness
/// warnings (silent-fallback reporting), not measurements.
pub fn warn_once(key: &'static str, message: &str) {
    let inserted = lock_class(&REG_WARN_KEYS, &registry().warn_keys).insert(key);
    if inserted {
        lock_class(&REG_WARNINGS, &registry().warnings).push(format!("{key}: {message}"));
        // lint:allow(println): the whole point of warn_once is a one-shot operator-visible stderr warning; routing through the caller would reintroduce the silent fallback it exists to fix
        eprintln!("warning: {message}");
    }
}

/// All warnings recorded so far via [`warn_once`], in emission order.
pub fn warnings() -> Vec<String> {
    lock_class(&REG_WARNINGS, &registry().warnings).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warn_once_deduplicates_by_key() {
        warn_once("obs.test.warn_a", "first text");
        warn_once("obs.test.warn_a", "second text is dropped");
        let all = warnings();
        let mine: Vec<&String> = all
            .iter()
            .filter(|w| w.starts_with("obs.test.warn_a"))
            .collect();
        assert_eq!(mine.len(), 1);
        assert!(mine[0].contains("first text"));
    }

    #[test]
    fn stopwatch_is_monotone_and_active_under_obs_off() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_micros();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = sw.elapsed_micros();
        assert!(b >= a);
        assert!(b >= 1_000, "2 ms sleep must register: {b} µs");
        assert!(sw.elapsed_secs() > 0.0);
    }

    #[test]
    fn distinct_keys_both_recorded() {
        warn_once("obs.test.warn_b1", "b1");
        warn_once("obs.test.warn_b2", "b2");
        let all = warnings();
        assert!(all.iter().any(|w| w.starts_with("obs.test.warn_b1")));
        assert!(all.iter().any(|w| w.starts_with("obs.test.warn_b2")));
    }
}
