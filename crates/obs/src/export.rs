//! Snapshot and export: human tables, span trees, and JSON.
//!
//! [`snapshot`] captures every registered metric at one instant (each
//! value is read with a relaxed load; the snapshot is per-metric atomic,
//! not globally transactional — fine for diagnostics). The JSON layout is
//! versioned as `fpsping-obs/1`:
//!
//! ```json
//! {
//!   "schema": "fpsping-obs/1",
//!   "counters":   { "engine.cache.rtt.hits": 123 },
//!   "gauges":     { "engine.cache.rtt.entries": 18 },
//!   "histograms": { "num.roots.brent.iterations": {
//!                     "count": 4, "sum": 40,
//!                     "buckets": [ { "le": 15, "n": 4 } ] } },
//!   "spans":      { "cli.sweep": { "count": 1,
//!                     "total_ms": 12.5, "max_ms": 12.5 } },
//!   "warnings":   [ "sim.jobs: ..." ]
//! }
//! ```
//!
//! Keys are sorted; the document is deterministic for a given registry
//! state, so tests and the tier-1 smoke can grep it.

use crate::{lock_class, registry};
use std::fmt::Write as _;
use std::path::Path;

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Point-in-time copy of one span path's aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// `/`-joined span path.
    pub path: String,
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock milliseconds.
    pub total_ms: f64,
    /// Longest single span in milliseconds.
    pub max_ms: f64,
}

/// Everything the registry knows, captured at one instant and sorted by
/// name for deterministic output.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, u64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span aggregates.
    pub spans: Vec<SpanSnapshot>,
    /// Warnings recorded via [`crate::warn_once`].
    pub warnings: Vec<String>,
}

/// Captures the current state of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = lock_class(&crate::REG_COUNTERS, &reg.counters)
        .iter()
        .map(|c| (c.name().to_string(), c.get()))
        .collect();
    // The lockdep witness counts with plain atomics (its counters must
    // not re-enter the instrumented registry locks), so its coverage
    // figures are injected here instead of self-registering. Zeros mean
    // the witness is compiled out (release or obs-off).
    let (lockdep_edges, lockdep_checks) = crate::lockdep::stats();
    counters.push(("lockdep.edges".to_string(), lockdep_edges));
    counters.push(("lockdep.checks".to_string(), lockdep_checks));
    counters.sort();
    let mut gauges: Vec<(String, u64)> = lock_class(&crate::REG_GAUGES, &reg.gauges)
        .iter()
        .map(|g| (g.name().to_string(), g.get()))
        .collect();
    gauges.sort();
    let mut histograms: Vec<HistogramSnapshot> =
        lock_class(&crate::REG_HISTOGRAMS, &reg.histograms)
            .iter()
            .map(|h| HistogramSnapshot {
                name: h.name().to_string(),
                count: h.count(),
                sum: h.sum(),
                buckets: h.buckets(),
            })
            .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let spans: Vec<SpanSnapshot> = lock_class(&crate::REG_SPANS, &reg.spans)
        .iter()
        .map(|(path, s)| SpanSnapshot {
            path: path.clone(),
            count: s.count,
            total_ms: s.total_ns as f64 / 1e6,
            max_ms: s.max_ns as f64 / 1e6,
        })
        .collect(); // BTreeMap iteration is already path-sorted
    let warnings = lock_class(&crate::REG_WARNINGS, &reg.warnings).clone();
    Snapshot {
        counters,
        gauges,
        histograms,
        spans,
        warnings,
    }
}

/// Captures a snapshot and writes its JSON document to `path`.
pub fn write_json(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

impl Snapshot {
    /// The versioned JSON document (schema `fpsping-obs/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"fpsping-obs/1\",\n");
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", json_str(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", json_str(name));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_str(&h.name),
                h.count,
                h.sum
            );
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le\": {le}, \"n\": {n}}}");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"total_ms\": {:.6}, \"max_ms\": {:.6}}}",
                json_str(&s.path),
                s.count,
                s.total_ms,
                s.max_ms
            );
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(w));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Human-oriented fixed-width table of counters, gauges, and
    /// histograms (empty sections are omitted).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let mean = if h.count > 0 {
                    h.sum as f64 / h.count as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {:<width$}  count {}  mean {:.1}",
                    h.name, h.count, mean
                );
            }
        }
        if !self.warnings.is_empty() {
            out.push_str("warnings:\n");
            for w in &self.warnings {
                let _ = writeln!(out, "  {w}");
            }
        }
        out
    }

    /// The span tree, indented by nesting depth: each line shows the span
    /// name, completion count, total and mean wall-clock milliseconds,
    /// and the longest single occurrence.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            return "spans: (none recorded)\n".into();
        }
        out.push_str("spans:\n");
        for s in &self.spans {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let mean = if s.count > 0 {
                s.total_ms / s.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:indent$}{name}  ×{}  total {:.3} ms  mean {:.3} ms  max {:.3} ms",
                "",
                s.count,
                s.total_ms,
                mean,
                s.max_ms,
                indent = 2 * depth
            );
        }
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Gauge, Histogram};

    #[test]
    fn snapshot_carries_registered_metrics() {
        static C: Counter = Counter::new("obs.test.export_counter");
        static G: Gauge = Gauge::new("obs.test.export_gauge");
        static H: Histogram = Histogram::new("obs.test.export_hist");
        C.add(3);
        G.set(9);
        H.record(5);
        let snap = snapshot();
        #[cfg(not(feature = "obs-off"))]
        {
            assert!(snap
                .counters
                .iter()
                .any(|(n, v)| n == "obs.test.export_counter" && *v >= 3));
            assert!(snap
                .gauges
                .iter()
                .any(|(n, v)| n == "obs.test.export_gauge" && *v == 9));
            assert!(snap
                .histograms
                .iter()
                .any(|h| h.name == "obs.test.export_hist" && h.count >= 1));
        }
        #[cfg(feature = "obs-off")]
        {
            assert!(!snap
                .counters
                .iter()
                .any(|(n, _)| n == "obs.test.export_counter"));
        }
    }

    #[test]
    fn json_is_versioned_and_escaped() {
        static C: Counter = Counter::new("obs.test.export_json");
        C.incr();
        let json = snapshot().to_json();
        assert!(json.starts_with("{\n  \"schema\": \"fpsping-obs/1\""));
        assert!(json.ends_with("}\n"));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_snapshot_renders() {
        let empty = Snapshot::default();
        let json = empty.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"warnings\": []"));
        assert_eq!(empty.render_table(), "");
        assert!(empty.render_trace().contains("none recorded"));
    }

    #[test]
    fn write_json_round_trips_through_a_file() {
        static C: Counter = Counter::new("obs.test.export_file");
        C.incr();
        let path = std::env::temp_dir().join("fpsping_obs_export_test.json");
        write_json(&path).expect("write metrics json");
        let content = std::fs::read_to_string(&path).expect("read back");
        assert!(content.contains("fpsping-obs/1"));
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn trace_indents_nested_spans() {
        {
            let _a = crate::span("obs.test.trace_outer");
            let _b = crate::span("obs.test.trace_inner");
        }
        let trace = snapshot().render_trace();
        assert!(trace.contains("obs.test.trace_outer"));
        // The nested line is indented deeper than its parent.
        let outer_indent = trace
            .lines()
            .find(|l| l.trim_start().starts_with("obs.test.trace_outer"))
            .map(|l| l.len() - l.trim_start().len());
        let inner_indent = trace
            .lines()
            .find(|l| l.trim_start().starts_with("obs.test.trace_inner"))
            .map(|l| l.len() - l.trim_start().len());
        assert!(inner_indent > outer_indent, "{trace}");
    }
}
