//! Atomic metric primitives: monotone counters, last-write-wins gauges,
//! and log₂-bucketed histograms.
//!
//! All three are designed to sit in a `static` at the instrumentation
//! site; the `&'static self` receivers on the record methods are what
//! lets a metric register itself in the global registry the first time it
//! is touched (a relaxed boolean load on every later call). Recording is
//! a relaxed `fetch_add` — safe from any thread, never a lock.
//!
//! Under the `obs-off` feature every record method compiles to a no-op
//! and the atomics are never touched.

#[cfg(not(feature = "obs-off"))]
use crate::{lock_class, registry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A monotone event counter.
///
/// ```
/// static SOLVES: fpsping_obs::Counter = fpsping_obs::Counter::new("demo.solves");
/// SOLVES.incr();
/// SOLVES.add(2); // SOLVES.get() == 3 (0 under `obs-off`)
/// ```
#[derive(Debug)]
#[cfg_attr(feature = "obs-off", allow(dead_code))]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A zeroed counter with the given dotted name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (relaxed; no-op under `obs-off`).
    #[inline]
    pub fn add(&'static self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.value.fetch_add(n, Ordering::Relaxed);
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[cfg(not(feature = "obs-off"))]
    #[cold]
    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::SeqCst) {
            lock_class(&crate::REG_COUNTERS, &registry().counters).push(self);
        }
    }
}

/// A last-write-wins level (cache occupancy, configured thread count, …).
#[derive(Debug)]
#[cfg_attr(feature = "obs-off", allow(dead_code))]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A zeroed gauge with the given dotted name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stores `v` (relaxed; no-op under `obs-off`).
    #[inline]
    pub fn set(&'static self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.value.store(v, Ordering::Relaxed);
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&'static self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.value.fetch_max(v, Ordering::Relaxed);
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[cfg(not(feature = "obs-off"))]
    #[cold]
    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::SeqCst) {
            lock_class(&crate::REG_GAUGES, &registry().gauges).push(self);
        }
    }
}

/// Number of histogram buckets: bucket `i` (for `i ≥ 1`) holds values
/// with exactly `i` significant bits, i.e. `2^(i-1) ..= 2^i - 1`; bucket
/// 0 holds the value 0. Bucket 64 therefore covers the top half of the
/// `u64` range.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations (iteration counts,
/// microsecond durations, …). Fixed memory, relaxed-atomic recording.
#[derive(Debug)]
#[cfg_attr(feature = "obs-off", allow(dead_code))]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// A zeroed histogram with the given dotted name.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-repeat seed, one fresh atomic per slot
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation (relaxed; no-op under `obs-off`).
    #[inline]
    pub fn record(&'static self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            let bucket = (u64::BITS - v.leading_zeros()) as usize;
            self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Starts a wall-clock timer that records its elapsed time in
    /// **microseconds** into this histogram when dropped. This is the
    /// sanctioned way for library crates to time a scope — `Instant`
    /// stays inside `fpsping-obs` (lint rule L08).
    #[must_use = "the timer records on drop; binding it to `_` measures nothing"]
    pub fn start_timer(&'static self) -> HistogramTimer {
        #[cfg(not(feature = "obs-off"))]
        {
            HistogramTimer {
                hist: self,
                start: std::time::Instant::now(),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            HistogramTimer {}
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (upper_bound(i), n))
            })
            .collect()
    }

    #[cfg(not(feature = "obs-off"))]
    #[cold]
    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::SeqCst) {
            lock_class(&crate::REG_HISTOGRAMS, &registry().histograms).push(self);
        }
    }
}

/// Inclusive upper bound of bucket `i`: 0, 1, 3, 7, …, `u64::MAX`.
fn upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Scope timer returned by [`Histogram::start_timer`]; records elapsed
/// microseconds on drop.
#[derive(Debug)]
pub struct HistogramTimer {
    #[cfg(not(feature = "obs-off"))]
    hist: &'static Histogram,
    #[cfg(not(feature = "obs-off"))]
    start: std::time::Instant,
}

#[cfg(not(feature = "obs-off"))]
impl Drop for HistogramTimer {
    fn drop(&mut self) {
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.hist.record(micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_registers() {
        static C: Counter = Counter::new("obs.test.counter_basic");
        assert_eq!(C.get(), 0);
        C.incr();
        C.add(4);
        #[cfg(not(feature = "obs-off"))]
        {
            assert_eq!(C.get(), 5);
            let names: Vec<&str> = lock_class(&crate::REG_COUNTERS, &registry().counters)
                .iter()
                .map(|c| c.name())
                .collect();
            assert!(names.contains(&"obs.test.counter_basic"));
        }
        #[cfg(feature = "obs-off")]
        assert_eq!(C.get(), 0, "obs-off must compile adds to no-ops");
    }

    #[test]
    fn gauge_last_write_and_high_water() {
        static G: Gauge = Gauge::new("obs.test.gauge_basic");
        G.set(7);
        G.set(3);
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(G.get(), 3);
        G.set_max(10);
        G.set_max(5);
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(G.get(), 10);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        static H: Histogram = Histogram::new("obs.test.hist_basic");
        for v in [0u64, 1, 2, 3, 4, 1000] {
            H.record(v);
        }
        #[cfg(not(feature = "obs-off"))]
        {
            assert_eq!(H.count(), 6);
            assert_eq!(H.sum(), 1010);
            let b = H.buckets();
            // 0 → le 0; 1 → le 1; 2,3 → le 3; 4 → le 7; 1000 → le 1023.
            assert_eq!(b, vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
        }
        #[cfg(feature = "obs-off")]
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn histogram_timer_records_once() {
        static H: Histogram = Histogram::new("obs.test.hist_timer");
        {
            let _t = H.start_timer();
        }
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(H.count(), 1);
        #[cfg(feature = "obs-off")]
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = None;
        for i in 0..BUCKETS {
            let b = upper_bound(i);
            if let Some(p) = prev {
                assert!(b > p, "bucket {i}");
            }
            prev = Some(b);
        }
        assert_eq!(upper_bound(64), u64::MAX);
    }

    #[test]
    fn counters_are_thread_safe() {
        static C: Counter = Counter::new("obs.test.counter_threads");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.incr();
                    }
                });
            }
        });
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(C.get(), 4000);
    }
}
