//! Property tests of the calendar-queue parity contract: arbitrary
//! schedules — same-timestamp ties, far-future events beyond the bucket
//! ring's horizon (forcing overflow spills and migrations), interleaved
//! pushes and pops — run through the binary-heap and bucket backends in
//! lockstep must produce the identical pop sequence, `(time, seq)` by
//! `(time, seq)`.

use fpsping_sim::calendar::{Calendar, CalendarKind, Scheduled};
use fpsping_sim::SimTime;
use proptest::prelude::*;

/// One step of a schedule: push an event at a (possibly tied, possibly
/// far-future) offset from the current virtual time, or pop one.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `now + offset_ns`; `0` makes exact ties with the last
    /// popped time, large values land beyond the ring horizon.
    Push {
        offset_ns: u64,
    },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Dense near-term events, heavy on ties and sub-width offsets.
        4 => (0u64..5_000).prop_map(|offset_ns| Op::Push { offset_ns }),
        // Mid-range: lands a few buckets out.
        2 => (5_000u64..2_000_000).prop_map(|offset_ns| Op::Push { offset_ns }),
        // Far future: far past the horizon — guaranteed overflow spill.
        1 => (1_000_000_000u64..60_000_000_000).prop_map(|offset_ns| Op::Push { offset_ns }),
        3 => Just(Op::Pop),
    ]
}

/// Drives the same schedule through both backends, asserting lockstep
/// equality of every pop (and of emptiness). Returns the total pops.
fn run_lockstep(horizon_ms: f64, ops: &[Op]) -> Result<u64, TestCaseError> {
    let horizon = SimTime::from_millis(horizon_ms);
    let mut heap: CalendarKind<u64> = Calendar::Heap.build(16, horizon);
    let mut bucket: CalendarKind<u64> = Calendar::Bucket.build(16, horizon);
    let mut seq: u64 = 0;
    let mut now = SimTime::ZERO;
    let mut pops: u64 = 0;
    for op in ops {
        match op {
            Op::Push { offset_ns } => {
                seq += 1;
                let time = now + SimTime::from_nanos(*offset_ns);
                heap.push(Scheduled { time, seq, ev: seq });
                bucket.push(Scheduled { time, seq, ev: seq });
            }
            Op::Pop => {
                let h = heap.pop();
                let b = bucket.pop();
                match (h, b) {
                    (None, None) => {}
                    (Some(h), Some(b)) => {
                        prop_assert_eq!(h.time, b.time, "pop #{} time", pops);
                        prop_assert_eq!(h.seq, b.seq, "pop #{} seq", pops);
                        prop_assert_eq!(h.ev, b.ev, "pop #{} payload", pops);
                        now = h.time;
                        pops += 1;
                    }
                    (h, b) => {
                        return Err(TestCaseError::fail(format!(
                            "backends disagree on emptiness: heap {h:?} vs bucket {b:?}"
                        )))
                    }
                }
            }
        }
        prop_assert_eq!(heap.len(), bucket.len());
    }
    // Drain whatever is left — the tail must stay in lockstep too.
    loop {
        match (heap.pop(), bucket.pop()) {
            (None, None) => break,
            (Some(h), Some(b)) => {
                prop_assert_eq!((h.time, h.seq), (b.time, b.seq), "drain pop");
                pops += 1;
            }
            (h, b) => {
                return Err(TestCaseError::fail(format!(
                    "backends disagree while draining: heap {h:?} vs bucket {b:?}"
                )))
            }
        }
    }
    Ok(pops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleaved schedules: identical pop order on both
    /// backends, for narrow rings (many spills) and wide ones alike.
    #[test]
    fn random_schedules_pop_identically(
        horizon_ms in prop_oneof![Just(0.1), Just(1.0), Just(160.0)],
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let popped = run_lockstep(horizon_ms, &ops)?;
        let pushed = ops
            .iter()
            .filter(|op| matches!(op, Op::Push { .. }))
            .count() as u64;
        prop_assert_eq!(popped, pushed, "every push is popped exactly once");
    }

    /// All-ties schedule: every event at the same instant. Order must be
    /// pure insertion (seq) order on both backends.
    #[test]
    fn exact_ties_resolve_by_insertion_order(n in 1usize..200) {
        let ops: Vec<Op> = std::iter::repeat_with(|| Op::Push { offset_ns: 0 })
            .take(n)
            .collect();
        run_lockstep(1.0, &ops)?;
    }

    /// Spill-heavy schedule: alternate near events with events far past
    /// the horizon, popping between bursts so the overflow heap keeps
    /// migrating into the ring as the window advances.
    #[test]
    fn far_future_spills_migrate_in_order(seed_offsets in proptest::collection::vec(1_000_000_000u64..30_000_000_000, 5..40)) {
        let mut ops = Vec::new();
        for &far in &seed_offsets {
            ops.push(Op::Push { offset_ns: 7 });
            ops.push(Op::Push { offset_ns: far });
            ops.push(Op::Pop);
        }
        run_lockstep(0.5, &ops)?;
    }
}
