//! Golden parity lock: the exact output of the simulator on two fixed
//! scenarios, asserted bit-for-bit.
//!
//! The PR-2 hot-path overhaul (enum scheduler dispatch, buffer reuse,
//! batched RNG draws) must not move a single sample: every optimization
//! either performs the same arithmetic or consumes the RNG stream in the
//! same order. The constants were originally captured from the simulator
//! *before* that overhaul; any drift in the event loop breaks this test.
//!
//! Re-pinned once since: the burst-shuffle index draw switched from the
//! modulo-biased `next_u64() % (k+1)` to Lemire rejection sampling
//! (`BatchRng::next_bounded`), which deliberately changes the shuffled
//! order (and occasionally the number of words consumed), moving the
//! burst-position-dependent statistics by ~1 ulp-scale amounts. See
//! EXPERIMENTS.md for the sequence-change note.
//!
//! Since the calendar-queue change, every scenario runs under BOTH
//! calendar backends against the SAME constants: the bucket calendar's
//! exact-parity contract (identical `(time, seq)` pop order, ties
//! included) means the backend choice must never move a bit.

use fpsping_dist::Deterministic;
use fpsping_sim::{Calendar, NetworkConfig, SimReport, SimTime};

const BACKENDS: [Calendar; 2] = [Calendar::Heap, Calendar::Bucket];

fn golden_cfg() -> NetworkConfig {
    let mut cfg = NetworkConfig::paper_scenario(8, Box::new(Deterministic::new(125.0)), 40.0, 33);
    cfg.duration = SimTime::from_secs(30.0);
    cfg.warmup = SimTime::from_secs(1.0);
    cfg
}

/// A loaded scenario that exercises every hot path: Erlang bursts, WFQ
/// with elastic background, and downlink jitter.
fn loaded_cfg() -> NetworkConfig {
    use fpsping_sim::BurstSizing;
    let mut cfg = NetworkConfig::paper_scenario(60, Box::new(Deterministic::new(125.0)), 40.0, 77);
    cfg.duration = SimTime::from_secs(20.0);
    cfg.warmup = SimTime::from_secs(1.0);
    cfg.burst_sizing = BurstSizing::ErlangBurst { k: 9 };
    cfg.discipline = fpsping_sim::scheduler::Discipline::Wfq { game_weight: 0.5 };
    cfg.background = Some(fpsping_sim::network::BackgroundConfig {
        load: 0.3,
        packet_bytes: 1500.0,
    });
    cfg.downlink_jitter_ms = Some(Box::new(fpsping_dist::Uniform::new(0.0, 2.0)));
    cfg
}

struct Golden {
    events: u64,
    up: u64,
    down: u64,
    mean_down: u64,
    mean_up: u64,
    mean_ping: u64,
    q999: u64,
    agg_mean: u64,
    burst_mean: u64,
}

fn check(rep: &SimReport, g: &Golden) {
    assert_eq!(rep.events, g.events, "event count");
    assert_eq!(rep.packets_upstream, g.up, "upstream packets");
    assert_eq!(rep.packets_downstream, g.down, "downstream packets");
    assert_eq!(
        rep.downstream_delay.mean_s.to_bits(),
        g.mean_down,
        "downstream mean"
    );
    assert_eq!(
        rep.upstream_delay.mean_s.to_bits(),
        g.mean_up,
        "upstream mean"
    );
    assert_eq!(rep.ping_rtt.mean_s.to_bits(), g.mean_ping, "ping mean");
    assert_eq!(
        rep.downstream_delay.quantiles[3].1.to_bits(),
        g.q999,
        "downstream p99.9"
    );
    assert_eq!(rep.agg_wait.mean_s.to_bits(), g.agg_mean, "agg wait mean");
    assert_eq!(
        rep.burst_wait.mean_s.to_bits(),
        g.burst_mean,
        "burst wait mean"
    );
}

#[test]
fn report_is_bit_identical_to_pre_overhaul_simulator() {
    for cal in BACKENDS {
        let mut cfg = golden_cfg();
        cfg.calendar = cal;
        let rep = cfg.run();
        check(
            &rep,
            &Golden {
                events: 30746,
                up: 5998,
                down: 6000,
                mean_down: 4566296942248740095,
                mean_up: 4572562203629306855,
                mean_ping: 4584380791812910868,
                q999: 4568087572307661111,
                agg_mean: 0,
                burst_mean: 0,
            },
        );
    }
}

#[test]
fn loaded_report_is_bit_identical_to_pre_overhaul_simulator() {
    for cal in BACKENDS {
        let mut cfg = loaded_cfg();
        cfg.calendar = cal;
        let rep = cfg.run();
        check(
            &rep,
            &Golden {
                events: 190599,
                up: 29988,
                down: 29988,
                mean_down: 4576918268356224851,
                mean_up: 4573096955702700381,
                mean_ping: 4584983869540191238,
                q999: 4585742385845164320,
                agg_mean: 4557191656818497175,
                burst_mean: 4554820032460052005,
            },
        );
        assert_eq!(
            rep.downstream_delay.std_dev_s.to_bits(),
            4574007217661303129,
            "downstream std dev"
        );
        assert_eq!(
            rep.downstream_delay.max_s.to_bits(),
            4586521689152706644,
            "downstream max"
        );
    }
}
