//! Properties of the replicated engine: thread-count invariance of the
//! merged report, collision-free seed derivation, and the streaming
//! quantile acceptance bound (P² vs exact sorted quantile at 10⁶
//! samples with memory independent of sample count).

use fpsping_dist::Deterministic;
use fpsping_sim::engine::replication_seed;
use fpsping_sim::probe::DelayProbe;
use fpsping_sim::{NetworkConfig, SimEngine, SimEngineConfig, SimTime};
use proptest::prelude::*;

fn tiny_cfg() -> NetworkConfig {
    let mut cfg = NetworkConfig::paper_scenario(3, Box::new(Deterministic::new(125.0)), 40.0, 0);
    cfg.duration = SimTime::from_secs(3.0);
    cfg.warmup = SimTime::from_secs(0.5);
    cfg
}

proptest! {
    // Each case runs 2·R short simulations; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The merged report is a pure function of (master seed, R): running
    /// the same batch on 1 worker and on 4 workers gives bit-identical
    /// merged statistics and per-replication reports.
    #[test]
    fn merged_report_is_invariant_to_jobs(master in 0u64..u64::MAX, reps in 1usize..6) {
        let serial = SimEngine::new(
            SimEngineConfig::with_reps(reps).master_seed(master).jobs(1),
        )
        .run(|_| tiny_cfg());
        let parallel = SimEngine::new(
            SimEngineConfig::with_reps(reps).master_seed(master).jobs(4),
        )
        .run(|_| tiny_cfg());

        prop_assert_eq!(serial.events, parallel.events);
        prop_assert_eq!(serial.packets_upstream, parallel.packets_upstream);
        prop_assert_eq!(serial.packets_downstream, parallel.packets_downstream);
        prop_assert_eq!(
            serial.up_utilization.to_bits(),
            parallel.up_utilization.to_bits()
        );
        for (a, b) in [
            (&serial.upstream_delay, &parallel.upstream_delay),
            (&serial.downstream_delay, &parallel.downstream_delay),
            (&serial.agg_wait, &parallel.agg_wait),
            (&serial.burst_wait, &parallel.burst_wait),
            (&serial.ping_rtt, &parallel.ping_rtt),
        ] {
            prop_assert_eq!(a.count, b.count);
            prop_assert_eq!(a.mean_s.to_bits(), b.mean_s.to_bits());
            prop_assert_eq!(a.std_dev_s.to_bits(), b.std_dev_s.to_bits());
            prop_assert_eq!(a.max_s.to_bits(), b.max_s.to_bits());
            prop_assert_eq!(
                a.mean_ci95_s.map(f64::to_bits),
                b.mean_ci95_s.map(f64::to_bits)
            );
            prop_assert_eq!(a.quantiles.len(), b.quantiles.len());
            for (qa, qb) in a.quantiles.iter().zip(&b.quantiles) {
                prop_assert_eq!(qa.p.to_bits(), qb.p.to_bits());
                prop_assert_eq!(qa.value_s.to_bits(), qb.value_s.to_bits());
                prop_assert_eq!(qa.pooled_s.to_bits(), qb.pooled_s.to_bits());
                prop_assert_eq!(
                    qa.ci95_s.map(f64::to_bits),
                    qb.ci95_s.map(f64::to_bits)
                );
            }
        }
        prop_assert_eq!(serial.per_rep.len(), parallel.per_rep.len());
        for (ra, rb) in serial.per_rep.iter().zip(&parallel.per_rep) {
            prop_assert_eq!(ra.events, rb.events);
            prop_assert_eq!(
                ra.ping_rtt.mean_s.to_bits(),
                rb.ping_rtt.mean_s.to_bits()
            );
            prop_assert_eq!(&ra.ping_rtt.quantiles, &rb.ping_rtt.quantiles);
        }
    }

    /// Per-replication seeds never collide within a batch, and a
    /// replication's seed doesn't depend on the batch size.
    #[test]
    fn replication_seeds_never_collide(master in 0u64..u64::MAX, n in 2usize..512) {
        let seeds: Vec<u64> = (0..n as u64).map(|i| replication_seed(master, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), seeds.len(), "seed collision under master={}", master);
        // Batch-size independence: seed of rep i is the same whether the
        // batch has n or n+7 replications (it only depends on (master, i)).
        for (i, &s) in seeds.iter().enumerate() {
            prop_assert_eq!(s, replication_seed(master, i as u64));
        }
    }
}

/// Acceptance bound: on a 10⁶-sample population, every streamed quantile
/// lands within the P² error expected of the estimator (well under 1%
/// relative for central quantiles, a small absolute band for deep
/// tails), while the probe stores zero raw samples — memory is
/// O(levels), independent of the sample count.
#[test]
fn streaming_quantiles_meet_p2_bound_at_1e6_samples() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 1_000_000;
    let levels = [0.5, 0.9, 0.99, 0.999];
    let mut streaming = DelayProbe::streaming(&levels, &[]);
    let mut exact = DelayProbe::new(N, &[]);
    let mut rng = StdRng::seed_from_u64(2006);
    // Lognormal-ish heavy-tailed delays: exp of a symmetric triangular
    // variate — a shape with enough tail to stress the deep quantiles.
    for _ in 0..N {
        let u = fpsping_dist::uniform01(&mut rng);
        let v = fpsping_dist::uniform01(&mut rng);
        let x = (u + v - 1.0) * 3.0;
        let delay = x.exp() * 1e-3;
        streaming.record(delay);
        exact.record(delay);
    }
    assert_eq!(streaming.count(), N as u64);
    assert_eq!(
        streaming.stored_samples(),
        0,
        "streaming mode stores no samples"
    );
    assert_eq!(exact.stored_samples(), N);
    for &p in &levels {
        let got = streaming.quantile(p);
        let want = exact.quantile(p);
        let rel = (got - want).abs() / want.abs().max(1e-12);
        // P² on 10⁶ smooth-density samples: central quantiles are tight;
        // the 99.9th still resolves to within a few percent.
        let bound = if p <= 0.99 { 0.01 } else { 0.05 };
        assert!(
            rel < bound,
            "p={p}: streaming {got} vs exact {want} (rel err {rel:.4} ≥ {bound})"
        );
    }
}
