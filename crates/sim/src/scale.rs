//! The sharded scale engine: N = 10⁵–10⁶ players across a tree of
//! per-DSLAM bottlenecks feeding one core link.
//!
//! The paper validates its model on a single bottleneck with N ≲ 120
//! gamers; this module is the topology where its Poisson-limit claim
//! (superposition of many periodic sources → M/D/1, §3.1) must *emerge*
//! rather than be assumed. N players are partitioned into DSLAM subtrees
//! of [`ScaleConfig::players_per_dslam`] each:
//!
//! ```text
//!  client ──Rup──┐
//!     ⋮          ├─[DSLAM 0]──┐
//!  client ──Rup──┘            │
//!        ⋮                    ├──[core link]──► server site
//!  client ──Rup──┐            │
//!     ⋮          ├─[DSLAM D-1]┘
//!  client ──Rup──┘
//! ```
//!
//! Each DSLAM subtree is an independent event-driven simulation on its
//! own [`CalendarKind`], seeded with `replication_seed(seed, dslam)` —
//! the same collision-free SplitMix64 stream derivation the replication
//! engine uses — and feeds a time-ordered stream of packet summaries
//! (departure instant, creation instant) into the core-link stage. The
//! core link is FIFO with deterministic service, so its waits follow
//! from a single pass over the merged arrival stream — no calendar
//! needed there.
//!
//! **Shard-count invariance.** `shards` is pure worker-thread
//! parallelism over DSLAM indices (via the engine's `par_map`): the
//! topology, the per-DSLAM seeds, the merge order of the per-DSLAM
//! streaming probes (count-weighted [`fpsping_num::p2::P2Quantile::merge`],
//! always in DSLAM order `0..D`), and the `(time, dslam)` tie-break of
//! the core merge are all functions of the *configuration only* — the
//! merged [`ScaleReport`] is bit-identical for any `--shards` value.
//! Tests pin this, and `benches/scale.rs` re-asserts it before timing.

use crate::calendar::{Calendar, CalendarKind, CalendarStats, Scheduled};
use crate::engine::{par_map, replication_seed};
use crate::link::{Link, LinkAction};
use crate::network::QUANTILE_LEVELS;
use crate::packet::Packet;
use crate::probe::{DelayProbe, ProbeSummary};
use crate::rng::BatchRng;
use crate::scheduler::Discipline;
use crate::time::SimTime;
use fpsping_dist::uniform01;
use fpsping_obs::Counter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

static SCALE_EVENTS: Counter = Counter::new("sim.scale.events");
static SCALE_PACKETS: Counter = Counter::new("sim.scale.packets");

/// Configuration of a scale run. Defaults follow the paper's §4 DSL
/// numbers per client (80 B every 40 ms over a 128 kbps uplink), with
/// DSLAM and core capacities *derived from the configured loads* so the
/// operating point stays fixed as N grows.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Total number of players N.
    pub n_players: usize,
    /// Players per DSLAM subtree (the last DSLAM takes the remainder;
    /// its capacity scales down so every DSLAM runs at `dslam_load`).
    pub players_per_dslam: usize,
    /// Worker threads over DSLAM indices; `0` = all available cores.
    /// Purely a parallelism knob — never affects the merged report.
    pub shards: usize,
    /// Event-calendar backend for the per-DSLAM event loops.
    pub calendar: Calendar,
    /// Client packet size (bytes), deterministic — the Poisson limit at
    /// the aggregation points comes from phase superposition, not size
    /// randomness.
    pub client_packet_bytes: f64,
    /// Client send interval (ms), deterministic per the paper's model.
    pub interval_ms: f64,
    /// Access uplink rate (bit/s).
    pub r_up_bps: f64,
    /// Offered load on each DSLAM bottleneck (sets its capacity).
    pub dslam_load: f64,
    /// Offered load on the core link (sets its capacity).
    pub core_load: f64,
    /// Simulated duration.
    pub duration: SimTime,
    /// Warm-up excluded from probes and from the core stage.
    pub warmup: SimTime,
    /// Tail thresholds (seconds) for exact exceedance counting.
    pub tail_thresholds_s: Vec<f64>,
    /// Master seed; DSLAM `d` uses `replication_seed(seed, d)`.
    pub seed: u64,
}

impl ScaleConfig {
    /// A scale scenario with the paper's per-client numbers and the
    /// default operating point (DSLAM load 0.5, core load 0.8).
    pub fn new(n_players: usize) -> Self {
        Self {
            n_players,
            players_per_dslam: 4_096,
            shards: 0,
            calendar: Calendar::Bucket,
            client_packet_bytes: 80.0,
            interval_ms: 40.0,
            r_up_bps: 128_000.0,
            dslam_load: 0.5,
            core_load: 0.8,
            duration: SimTime::from_secs(10.0),
            warmup: SimTime::from_secs(1.0),
            tail_thresholds_s: vec![0.010, 0.025, 0.050, 0.100, 0.200],
            seed: 0,
        }
    }

    /// Number of DSLAM subtrees.
    pub fn dslams(&self) -> usize {
        self.n_players.div_ceil(self.players_per_dslam)
    }

    /// One client's mean offered rate (bit/s).
    pub fn per_client_bps(&self) -> f64 {
        self.client_packet_bytes * 8.0 / (self.interval_ms / 1e3)
    }

    /// Core-link capacity (bit/s), derived from N and `core_load`.
    pub fn core_bps(&self) -> f64 {
        self.n_players as f64 * self.per_client_bps() / self.core_load
    }
}

/// The merged result of a scale run — a deterministic function of the
/// [`ScaleConfig`] alone (never of `shards`).
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Total players simulated.
    pub n_players: usize,
    /// Number of DSLAM subtrees.
    pub dslams: usize,
    /// Events processed: per-DSLAM calendar events plus core arrivals.
    pub events: u64,
    /// Packets through the core link (post-warmup).
    pub packets: u64,
    /// Queueing wait at the DSLAM bottlenecks (merged across DSLAMs).
    pub dslam_wait: ProbeSummary,
    /// Queueing wait at the core link.
    pub core_wait: ProbeSummary,
    /// Client send → core-link completion.
    pub end_to_end: ProbeSummary,
    /// Mean DSLAM-bottleneck utilization.
    pub dslam_utilization: f64,
    /// Core-link utilization over the post-warmup span.
    pub core_utilization: f64,
    /// Core-link capacity used (bit/s).
    pub core_rate_bps: f64,
    /// Core-link deterministic service time (s) — the `τ` of the
    /// M/D/1 `poisson_limit` check.
    pub core_service_s: f64,
    /// Measured post-warmup core arrival rate (1/s) — the `λ` of the
    /// M/D/1 check.
    pub core_arrival_rate_hz: f64,
    /// Calendar operation counts summed over every DSLAM.
    pub calendar: CalendarStats,
}

/// One DSLAM subtree's event payloads.
#[derive(Debug)]
enum Ev {
    /// Client `i` (DSLAM-local index) emits its periodic packet.
    Emit(u32),
    /// Client `i`'s access uplink finishes serializing.
    UplinkComplete(u32),
    /// The DSLAM bottleneck finishes serializing.
    DslamComplete,
}

/// What one DSLAM subtree hands the core stage.
struct DslamResult {
    dslam_wait: DelayProbe,
    /// Post-warmup `(departure_ns, created_ns)` per packet, in
    /// departure order — 16 B/packet, the only per-packet state that
    /// outlives a shard.
    departures: Vec<(u64, u64)>,
    events: u64,
    busy: SimTime,
    stats: CalendarStats,
}

/// Runs a [`ScaleConfig`]: DSLAM subtrees on scoped worker threads,
/// then the single-pass core-link stage over their merged departures.
#[derive(Debug, Clone)]
pub struct ScaleEngine {
    cfg: ScaleConfig,
}

impl ScaleEngine {
    /// An engine over the given scenario.
    pub fn new(cfg: ScaleConfig) -> Self {
        assert!(cfg.n_players >= 1, "need at least one player");
        assert!(
            cfg.players_per_dslam >= 1,
            "need at least one player per DSLAM"
        );
        assert!(
            cfg.dslam_load > 0.0 && cfg.dslam_load < 1.0,
            "DSLAM load must be in (0, 1)"
        );
        assert!(
            cfg.core_load > 0.0 && cfg.core_load < 1.0,
            "core load must be in (0, 1)"
        );
        assert!(cfg.duration > cfg.warmup, "duration must exceed warmup");
        Self { cfg }
    }

    /// The scenario.
    pub fn config(&self) -> &ScaleConfig {
        &self.cfg
    }

    /// Worker threads actually used (`shards = 0` resolved to available
    /// parallelism, capped at the DSLAM count).
    pub fn effective_shards(&self) -> usize {
        let shards = if self.cfg.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.cfg.shards
        };
        shards.clamp(1, self.cfg.dslams())
    }

    /// Runs the scenario and merges: probes in DSLAM order, departures
    /// by `(time, dslam)` into the core stage.
    pub fn run(&self) -> ScaleReport {
        let _span = fpsping_obs::span("sim.scale");
        let cfg = &self.cfg;
        let d = cfg.dslams();
        let results = par_map(d, self.effective_shards(), |i| self.run_dslam(i));

        // Merge the per-DSLAM probes and counters in index order.
        let mut dslam_wait = results[0].dslam_wait.clone();
        let mut stats = results[0].stats;
        for r in &results[1..] {
            dslam_wait.merge(&r.dslam_wait);
            stats = stats.merged(r.stats);
        }
        let mut events: u64 = results.iter().map(|r| r.events).sum();
        let dslam_utilization = results
            .iter()
            .map(|r| r.busy.as_secs() / cfg.duration.as_secs())
            .sum::<f64>()
            / d as f64;

        // Core stage: k-way merge of the (already time-ordered)
        // per-DSLAM departure streams, tie-broken by DSLAM index, into
        // an analytic FIFO queue with deterministic service.
        let core_bps = cfg.core_bps();
        let tau = SimTime::serialization(cfg.client_packet_bytes, core_bps);
        let mut core_wait = DelayProbe::streaming(&QUANTILE_LEVELS, &cfg.tail_thresholds_s);
        let mut end_to_end = DelayProbe::streaming(&QUANTILE_LEVELS, &cfg.tail_thresholds_s);
        let mut heads: BinaryHeap<Reverse<(u64, usize)>> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.departures.is_empty())
            .map(|(i, r)| Reverse((r.departures[0].0, i)))
            .collect();
        let mut cursors = vec![0usize; results.len()];
        let mut busy_until = SimTime::ZERO;
        let mut packets: u64 = 0;
        while let Some(Reverse((t, i))) = heads.pop() {
            let (_, created) = results[i].departures[cursors[i]];
            cursors[i] += 1;
            if let Some(&(next, _)) = results[i].departures.get(cursors[i]) {
                heads.push(Reverse((next, i)));
            }
            let arrival = SimTime::from_nanos(t);
            let start = arrival.max(busy_until);
            busy_until = start + tau;
            core_wait.record((start - arrival).as_secs());
            end_to_end.record((busy_until - SimTime::from_nanos(created)).as_secs());
            packets += 1;
        }
        events += packets;

        let span_s = (cfg.duration - cfg.warmup).as_secs();
        let core_arrival_rate_hz = packets as f64 / span_s;
        let core_utilization = packets as f64 * tau.as_secs() / span_s;

        stats.flush_obs();
        SCALE_EVENTS.add(events);
        SCALE_PACKETS.add(packets);

        ScaleReport {
            n_players: cfg.n_players,
            dslams: d,
            events,
            packets,
            dslam_wait: dslam_wait.summarize(&QUANTILE_LEVELS),
            core_wait: core_wait.summarize(&QUANTILE_LEVELS),
            end_to_end: end_to_end.summarize(&QUANTILE_LEVELS),
            dslam_utilization,
            core_utilization,
            core_rate_bps: core_bps,
            core_service_s: tau.as_secs(),
            core_arrival_rate_hz,
            calendar: stats,
        }
    }

    /// One DSLAM subtree: `n_d` periodic clients behind access uplinks
    /// into a FIFO bottleneck sized for `dslam_load`.
    fn run_dslam(&self, d: usize) -> DslamResult {
        let cfg = &self.cfg;
        let lo = d * cfg.players_per_dslam;
        let n_d = cfg.players_per_dslam.min(cfg.n_players - lo);
        let mut rng = BatchRng::seed_from_u64(replication_seed(cfg.seed, d as u64));
        let dslam_bps = n_d as f64 * cfg.per_client_bps() / cfg.dslam_load;
        let mut uplinks: Vec<Link> = (0..n_d)
            .map(|_| Link::new(cfg.r_up_bps, SimTime::ZERO, Discipline::Fifo))
            .collect();
        let mut dslam = Link::new(dslam_bps, SimTime::ZERO, Discipline::Fifo);
        // Look-ahead is one send interval; completions land nearer.
        let horizon = SimTime::from_millis(4.0 * cfg.interval_ms);
        let mut calendar: CalendarKind<Ev> = cfg.calendar.build(2 * n_d + 16, horizon);
        let mut seq: u64 = 0;
        for i in 0..n_d {
            let phase = uniform01(&mut rng) * cfg.interval_ms;
            seq += 1;
            calendar.push(Scheduled {
                time: SimTime::from_millis(phase),
                seq,
                ev: Ev::Emit(i as u32),
            });
        }
        let interval = SimTime::from_millis(cfg.interval_ms);
        let mut dslam_wait = DelayProbe::streaming(&QUANTILE_LEVELS, &cfg.tail_thresholds_s);
        let mut departures: Vec<(u64, u64)> = Vec::new();
        let mut events: u64 = 0;
        while let Some(s) = calendar.pop() {
            if s.time > cfg.duration {
                break;
            }
            let now = s.time;
            events += 1;
            match s.ev {
                Ev::Emit(i) => {
                    let p = Packet::game(cfg.client_packet_bytes, (lo + i as usize) as u32, now);
                    if let LinkAction::ScheduleCompletion(t) = uplinks[i as usize].offer(p, now) {
                        seq += 1;
                        calendar.push(Scheduled {
                            time: t,
                            seq,
                            ev: Ev::UplinkComplete(i),
                        });
                    }
                    seq += 1;
                    calendar.push(Scheduled {
                        time: now + interval,
                        seq,
                        ev: Ev::Emit(i),
                    });
                }
                Ev::UplinkComplete(i) => {
                    let (mut p, action) = uplinks[i as usize].complete(now);
                    if let LinkAction::ScheduleCompletion(t) = action {
                        seq += 1;
                        calendar.push(Scheduled {
                            time: t,
                            seq,
                            ev: Ev::UplinkComplete(i),
                        });
                    }
                    p.enqueued = now;
                    if let LinkAction::ScheduleCompletion(t) = dslam.offer(p, now) {
                        seq += 1;
                        calendar.push(Scheduled {
                            time: t,
                            seq,
                            ev: Ev::DslamComplete,
                        });
                    }
                }
                Ev::DslamComplete => {
                    let (p, action) = dslam.complete(now);
                    if let LinkAction::ScheduleCompletion(t) = action {
                        seq += 1;
                        calendar.push(Scheduled {
                            time: t,
                            seq,
                            ev: Ev::DslamComplete,
                        });
                    }
                    if now >= cfg.warmup {
                        let ser = dslam.serialization(p.size_bytes);
                        let wait = (now.saturating_sub(ser)).saturating_sub(p.enqueued);
                        dslam_wait.record(wait.as_secs());
                        // lint:allow(unbounded_push): the core-stage hand-off buffer — 16 B/packet, sized by duration; see EXPERIMENTS.md "Scale"
                        departures.push((now.as_nanos(), p.created.as_nanos()));
                    }
                }
            }
        }
        DslamResult {
            dslam_wait,
            departures,
            events,
            busy: dslam.busy_time,
            stats: calendar.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(n: usize, ppd: usize, dur_s: f64) -> ScaleConfig {
        let mut cfg = ScaleConfig::new(n);
        cfg.players_per_dslam = ppd;
        cfg.duration = SimTime::from_secs(dur_s);
        cfg.warmup = SimTime::from_secs(0.25);
        cfg.seed = 7;
        cfg
    }

    fn assert_reports_identical(a: &ScaleReport, b: &ScaleReport) {
        assert_eq!(a.events, b.events);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.calendar.enqueues, b.calendar.enqueues);
        for (x, y) in [
            (&a.dslam_wait, &b.dslam_wait),
            (&a.core_wait, &b.core_wait),
            (&a.end_to_end, &b.end_to_end),
        ] {
            assert_eq!(x.count, y.count);
            assert_eq!(x.mean_s.to_bits(), y.mean_s.to_bits());
            assert_eq!(x.std_dev_s.to_bits(), y.std_dev_s.to_bits());
            for ((pa, qa), (pb, qb)) in x.quantiles.iter().zip(&y.quantiles) {
                assert_eq!(pa, pb);
                assert_eq!(qa.to_bits(), qb.to_bits());
            }
        }
        assert_eq!(a.core_utilization.to_bits(), b.core_utilization.to_bits());
    }

    #[test]
    fn shard_count_never_changes_the_report() {
        let mk = |shards: usize| {
            let mut cfg = small(2_000, 512, 1.0);
            cfg.shards = shards;
            ScaleEngine::new(cfg).run()
        };
        let one = mk(1);
        assert_eq!(one.dslams, 4);
        for shards in [2, 3, 4] {
            let other = mk(shards);
            assert_reports_identical(&one, &other);
            // Op counts (spills/resizes included) are per-DSLAM sums —
            // shard-count invariant too.
            assert_eq!(one.calendar, other.calendar);
        }
    }

    #[test]
    fn calendar_backends_give_identical_scale_reports() {
        let mk = |calendar| {
            let mut cfg = small(1_500, 512, 1.0);
            cfg.calendar = calendar;
            ScaleEngine::new(cfg).run()
        };
        let heap = mk(Calendar::Heap);
        let bucket = mk(Calendar::Bucket);
        assert_reports_identical(&heap, &bucket);
        assert_eq!(heap.calendar.enqueues, bucket.calendar.enqueues);
    }

    #[test]
    fn utilizations_match_the_configured_operating_point() {
        let rep = ScaleEngine::new(small(4_000, 16_384, 4.0)).run();
        assert_eq!(rep.dslams, 1);
        assert!(
            (rep.core_utilization - 0.8).abs() < 0.02,
            "core utilization {}",
            rep.core_utilization
        );
        assert!(
            (rep.dslam_utilization - 0.5).abs() < 0.02,
            "DSLAM utilization {}",
            rep.dslam_utilization
        );
        // ~N/interval packets per post-warmup second.
        let expect = 4_000.0 / 0.040 * 3.75;
        assert!(
            (rep.packets as f64 - expect).abs() < 0.02 * expect,
            "packets {} vs ~{expect}",
            rep.packets
        );
    }

    #[test]
    fn core_wait_approaches_the_mdd1_poisson_limit() {
        // Many small DSLAMs: the core sees a superposition of 40
        // independent streams, which the paper's §3.1 argument says is
        // Poisson in the limit — so the core wait should sit near the
        // M/D/1 Pollaczek–Khinchine mean ρτ/(2(1−ρ)).
        let rep = ScaleEngine::new(small(10_000, 256, 1.5)).run();
        assert_eq!(rep.dslams, 40);
        let rho = rep.core_utilization;
        let predicted = rho * rep.core_service_s / (2.0 * (1.0 - rho));
        let ratio = rep.core_wait.mean_s / predicted;
        assert!(
            (0.6..1.3).contains(&ratio),
            "core wait {} vs M/D/1 {predicted} (ratio {ratio})",
            rep.core_wait.mean_s
        );
    }

    #[test]
    fn probes_stream_and_end_to_end_dominates_components() {
        let rep = ScaleEngine::new(small(1_000, 512, 1.0)).run();
        // End-to-end includes the 5 ms uplink serialization plus both
        // queueing stages.
        let uplink_ser = 80.0 * 8.0 / 128_000.0;
        assert!(rep.end_to_end.mean_s > uplink_ser);
        assert!(rep.end_to_end.mean_s > rep.dslam_wait.mean_s + rep.core_wait.mean_s);
        assert!(rep.calendar.enqueues > 0);
        assert!(rep.events > rep.packets);
    }

    #[test]
    fn last_partial_dslam_runs_at_the_same_load() {
        // 1300 players over 512/DSLAM → three DSLAMs, the last with 276;
        // capacities scale with population so utilization stays flat.
        let rep = ScaleEngine::new(small(1_300, 512, 2.0)).run();
        assert_eq!(rep.dslams, 3);
        assert!(
            (rep.dslam_utilization - 0.5).abs() < 0.02,
            "DSLAM utilization {}",
            rep.dslam_utilization
        );
    }
}
