//! Packets and traffic classes.

use crate::time::SimTime;

/// Service class of a packet — Section 1 of the paper discusses keeping
/// interactive (gaming) traffic segregated from elastic (TCP bulk)
/// traffic via priority or WFQ scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Interactive gaming traffic (high priority / reserved WFQ class).
    Game,
    /// Elastic background traffic.
    Elastic,
}

/// What a downstream packet acknowledges: the upstream ping it answers,
/// echoed back like a real game ping protocol echoes its header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckInfo {
    /// Client-side send time of the acknowledged upstream packet.
    pub sent: SimTime,
    /// When that packet reached the server — `created - arrival` of the
    /// downstream packet is the server's *hold time* (tick-alignment
    /// wait), which an estimating client subtracts to recover pure
    /// network RTT.
    pub arrival: SimTime,
    /// The client's ping sequence number, echoed verbatim (None when the
    /// client wasn't tracking that ping).
    pub seq: Option<u16>,
}

/// A simulated packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Size in bytes.
    pub size_bytes: f64,
    /// Service class.
    pub class: TrafficClass,
    /// Origin client / destination client index (depending on direction).
    pub flow: u32,
    /// Creation time: when the client emitted it (upstream) or when the
    /// server tick emitted its burst (downstream).
    pub created: SimTime,
    /// For downstream ping packets: the upstream packet this one
    /// acknowledges (None for plain state updates).
    pub ack_of: Option<AckInfo>,
    /// Upstream packets only: the RTT estimator's sequence number stamped
    /// at emission (None when the estimator is off or the packet is
    /// untracked).
    pub ping_seq: Option<u16>,
    /// Position of the packet within its burst (0-based; upstream packets
    /// use 0).
    pub burst_position: u32,
    /// When the packet was enqueued at its *current* hop (set by the
    /// network on each offer; used to measure per-hop queueing waits).
    pub enqueued: SimTime,
}

impl Packet {
    /// A fresh game packet.
    pub fn game(size_bytes: f64, flow: u32, created: SimTime) -> Self {
        Self {
            size_bytes,
            class: TrafficClass::Game,
            flow,
            created,
            ack_of: None,
            ping_seq: None,
            burst_position: 0,
            enqueued: created,
        }
    }

    /// A fresh elastic (background) packet.
    pub fn elastic(size_bytes: f64, created: SimTime) -> Self {
        Self {
            size_bytes,
            class: TrafficClass::Elastic,
            flow: u32::MAX,
            created,
            ack_of: None,
            ping_seq: None,
            burst_position: 0,
            enqueued: created,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        let g = Packet::game(125.0, 3, SimTime::from_millis(1.0));
        assert_eq!(g.class, TrafficClass::Game);
        assert_eq!(g.flow, 3);
        assert!(g.ack_of.is_none());
        let e = Packet::elastic(1500.0, SimTime::ZERO);
        assert_eq!(e.class, TrafficClass::Elastic);
    }
}
