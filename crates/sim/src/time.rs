//! Integer-nanosecond virtual time.
//!
//! The event clock uses `u64` nanoseconds so event ordering never suffers
//! float drift; conversion helpers go to/from the `f64` seconds and
//! milliseconds the analytic layers speak.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From integer nanoseconds (exact).
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// As integer nanoseconds (exact) — what the calendar queue's bucket
    /// arithmetic runs on.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// From seconds (rounds to the nearest nanosecond).
    pub fn from_secs(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "SimTime: seconds must be non-negative, got {s}"
        );
        SimTime((s * 1e9).round() as u64)
    }

    /// From milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// From microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// As seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Duration needed to serialize `bytes` on a link of `rate_bps`.
    pub fn serialization(bytes: f64, rate_bps: f64) -> SimTime {
        assert!(rate_bps > 0.0, "serialization: rate must be positive");
        Self::from_secs(bytes * 8.0 / rate_bps)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        // lint:allow(unwrap): a negative SimTime is unrepresentable; panicking beats wrapping to ~58 000 years
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_millis(47.0);
        assert_eq!(t.0, 47_000_000);
        assert!((t.as_millis() - 47.0).abs() < 1e-12);
        assert!((t.as_secs() - 0.047).abs() < 1e-15);
        assert_eq!(SimTime::from_micros(1.5).0, 1_500);
        assert_eq!(SimTime::from_nanos(250).as_nanos(), 250);
        assert_eq!(SimTime::from_nanos(47_000_000), t);
    }

    #[test]
    fn serialization_time() {
        // 125 B at 5 Mbps = 200 µs.
        let t = SimTime::serialization(125.0, 5_000_000.0);
        assert_eq!(t.0, 200_000);
        // 80 B at 128 kbps = 5 ms.
        let t2 = SimTime::serialization(80.0, 128_000.0);
        assert_eq!(t2.0, 5_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10.0);
        let b = SimTime::from_millis(4.0);
        assert_eq!((a + b).as_millis(), 14.0);
        assert_eq!((a - b).as_millis(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1.0) - SimTime::from_millis(2.0);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime(1);
        let b = SimTime(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
