//! The Figure-2 topology: N clients behind access links, an aggregation
//! node, a bottleneck link `C` to the game server, and the mirrored
//! downstream path.
//!
//! The event loop is a classic calendar DES: `(time, seq)`-ordered events
//! in a [`CalendarKind`] backend (binary heap or O(1)-amortized bucket
//! ring — both pop in the identical total order), links as
//! store-and-forward servers, and probes recording the delays the
//! paper's model predicts —
//!
//! * `agg_wait` — queueing delay at the aggregation node onto `C`
//!   (the N·D/D/1 → M/G/1 quantity of §3.1),
//! * `burst_wait` — queueing delay of the *first* packet of each server
//!   burst at the downstream `C` link (the D/E_K/1 `w_n` of §3.2.1),
//! * `downstream_delay` — server tick to client arrival (burst wait +
//!   position delay + serializations),
//! * `upstream_delay` — client send to server arrival,
//! * `ping_rtt` — full application-level round trip: client packet →
//!   server → acknowledged in the next server tick → back to the client
//!   (includes the tick-alignment wait the analytic model deliberately
//!   excludes).

use crate::calendar::{Calendar, CalendarKind, Scheduled};
use crate::link::{Link, LinkAction};
use crate::packet::{AckInfo, Packet, TrafficClass};
use crate::probe::{DelayProbe, ProbeSummary};
use crate::rng::BatchRng;
use crate::scheduler::Discipline;
use crate::time::SimTime;
use fpsping_dist::{uniform01, Distribution};
use fpsping_num::finite_guard::finite;
use fpsping_obs::{Counter, Histogram};
use fpsping_traffic::estimator::{EstimatorBank, EstimatorSummary, DEFAULT_CHECKPOINTS};

static EVENTS: Counter = Counter::new("sim.events");
static PACKETS_UP: Counter = Counter::new("sim.packets.up");
static PACKETS_DOWN: Counter = Counter::new("sim.packets.down");
static REPLICATION_WALL_US: Histogram = Histogram::new("sim.replication.wall_us");

/// The quantile levels every [`SimReport`] exports (and the levels a
/// streaming-mode probe tracks).
pub const QUANTILE_LEVELS: [f64; 6] = [0.5, 0.9, 0.99, 0.999, 0.9999, 0.99999];

/// Above this many clients, probes switch to streaming (P²) quantiles
/// automatically even when `stream_quantiles` is off: the eager
/// per-packet sample vectors are the dominant allocation at scale
/// (~48 B/packet across the probes — gigabytes at N = 10⁵–10⁶ over a
/// realistic duration), and truncating at `max_samples` would silently
/// bias the quantiles instead. The switch is announced via `warn_once`.
pub const AUTO_STREAM_CLIENTS: usize = 10_000;

/// Background elastic traffic on the bottleneck links (Section 1's
/// competing TCP-like class), modeled as Poisson arrivals of fixed-size
/// packets.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundConfig {
    /// Offered elastic load on each bottleneck direction (fraction of C).
    pub load: f64,
    /// Elastic packet size in bytes (e.g. 1500).
    pub packet_bytes: f64,
}

/// How server burst sizes are generated.
///
/// §2.3.2 keeps the burst-level Erlang order K roughly independent of the
/// player count because within-burst packet sizes are strongly correlated
/// (game state affects every player's update). Drawing per-packet sizes
/// i.i.d. would wash the burst CoV out as 1/√N and silently turn the
/// downstream queue into D/D/1 for large parties.
#[derive(Debug)]
pub enum BurstSizing {
    /// Per-packet sizes drawn i.i.d. from `server_packet_bytes`.
    IidPerPacket,
    /// Burst total drawn from Erlang(K, mean = N·E[P_S]) and split evenly
    /// across the N packets — the exact D/E_K/1 service law of §3.2.
    ErlangBurst {
        /// Burst-level Erlang order K.
        k: u32,
    },
    /// Burst total drawn from an arbitrary law (bytes for the *whole*
    /// burst), split evenly across the N packets — for the burst-model
    /// sensitivity studies the paper's concluding remarks call for
    /// (lognormal, Weibull, heavy-tailed Pareto, ...).
    BurstFromDistribution(Box<dyn fpsping_dist::Distribution>),
}

/// Simulation configuration (defaults = the paper's §4 DSL scenario).
///
/// # Examples
///
/// ```
/// use fpsping_sim::{NetworkConfig, SimTime};
/// use fpsping_dist::Deterministic;
///
/// let mut cfg = NetworkConfig::paper_scenario(
///     12,                                      // gamers
///     Box::new(Deterministic::new(125.0)),     // P_S
///     40.0,                                    // tick [ms]
///     7,                                       // seed
/// );
/// cfg.duration = SimTime::from_secs(5.0);
/// let report = cfg.run();
/// assert!(report.packets_downstream > 1000);
/// assert!(report.downstream_delay.mean_s > 0.001);
/// ```
#[derive(Debug)]
pub struct NetworkConfig {
    /// Number of gamers N.
    pub n_clients: usize,
    /// Access uplink rate (bit/s) — paper: 128 kbps.
    pub r_up_bps: f64,
    /// Access downlink rate (bit/s) — paper: 1024 kbps.
    pub r_down_bps: f64,
    /// Bottleneck (aggregation) link rate (bit/s) — paper: 5000 kbps.
    pub c_bps: f64,
    /// Client packet size law (bytes) — paper: Det(80).
    pub client_packet_bytes: Box<dyn Distribution>,
    /// Client send interval law (ms) — paper: Det(T).
    pub client_interval_ms: Box<dyn Distribution>,
    /// Server per-client packet size law (bytes).
    pub server_packet_bytes: Box<dyn Distribution>,
    /// Whether burst sizes follow per-packet i.i.d. draws or the
    /// burst-level Erlang law.
    pub burst_sizing: BurstSizing,
    /// Server tick period T (ms), deterministic per §2.3.2.
    pub tick_ms: f64,
    /// Scheduler on the two bottleneck directions.
    pub discipline: Discipline,
    /// Optional background elastic traffic on the bottleneck.
    pub background: Option<BackgroundConfig>,
    /// Shuffle the per-burst emission order (§2.2 observed this).
    pub shuffle_burst_order: bool,
    /// Simulated duration.
    pub duration: SimTime,
    /// Warm-up period excluded from probes.
    pub warmup: SimTime,
    /// RNG seed.
    pub seed: u64,
    /// Track quantiles with O(1)-memory streaming P² estimators instead
    /// of raw sample vectors — for runs long enough that even
    /// `max_samples` truncates (the [`QUANTILE_LEVELS`] are tracked;
    /// moments and exceedance counters stay exact either way).
    pub stream_quantiles: bool,
    /// Run the client-side online RTT estimator
    /// ([`fpsping_traffic::estimator`]): every warm client packet is
    /// registered as a ping, the answering tick packet echoes its
    /// sequence number plus the server's hold time, and each client
    /// tracks the hold-corrected RTT (EWMA + P² tails) — the quantity
    /// the analytic model predicts. Off by default: it adds per-packet
    /// work and the golden-parity tests pin the plain path.
    pub estimate: bool,
    /// Max raw samples per probe (exceedance counters stay exact).
    pub max_samples: usize,
    /// Tail thresholds (seconds) for exact exceedance counting.
    pub tail_thresholds_s: Vec<f64>,
    /// Per-client overrides of `(interval_ms, packet_bytes)` — heterogeneous
    /// gamer hardware/settings (the eq.-13 multi-class situation). Length
    /// must equal `n_clients` when present; `None` means every client uses
    /// `client_interval_ms` / `client_packet_bytes`.
    pub client_overrides: Option<Vec<(f64, f64)>>,
    /// Capture a packet trace (arrivals at the server and at the clients)
    /// in the `fpsping-traffic` record format, for feeding the §2.2
    /// analysis pipeline. Costs memory proportional to the packet count.
    pub capture_trace: bool,
    /// Random extra delay (ms) added to each packet on the access
    /// downlinks — the artificial jitter of the paper's reference [23].
    pub downlink_jitter_ms: Option<Box<dyn Distribution>>,
    /// Event-calendar backend. Both pop events in the identical
    /// `(time, seq)` order (pinned by the golden-parity tests), so this
    /// is purely a performance choice; [`Calendar::Bucket`] is O(1)
    /// amortized and the default.
    pub calendar: Calendar,
}

impl NetworkConfig {
    /// The paper's §4 DSL scenario: `n` gamers, P_C = 80 B, P_S as given,
    /// R_up = 128 kbps, R_down = 1024 kbps, C = 5 Mbps, tick = client
    /// interval = `t_ms`.
    pub fn paper_scenario(
        n: usize,
        server_packet: Box<dyn Distribution>,
        t_ms: f64,
        seed: u64,
    ) -> Self {
        Self {
            n_clients: n,
            r_up_bps: 128_000.0,
            r_down_bps: 1_024_000.0,
            c_bps: 5_000_000.0,
            client_packet_bytes: Box::new(fpsping_dist::Deterministic::new(80.0)),
            client_interval_ms: Box::new(fpsping_dist::Deterministic::new(t_ms)),
            server_packet_bytes: server_packet,
            burst_sizing: BurstSizing::IidPerPacket,
            tick_ms: t_ms,
            discipline: Discipline::Fifo,
            background: None,
            shuffle_burst_order: true,
            duration: SimTime::from_secs(60.0),
            warmup: SimTime::from_secs(2.0),
            seed,
            stream_quantiles: false,
            estimate: false,
            max_samples: 2_000_000,
            tail_thresholds_s: vec![0.010, 0.025, 0.050, 0.100, 0.200],
            client_overrides: None,
            capture_trace: false,
            downlink_jitter_ms: None,
            calendar: Calendar::Bucket,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Client send → server arrival.
    pub upstream_delay: ProbeSummary,
    /// Server tick → client arrival.
    pub downstream_delay: ProbeSummary,
    /// Queueing delay at the aggregation node onto C (upstream).
    pub agg_wait: ProbeSummary,
    /// Queueing delay of the first packet of each burst at the downstream
    /// C link — the D/E_K/1 waiting time.
    pub burst_wait: ProbeSummary,
    /// Full application ping (includes server tick alignment).
    pub ping_rtt: ProbeSummary,
    /// Utilization of the upstream bottleneck.
    pub up_utilization: f64,
    /// Utilization of the downstream bottleneck.
    pub down_utilization: f64,
    /// Total events processed.
    pub events: u64,
    /// Packets delivered to clients.
    pub packets_downstream: u64,
    /// Packets delivered to the server.
    pub packets_upstream: u64,
    /// Captured packet trace (when `capture_trace` was set).
    pub trace: Option<fpsping_traffic::Trace>,
    /// Client-side estimator summary (when `estimate` was set): the
    /// hold-corrected RTT each client measured, directly comparable to
    /// the analytic `TotalDelay` quantile.
    pub estimator: Option<EstimatorSummary>,
}

/// The raw measurement state of one finished run: live [`DelayProbe`]s
/// plus counters, before summarization. The replication engine merges
/// these across independent runs; [`Measurements::into_report`] collapses
/// one into a [`SimReport`].
#[derive(Debug)]
pub struct Measurements {
    /// Client send → server arrival.
    pub upstream_delay: DelayProbe,
    /// Server tick → client arrival.
    pub downstream_delay: DelayProbe,
    /// Queueing delay at the aggregation node onto C (upstream).
    pub agg_wait: DelayProbe,
    /// Queueing delay of the first packet of each burst downstream.
    pub burst_wait: DelayProbe,
    /// Full application ping (includes server tick alignment).
    pub ping_rtt: DelayProbe,
    /// Utilization of the upstream bottleneck.
    pub up_utilization: f64,
    /// Utilization of the downstream bottleneck.
    pub down_utilization: f64,
    /// Total events processed.
    pub events: u64,
    /// Packets delivered to clients.
    pub packets_downstream: u64,
    /// Packets delivered to the server.
    pub packets_upstream: u64,
    /// Captured packet trace (when `capture_trace` was set).
    pub trace: Option<fpsping_traffic::Trace>,
    /// Client-side estimator summary (when `estimate` was set).
    pub estimator: Option<EstimatorSummary>,
}

impl Measurements {
    /// Summarizes every probe at the standard [`QUANTILE_LEVELS`].
    pub fn into_report(mut self) -> SimReport {
        let q = QUANTILE_LEVELS;
        SimReport {
            upstream_delay: self.upstream_delay.summarize(&q),
            downstream_delay: self.downstream_delay.summarize(&q),
            agg_wait: self.agg_wait.summarize(&q),
            burst_wait: self.burst_wait.summarize(&q),
            ping_rtt: self.ping_rtt.summarize(&q),
            up_utilization: self.up_utilization,
            down_utilization: self.down_utilization,
            events: self.events,
            packets_downstream: self.packets_downstream,
            packets_upstream: self.packets_upstream,
            trace: self.trace,
            estimator: self.estimator,
        }
    }
}

#[derive(Debug)]
enum Ev {
    ClientEmit(u32),
    ServerTick,
    LinkComplete(usize),
    Deliver(usize, Packet),
    BgEmit(usize),
}

/// The running simulation.
///
/// The event loop is allocation-free in steady state: packets are `Copy`
/// and live inline in the calendar's `Scheduled` entries (the calendar
/// itself is the event pool — preallocated, and `pop`/`push` recycle its
/// storage), link queues sit inline in their links behind enum dispatch,
/// and the per-tick burst scratch (`tick_order`/`tick_sizes`) is reused
/// across ticks. The only growth left is amortized: probe sample vectors
/// (absent in streaming mode) and the optional capture trace.
pub struct Network {
    cfg: NetworkConfig,
    links: Vec<Link>,
    calendar: CalendarKind<Ev>,
    seq: u64,
    now: SimTime,
    rng: BatchRng,
    // Probes.
    upstream_delay: DelayProbe,
    downstream_delay: DelayProbe,
    agg_wait: DelayProbe,
    burst_wait: DelayProbe,
    ping_rtt: DelayProbe,
    // Ping bookkeeping: the latest client packet that reached the server,
    // per client (send time, server-arrival time, estimator sequence).
    last_arrival: Vec<Option<AckInfo>>,
    // Client-side RTT estimators (None unless `cfg.estimate`).
    estimator: Option<EstimatorBank>,
    events: u64,
    packets_up: u64,
    packets_down: u64,
    captured: Vec<fpsping_traffic::PacketRecord>,
    // Reused per-tick scratch: burst emission order and per-packet sizes.
    tick_order: Vec<usize>,
    tick_sizes: Vec<f64>,
}

impl Network {
    fn uplink(&self, i: usize) -> usize {
        i
    }
    fn up_agg(&self) -> usize {
        self.cfg.n_clients
    }
    fn down_srv(&self) -> usize {
        self.cfg.n_clients + 1
    }
    fn downlink(&self, i: usize) -> usize {
        self.cfg.n_clients + 2 + i
    }

    /// Builds the network and seeds the initial events.
    pub fn new(mut cfg: NetworkConfig) -> Self {
        assert!(cfg.n_clients >= 1, "need at least one client");
        assert!(cfg.tick_ms > 0.0, "tick must be positive");
        if !cfg.stream_quantiles && cfg.n_clients > AUTO_STREAM_CLIENTS {
            fpsping_obs::warn_once(
                "sim.probe.auto_stream",
                &format!(
                    "n_clients = {} exceeds AUTO_STREAM_CLIENTS = {AUTO_STREAM_CLIENTS}; \
                     switching probes to streaming (P²) quantiles to bound memory",
                    cfg.n_clients
                ),
            );
            cfg.stream_quantiles = true;
        }
        if let Some(ov) = &cfg.client_overrides {
            assert_eq!(
                ov.len(),
                cfg.n_clients,
                "client_overrides length must equal n_clients"
            );
            assert!(
                ov.iter().all(|&(t, s)| t > 0.0 && s >= 1.0),
                "override values must be positive"
            );
        }
        // Exactly 2N + 2 links, fixed at construction — never per-packet.
        let mut links = Vec::with_capacity(2 * cfg.n_clients + 2);
        for _ in 0..cfg.n_clients {
            // lint:allow(unbounded_push): one uplink per client, fixed at construction
            links.push(Link::new(cfg.r_up_bps, SimTime::ZERO, Discipline::Fifo));
        }
        // lint:allow(unbounded_push): one aggregation link, fixed at construction
        links.push(Link::new(cfg.c_bps, SimTime::ZERO, cfg.discipline)); // up agg
                                                                         // lint:allow(unbounded_push): one server-side link, fixed at construction
        links.push(Link::new(cfg.c_bps, SimTime::ZERO, cfg.discipline)); // down srv
        for _ in 0..cfg.n_clients {
            // lint:allow(unbounded_push): one downlink per client, fixed at construction
            links.push(Link::new(cfg.r_down_bps, SimTime::ZERO, Discipline::Fifo));
        }
        let max_samples = cfg.max_samples;
        let thr = cfg.tail_thresholds_s.clone();
        let n = cfg.n_clients;
        let probe = || {
            if cfg.stream_quantiles {
                DelayProbe::streaming(&QUANTILE_LEVELS, &thr)
            } else {
                DelayProbe::new(max_samples, &thr)
            }
        };
        // The longest routine look-ahead any handler schedules: the next
        // emit one interval (or tick) out. Background exponential gaps
        // occasionally exceed it — the bucket backend spills those.
        let mut lookahead_ms = cfg.tick_ms.max(cfg.client_interval_ms.mean());
        if let Some(ov) = &cfg.client_overrides {
            for &(interval, _) in ov {
                lookahead_ms = lookahead_ms.max(interval);
            }
        }
        let horizon = SimTime::from_millis(4.0 * lookahead_ms);
        let mut net = Self {
            rng: BatchRng::seed_from_u64(cfg.seed),
            links,
            // Steady state holds at most a handful of events per link
            // (one completion or delivery in flight) plus one emit per
            // source; preallocate so the calendar never grows mid-run.
            calendar: cfg.calendar.build(4 * n + 64, horizon),
            seq: 0,
            now: SimTime::ZERO,
            upstream_delay: probe(),
            downstream_delay: probe(),
            agg_wait: probe(),
            burst_wait: probe(),
            ping_rtt: probe(),
            last_arrival: vec![None; n],
            estimator: if cfg.estimate {
                Some(EstimatorBank::new(n, &DEFAULT_CHECKPOINTS))
            } else {
                None
            },
            events: 0,
            packets_up: 0,
            packets_down: 0,
            captured: Vec::new(),
            tick_order: (0..n).collect(),
            tick_sizes: Vec::with_capacity(n),
            cfg,
        };
        // Clients start with random phases within one interval.
        for i in 0..net.cfg.n_clients {
            let phase = uniform01(&mut net.rng) * net.cfg.tick_ms;
            net.schedule(SimTime::from_millis(phase), Ev::ClientEmit(i as u32));
        }
        // Server ticks start at a random phase too.
        let tick_phase = uniform01(&mut net.rng) * net.cfg.tick_ms;
        net.schedule(SimTime::from_millis(tick_phase), Ev::ServerTick);
        // Background sources.
        if net.cfg.background.is_some() {
            let up = net.up_agg();
            let down = net.down_srv();
            net.schedule(SimTime::ZERO, Ev::BgEmit(up));
            net.schedule(SimTime::ZERO, Ev::BgEmit(down));
        }
        net
    }

    #[inline]
    fn schedule(&mut self, time: SimTime, ev: Ev) {
        self.seq += 1;
        self.calendar.push(Scheduled {
            time,
            seq: self.seq,
            ev,
        });
    }

    fn offer(&mut self, link: usize, p: Packet) {
        let action = self.links[link].offer(p, self.now);
        if let LinkAction::ScheduleCompletion(t) = action {
            self.schedule(t, Ev::LinkComplete(link));
        }
    }

    fn warm(&self) -> bool {
        self.now >= self.cfg.warmup
    }

    /// Runs to completion and reports.
    pub fn run(self) -> SimReport {
        self.run_measurements().into_report()
    }

    /// Runs to completion and returns the raw measurement state (live
    /// probes rather than summaries) — what the replication engine
    /// merges across independent runs.
    pub fn run_measurements(mut self) -> Measurements {
        let _wall = REPLICATION_WALL_US.start_timer();
        let _span = fpsping_obs::span("sim.replication");
        let end = self.cfg.duration;
        while let Some(s) = self.calendar.pop() {
            if s.time > end {
                break;
            }
            self.now = s.time;
            self.events += 1;
            match s.ev {
                Ev::ClientEmit(i) => self.on_client_emit(i),
                Ev::ServerTick => self.on_server_tick(),
                Ev::LinkComplete(l) => self.on_link_complete(l),
                Ev::Deliver(l, p) => self.on_deliver(l, p),
                Ev::BgEmit(l) => self.on_bg_emit(l),
            }
        }
        self.calendar.stats().flush_obs();
        EVENTS.add(self.events);
        PACKETS_UP.add(self.packets_up);
        PACKETS_DOWN.add(self.packets_down);
        let dur = (self.cfg.duration.saturating_sub(SimTime::ZERO)).as_secs();
        Measurements {
            upstream_delay: self.upstream_delay,
            downstream_delay: self.downstream_delay,
            agg_wait: self.agg_wait,
            burst_wait: self.burst_wait,
            ping_rtt: self.ping_rtt,
            up_utilization: self.links[self.cfg.n_clients].busy_time.as_secs() / dur,
            down_utilization: self.links[self.cfg.n_clients + 1].busy_time.as_secs() / dur,
            events: self.events,
            packets_downstream: self.packets_down,
            packets_upstream: self.packets_up,
            trace: if self.cfg.capture_trace {
                Some(fpsping_traffic::Trace::from_records(self.captured))
            } else {
                None
            },
            // Collapsing the bank also flushes the aggregate event counts
            // to the `traffic.estimator.*` obs counters (once per run,
            // like the calendar stats above).
            estimator: self.estimator.map(EstimatorBank::into_summary),
        }
    }

    fn capture(&mut self, direction: fpsping_traffic::Direction, p: &Packet) {
        if self.cfg.capture_trace && self.warm() {
            // lint:allow(unbounded_push): opt-in trace capture for short calibration runs — documented per-packet growth, off by default
            self.captured.push(fpsping_traffic::PacketRecord {
                time_ms: self.now.as_millis(),
                size_bytes: p.size_bytes,
                direction,
                flow: p.flow as u16,
            });
        }
    }

    fn on_client_emit(&mut self, i: u32) {
        let (size, next) = match &self.cfg.client_overrides {
            Some(ov) => {
                let (interval, bytes) = ov[i as usize];
                (bytes, interval)
            }
            None => (
                self.cfg.client_packet_bytes.sample(&mut self.rng).max(1.0),
                self.cfg.client_interval_ms.sample(&mut self.rng).max(0.05),
            ),
        };
        let mut p = Packet::game(size, i, self.now);
        p.enqueued = self.now;
        // Estimator tap (warm only, like the probes): register the ping
        // and stamp its sequence number for the server to echo.
        if self.now >= self.cfg.warmup {
            if let Some(bank) = &mut self.estimator {
                p.ping_seq = Some(bank.on_ping_sent(i as usize, self.now.as_millis()));
            }
        }
        let link = self.uplink(i as usize);
        self.offer(link, p);
        let t = self.now + SimTime::from_millis(next);
        self.schedule(t, Ev::ClientEmit(i));
    }

    fn on_server_tick(&mut self) {
        // One packet per client, optionally shuffled emission order. The
        // order and size buffers are reused across ticks — no per-burst
        // heap traffic. The Fisher–Yates index is drawn by rejection
        // sampling (`next_bounded`), not `next_u64() % (k+1)`: the modulo
        // draw over-weights low indices by up to 2⁻³² relatively, which
        // biases which client lands late in the burst.
        let n = self.cfg.n_clients;
        self.tick_order.clear();
        self.tick_order.extend(0..n);
        if self.cfg.shuffle_burst_order {
            for k in (1..n).rev() {
                let j = self.rng.next_bounded(k as u64 + 1) as usize;
                self.tick_order.swap(k, j);
            }
        }
        // Per-packet sizes according to the configured burst law.
        self.tick_sizes.clear();
        match self.cfg.burst_sizing {
            BurstSizing::IidPerPacket => {
                for _ in 0..n {
                    let size = self.cfg.server_packet_bytes.sample(&mut self.rng).max(1.0);
                    // lint:allow(unbounded_push): cleared each tick and capped at one entry per client
                    self.tick_sizes.push(size);
                }
            }
            BurstSizing::ErlangBurst { k } => {
                let mean_total = n as f64 * self.cfg.server_packet_bytes.mean();
                let total = fpsping_dist::Erlang::with_mean(k, mean_total)
                    .sample(&mut self.rng)
                    .max(n as f64);
                self.tick_sizes.resize(n, total / n as f64);
            }
            BurstSizing::BurstFromDistribution(ref d) => {
                let total = d.sample(&mut self.rng).max(n as f64);
                self.tick_sizes.resize(n, total / n as f64);
            }
        }
        for pos in 0..n {
            let client = self.tick_order[pos];
            let size = self.tick_sizes[pos];
            let mut p = Packet::game(size, client as u32, self.now);
            p.burst_position = pos as u32;
            p.ack_of = self.last_arrival[client].take();
            p.enqueued = self.now;
            let link = self.down_srv();
            self.offer(link, p);
        }
        let t = self.now + SimTime::from_millis(self.cfg.tick_ms);
        self.schedule(t, Ev::ServerTick);
    }

    fn on_bg_emit(&mut self, link: usize) {
        // lint:allow(unwrap): `Ev::BgEmit` is only ever scheduled when a background config exists
        let bg = self.cfg.background.expect("bg event without bg config");
        let p = Packet::elastic(bg.packet_bytes, self.now);
        self.offer(link, p);
        // Poisson arrivals at rate load·C/(8·bytes) per second.
        let rate = bg.load * self.cfg.c_bps / (8.0 * bg.packet_bytes);
        let dt = -uniform01(&mut self.rng).ln() / rate;
        let t = self.now + SimTime::from_secs(dt);
        self.schedule(t, Ev::BgEmit(link));
    }

    fn on_link_complete(&mut self, link: usize) {
        let (p, action) = self.links[link].complete(self.now);
        if let LinkAction::ScheduleCompletion(t) = action {
            self.schedule(t, Ev::LinkComplete(link));
        }
        let mut extra = self.links[link].propagation();
        // Artificial jitter on the access downlinks (reference [23]).
        if link >= self.cfg.n_clients + 2 {
            if let Some(jitter) = &self.cfg.downlink_jitter_ms {
                let j = jitter.sample(&mut self.rng).max(0.0);
                extra += SimTime::from_millis(j);
            }
        }
        if extra == SimTime::ZERO {
            self.on_deliver(link, p);
        } else {
            self.schedule(self.now + extra, Ev::Deliver(link, p));
        }
    }

    fn on_deliver(&mut self, link: usize, p: Packet) {
        let n = self.cfg.n_clients;
        if link < n {
            // Access uplink → aggregation node.
            if p.class == TrafficClass::Game {
                let mut q = p;
                q.enqueued = self.now;
                let agg = self.up_agg();
                // Record the aggregation wait when this packet finishes
                // service there (handled below via enqueued timestamp).
                self.offer(agg, q);
            }
        } else if link == self.up_agg() {
            // Arrived at the server.
            if p.class == TrafficClass::Game {
                self.packets_up += 1;
                self.capture(fpsping_traffic::Direction::ClientToServer, &p);
                if self.warm() {
                    let d = (self.now - p.created).as_secs();
                    self.upstream_delay.record(d);
                    // Aggregation queueing wait: service start minus
                    // enqueue at the aggregation node.
                    let ser = self.links[link].serialization(p.size_bytes);
                    let wait = (self.now.saturating_sub(ser)).saturating_sub(p.enqueued);
                    self.agg_wait.record(wait.as_secs());
                }
                self.last_arrival[p.flow as usize] = Some(AckInfo {
                    sent: p.created,
                    arrival: self.now,
                    seq: p.ping_seq,
                });
            }
        } else if link == self.down_srv() {
            // Bottleneck downstream → fan-out to the access downlink.
            if p.class == TrafficClass::Game {
                if p.burst_position == 0 && self.warm() {
                    let ser = self.links[link].serialization(p.size_bytes);
                    let wait = (self.now.saturating_sub(ser)).saturating_sub(p.created);
                    self.burst_wait.record(wait.as_secs());
                }
                let dest = self.downlink(p.flow as usize);
                let mut q = p;
                q.enqueued = self.now;
                self.offer(dest, q);
            }
            // Elastic packets terminate at the fan-out (they model cross
            // traffic on the bottleneck only).
        } else {
            // Access downlink → the client.
            debug_assert_eq!(p.class, TrafficClass::Game);
            self.packets_down += 1;
            self.capture(fpsping_traffic::Direction::ServerToClient, &p);
            if self.warm() {
                self.downstream_delay
                    .record((self.now - p.created).as_secs());
                if let Some(ack) = p.ack_of {
                    self.ping_rtt.record((self.now - ack.sent).as_secs());
                    if let Some(seq) = ack.seq {
                        // Hold time: the tick-alignment wait the server
                        // echoes so the client can subtract it — its
                        // corrected RTT is pure network delay, the
                        // model's quantity. `finite_guard` pins the tap
                        // in debug; the estimator boundary additionally
                        // counts-and-skips invalid values in release.
                        let hold_ms = finite(
                            "sim.estimator.hold_ms",
                            (p.created - ack.arrival).as_millis(),
                        );
                        let now_ms = finite("sim.estimator.now_ms", self.now.as_millis());
                        if let Some(bank) = &mut self.estimator {
                            bank.on_pong(p.flow as usize, seq, now_ms, hold_ms);
                        }
                    }
                }
            }
        }
    }
}

impl NetworkConfig {
    /// Convenience: build and run.
    pub fn run(self) -> SimReport {
        Network::new(self).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsping_dist::Deterministic;

    fn small_cfg(n: usize, ps: f64, t_ms: f64, seed: u64) -> NetworkConfig {
        let mut cfg =
            NetworkConfig::paper_scenario(n, Box::new(Deterministic::new(ps)), t_ms, seed);
        cfg.duration = SimTime::from_secs(30.0);
        cfg.warmup = SimTime::from_secs(1.0);
        cfg
    }

    #[test]
    fn utilization_matches_offered_load() {
        // N = 100, P_S = 125 B, T = 40 ms, C = 5 Mbps → ρ_d = 0.5 (eq. 37):
        // 8·100·125/(40·5000) = 0.5.
        let cfg = small_cfg(100, 125.0, 40.0, 1);
        let rep = cfg.run();
        assert!(
            (rep.down_utilization - 0.5).abs() < 0.02,
            "downstream utilization {}",
            rep.down_utilization
        );
        // ρ_u = ρ_d·P_C/P_S = 0.32.
        assert!(
            (rep.up_utilization - 0.32).abs() < 0.02,
            "upstream utilization {}",
            rep.up_utilization
        );
    }

    #[test]
    fn packet_conservation() {
        let cfg = small_cfg(10, 125.0, 40.0, 2);
        let duration_s = 30.0;
        let rep = cfg.run();
        // ~duration/tick bursts of 10 packets (minus warmup accounting).
        let expect = (duration_s * 1000.0 / 40.0) * 10.0;
        assert!(
            (rep.packets_downstream as f64 - expect).abs() < 0.03 * expect,
            "downstream packets {} vs ~{expect}",
            rep.packets_downstream
        );
        assert!(rep.packets_upstream > 0);
        assert!(rep.events > rep.packets_downstream);
    }

    #[test]
    fn calendar_backends_are_bit_identical() {
        // The exact-parity contract: heap and bucket calendars pop the
        // same (time, seq) total order, so whole-run results match bit
        // for bit — including under background traffic, whose
        // exponential gaps exercise the bucket backend's spill path.
        let mk = |calendar| {
            let mut cfg = small_cfg(12, 125.0, 40.0, 9);
            cfg.calendar = calendar;
            cfg.background = Some(BackgroundConfig {
                load: 0.3,
                packet_bytes: 1500.0,
            });
            cfg.run()
        };
        let heap = mk(Calendar::Heap);
        let bucket = mk(Calendar::Bucket);
        assert_eq!(heap.events, bucket.events);
        assert_eq!(heap.packets_downstream, bucket.packets_downstream);
        assert_eq!(
            heap.downstream_delay.mean_s.to_bits(),
            bucket.downstream_delay.mean_s.to_bits()
        );
        assert_eq!(
            heap.ping_rtt.mean_s.to_bits(),
            bucket.ping_rtt.mean_s.to_bits()
        );
        assert_eq!(
            heap.downstream_delay.quantiles,
            bucket.downstream_delay.quantiles
        );
    }

    #[test]
    fn auto_stream_switch_above_threshold() {
        // A config just above the threshold must not allocate raw sample
        // vectors; the report still carries quantiles (from P² markers).
        let mut cfg = small_cfg(AUTO_STREAM_CLIENTS + 1, 125.0, 40.0, 10);
        cfg.c_bps = 600_000_000.0; // keep the bottleneck uncongested
        cfg.duration = SimTime::from_secs(1.2);
        cfg.warmup = SimTime::from_secs(0.2);
        assert!(!cfg.stream_quantiles);
        let rep = cfg.run();
        assert!(rep.packets_upstream > 0);
        assert!(rep.upstream_delay.quantiles[0].1 > 0.0);
    }

    #[test]
    fn deterministic_same_seed_same_report() {
        let a = small_cfg(8, 125.0, 40.0, 33).run();
        let b = small_cfg(8, 125.0, 40.0, 33).run();
        assert_eq!(a.events, b.events);
        assert_eq!(a.downstream_delay.count, b.downstream_delay.count);
        assert!((a.downstream_delay.mean_s - b.downstream_delay.mean_s).abs() < 1e-15);
    }

    #[test]
    fn downstream_delay_has_floor_of_serializations() {
        // Minimum: 125 B at 5 Mbps (0.2 ms) + 125 B at 1.024 Mbps
        // (0.977 ms) ≈ 1.177 ms.
        let rep = small_cfg(4, 125.0, 40.0, 3).run();
        let floor = 125.0 * 8.0 / 5.0e6 + 125.0 * 8.0 / 1.024e6;
        assert!(
            rep.downstream_delay.quantiles[0].1 >= floor - 1e-9,
            "median {} below serialization floor {floor}",
            rep.downstream_delay.quantiles[0].1
        );
    }

    #[test]
    fn ping_includes_tick_alignment() {
        // The application ping waits for the next server tick, so its mean
        // exceeds upstream + downstream means by roughly T/2.
        let rep = small_cfg(4, 125.0, 40.0, 4).run();
        let sum = rep.upstream_delay.mean_s + rep.downstream_delay.mean_s;
        assert!(
            rep.ping_rtt.mean_s > sum + 0.25 * 0.040,
            "ping {} vs component sum {sum}",
            rep.ping_rtt.mean_s
        );
        assert!(rep.ping_rtt.mean_s < sum + 1.5 * 0.040);
    }

    #[test]
    fn estimator_tracks_hold_corrected_rtt() {
        // The client-side estimator subtracts the echoed tick-alignment
        // hold, so its mean tracks upstream + downstream (the model's
        // quantity) and sits well below the raw application ping.
        let mut cfg = small_cfg(4, 125.0, 40.0, 4);
        cfg.estimate = true;
        let rep = cfg.run();
        let est = rep.estimator.as_ref().expect("estimator was enabled");
        assert!(
            est.counters.matches > 1000,
            "matches {}",
            est.counters.matches
        );
        assert_eq!(est.counters.invalid_samples, 0);
        assert_eq!(est.players_with_samples, 4);
        let sum_ms = (rep.upstream_delay.mean_s + rep.downstream_delay.mean_s) * 1e3;
        assert!(
            (est.srtt_mean_ms - sum_ms).abs() < 0.2 * sum_ms,
            "srtt {} vs upstream+downstream {sum_ms}",
            est.srtt_mean_ms
        );
        // Raw ping carries ~T/2 of tick alignment the estimator removed.
        assert!(
            est.srtt_mean_ms < rep.ping_rtt.mean_s * 1e3 - 0.25 * 40.0,
            "srtt {} vs raw ping {}",
            est.srtt_mean_ms,
            rep.ping_rtt.mean_s * 1e3
        );
    }

    #[test]
    fn estimator_off_is_default_and_absent_from_report() {
        let rep = small_cfg(4, 125.0, 40.0, 4).run();
        assert!(rep.estimator.is_none());
    }

    #[test]
    fn burst_wait_grows_with_load() {
        // Erlang(9) sized server packets: scale N for two loads.
        let mk = |n: usize, seed| {
            let mut cfg = small_cfg(n, 125.0, 40.0, seed);
            cfg.burst_sizing = BurstSizing::ErlangBurst { k: 9 };
            cfg.duration = SimTime::from_secs(60.0);
            cfg.run()
        };
        let low = mk(50, 5); // ρ_d = 0.25
        let high = mk(175, 6); // ρ_d = 0.875
        assert!(high.burst_wait.mean_s > 5.0 * low.burst_wait.mean_s.max(1e-7));
    }

    #[test]
    fn background_elastic_raises_game_delay_under_fifo() {
        let mut with_bg = small_cfg(20, 125.0, 40.0, 7);
        with_bg.background = Some(BackgroundConfig {
            load: 0.45,
            packet_bytes: 1500.0,
        });
        let with_bg = with_bg.run();
        let without = small_cfg(20, 125.0, 40.0, 7).run();
        assert!(
            with_bg.downstream_delay.mean_s > without.downstream_delay.mean_s,
            "FIFO elastic cross traffic must hurt: {} vs {}",
            with_bg.downstream_delay.mean_s,
            without.downstream_delay.mean_s
        );
    }

    #[test]
    fn heterogeneous_clients_offer_summed_load() {
        // Eq. (13)'s setting: two client classes; upstream utilization is
        // the sum of the per-class loads.
        let mut cfg = small_cfg(30, 125.0, 40.0, 51);
        let mut ov: Vec<(f64, f64)> = Vec::new();
        ov.extend(std::iter::repeat_n((40.0, 80.0), 20)); // ρ = 20·16k/5M
        ov.extend(std::iter::repeat_n((20.0, 200.0), 10)); // ρ = 10·80k/5M
        cfg.client_overrides = Some(ov);
        let rep = cfg.run();
        let expect = 20.0 * 80.0 * 8.0 / 0.040 / 5e6 + 10.0 * 200.0 * 8.0 / 0.020 / 5e6;
        assert!(
            (rep.up_utilization - expect).abs() < 0.02,
            "up util {} vs expected {expect}",
            rep.up_utilization
        );
    }

    #[test]
    #[should_panic(expected = "client_overrides length")]
    fn overrides_length_is_checked() {
        let mut cfg = small_cfg(5, 125.0, 40.0, 52);
        cfg.client_overrides = Some(vec![(40.0, 80.0); 3]);
        let _ = cfg.run();
    }

    #[test]
    fn captured_trace_feeds_the_analysis_pipeline() {
        // The simulator's capture must reproduce the configured traffic
        // when run through the §2.2 burst-detection estimators.
        let mut cfg = small_cfg(12, 150.0, 40.0, 41);
        cfg.capture_trace = true;
        cfg.duration = SimTime::from_secs(40.0);
        let rep = cfg.run();
        let trace = rep.trace.expect("capture requested");
        let stats = fpsping_traffic::TraceStats::compute(&trace, 5.0);
        // ~ (40-2)s / 40ms bursts of 12 × 150 B.
        assert!(
            (900..=980).contains(&stats.n_bursts),
            "bursts {}",
            stats.n_bursts
        );
        assert!((stats.server_packet.0 - 150.0).abs() < 1e-6);
        assert!((stats.burst_iat.0 - 40.0).abs() < 0.2);
        assert!(
            stats.burst_iat.1 < 0.02,
            "burst IAT CoV {}",
            stats.burst_iat.1
        );
        assert!((stats.burst_size.0 - 1800.0).abs() < 10.0);
        assert!((stats.client_packet.0 - 80.0).abs() < 1e-6);
    }

    #[test]
    fn downlink_jitter_inflates_measured_iat_cov() {
        // Reference [23] injected jitter and the paper warns it distorts
        // inter-arrival measurements; reproduce the distortion.
        let run = |jitter: Option<Box<dyn fpsping_dist::Distribution>>| {
            let mut cfg = small_cfg(12, 150.0, 40.0, 43);
            cfg.capture_trace = true;
            cfg.downlink_jitter_ms = jitter;
            cfg.duration = SimTime::from_secs(40.0);
            let rep = cfg.run();
            fpsping_traffic::TraceStats::compute(&rep.trace.unwrap(), 5.0)
        };
        let clean = run(None);
        // Bounded jitter below the burst-detection gap, so bursts shift
        // and smear but never split (unbounded jitter additionally splits
        // bursts — an even stronger distortion).
        let jittered = run(Some(Box::new(fpsping_dist::Uniform::new(0.0, 3.0))));
        assert!(
            jittered.burst_iat.1 > 3.0 * clean.burst_iat.1.max(1e-4),
            "jitter must inflate burst IAT CoV: {} vs {}",
            jittered.burst_iat.1,
            clean.burst_iat.1
        );
        // Mean IAT is essentially unchanged (jitter delays, it does not thin).
        assert!((jittered.burst_iat.0 - clean.burst_iat.0).abs() < 1.0);
    }

    #[test]
    fn pareto_bursts_heavier_tail_than_erlang_at_same_mean() {
        // The sensitivity case of the paper's concluding remarks: swap the
        // Erlang burst law for a heavy-tailed Pareto with the same mean;
        // the deep downstream quantile must get substantially worse.
        let mk = |sizing: BurstSizing, seed| {
            let mut cfg = small_cfg(100, 125.0, 40.0, seed);
            cfg.burst_sizing = sizing;
            cfg.duration = SimTime::from_secs(90.0);
            cfg.run()
        };
        let mean_total = 100.0 * 125.0;
        let erl = mk(BurstSizing::ErlangBurst { k: 9 }, 21);
        let par = mk(
            BurstSizing::BurstFromDistribution(Box::new(fpsping_dist::Pareto::with_mean(
                mean_total, 2.2,
            ))),
            21,
        );
        let q = |rep: &SimReport| {
            rep.downstream_delay
                .quantiles
                .iter()
                .find(|(p, _)| (*p - 0.999).abs() < 1e-9)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(
            q(&par) > 1.5 * q(&erl),
            "Pareto p99.9 {} should far exceed Erlang {}",
            q(&par),
            q(&erl)
        );
    }

    #[test]
    fn wfq_gives_game_class_its_reserved_rate() {
        // Section 1 / §4 remark: under WFQ the gaming class is guaranteed
        // its capacity share. With the elastic class saturated beyond its
        // own share, game traffic behaves as if it owned a dedicated link
        // of rate w·C — so its delays must match a no-background topology
        // with C' = w·C, and beat FIFO at the same total load by a wide
        // margin.
        let game_weight = 0.4;
        let bg = Some(BackgroundConfig {
            load: 0.7,
            packet_bytes: 1500.0,
        });
        let mk = |disc, bg: Option<BackgroundConfig>, c_bps: f64, seed| {
            let mut cfg = small_cfg(50, 125.0, 40.0, seed);
            cfg.c_bps = c_bps;
            cfg.discipline = disc;
            cfg.background = bg;
            cfg.run()
        };
        // Reference: dedicated link at the reserved rate.
        let reduced = mk(Discipline::Fifo, None, game_weight * 5_000_000.0, 31);
        let wfq = mk(Discipline::Wfq { game_weight }, bg, 5_000_000.0, 31);
        let fifo = mk(Discipline::Fifo, bg, 5_000_000.0, 31);
        let ratio = wfq.downstream_delay.mean_s / reduced.downstream_delay.mean_s;
        assert!(
            (0.7..1.35).contains(&ratio),
            "WFQ mean {} vs reserved-rate baseline {} (ratio {ratio})",
            wfq.downstream_delay.mean_s,
            reduced.downstream_delay.mean_s
        );
        // FIFO at total load 0.95 is far worse than WFQ's isolated class.
        assert!(
            fifo.downstream_delay.mean_s > 1.5 * wfq.downstream_delay.mean_s,
            "FIFO {} vs WFQ {}",
            fifo.downstream_delay.mean_s,
            wfq.downstream_delay.mean_s
        );
        // ... and WFQ remains work-conserving for the elastic class.
        assert!(wfq.down_utilization > 0.8);
    }

    #[test]
    fn priority_shields_game_traffic_from_background() {
        let mk = |disc, seed| {
            let mut cfg = small_cfg(20, 125.0, 40.0, seed);
            cfg.discipline = disc;
            cfg.background = Some(BackgroundConfig {
                load: 0.45,
                packet_bytes: 1500.0,
            });
            cfg.run()
        };
        let fifo = mk(Discipline::Fifo, 8);
        let prio = mk(Discipline::Priority, 8);
        assert!(
            prio.downstream_delay.mean_s < fifo.downstream_delay.mean_s,
            "priority {} should beat FIFO {}",
            prio.downstream_delay.mean_s,
            fifo.downstream_delay.mean_s
        );
    }
}
