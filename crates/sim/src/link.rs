//! A store-and-forward output link: one server (the line) plus a queue
//! under a configurable discipline.

use crate::packet::Packet;
use crate::scheduler::{Discipline, Scheduler, SchedulerKind};
use crate::time::SimTime;

/// A transmission link with rate, propagation delay and an output queue.
///
/// The queue is a [`SchedulerKind`] enum stored inline — discipline
/// dispatch in the per-packet hot path is a match, not a virtual call,
/// and building a link performs no queue allocation.
#[derive(Debug)]
pub struct Link {
    rate_bps: f64,
    propagation: SimTime,
    queue: SchedulerKind,
    in_service: Option<Packet>,
    /// Running counters.
    pub packets_sent: u64,
    /// Total bytes that completed service.
    pub bytes_sent: f64,
    /// Total busy time (for utilization accounting).
    pub busy_time: SimTime,
}

/// What [`Link::offer`] / [`Link::complete`] tell the engine to do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkAction {
    /// Schedule a service-completion event at the given time.
    ScheduleCompletion(SimTime),
    /// Nothing to schedule (link already busy, or queue empty).
    None,
}

impl Link {
    /// Builds a link with the given line rate, propagation delay and
    /// discipline.
    pub fn new(rate_bps: f64, propagation: SimTime, discipline: Discipline) -> Self {
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "Link: rate must be positive"
        );
        Self {
            rate_bps,
            propagation,
            queue: discipline.build(),
            in_service: None,
            packets_sent: 0,
            bytes_sent: 0.0,
            busy_time: SimTime::ZERO,
        }
    }

    /// Line rate (bit/s).
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimTime {
        self.propagation
    }

    /// Serialization time of `bytes` on this link.
    pub fn serialization(&self, bytes: f64) -> SimTime {
        SimTime::serialization(bytes, self.rate_bps)
    }

    /// Queue length excluding the packet in service.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Queued bytes excluding the packet in service.
    pub fn backlog_bytes(&self) -> f64 {
        self.queue.backlog_bytes()
    }

    /// Whether a packet is currently being transmitted.
    pub fn is_busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Offers a packet at time `now`. If the line is idle the packet goes
    /// straight into service and a completion must be scheduled; otherwise
    /// it queues.
    pub fn offer(&mut self, p: Packet, now: SimTime) -> LinkAction {
        if self.in_service.is_none() {
            let done = now + self.serialization(p.size_bytes);
            self.busy_time += self.serialization(p.size_bytes);
            self.in_service = Some(p);
            LinkAction::ScheduleCompletion(done)
        } else {
            self.queue.enqueue(p);
            LinkAction::None
        }
    }

    /// Completes the in-service packet at time `now`; returns the
    /// delivered packet (after propagation, i.e. the caller should treat
    /// `now + propagation` as the arrival instant) and the next action.
    pub fn complete(&mut self, now: SimTime) -> (Packet, LinkAction) {
        let done = self
            .in_service
            .take()
            // lint:allow(unwrap): the event loop only schedules a completion while a packet is in service
            .expect("complete called on idle link");
        self.packets_sent += 1;
        self.bytes_sent += done.size_bytes;
        let action = match self.queue.dequeue() {
            Some(next) => {
                let finish = now + self.serialization(next.size_bytes);
                self.busy_time += self.serialization(next.size_bytes);
                self.in_service = Some(next);
                LinkAction::ScheduleCompletion(finish)
            }
            None => LinkAction::None,
        };
        (done, action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TrafficClass;

    #[test]
    fn idle_link_serves_immediately() {
        let mut l = Link::new(1_000_000.0, SimTime::ZERO, Discipline::Fifo);
        let p = Packet::game(125.0, 0, SimTime::ZERO);
        // 125 B at 1 Mbps = 1 ms.
        match l.offer(p, SimTime::ZERO) {
            LinkAction::ScheduleCompletion(t) => assert_eq!(t, SimTime::from_millis(1.0)),
            other => panic!("expected completion, got {other:?}"),
        }
        assert!(l.is_busy());
        assert_eq!(l.queue_len(), 0);
    }

    #[test]
    fn busy_link_queues() {
        let mut l = Link::new(1_000_000.0, SimTime::ZERO, Discipline::Fifo);
        let _ = l.offer(Packet::game(125.0, 0, SimTime::ZERO), SimTime::ZERO);
        assert_eq!(
            l.offer(Packet::game(125.0, 1, SimTime::ZERO), SimTime::ZERO),
            LinkAction::None
        );
        assert_eq!(l.queue_len(), 1);
        // Completion pulls the queued packet into service.
        let (done, action) = l.complete(SimTime::from_millis(1.0));
        assert_eq!(done.flow, 0);
        match action {
            LinkAction::ScheduleCompletion(t) => assert_eq!(t, SimTime::from_millis(2.0)),
            other => panic!("expected follow-up completion, got {other:?}"),
        }
        let (done2, action2) = l.complete(SimTime::from_millis(2.0));
        assert_eq!(done2.flow, 1);
        assert_eq!(action2, LinkAction::None);
        assert!(!l.is_busy());
        assert_eq!(l.packets_sent, 2);
        assert_eq!(l.bytes_sent, 250.0);
    }

    #[test]
    fn priority_link_reorders() {
        let mut l = Link::new(1_000_000.0, SimTime::ZERO, Discipline::Priority);
        let _ = l.offer(Packet::elastic(1500.0, SimTime::ZERO), SimTime::ZERO);
        let _ = l.offer(Packet::elastic(1500.0, SimTime::ZERO), SimTime::ZERO);
        let _ = l.offer(Packet::game(100.0, 9, SimTime::ZERO), SimTime::ZERO);
        // The elastic packet in service is not preempted...
        let (first, _) = l.complete(SimTime::from_millis(12.0));
        assert_eq!(first.class, TrafficClass::Elastic);
        // ...but the game packet jumps the remaining elastic one.
        let (second, _) = l.complete(SimTime::from_millis(12.8));
        assert_eq!(second.flow, 9);
    }

    #[test]
    fn busy_time_tracks_utilization() {
        let mut l = Link::new(1_000_000.0, SimTime::ZERO, Discipline::Fifo);
        let _ = l.offer(Packet::game(250.0, 0, SimTime::ZERO), SimTime::ZERO);
        let _ = l.complete(SimTime::from_millis(2.0));
        assert_eq!(l.busy_time, SimTime::from_millis(2.0));
    }

    #[test]
    #[should_panic(expected = "idle link")]
    fn completing_idle_link_panics() {
        let mut l = Link::new(1e6, SimTime::ZERO, Discipline::Fifo);
        let _ = l.complete(SimTime::ZERO);
    }
}
