//! Output-link service disciplines: FIFO, non-preemptive head-of-line
//! priority, and weighted fair queuing.
//!
//! Section 1 of the paper motivates the whole study with this triad: FIFO
//! lets elastic traffic jeopardize gaming delay, strict priority can
//! starve the elastic class, WFQ reserves a minimum rate for gaming. The
//! analytic model then studies the gaming queue in isolation — and the
//! simulator can verify exactly when that isolation assumption holds.

use crate::packet::{Packet, TrafficClass};
use std::collections::VecDeque;

/// A service discipline: how an output link picks the next packet.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Enqueues a packet.
    fn enqueue(&mut self, p: Packet);
    /// Picks the next packet to serve (non-preemptive: called only when
    /// the link goes idle).
    fn dequeue(&mut self) -> Option<Packet>;
    /// Packets currently queued.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Queued bytes.
    fn backlog_bytes(&self) -> f64;
}

/// Plain first-in-first-out across both classes.
#[derive(Debug, Default)]
pub struct Fifo {
    q: VecDeque<Packet>,
    bytes: f64,
}

impl Fifo {
    /// Empty FIFO queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Fifo {
    fn enqueue(&mut self, p: Packet) {
        self.bytes += p.size_bytes;
        self.q.push_back(p);
    }

    fn dequeue(&mut self) -> Option<Packet> {
        let p = self.q.pop_front();
        if let Some(p) = &p {
            self.bytes -= p.size_bytes;
        }
        p
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn backlog_bytes(&self) -> f64 {
        self.bytes
    }
}

/// Non-preemptive head-of-line priority: `Game` always before `Elastic`;
/// a packet in service is never interrupted.
#[derive(Debug, Default)]
pub struct HolPriority {
    game: VecDeque<Packet>,
    elastic: VecDeque<Packet>,
    bytes: f64,
}

impl HolPriority {
    /// Empty priority queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for HolPriority {
    fn enqueue(&mut self, p: Packet) {
        self.bytes += p.size_bytes;
        match p.class {
            TrafficClass::Game => self.game.push_back(p),
            TrafficClass::Elastic => self.elastic.push_back(p),
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        let p = self.game.pop_front().or_else(|| self.elastic.pop_front());
        if let Some(p) = &p {
            self.bytes -= p.size_bytes;
        }
        p
    }

    fn len(&self) -> usize {
        self.game.len() + self.elastic.len()
    }

    fn backlog_bytes(&self) -> f64 {
        self.bytes
    }
}

/// Packet-level weighted fair queuing (virtual finish times over the two
/// classes), the scheduler the paper assumes reserves the gaming class
/// its capacity share.
#[derive(Debug)]
pub struct Wfq {
    game: VecDeque<(f64, Packet)>,
    elastic: VecDeque<(f64, Packet)>,
    /// Weight of the game class in (0, 1); elastic gets the complement.
    game_weight: f64,
    virtual_time: f64,
    last_finish_game: f64,
    last_finish_elastic: f64,
    bytes: f64,
}

impl Wfq {
    /// WFQ with the given game-class weight in (0, 1).
    pub fn new(game_weight: f64) -> Self {
        assert!(
            game_weight > 0.0 && game_weight < 1.0,
            "Wfq: game weight must lie strictly in (0,1), got {game_weight}"
        );
        Self {
            game: VecDeque::new(),
            elastic: VecDeque::new(),
            game_weight,
            virtual_time: 0.0,
            last_finish_game: 0.0,
            last_finish_elastic: 0.0,
            bytes: 0.0,
        }
    }
}

impl Scheduler for Wfq {
    fn enqueue(&mut self, p: Packet) {
        self.bytes += p.size_bytes;
        // Start-time fair queuing bookkeeping: finish = max(V, last) +
        // size/weight.
        match p.class {
            TrafficClass::Game => {
                let start = self.virtual_time.max(self.last_finish_game);
                let finish = start + p.size_bytes / self.game_weight;
                self.last_finish_game = finish;
                self.game.push_back((finish, p));
            }
            TrafficClass::Elastic => {
                let start = self.virtual_time.max(self.last_finish_elastic);
                let finish = start + p.size_bytes / (1.0 - self.game_weight);
                self.last_finish_elastic = finish;
                self.elastic.push_back((finish, p));
            }
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        let pick_game = match (self.game.front(), self.elastic.front()) {
            (Some((fg, _)), Some((fe, _))) => fg <= fe,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (finish, p) = if pick_game {
            // lint:allow(unwrap): `pick_game` is only true when `game.front()` matched `Some` above
            self.game.pop_front().unwrap()
        } else {
            // lint:allow(unwrap): this branch is only reached when `elastic.front()` matched `Some` above
            self.elastic.pop_front().unwrap()
        };
        self.virtual_time = self.virtual_time.max(finish);
        self.bytes -= p.size_bytes;
        Some(p)
    }

    fn len(&self) -> usize {
        self.game.len() + self.elastic.len()
    }

    fn backlog_bytes(&self) -> f64 {
        self.bytes
    }
}

/// Which discipline a link should use (config-level enum).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discipline {
    /// First-in first-out.
    Fifo,
    /// Non-preemptive head-of-line priority for the game class.
    Priority,
    /// Weighted fair queuing with this game-class weight.
    Wfq {
        /// Share of the link reserved for the game class, in (0, 1).
        game_weight: f64,
    },
}

/// A scheduler built from a [`Discipline`], dispatched by enum match.
///
/// The event loop calls `enqueue`/`dequeue` once per packet per hop; with
/// a `Box<dyn Scheduler>` those were virtual calls through a fat pointer.
/// The closed set of disciplines makes an enum the natural representation:
/// the match compiles to a jump the branch predictor resolves, the
/// scheduler lives inline in its [`crate::link::Link`] (no separate heap
/// allocation), and the compiler can inline the per-variant bodies into
/// the hot loop. [`SchedulerKind`] implements [`Scheduler`], so code
/// written against the trait — including everything that called the old
/// boxed builder — compiles unchanged.
///
/// The event calendar uses the same closed-set enum-dispatch pattern:
/// see [`crate::calendar::CalendarKind`].
#[derive(Debug)]
pub enum SchedulerKind {
    /// First-in first-out.
    Fifo(Fifo),
    /// Head-of-line priority.
    Priority(HolPriority),
    /// Weighted fair queuing.
    Wfq(Wfq),
}

impl Scheduler for SchedulerKind {
    #[inline]
    fn enqueue(&mut self, p: Packet) {
        match self {
            SchedulerKind::Fifo(q) => q.enqueue(p),
            SchedulerKind::Priority(q) => q.enqueue(p),
            SchedulerKind::Wfq(q) => q.enqueue(p),
        }
    }

    #[inline]
    fn dequeue(&mut self) -> Option<Packet> {
        match self {
            SchedulerKind::Fifo(q) => q.dequeue(),
            SchedulerKind::Priority(q) => q.dequeue(),
            SchedulerKind::Wfq(q) => q.dequeue(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            SchedulerKind::Fifo(q) => q.len(),
            SchedulerKind::Priority(q) => q.len(),
            SchedulerKind::Wfq(q) => q.len(),
        }
    }

    #[inline]
    fn backlog_bytes(&self) -> f64 {
        match self {
            SchedulerKind::Fifo(q) => q.backlog_bytes(),
            SchedulerKind::Priority(q) => q.backlog_bytes(),
            SchedulerKind::Wfq(q) => q.backlog_bytes(),
        }
    }
}

impl Discipline {
    /// Instantiates the scheduler (enum dispatch; see [`SchedulerKind`]).
    pub fn build(self) -> SchedulerKind {
        match self {
            Discipline::Fifo => SchedulerKind::Fifo(Fifo::new()),
            Discipline::Priority => SchedulerKind::Priority(HolPriority::new()),
            Discipline::Wfq { game_weight } => SchedulerKind::Wfq(Wfq::new(game_weight)),
        }
    }

    /// Instantiates the scheduler behind a trait object, for callers that
    /// genuinely need dynamic dispatch (none of the in-tree ones do).
    pub fn build_boxed(self) -> Box<dyn Scheduler> {
        match self {
            Discipline::Fifo => Box::new(Fifo::new()),
            Discipline::Priority => Box::new(HolPriority::new()),
            Discipline::Wfq { game_weight } => Box::new(Wfq::new(game_weight)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn game(n: u32) -> Packet {
        Packet::game(100.0, n, SimTime::ZERO)
    }

    fn elastic() -> Packet {
        Packet::elastic(1500.0, SimTime::ZERO)
    }

    #[test]
    fn fifo_preserves_order_across_classes() {
        let mut q = Fifo::new();
        q.enqueue(elastic());
        q.enqueue(game(1));
        q.enqueue(game(2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.backlog_bytes(), 1700.0);
        assert_eq!(q.dequeue().unwrap().class, TrafficClass::Elastic);
        assert_eq!(q.dequeue().unwrap().flow, 1);
        assert_eq!(q.dequeue().unwrap().flow, 2);
        assert!(q.dequeue().is_none());
        assert_eq!(q.backlog_bytes(), 0.0);
    }

    #[test]
    fn priority_serves_game_first() {
        let mut q = HolPriority::new();
        q.enqueue(elastic());
        q.enqueue(elastic());
        q.enqueue(game(7));
        assert_eq!(q.dequeue().unwrap().flow, 7);
        assert_eq!(q.dequeue().unwrap().class, TrafficClass::Elastic);
    }

    #[test]
    fn priority_keeps_fifo_within_class() {
        let mut q = HolPriority::new();
        q.enqueue(game(1));
        q.enqueue(game(2));
        assert_eq!(q.dequeue().unwrap().flow, 1);
        assert_eq!(q.dequeue().unwrap().flow, 2);
    }

    #[test]
    fn wfq_interleaves_by_weight() {
        // Equal sizes, game weight 0.5: strict alternation once both
        // backlogs exist.
        let mut q = Wfq::new(0.5);
        for i in 0..4 {
            q.enqueue(Packet::game(1000.0, i, SimTime::ZERO));
            q.enqueue(Packet::elastic(1000.0, SimTime::ZERO));
        }
        let mut games = 0;
        let mut elastics = 0;
        for _ in 0..4 {
            match q.dequeue().unwrap().class {
                TrafficClass::Game => games += 1,
                TrafficClass::Elastic => elastics += 1,
            }
        }
        assert_eq!(games, 2);
        assert_eq!(elastics, 2);
    }

    #[test]
    fn wfq_favours_heavier_weight() {
        // Game weight 0.8: among the first 10 departures of a saturated
        // mixed backlog of equal-size packets, game should get ~8.
        let mut q = Wfq::new(0.8);
        for i in 0..20 {
            q.enqueue(Packet::game(1000.0, i, SimTime::ZERO));
            q.enqueue(Packet::elastic(1000.0, SimTime::ZERO));
        }
        let games = (0..10)
            .filter(|_| q.dequeue().unwrap().class == TrafficClass::Game)
            .count();
        assert!(
            (7..=9).contains(&games),
            "game departures in first 10: {games}"
        );
    }

    #[test]
    fn wfq_is_work_conserving() {
        let mut q = Wfq::new(0.3);
        q.enqueue(elastic());
        // Only elastic queued → it must be served despite low weight.
        assert_eq!(q.dequeue().unwrap().class, TrafficClass::Elastic);
        assert!(q.dequeue().is_none());
    }

    #[test]
    #[should_panic(expected = "strictly in (0,1)")]
    fn wfq_rejects_degenerate_weight() {
        Wfq::new(1.0);
    }

    #[test]
    fn discipline_builder() {
        assert_eq!(Discipline::Fifo.build().len(), 0);
        assert_eq!(Discipline::Priority.build().len(), 0);
        assert_eq!(Discipline::Wfq { game_weight: 0.6 }.build().len(), 0);
    }

    #[test]
    fn enum_and_boxed_builders_serve_identically() {
        for disc in [
            Discipline::Fifo,
            Discipline::Priority,
            Discipline::Wfq { game_weight: 0.6 },
        ] {
            let mut by_enum = disc.build();
            let mut by_box = disc.build_boxed();
            for i in 0..6 {
                let p = if i % 2 == 0 {
                    Packet::game(100.0 + i as f64, i, SimTime::ZERO)
                } else {
                    Packet::elastic(1500.0, SimTime::ZERO)
                };
                by_enum.enqueue(p);
                by_box.enqueue(p);
            }
            assert_eq!(by_enum.len(), by_box.len());
            assert_eq!(by_enum.backlog_bytes(), by_box.backlog_bytes());
            loop {
                let (a, b) = (by_enum.dequeue(), by_box.dequeue());
                assert_eq!(a, b, "{disc:?}");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
