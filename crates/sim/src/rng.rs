//! Batched random-number generation for the event loop.
//!
//! Every stochastic decision in the simulator — client phases, packet
//! sizes, burst shuffles, background inter-arrivals, jitter — draws from
//! one `StdRng` through the object-safe [`RngCore`] interface, so each
//! draw is a virtual call into the generator state. [`BatchRng`] amortizes
//! that: it steps the underlying generator a block at a time into a local
//! buffer and serves draws from the buffer, which the compiler can keep in
//! cache and bounds-check-eliminate.
//!
//! **Sequence exactness is the contract.** The vendored `StdRng` consumes
//! exactly one xoshiro step per `next_u64`, one per `next_u32` (keeping
//! the high 32 bits), and one per 8-byte chunk of `fill_bytes`. `BatchRng`
//! reproduces that accounting from its prefetched block, so for any
//! interleaving of the three methods it yields bit-identical values to the
//! raw generator — the simulator's golden parity tests depend on this.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of 64-bit outputs prefetched per refill.
const BATCH: usize = 64;

/// A [`StdRng`] wrapped with block prefetching. See the module docs for
/// the exactness contract.
#[derive(Debug, Clone)]
pub struct BatchRng {
    inner: StdRng,
    buf: [u64; BATCH],
    /// Next unserved index into `buf`; `BATCH` means the buffer is spent.
    pos: usize,
}

impl BatchRng {
    /// Seeds the underlying generator exactly like
    /// `StdRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            buf: [0; BATCH],
            pos: BATCH,
        }
    }

    #[inline]
    fn take(&mut self) -> u64 {
        if self.pos == BATCH {
            for slot in &mut self.buf {
                *slot = self.inner.next_u64();
            }
            self.pos = 0;
        }
        let x = self.buf[self.pos];
        self.pos += 1;
        x
    }
}

impl RngCore for BatchRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // StdRng's next_u32 keeps the high half of one step.
        (self.take() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.take()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // StdRng consumes one step per 8-byte chunk.
        for chunk in dest.chunks_mut(8) {
            let x = self.take();
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_raw_stdrng_for_any_call_interleaving() {
        let mut raw = StdRng::seed_from_u64(0xFEED);
        let mut batched = BatchRng::seed_from_u64(0xFEED);
        // A deterministic but irregular interleaving of the three methods,
        // long enough to cross several refill boundaries.
        for i in 0..1000u64 {
            match (i * i + i / 3) % 4 {
                0 | 3 => assert_eq!(raw.next_u64(), batched.next_u64(), "i={i}"),
                1 => assert_eq!(raw.next_u32(), batched.next_u32(), "i={i}"),
                _ => {
                    let n = 1 + (i as usize % 21);
                    let (mut a, mut b) = (vec![0u8; n], vec![0u8; n]);
                    raw.fill_bytes(&mut a);
                    batched.fill_bytes(&mut b);
                    assert_eq!(a, b, "i={i} n={n}");
                }
            }
        }
    }

    #[test]
    fn uniform01_stream_is_identical() {
        let mut raw = StdRng::seed_from_u64(42);
        let mut batched = BatchRng::seed_from_u64(42);
        for _ in 0..500 {
            let a = fpsping_dist::uniform01(&mut raw);
            let b = fpsping_dist::uniform01(&mut batched);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
