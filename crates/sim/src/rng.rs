//! Batched random-number generation for the event loop.
//!
//! Every stochastic decision in the simulator — client phases, packet
//! sizes, burst shuffles, background inter-arrivals, jitter — draws from
//! one `StdRng` through the object-safe [`RngCore`] interface, so each
//! draw is a virtual call into the generator state. [`BatchRng`] amortizes
//! that: it steps the underlying generator a block at a time into a local
//! buffer and serves draws from the buffer, which the compiler can keep in
//! cache and bounds-check-eliminate.
//!
//! **Sequence exactness is the contract.** The vendored `StdRng` consumes
//! exactly one xoshiro step per `next_u64`, one per `next_u32` (keeping
//! the high 32 bits), and one per 8-byte chunk of `fill_bytes`. `BatchRng`
//! reproduces that accounting from its prefetched block, so for any
//! interleaving of the three methods it yields bit-identical values to the
//! raw generator — the simulator's golden parity tests depend on this.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of 64-bit outputs prefetched per refill.
const BATCH: usize = 64;

/// A [`StdRng`] wrapped with block prefetching. See the module docs for
/// the exactness contract.
#[derive(Debug, Clone)]
pub struct BatchRng {
    inner: StdRng,
    buf: [u64; BATCH],
    /// Next unserved index into `buf`; `BATCH` means the buffer is spent.
    pos: usize,
}

impl BatchRng {
    /// Seeds the underlying generator exactly like
    /// `StdRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            buf: [0; BATCH],
            pos: BATCH,
        }
    }

    #[inline]
    fn take(&mut self) -> u64 {
        if self.pos == BATCH {
            for slot in &mut self.buf {
                *slot = self.inner.next_u64();
            }
            self.pos = 0;
        }
        let x = self.buf[self.pos];
        self.pos += 1;
        x
    }

    /// A uniform draw from `0..bound` without modulo bias, by Lemire's
    /// multiply-shift rejection method: map one 64-bit word onto
    /// `[0, bound)` with a 128-bit multiply and reject the (at most
    /// `bound - 1` out of 2⁶⁴) low-word values that would make some
    /// residues one draw heavier than others. Consumes one generator step
    /// per accepted or rejected word; rejection probability is below
    /// `bound / 2⁶⁴`, so for simulator-sized bounds it almost never loops.
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded: bound must be positive");
        let mut m = u128::from(self.take()) * u128::from(bound);
        if (m as u64) < bound {
            // 2⁶⁴ mod bound low-word values are over-represented; reject
            // them so every residue receives exactly ⌊2⁶⁴/bound⌋ words.
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = u128::from(self.take()) * u128::from(bound);
            }
        }
        (m >> 64) as u64
    }
}

impl RngCore for BatchRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // StdRng's next_u32 keeps the high half of one step.
        (self.take() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.take()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // StdRng consumes one step per 8-byte chunk.
        for chunk in dest.chunks_mut(8) {
            let x = self.take();
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_raw_stdrng_for_any_call_interleaving() {
        let mut raw = StdRng::seed_from_u64(0xFEED);
        let mut batched = BatchRng::seed_from_u64(0xFEED);
        // A deterministic but irregular interleaving of the three methods,
        // long enough to cross several refill boundaries.
        for i in 0..1000u64 {
            match (i * i + i / 3) % 4 {
                0 | 3 => assert_eq!(raw.next_u64(), batched.next_u64(), "i={i}"),
                1 => assert_eq!(raw.next_u32(), batched.next_u32(), "i={i}"),
                _ => {
                    let n = 1 + (i as usize % 21);
                    let (mut a, mut b) = (vec![0u8; n], vec![0u8; n]);
                    raw.fill_bytes(&mut a);
                    batched.fill_bytes(&mut b);
                    assert_eq!(a, b, "i={i} n={n}");
                }
            }
        }
    }

    #[test]
    fn next_bounded_stays_in_range() {
        let mut rng = BatchRng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 7, 10, 97, 1 << 33, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn next_bounded_one_is_always_zero() {
        let mut rng = BatchRng::seed_from_u64(11);
        for _ in 0..50 {
            assert_eq!(rng.next_bounded(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_bounded_rejects_zero() {
        BatchRng::seed_from_u64(0).next_bounded(0);
    }

    #[test]
    fn next_bounded_is_unbiased_across_residues() {
        // With the multiply-shift map every residue of a small bound gets
        // hit ~n/bound times; a plain modulo on a bound near 2^63 would
        // skew low residues by ~2x. Check uniformity for a bound that does
        // not divide 2^64.
        let mut rng = BatchRng::seed_from_u64(0xB1A5);
        let bound = 6u64;
        let n = 60_000;
        let mut counts = [0u64; 6];
        for _ in 0..n {
            counts[rng.next_bounded(bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for (r, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "residue {r}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn next_bounded_matches_lemire_reference() {
        // Independent re-implementation straight from the paper
        // (Lemire 2019, "Fast Random Integer Generation in an Interval"),
        // fed by the same word stream.
        let mut words = StdRng::seed_from_u64(0x1E31);
        let mut rng = BatchRng::seed_from_u64(0x1E31);
        for bound in [3u64, 10, 1000, (1 << 40) + 123] {
            for _ in 0..100 {
                let expect = loop {
                    let x = words.next_u64();
                    let m = u128::from(x) * u128::from(bound);
                    if (m as u64) >= bound.wrapping_neg() % bound {
                        break (m >> 64) as u64;
                    }
                };
                assert_eq!(rng.next_bounded(bound), expect, "bound={bound}");
            }
        }
    }

    #[test]
    fn uniform01_stream_is_identical() {
        let mut raw = StdRng::seed_from_u64(42);
        let mut batched = BatchRng::seed_from_u64(42);
        for _ in 0..500 {
            let a = fpsping_dist::uniform01(&mut raw);
            let b = fpsping_dist::uniform01(&mut batched);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
