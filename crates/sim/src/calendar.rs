//! The event calendar: pending-event set of the discrete-event loop.
//!
//! Two backends behind one enum — the same dispatch pattern as
//! [`crate::scheduler::SchedulerKind`]:
//!
//! * [`Calendar::Heap`] — the classic `BinaryHeap<Reverse<Scheduled>>`:
//!   O(log n) per operation, no tuning, the reference implementation.
//! * [`Calendar::Bucket`] — a bucketed calendar queue (Brown 1988): a
//!   ring of time-width buckets covering a sliding horizon, O(1)
//!   amortized enqueue/dequeue. Events beyond the horizon *spill* into a
//!   small overflow heap and migrate back as the window advances; when
//!   average bucket occupancy grows past a threshold the ring doubles
//!   (a *resize*). Both are counted and exported via `fpsping_obs`.
//!
//! **Exact-parity contract.** Every event carries a unique sequence
//! number, and both backends pop in strictly increasing `(time, seq)`
//! order — a total order, so the two backends produce *identical* event
//! sequences, tie-breaking included. The contract is pinned by the
//! `golden_parity` integration tests (run against both backends) and a
//! lockstep proptest (`calendar_props`).
//!
//! Why the bucket ring wins at scale: the heap's sift-down touches
//! O(log n) cache lines scattered across a potentially multi-megabyte
//! array, while the ring touches one short, hot `Vec` per operation.
//! Near-term completions land in the *current* bucket, which is kept
//! sorted by binary-search insertion; future buckets take an O(1)
//! append and sort lazily when the window reaches them.

use crate::time::SimTime;
use fpsping_obs::Counter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

static ENQUEUES: Counter = Counter::new("sim.calendar.enqueues");
static SPILLS: Counter = Counter::new("sim.calendar.spills");
static RESIZES: Counter = Counter::new("sim.calendar.resizes");

/// Initial ring size (power of two).
const INIT_BUCKETS: usize = 64;
/// Grow the ring when events-per-bucket exceeds this on average.
const GROW_OCCUPANCY: usize = 8;
/// Never grow past this many buckets (backstop, not a tuning knob).
const MAX_BUCKETS: usize = 1 << 20;

/// Which calendar backend the event loop uses (a config choice, like
/// [`crate::scheduler::Discipline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Calendar {
    /// Binary min-heap: O(log n) per op, the reference backend.
    Heap,
    /// Bucketed calendar queue: O(1) amortized, the scale backend.
    Bucket,
}

impl Calendar {
    /// Builds the chosen backend. `capacity` pre-sizes the heap (or the
    /// overflow heap); `horizon` is the expected maximum scheduling
    /// look-ahead — the bucket ring sizes its window from it (spills
    /// keep correctness if it is underestimated).
    pub fn build<T>(self, capacity: usize, horizon: SimTime) -> CalendarKind<T> {
        match self {
            Calendar::Heap => CalendarKind::Heap(HeapCalendar {
                heap: BinaryHeap::with_capacity(capacity),
                stats: CalendarStats::default(),
            }),
            Calendar::Bucket => CalendarKind::Bucket(BucketCalendar::new(horizon)),
        }
    }
}

/// A scheduled event: fire time, a unique sequence number (the
/// tie-breaker that makes event order a *total* order), and the payload.
#[derive(Debug)]
pub struct Scheduled<T> {
    /// Fire time.
    pub time: SimTime,
    /// Unique, monotonically assigned sequence number.
    pub seq: u64,
    /// Event payload.
    pub ev: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Operation counters, kept as plain integers in the hot path and
/// flushed to the `sim.calendar.*` obs counters once per run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CalendarStats {
    /// Events pushed (both backends).
    pub enqueues: u64,
    /// Events that landed beyond the bucket horizon (bucket backend).
    pub spills: u64,
    /// Ring doublings (bucket backend).
    pub resizes: u64,
}

impl CalendarStats {
    /// Component-wise sum (for aggregating per-shard calendars).
    pub fn merged(self, other: CalendarStats) -> CalendarStats {
        CalendarStats {
            enqueues: self.enqueues + other.enqueues,
            spills: self.spills + other.spills,
            resizes: self.resizes + other.resizes,
        }
    }

    /// Adds these counts to the global `sim.calendar.*` obs counters.
    pub fn flush_obs(self) {
        ENQUEUES.add(self.enqueues);
        SPILLS.add(self.spills);
        RESIZES.add(self.resizes);
    }
}

/// The pending-event set, dispatching to the configured backend.
#[derive(Debug)]
pub enum CalendarKind<T> {
    /// Binary min-heap backend.
    Heap(HeapCalendar<T>),
    /// Bucketed calendar-queue backend.
    Bucket(BucketCalendar<T>),
}

impl<T> CalendarKind<T> {
    /// Inserts an event.
    #[inline]
    pub fn push(&mut self, s: Scheduled<T>) {
        match self {
            CalendarKind::Heap(heap) => heap.push(s),
            CalendarKind::Bucket(bucket) => bucket.push(s),
        }
    }

    /// Removes and returns the earliest event in `(time, seq)` order.
    #[inline]
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        match self {
            CalendarKind::Heap(h) => h.pop(),
            CalendarKind::Bucket(b) => b.pop(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            CalendarKind::Heap(h) => h.heap.len(),
            CalendarKind::Bucket(b) => b.ring_len + b.overflow.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The run's operation counts so far.
    pub fn stats(&self) -> CalendarStats {
        match self {
            CalendarKind::Heap(h) => h.stats,
            CalendarKind::Bucket(b) => b.stats,
        }
    }
}

/// The reference backend: a binary min-heap over `(time, seq)`.
#[derive(Debug)]
pub struct HeapCalendar<T> {
    heap: BinaryHeap<Reverse<Scheduled<T>>>,
    stats: CalendarStats,
}

impl<T> HeapCalendar<T> {
    #[inline]
    fn push(&mut self, s: Scheduled<T>) {
        self.stats.enqueues += 1;
        self.heap.push(Reverse(s));
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop().map(|Reverse(s)| s)
    }
}

#[derive(Debug)]
struct Bucket<T> {
    /// Events of one absolute bucket window. When `sorted`, descending
    /// by `(time, seq)` so the minimum pops from the back in O(1).
    items: Vec<Scheduled<T>>,
    sorted: bool,
}

/// The bucketed calendar queue.
///
/// Invariants:
/// * every ring event's absolute bucket index lies in
///   `[cur, cur + nbuckets)` — anything later sits in `overflow`;
/// * ring slot `b & mask` holds only events of absolute bucket `b`
///   (one window per slot at a time);
/// * `floor` (the last popped time) lower-bounds every pending event,
///   so pushes never land before the current window.
#[derive(Debug)]
pub struct BucketCalendar<T> {
    buckets: Vec<Bucket<T>>,
    /// `nbuckets - 1`; ring size is a power of two.
    mask: u64,
    /// Bucket width is `1 << shift` nanoseconds — a power of two so the
    /// per-event bucket index is a shift, not a 64-bit division (the
    /// single most frequent arithmetic op in the calendar hot path).
    shift: u32,
    /// Absolute index of the current bucket window.
    cur: u64,
    /// Events held in the ring (excludes `overflow`).
    ring_len: usize,
    /// `GROW_OCCUPANCY * nbuckets`, precomputed so the per-push grow
    /// check is one compare; `usize::MAX` once [`MAX_BUCKETS`] is hit.
    grow_at: usize,
    /// Time of the last popped event — the causality floor.
    floor: SimTime,
    overflow: BinaryHeap<Reverse<Scheduled<T>>>,
    stats: CalendarStats,
}

impl<T> BucketCalendar<T> {
    /// A ring of [`INIT_BUCKETS`] buckets spanning roughly `horizon`
    /// (the width rounds up to a power of two, so the covered window is
    /// at least `horizon`).
    pub fn new(horizon: SimTime) -> Self {
        let width = (horizon.as_nanos() / INIT_BUCKETS as u64).max(1);
        let shift = width.next_power_of_two().trailing_zeros();
        Self {
            buckets: (0..INIT_BUCKETS)
                .map(|_| Bucket {
                    items: Vec::new(),
                    sorted: true,
                })
                .collect(),
            mask: INIT_BUCKETS as u64 - 1,
            shift,
            cur: 0,
            ring_len: 0,
            grow_at: GROW_OCCUPANCY * INIT_BUCKETS,
            floor: SimTime::ZERO,
            overflow: BinaryHeap::new(),
            stats: CalendarStats::default(),
        }
    }

    fn nbuckets(&self) -> u64 {
        self.mask + 1
    }

    #[inline]
    fn push(&mut self, s: Scheduled<T>) {
        self.stats.enqueues += 1;
        self.place(s);
        if self.ring_len > self.grow_at {
            self.grow();
        }
    }

    /// Files an event into its ring bucket or the overflow heap.
    #[inline]
    fn place(&mut self, s: Scheduled<T>) {
        let b = s.time.as_nanos() >> self.shift;
        debug_assert!(b >= self.cur, "event scheduled before the current window");
        if b >= self.cur + self.nbuckets() {
            self.stats.spills += 1;
            self.overflow.push(Reverse(s));
            return;
        }
        let bucket = &mut self.buckets[(b & self.mask) as usize];
        if b == self.cur && bucket.sorted {
            // The draining bucket stays sorted (descending), so the
            // in-order pop survives inserts of near-term completions.
            let key = (s.time, s.seq);
            let pos = bucket.items.partition_point(|e| (e.time, e.seq) > key);
            // lint:allow(unbounded_push): Vec::insert into the current bucket — occupancy is bounded by the grow threshold
            bucket.items.insert(pos, s);
        } else {
            // lint:allow(unbounded_push): ring bucket storage is recycled each window; total held events are the pending-event set
            bucket.items.push(s);
            bucket.sorted = false;
        }
        self.ring_len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled<T>> {
        // Fast path — the common steady-state shape: nothing spilled,
        // and the current bucket is sorted with events left, so the
        // minimum is simply its back element. (With spills pending the
        // window may owe the current bucket a migrated event, so the
        // slow path must run first.)
        if self.overflow.is_empty() {
            let bucket = &mut self.buckets[(self.cur & self.mask) as usize];
            if bucket.sorted {
                if let Some(s) = bucket.items.pop() {
                    self.ring_len -= 1;
                    self.floor = s.time;
                    return Some(s);
                }
            }
        }
        self.pop_slow()
    }

    fn pop_slow(&mut self) -> Option<Scheduled<T>> {
        if self.ring_len == 0 && self.overflow.is_empty() {
            return None;
        }
        loop {
            // Re-admit overflow events the advancing window now covers.
            while let Some(Reverse(top)) = self.overflow.peek() {
                if top.time.as_nanos() >> self.shift < self.cur + self.nbuckets() {
                    // lint:allow(unwrap): peek above proved the heap is non-empty
                    let Reverse(s) = self.overflow.pop().expect("peeked overflow");
                    self.place(s);
                } else {
                    break;
                }
            }
            if self.ring_len == 0 {
                // Ring drained: jump the window to the earliest spilled
                // event and migrate it on the next pass.
                let Reverse(top) = self.overflow.peek()?;
                self.cur = top.time.as_nanos() >> self.shift;
                continue;
            }
            while self.buckets[(self.cur & self.mask) as usize]
                .items
                .is_empty()
            {
                self.cur += 1;
            }
            let bucket = &mut self.buckets[(self.cur & self.mask) as usize];
            if !bucket.sorted {
                bucket
                    .items
                    .sort_unstable_by_key(|s| std::cmp::Reverse((s.time, s.seq)));
                bucket.sorted = true;
            }
            // lint:allow(unwrap): the advance loop stopped on a non-empty bucket
            let s = bucket.items.pop().expect("non-empty bucket");
            if bucket.items.is_empty() {
                bucket.sorted = true;
            }
            self.ring_len -= 1;
            self.floor = s.time;
            return Some(s);
        }
    }

    /// Doubles the ring (halving the bucket width, to a 1 ns floor) and
    /// re-files every ring event. Events that no longer fit the window
    /// re-spill; `place` keeps the invariants.
    fn grow(&mut self) {
        self.stats.resizes += 1;
        let mut held: Vec<Scheduled<T>> = Vec::with_capacity(self.ring_len);
        for bucket in &mut self.buckets {
            held.append(&mut bucket.items);
            bucket.sorted = true;
        }
        let new_n = self.buckets.len() * 2;
        self.buckets.resize_with(new_n, || Bucket {
            items: Vec::new(),
            sorted: true,
        });
        self.mask = new_n as u64 - 1;
        self.shift = self.shift.saturating_sub(1);
        self.grow_at = if new_n < MAX_BUCKETS {
            GROW_OCCUPANCY * new_n
        } else {
            usize::MAX
        };
        // Anchor the window at the causality floor: every pending event
        // is at or after the last popped time.
        self.cur = self.floor.as_nanos() >> self.shift;
        self.ring_len = 0;
        let spills_before = self.stats.spills;
        for s in held {
            self.place(s);
        }
        // Re-spills during the re-file are bookkeeping, not workload.
        self.stats.spills = spills_before;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::BatchRng;

    fn ev(t: u64, seq: u64) -> Scheduled<u32> {
        Scheduled {
            time: SimTime(t),
            seq,
            ev: seq as u32,
        }
    }

    fn drain(c: &mut CalendarKind<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(s) = c.pop() {
            out.push((s.time.as_nanos(), s.seq));
        }
        out
    }

    #[test]
    fn both_backends_pop_in_time_then_seq_order() {
        for kind in [Calendar::Heap, Calendar::Bucket] {
            let mut c = kind.build(16, SimTime::from_millis(1.0));
            // Ties at t=500 break by seq; interleaved pushes.
            for (t, seq) in [(500, 2), (100, 1), (500, 3), (900, 4), (0, 5)] {
                c.push(ev(t, seq));
            }
            assert_eq!(
                drain(&mut c),
                vec![(0, 5), (100, 1), (500, 2), (500, 3), (900, 4)],
                "backend {kind:?}"
            );
        }
    }

    #[test]
    fn far_future_events_spill_and_come_back() {
        let mut c: CalendarKind<u32> = Calendar::Bucket.build(16, SimTime(64_000));
        // Horizon ≈ 64 µs; schedule 10 ms out.
        c.push(ev(10_000_000, 1));
        c.push(ev(500, 2));
        assert_eq!(c.stats().spills, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(drain(&mut c), vec![(500, 2), (10_000_000, 1)]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        for kind in [Calendar::Heap, Calendar::Bucket] {
            let mut c = kind.build(16, SimTime(1_000));
            c.push(ev(10, 1));
            c.push(ev(20, 2));
            let first = c.pop().unwrap();
            assert_eq!(first.time.as_nanos(), 10);
            // Push at the popped time (same bucket, already sorted).
            c.push(ev(10, 3));
            c.push(ev(15, 4));
            assert_eq!(
                drain(&mut c),
                vec![(10, 3), (15, 4), (20, 2)],
                "backend {kind:?}"
            );
        }
    }

    #[test]
    fn ring_grows_under_load_and_stays_ordered() {
        let mut c: CalendarKind<u32> = Calendar::Bucket.build(16, SimTime(1 << 20));
        let n = 10_000u64;
        for seq in 1..=n {
            // Scatter deterministically within the horizon.
            c.push(ev((seq * 2_654_435_761) % (1 << 20), seq));
        }
        assert!(c.stats().resizes > 0, "10k events must trigger a resize");
        assert_eq!(c.stats().enqueues, n);
        let order = drain(&mut c);
        assert_eq!(order.len(), n as usize);
        for w in order.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1), "out of order: {w:?}");
        }
    }

    #[test]
    fn random_workload_matches_heap_exactly() {
        let mut rng = BatchRng::seed_from_u64(42);
        let mut heap: CalendarKind<u32> = Calendar::Heap.build(16, SimTime(1_000_000));
        let mut bucket: CalendarKind<u32> = Calendar::Bucket.build(16, SimTime(1_000_000));
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..5_000 {
            if rng.next_bounded(3) > 0 || heap.is_empty() {
                seq += 1;
                // Mix of near-term deltas, exact ties, and far spills.
                let dt = match rng.next_bounded(10) {
                    0 => 0,
                    1..=7 => rng.next_bounded(50_000),
                    _ => 5_000_000 + rng.next_bounded(1 << 24),
                };
                heap.push(ev(now + dt, seq));
                bucket.push(ev(now + dt, seq));
            } else {
                let a = heap.pop().unwrap();
                let b = bucket.pop().unwrap();
                assert_eq!((a.time, a.seq, a.ev), (b.time, b.seq, b.ev));
                now = a.time.as_nanos();
            }
        }
        loop {
            match (heap.pop(), bucket.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!((a.time, a.seq, a.ev), (b.time, b.seq, b.ev))
                }
                (a, b) => panic!("length mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
