//! Delay probes: streaming moments plus either bounded raw-sample storage
//! (exact quantiles) or O(1)-memory P² streaming quantiles, and threshold
//! exceedance counters for deep-tail estimation.

use fpsping_num::p2::P2Quantile;
use fpsping_num::stats::OnlineStats;
use fpsping_obs::Counter;

/// Summaries built from a truncated sample set (`skipped > 0`): the
/// quantiles are estimates over the stored prefix, not the full stream.
static TRUNCATED_REPORTS: Counter = Counter::new("sim.probe.truncated_reports");

/// How a probe answers quantile queries.
#[derive(Debug, Clone)]
enum SampleStore {
    /// Raw samples up to a bound; quantiles are exact order statistics.
    ///
    /// The vector is sorted *lazily*: `sorted` marks whether it is
    /// currently in ascending order, so repeated quantile queries cost
    /// one sort total instead of one sort per query, and a summary of
    /// many levels sorts exactly once.
    Raw {
        samples: Vec<f64>,
        max_samples: usize,
        sorted: bool,
    },
    /// One P² estimator per tracked level; memory is O(levels),
    /// independent of the sample count.
    Streaming { estimators: Vec<P2Quantile> },
}

/// Collects a delay population: exact streaming moments, a quantile store
/// (raw samples or streaming P² markers), and exact exceedance counts at
/// preset thresholds (for tail probabilities deeper than the quantile
/// store can resolve).
#[derive(Debug, Clone)]
pub struct DelayProbe {
    stats: OnlineStats,
    store: SampleStore,
    /// `(threshold_seconds, exceed_count)` pairs.
    thresholds: Vec<(f64, u64)>,
    skipped: u64,
}

impl DelayProbe {
    /// A probe storing up to `max_samples` raw samples and counting
    /// exceedances of the given thresholds (seconds).
    pub fn new(max_samples: usize, thresholds: &[f64]) -> Self {
        Self {
            stats: OnlineStats::new(),
            store: SampleStore::Raw {
                samples: Vec::new(),
                max_samples,
                sorted: true,
            },
            thresholds: thresholds.iter().map(|&t| (t, 0)).collect(),
            skipped: 0,
        }
    }

    /// A streaming probe tracking the given quantile levels with P²
    /// estimators — memory stays O(levels) no matter how many delays are
    /// recorded. Exceedance counters behave exactly as in raw mode.
    pub fn streaming(levels: &[f64], thresholds: &[f64]) -> Self {
        assert!(!levels.is_empty(), "streaming probe needs quantile levels");
        Self {
            stats: OnlineStats::new(),
            store: SampleStore::Streaming {
                estimators: levels.iter().map(|&p| P2Quantile::new(p)).collect(),
            },
            thresholds: thresholds.iter().map(|&t| (t, 0)).collect(),
            skipped: 0,
        }
    }

    /// Whether this probe runs in streaming (P²) mode.
    pub fn is_streaming(&self) -> bool {
        matches!(self.store, SampleStore::Streaming { .. })
    }

    /// Number of raw samples currently stored (always 0 in streaming
    /// mode — the memory-boundedness the mode exists for).
    pub fn stored_samples(&self) -> usize {
        match &self.store {
            SampleStore::Raw { samples, .. } => samples.len(),
            SampleStore::Streaming { .. } => 0,
        }
    }

    /// Records one delay (seconds).
    #[inline]
    pub fn record(&mut self, delay_s: f64) {
        debug_assert!(delay_s >= 0.0, "negative delay {delay_s}");
        self.stats.record(delay_s);
        match &mut self.store {
            SampleStore::Raw {
                samples,
                max_samples,
                sorted,
            } => {
                if samples.len() < *max_samples {
                    // Appending keeps the vector sorted only while the
                    // stream happens to arrive in ascending order.
                    if *sorted {
                        *sorted = samples.last().is_none_or(|&l| l <= delay_s);
                    }
                    // lint:allow(unbounded_push): the eager-probe path — capped at max_samples, overflow counted in `skipped`
                    samples.push(delay_s);
                } else {
                    self.skipped += 1;
                }
            }
            SampleStore::Streaming { estimators } => {
                for e in estimators {
                    e.record(delay_s);
                }
            }
        }
        for (t, c) in &mut self.thresholds {
            if delay_s > *t {
                *c += 1;
            }
        }
    }

    /// Number of recorded delays.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean delay (s).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Standard deviation (s).
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Maximum observed delay (s).
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// The p-quantile estimate.
    ///
    /// Raw mode: the empirical quantile of the stored samples — exact
    /// when nothing was skipped, a truncated-sample estimate otherwise.
    /// The sample vector is sorted on the first query after new data and
    /// the order is cached, so repeated queries don't re-sort (and always
    /// return identical values).
    ///
    /// Streaming mode: the P² estimate; `p` must be one of the levels the
    /// probe was built with.
    pub fn quantile(&mut self, p: f64) -> f64 {
        match &mut self.store {
            SampleStore::Raw {
                samples, sorted, ..
            } => {
                assert!(!samples.is_empty(), "quantile on empty probe");
                if !*sorted {
                    assert!(
                        samples.iter().all(|s| !s.is_nan()),
                        "quantile: NaN delay sample"
                    );
                    samples.sort_by(f64::total_cmp);
                    *sorted = true;
                }
                fpsping_num::stats::quantile(samples, p)
            }
            SampleStore::Streaming { estimators } => estimators
                .iter()
                .find(|e| e.level() == p)
                // lint:allow(panic): asking for an unconfigured level is the documented contract violation
                .unwrap_or_else(|| panic!("streaming probe does not track level {p}"))
                .estimate(),
        }
    }

    /// Exact tail probability `P(delay > threshold)` for each preset
    /// threshold: `(threshold, probability)`.
    pub fn tail_probabilities(&self) -> Vec<(f64, f64)> {
        let n = self.stats.count().max(1) as f64;
        self.thresholds
            .iter()
            .map(|&(t, c)| (t, c as f64 / n))
            .collect()
    }

    /// How many samples were not stored (counters still saw them).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Absorbs another probe's population, as if every delay the other
    /// probe recorded had been recorded here too.
    ///
    /// Moments and exceedance counters merge exactly. Quantile state
    /// merges by mode: raw samples are concatenated up to this probe's
    /// bound (overflow counts as skipped), streaming estimators merge via
    /// [`P2Quantile::merge`]. Both probes must be in the same mode with
    /// the same thresholds (and, when streaming, the same levels).
    pub fn merge(&mut self, other: &DelayProbe) {
        assert_eq!(
            self.thresholds.len(),
            other.thresholds.len(),
            "merging probes with different threshold sets"
        );
        self.stats.merge(&other.stats);
        for ((t, c), (ot, oc)) in self.thresholds.iter_mut().zip(&other.thresholds) {
            assert_eq!(*t, *ot, "merging probes with different thresholds");
            *c += *oc;
        }
        self.skipped += other.skipped;
        match (&mut self.store, &other.store) {
            (
                SampleStore::Raw {
                    samples,
                    max_samples,
                    sorted,
                },
                SampleStore::Raw {
                    samples: other_samples,
                    ..
                },
            ) => {
                let room = max_samples.saturating_sub(samples.len());
                let take = room.min(other_samples.len());
                samples.extend_from_slice(&other_samples[..take]);
                self.skipped += (other_samples.len() - take) as u64;
                *sorted = samples.is_empty();
            }
            (
                SampleStore::Streaming { estimators },
                SampleStore::Streaming {
                    estimators: other_estimators,
                },
            ) => {
                assert_eq!(
                    estimators.len(),
                    other_estimators.len(),
                    "merging streaming probes with different level sets"
                );
                for (e, oe) in estimators.iter_mut().zip(other_estimators) {
                    e.merge(oe);
                }
            }
            // lint:allow(panic): mixing store kinds is a harness bug — there is no meaningful merge
            _ => panic!("cannot merge a raw probe with a streaming probe"),
        }
    }
}

/// Summary of a probe, exported by the simulator report.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean delay (s).
    pub mean_s: f64,
    /// Standard deviation (s).
    pub std_dev_s: f64,
    /// Maximum (s).
    pub max_s: f64,
    /// Selected quantiles `(p, value_s)`.
    pub quantiles: Vec<(f64, f64)>,
    /// Exact tail probabilities at the preset thresholds.
    pub tails: Vec<(f64, f64)>,
}

impl DelayProbe {
    /// Produces the exportable summary with the given quantile levels
    /// (sorting the raw sample at most once for all of them).
    ///
    /// A summary built from a truncated sample set (`skipped > 0`: the
    /// raw store overflowed `max_samples`) is announced via `warn_once`
    /// and the `sim.probe.truncated_reports` counter — the quantiles are
    /// then estimates over the stored prefix, while moments and tail
    /// counters remain exact. Silence here previously let biased
    /// quantiles masquerade as exact ones.
    pub fn summarize(&mut self, quantile_levels: &[f64]) -> ProbeSummary {
        if self.skipped > 0 {
            TRUNCATED_REPORTS.incr();
            fpsping_obs::warn_once(
                "sim.probe.truncated_report",
                &format!(
                    "probe summary built from a truncated sample set ({} overflow samples \
                     skipped): quantiles are stored-prefix estimates; moments and tail \
                     counters remain exact. Raise max_samples or use streaming quantiles.",
                    self.skipped
                ),
            );
        }
        let quantiles = if self.count() == 0 {
            Vec::new()
        } else {
            quantile_levels
                .iter()
                .map(|&p| (p, self.quantile(p)))
                .collect()
        };
        ProbeSummary {
            count: self.count(),
            mean_s: self.mean(),
            std_dev_s: self.std_dev(),
            max_s: self.max(),
            quantiles,
            tails: self.tail_probabilities(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_and_quantiles() {
        let mut p = DelayProbe::new(1000, &[0.5]);
        for i in 0..100 {
            p.record(i as f64 / 100.0);
        }
        assert_eq!(p.count(), 100);
        assert!((p.mean() - 0.495).abs() < 1e-12);
        assert!((p.quantile(0.5) - 0.495).abs() < 0.01);
        let tails = p.tail_probabilities();
        assert_eq!(tails.len(), 1);
        assert!((tails[0].1 - 0.49).abs() < 0.02);
    }

    #[test]
    fn bounded_storage_keeps_exact_counters() {
        let mut p = DelayProbe::new(10, &[5.0]);
        for i in 0..100 {
            p.record(i as f64);
        }
        assert_eq!(p.skipped(), 90);
        assert_eq!(p.count(), 100);
        // Counter is exact despite truncation: 94 values exceed 5.
        assert!((p.tail_probabilities()[0].1 - 0.94).abs() < 1e-12);
    }

    #[test]
    fn summary_exports_requested_quantiles() {
        let mut p = DelayProbe::new(1000, &[0.1, 0.2]);
        for i in 1..=100 {
            p.record(i as f64 / 100.0);
        }
        let s = p.summarize(&[0.5, 0.99]);
        assert_eq!(s.count, 100);
        assert_eq!(s.quantiles.len(), 2);
        assert_eq!(s.tails.len(), 2);
        assert!(s.quantiles[1].1 > s.quantiles[0].1);
    }

    #[test]
    fn repeated_quantile_queries_are_stable_and_sort_once() {
        // Regression for the per-query re-sort: interleave queries and
        // records; every query must return exactly what a fresh sorted
        // copy would, and back-to-back queries must be bit-identical.
        let mut p = DelayProbe::new(10_000, &[]);
        let mut reference = Vec::new();
        let mut state = 0xDEADBEEFu64;
        for round in 0..5 {
            for _ in 0..200 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (state >> 11) as f64 / (1u64 << 53) as f64;
                p.record(x);
                reference.push(x);
            }
            for &level in &[0.1, 0.5, 0.9, 0.99] {
                let a = p.quantile(level);
                let b = p.quantile(level);
                assert_eq!(a.to_bits(), b.to_bits(), "round {round} level {level}");
                let exact = fpsping_num::stats::quantile_unsorted(&reference, level);
                assert_eq!(a.to_bits(), exact.to_bits(), "round {round} level {level}");
            }
        }
    }

    #[test]
    fn streaming_probe_tracks_quantiles_without_storing_samples() {
        let mut p = DelayProbe::streaming(&[0.5, 0.99], &[0.9]);
        assert!(p.is_streaming());
        let mut state = 7u64;
        for _ in 0..100_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p.record((state >> 11) as f64 / (1u64 << 53) as f64);
        }
        assert_eq!(p.stored_samples(), 0);
        assert_eq!(p.count(), 100_000);
        assert!((p.quantile(0.5) - 0.5).abs() < 0.01);
        assert!((p.quantile(0.99) - 0.99).abs() < 0.01);
        assert!((p.tail_probabilities()[0].1 - 0.1).abs() < 0.01);
        let s = p.summarize(&[0.5, 0.99]);
        assert_eq!(s.quantiles.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not track level")]
    fn streaming_probe_rejects_unknown_level() {
        let mut p = DelayProbe::streaming(&[0.5], &[]);
        p.record(1.0);
        p.quantile(0.9);
    }

    #[test]
    fn merge_pools_raw_probes() {
        let mut a = DelayProbe::new(1000, &[0.5]);
        let mut b = DelayProbe::new(1000, &[0.5]);
        for i in 0..50 {
            a.record(i as f64 / 100.0);
            b.record((i + 50) as f64 / 100.0);
        }
        let mut pooled = DelayProbe::new(1000, &[0.5]);
        for i in 0..100 {
            pooled.record(i as f64 / 100.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        assert!((a.mean() - pooled.mean()).abs() < 1e-12);
        assert!((a.std_dev() - pooled.std_dev()).abs() < 1e-12);
        assert_eq!(a.quantile(0.5).to_bits(), pooled.quantile(0.5).to_bits());
        assert_eq!(a.tail_probabilities(), pooled.tail_probabilities());
    }

    #[test]
    fn merge_respects_sample_bound() {
        let mut a = DelayProbe::new(10, &[]);
        let mut b = DelayProbe::new(10, &[]);
        for i in 0..10 {
            a.record(i as f64);
            b.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert_eq!(a.stored_samples(), 10);
        assert_eq!(a.skipped(), 10);
    }

    #[test]
    fn merge_pools_streaming_probes() {
        let mut a = DelayProbe::streaming(&[0.9], &[]);
        let mut b = DelayProbe::streaming(&[0.9], &[]);
        let mut state = 11u64;
        let mut all = Vec::new();
        for i in 0..60_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            all.push(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 60_000);
        let exact = fpsping_num::stats::quantile_unsorted(&all, 0.9);
        assert!(
            (a.quantile(0.9) - exact).abs() < 0.02,
            "merged {} vs exact {exact}",
            a.quantile(0.9)
        );
    }

    #[test]
    fn truncated_summary_warns_and_counts() {
        // Regression: a report built from a truncated sample set used to
        // be silent — `skipped` was tracked but nothing surfaced it.
        let clean_before = TRUNCATED_REPORTS.get();
        let mut clean = DelayProbe::new(100, &[]);
        for i in 0..50 {
            clean.record(i as f64);
        }
        let _ = clean.summarize(&[0.5]);
        assert_eq!(
            TRUNCATED_REPORTS.get(),
            clean_before,
            "untruncated summaries must not count"
        );

        let before = TRUNCATED_REPORTS.get();
        let mut p = DelayProbe::new(10, &[]);
        for i in 0..30 {
            p.record(i as f64);
        }
        assert_eq!(p.skipped(), 20);
        let _ = p.summarize(&[0.5]);
        if cfg!(not(feature = "obs-off")) {
            assert_eq!(TRUNCATED_REPORTS.get(), before + 1);
        }
        // warn_once stays active even under obs-off.
        assert!(
            fpsping_obs::warnings()
                .iter()
                .any(|w| w.contains("truncated sample set")),
            "summarize must warn about truncation"
        );
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_rejects_mode_mismatch() {
        let mut a = DelayProbe::new(10, &[]);
        let b = DelayProbe::streaming(&[0.5], &[]);
        a.merge(&b);
    }
}
