//! Delay probes: streaming moments plus bounded sample storage and
//! threshold exceedance counters for deep-tail estimation.

use fpsping_num::stats::OnlineStats;

/// Collects a delay population: exact streaming moments, a bounded sample
/// vector for quantiles, and exact exceedance counts at preset
/// thresholds (for tail probabilities deeper than the sample bound can
/// resolve).
#[derive(Debug, Clone)]
pub struct DelayProbe {
    stats: OnlineStats,
    samples: Vec<f64>,
    max_samples: usize,
    /// `(threshold_seconds, exceed_count)` pairs.
    thresholds: Vec<(f64, u64)>,
    skipped: u64,
}

impl DelayProbe {
    /// A probe storing up to `max_samples` raw samples and counting
    /// exceedances of the given thresholds (seconds).
    pub fn new(max_samples: usize, thresholds: &[f64]) -> Self {
        Self {
            stats: OnlineStats::new(),
            samples: Vec::new(),
            max_samples,
            thresholds: thresholds.iter().map(|&t| (t, 0)).collect(),
            skipped: 0,
        }
    }

    /// Records one delay (seconds).
    pub fn record(&mut self, delay_s: f64) {
        debug_assert!(delay_s >= 0.0, "negative delay {delay_s}");
        self.stats.record(delay_s);
        if self.samples.len() < self.max_samples {
            self.samples.push(delay_s);
        } else {
            self.skipped += 1;
        }
        for (t, c) in &mut self.thresholds {
            if delay_s > *t {
                *c += 1;
            }
        }
    }

    /// Number of recorded delays.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean delay (s).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Standard deviation (s).
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Maximum observed delay (s).
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Empirical p-quantile from the stored samples.
    ///
    /// Exact when nothing was skipped; a truncated-sample estimate
    /// otherwise (the threshold counters stay exact regardless).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "quantile on empty probe");
        fpsping_num::stats::quantile_unsorted(&self.samples, p)
    }

    /// Exact tail probability `P(delay > threshold)` for each preset
    /// threshold: `(threshold, probability)`.
    pub fn tail_probabilities(&self) -> Vec<(f64, f64)> {
        let n = self.stats.count().max(1) as f64;
        self.thresholds
            .iter()
            .map(|&(t, c)| (t, c as f64 / n))
            .collect()
    }

    /// How many samples were not stored (counters still saw them).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Summary of a probe, exported by the simulator report.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean delay (s).
    pub mean_s: f64,
    /// Standard deviation (s).
    pub std_dev_s: f64,
    /// Maximum (s).
    pub max_s: f64,
    /// Selected quantiles `(p, value_s)`.
    pub quantiles: Vec<(f64, f64)>,
    /// Exact tail probabilities at the preset thresholds.
    pub tails: Vec<(f64, f64)>,
}

impl DelayProbe {
    /// Produces the exportable summary with the given quantile levels.
    pub fn summarize(&self, quantile_levels: &[f64]) -> ProbeSummary {
        let quantiles = if self.samples.is_empty() {
            Vec::new()
        } else {
            quantile_levels
                .iter()
                .map(|&p| (p, self.quantile(p)))
                .collect()
        };
        ProbeSummary {
            count: self.count(),
            mean_s: self.mean(),
            std_dev_s: self.std_dev(),
            max_s: self.max(),
            quantiles,
            tails: self.tail_probabilities(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_and_quantiles() {
        let mut p = DelayProbe::new(1000, &[0.5]);
        for i in 0..100 {
            p.record(i as f64 / 100.0);
        }
        assert_eq!(p.count(), 100);
        assert!((p.mean() - 0.495).abs() < 1e-12);
        assert!((p.quantile(0.5) - 0.495).abs() < 0.01);
        let tails = p.tail_probabilities();
        assert_eq!(tails.len(), 1);
        assert!((tails[0].1 - 0.49).abs() < 0.02);
    }

    #[test]
    fn bounded_storage_keeps_exact_counters() {
        let mut p = DelayProbe::new(10, &[5.0]);
        for i in 0..100 {
            p.record(i as f64);
        }
        assert_eq!(p.skipped(), 90);
        assert_eq!(p.count(), 100);
        // Counter is exact despite truncation: 94 values exceed 5.
        assert!((p.tail_probabilities()[0].1 - 0.94).abs() < 1e-12);
    }

    #[test]
    fn summary_exports_requested_quantiles() {
        let mut p = DelayProbe::new(1000, &[0.1, 0.2]);
        for i in 1..=100 {
            p.record(i as f64 / 100.0);
        }
        let s = p.summarize(&[0.5, 0.99]);
        assert_eq!(s.count, 100);
        assert_eq!(s.quantiles.len(), 2);
        assert_eq!(s.tails.len(), 2);
        assert!(s.quantiles[1].1 > s.quantiles[0].1);
    }
}
