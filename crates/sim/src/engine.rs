//! Replicated simulation engine.
//!
//! One simulation run is a single sample path: its quantile estimates
//! carry unknown error. The standard remedy (independent replications)
//! runs the same scenario R times with independent random streams and
//! treats each replication's statistics as one i.i.d. observation, so a
//! Student-t confidence interval across replications quantifies the
//! error (Law & Kelton, *Simulation Modeling and Analysis*, ch. 9).
//!
//! [`SimEngine`] implements that methodology:
//!
//! * **Deterministic seeding.** Replication `i` is seeded with element
//!   `i` of the SplitMix64 output sequence started at the master seed
//!   ([`replication_seed`]). The mapping depends only on
//!   `(master_seed, i)` — never on thread count or scheduling — so
//!   replication `i` produces bit-identical results whether the batch
//!   runs on 1 thread or 16, and seeds never collide (the SplitMix64
//!   finalizer is a bijection, so distinct `i` give distinct seeds for
//!   any fixed master).
//! * **Parallel execution.** Replications are distributed over scoped
//!   worker threads in contiguous chunks; results land in a
//!   replication-indexed vector, so downstream merging sees them in the
//!   fixed order `0..R` regardless of which thread finished first.
//! * **Merging.** Per-metric, the engine pools every replication's
//!   probe (exact count-weighted moments; pooled samples or merged P²
//!   markers for quantiles) *and* computes the across-replication mean
//!   and 95% confidence half-width of each statistic from the R
//!   per-replication estimates.

use crate::network::{Measurements, Network, NetworkConfig, SimReport, QUANTILE_LEVELS};
use crate::probe::DelayProbe;
use fpsping_num::stats::t_critical_95;

/// How a batch of replications is run.
#[derive(Debug, Clone)]
pub struct SimEngineConfig {
    /// Number of independent replications R (at least 1).
    pub reps: usize,
    /// Worker threads; `0` means all available cores.
    pub jobs: usize,
    /// Master seed; replication `i` derives its own seed from this via
    /// [`replication_seed`].
    pub master_seed: u64,
    /// Run every replication's probes in streaming (P²) mode: O(1)
    /// memory per quantile level instead of a raw sample store.
    pub stream_quantiles: bool,
}

impl Default for SimEngineConfig {
    fn default() -> Self {
        Self {
            reps: 1,
            jobs: 1,
            master_seed: 0,
            stream_quantiles: false,
        }
    }
}

impl SimEngineConfig {
    /// A config with the given replication count (jobs = 1, seed 0).
    pub fn with_reps(reps: usize) -> Self {
        Self {
            reps,
            ..Self::default()
        }
    }

    /// Sets the worker-thread count (`0` = all cores).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the master seed.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Enables or disables streaming quantiles.
    pub fn stream_quantiles(mut self, on: bool) -> Self {
        self.stream_quantiles = on;
        self
    }
}

/// The seed of replication `rep` under `master_seed`: element `rep` of
/// the SplitMix64 output sequence started at the master seed.
///
/// SplitMix64's output function is a bijection of the (odd-increment)
/// counter, so for a fixed master every replication index maps to a
/// distinct seed — no collisions for any batch size.
pub fn replication_seed(master_seed: u64, rep: u64) -> u64 {
    let mut z = master_seed.wrapping_add((rep.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One quantile level's merged estimate.
#[derive(Debug, Clone)]
pub struct QuantileEstimate {
    /// Quantile level `p`.
    pub p: f64,
    /// Mean of the R per-replication quantile estimates — the point
    /// estimate the confidence interval is centered on.
    pub value_s: f64,
    /// 95% confidence half-width across replications (`None` when R < 2).
    pub ci95_s: Option<f64>,
    /// The quantile of the pooled probe (all replications' samples or
    /// merged P² markers together).
    pub pooled_s: f64,
}

/// One delay metric merged across replications.
#[derive(Debug, Clone)]
pub struct MergedProbe {
    /// Total observations across all replications.
    pub count: u64,
    /// Pooled (count-weighted) mean delay in seconds — exact, via
    /// streaming-moment merge.
    pub mean_s: f64,
    /// 95% confidence half-width of the mean, from the R
    /// per-replication means (`None` when R < 2).
    pub mean_ci95_s: Option<f64>,
    /// Pooled standard deviation in seconds.
    pub std_dev_s: f64,
    /// Maximum over all replications.
    pub max_s: f64,
    /// Merged quantile estimates at the standard levels.
    pub quantiles: Vec<QuantileEstimate>,
    /// Pooled exact tail probabilities at the preset thresholds.
    pub tails: Vec<(f64, f64)>,
}

/// The merged result of R replications, plus each replication's own
/// report (in replication order) for inspection.
#[derive(Debug)]
pub struct ReplicatedReport {
    /// Number of replications merged.
    pub reps: usize,
    /// The master seed the batch was derived from.
    pub master_seed: u64,
    /// Client send → server arrival.
    pub upstream_delay: MergedProbe,
    /// Server tick → client arrival.
    pub downstream_delay: MergedProbe,
    /// Queueing delay at the aggregation node onto C (upstream).
    pub agg_wait: MergedProbe,
    /// Queueing delay of the first packet of each burst downstream.
    pub burst_wait: MergedProbe,
    /// Full application ping (includes server tick alignment).
    pub ping_rtt: MergedProbe,
    /// Mean upstream-bottleneck utilization across replications.
    pub up_utilization: f64,
    /// Mean downstream-bottleneck utilization across replications.
    pub down_utilization: f64,
    /// Total events processed across all replications.
    pub events: u64,
    /// Total packets delivered to the server.
    pub packets_upstream: u64,
    /// Total packets delivered to clients.
    pub packets_downstream: u64,
    /// Client-side estimator summaries merged across replications (when
    /// the scenario set `estimate`) — each replication's player
    /// population is treated as an independent cohort.
    pub estimator: Option<fpsping_traffic::EstimatorSummary>,
    /// Each replication's own summarized report, index = replication.
    pub per_rep: Vec<SimReport>,
}

/// Runs R independent replications of a scenario (possibly in parallel)
/// and merges them. See the module docs for the methodology.
#[derive(Debug, Clone)]
pub struct SimEngine {
    cfg: SimEngineConfig,
}

impl SimEngine {
    /// An engine with the given batch configuration.
    pub fn new(cfg: SimEngineConfig) -> Self {
        Self { cfg }
    }

    /// The batch configuration.
    pub fn config(&self) -> &SimEngineConfig {
        &self.cfg
    }

    /// The worker-thread count actually used (`jobs = 0` resolved to the
    /// host's available parallelism, then capped at the replication
    /// count).
    pub fn effective_jobs(&self) -> usize {
        let jobs = if self.cfg.jobs == 0 {
            match std::thread::available_parallelism() {
                Ok(n) => n.get(),
                Err(e) => {
                    // The old code fell back to 1 silently, which made a
                    // misconfigured container look like a 1-core host with
                    // no trace of why the batch ran serial.
                    fpsping_obs::warn_once(
                        "sim.jobs.autodetect",
                        &format!(
                            "could not detect available parallelism ({e}); running replications single-threaded"
                        ),
                    );
                    1
                }
            }
        } else {
            self.cfg.jobs
        };
        jobs.clamp(1, self.cfg.reps.max(1))
    }

    /// Runs the batch. `make_cfg(rep)` builds replication `rep`'s
    /// scenario; the engine overrides its `seed` with
    /// [`replication_seed`]`(master_seed, rep)` and its
    /// `stream_quantiles` flag with the engine's own, so every
    /// replication differs *only* in its random stream.
    ///
    /// The merged report is a deterministic function of
    /// `(config, make_cfg)` — bit-identical across `jobs` settings.
    pub fn run<F>(&self, make_cfg: F) -> ReplicatedReport
    where
        F: Fn(usize) -> NetworkConfig + Sync,
    {
        let _span = fpsping_obs::span("sim.batch");
        let reps = self.cfg.reps.max(1);
        let jobs = self.effective_jobs();
        let run_one = |rep: usize| -> Measurements {
            let mut cfg = make_cfg(rep);
            cfg.seed = replication_seed(self.cfg.master_seed, rep as u64);
            cfg.stream_quantiles = self.cfg.stream_quantiles;
            Network::new(cfg).run_measurements()
        };
        let results = par_map(reps, jobs, run_one);
        self.merge(results)
    }

    /// Merges per-replication measurements, in replication order.
    fn merge(&self, mut reps: Vec<Measurements>) -> ReplicatedReport {
        let r = reps.len();
        let upstream_delay = merge_metric(&mut reps, |m| &mut m.upstream_delay);
        let downstream_delay = merge_metric(&mut reps, |m| &mut m.downstream_delay);
        let agg_wait = merge_metric(&mut reps, |m| &mut m.agg_wait);
        let burst_wait = merge_metric(&mut reps, |m| &mut m.burst_wait);
        let ping_rtt = merge_metric(&mut reps, |m| &mut m.ping_rtt);
        let up_utilization = reps.iter().map(|m| m.up_utilization).sum::<f64>() / r as f64;
        let down_utilization = reps.iter().map(|m| m.down_utilization).sum::<f64>() / r as f64;
        let events = reps.iter().map(|m| m.events).sum();
        let packets_upstream = reps.iter().map(|m| m.packets_upstream).sum();
        let packets_downstream = reps.iter().map(|m| m.packets_downstream).sum();
        let mut estimator: Option<fpsping_traffic::EstimatorSummary> = None;
        for m in &reps {
            if let Some(s) = &m.estimator {
                match &mut estimator {
                    None => estimator = Some(s.clone()),
                    Some(acc) => acc.merge(s),
                }
            }
        }
        ReplicatedReport {
            reps: r,
            master_seed: self.cfg.master_seed,
            upstream_delay,
            downstream_delay,
            agg_wait,
            burst_wait,
            ping_rtt,
            up_utilization,
            down_utilization,
            events,
            packets_upstream,
            packets_downstream,
            estimator,
            per_rep: reps.into_iter().map(Measurements::into_report).collect(),
        }
    }
}

/// Mean and 95% t-interval half-width of `xs`, treating each element as
/// one i.i.d. replication observation. Half-width is `None` when fewer
/// than two observations exist.
fn mean_ci95(xs: &[f64]) -> (f64, Option<f64>) {
    let n = xs.len();
    assert!(n > 0, "mean of empty replication set");
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, None);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let hw = t_critical_95((n - 1) as u64) * (var / n as f64).sqrt();
    (mean, Some(hw))
}

/// Merges one metric's probe across replications: pooled probe for
/// count-weighted moments/tails, per-replication estimates for the
/// confidence intervals.
fn merge_metric<G>(reps: &mut [Measurements], get: G) -> MergedProbe
where
    G: Fn(&mut Measurements) -> &mut DelayProbe,
{
    let mut pooled: Option<DelayProbe> = None;
    for m in reps.iter_mut() {
        match &mut pooled {
            None => pooled = Some(get(m).clone()),
            Some(p) => p.merge(get(m)),
        }
    }
    // lint:allow(unwrap): callers hand over the non-empty replication set built by `run_replications`
    let mut pooled = pooled.expect("merge_metric on empty replication set");
    // Replications with observations; ones without contribute nothing to
    // quantile/mean spreads (their probe has no estimate to offer).
    let rep_means: Vec<f64> = reps
        .iter_mut()
        .filter_map(|m| {
            let probe = get(m);
            (probe.count() > 0).then(|| probe.mean())
        })
        .collect();
    let mean_ci = if rep_means.is_empty() {
        None
    } else {
        mean_ci95(&rep_means).1
    };
    let quantiles = if pooled.count() == 0 {
        Vec::new()
    } else {
        QUANTILE_LEVELS
            .iter()
            .map(|&p| {
                let estimates: Vec<f64> = reps
                    .iter_mut()
                    .filter_map(|m| {
                        let probe = get(m);
                        (probe.count() > 0).then(|| probe.quantile(p))
                    })
                    .collect();
                let (value_s, ci95_s) = mean_ci95(&estimates);
                QuantileEstimate {
                    p,
                    value_s,
                    ci95_s,
                    pooled_s: pooled.quantile(p),
                }
            })
            .collect()
    };
    MergedProbe {
        count: pooled.count(),
        mean_s: pooled.mean(),
        mean_ci95_s: mean_ci,
        std_dev_s: pooled.std_dev(),
        max_s: pooled.max(),
        quantiles,
        tails: pooled.tail_probabilities(),
    }
}

/// Maps `f` over `0..n` on `jobs` scoped threads, contiguous chunks,
/// results in index order. `f` runs exactly once per index; which thread
/// runs it never affects the output vector's order. Shared with the
/// scale engine, whose shards are jobs over DSLAM indices.
pub(crate) fn par_map<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(jobs);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (c, slots) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (off, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(c * chunk + off));
                }
            });
        }
    });
    out.into_iter()
        // lint:allow(unwrap): scope() joins every worker before we get here, and each worker writes its whole chunk
        .map(|s| s.expect("par_map worker left a hole"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsping_dist::Deterministic;

    fn tiny_cfg(_rep: usize) -> NetworkConfig {
        let mut cfg =
            NetworkConfig::paper_scenario(4, Box::new(Deterministic::new(125.0)), 40.0, 0);
        cfg.duration = crate::time::SimTime::from_secs(5.0);
        cfg.warmup = crate::time::SimTime::from_secs(0.5);
        cfg
    }

    #[test]
    fn replication_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for master in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            seen.clear();
            for rep in 0..4096u64 {
                assert!(
                    seen.insert(replication_seed(master, rep)),
                    "collision at master={master} rep={rep}"
                );
            }
        }
    }

    #[test]
    fn replication_seed_is_pure() {
        assert_eq!(replication_seed(7, 3), replication_seed(7, 3));
        assert_ne!(replication_seed(7, 3), replication_seed(8, 3));
        assert_ne!(replication_seed(7, 3), replication_seed(7, 4));
    }

    #[test]
    fn single_rep_matches_direct_run() {
        // reps=1 through the engine must reproduce a direct run with the
        // derived seed, bit for bit.
        let engine = SimEngine::new(SimEngineConfig::with_reps(1).master_seed(99));
        let merged = engine.run(tiny_cfg);
        let mut direct_cfg = tiny_cfg(0);
        direct_cfg.seed = replication_seed(99, 0);
        let direct = direct_cfg.run();
        assert_eq!(merged.per_rep.len(), 1);
        assert_eq!(merged.events, direct.events);
        assert_eq!(
            merged.ping_rtt.mean_s.to_bits(),
            direct.ping_rtt.mean_s.to_bits()
        );
        assert_eq!(merged.ping_rtt.mean_ci95_s, None);
        assert_eq!(
            merged.per_rep[0].downstream_delay.quantiles,
            direct.downstream_delay.quantiles
        );
    }

    #[test]
    fn jobs_do_not_change_the_merged_report() {
        let serial = SimEngine::new(SimEngineConfig::with_reps(5).master_seed(7).jobs(1));
        let parallel = SimEngine::new(SimEngineConfig::with_reps(5).master_seed(7).jobs(4));
        let a = serial.run(tiny_cfg);
        let b = parallel.run(tiny_cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.ping_rtt.count, b.ping_rtt.count);
        assert_eq!(a.ping_rtt.mean_s.to_bits(), b.ping_rtt.mean_s.to_bits());
        assert_eq!(
            a.ping_rtt.mean_ci95_s.map(f64::to_bits),
            b.ping_rtt.mean_ci95_s.map(f64::to_bits)
        );
        for (qa, qb) in a.ping_rtt.quantiles.iter().zip(&b.ping_rtt.quantiles) {
            assert_eq!(qa.value_s.to_bits(), qb.value_s.to_bits());
            assert_eq!(qa.pooled_s.to_bits(), qb.pooled_s.to_bits());
        }
        for (ra, rb) in a.per_rep.iter().zip(&b.per_rep) {
            assert_eq!(ra.events, rb.events);
            assert_eq!(
                ra.upstream_delay.mean_s.to_bits(),
                rb.upstream_delay.mean_s.to_bits()
            );
        }
    }

    #[test]
    fn confidence_intervals_shrink_with_more_reps() {
        let few = SimEngine::new(SimEngineConfig::with_reps(2).master_seed(5)).run(tiny_cfg);
        let many = SimEngine::new(SimEngineConfig::with_reps(8).master_seed(5)).run(tiny_cfg);
        let hw_few = few.ping_rtt.mean_ci95_s.expect("R=2 has a CI");
        let hw_many = many.ping_rtt.mean_ci95_s.expect("R=8 has a CI");
        assert!(hw_few > 0.0);
        assert!(
            hw_many < hw_few,
            "CI should shrink: R=2 gives {hw_few}, R=8 gives {hw_many}"
        );
    }

    #[test]
    fn streaming_mode_merges_and_bounds_memory() {
        let engine = SimEngine::new(
            SimEngineConfig::with_reps(3)
                .master_seed(11)
                .stream_quantiles(true),
        );
        let exact = SimEngine::new(SimEngineConfig::with_reps(3).master_seed(11));
        let s = engine.run(tiny_cfg);
        let e = exact.run(tiny_cfg);
        assert_eq!(s.ping_rtt.count, e.ping_rtt.count);
        // Streaming medians track the exact ones. The per-replication
        // sample counts here are small (a few hundred), so this is a
        // sanity band; the tight P² error bound is asserted on 10⁶-sample
        // runs in the probe tests.
        let sq = s.ping_rtt.quantiles.iter().find(|q| q.p == 0.5).unwrap();
        let eq = e.ping_rtt.quantiles.iter().find(|q| q.p == 0.5).unwrap();
        for (got, want) in [(sq.pooled_s, eq.pooled_s), (sq.value_s, eq.value_s)] {
            assert!(
                (got - want).abs() < 0.2 * want.abs().max(1e-9),
                "streaming median {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn par_map_preserves_index_order() {
        for jobs in [1, 2, 3, 7, 16] {
            let out = par_map(13, jobs, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(par_map(0, 4, |i| i).is_empty());
    }
}
