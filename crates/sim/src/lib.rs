//! # fpsping-sim
//!
//! A packet-level discrete-event simulator of the access-network
//! architecture the paper analyzes (Figure 2):
//!
//! ```text
//!  client 1 ──Rup──┐                         ┌──Rdown── client 1
//!  client 2 ──Rup──┤                         ├──Rdown── client 2
//!     ⋮            ├─[agg node]──C──[server]─┤             ⋮
//!  client N ──Rup──┘          (bottleneck)   └──Rdown── client N
//! ```
//!
//! Upstream, each client's periodic packets meet the other clients' at the
//! aggregation node and queue for the bottleneck link `C` — the N·D/D/1 →
//! M/G/1 system of §3.1. Downstream, the server's per-tick bursts queue on
//! `C` toward the fan-out point — the D/E_K/1 system of §3.2 — and packets
//! deeper in a burst additionally wait for the packets ahead of them
//! (§3.2.2).
//!
//! The simulator is the reproduction's *measurement substrate*: the paper
//! validated nothing in a testbed we could rerun, so every analytic claim
//! (quantiles, K-sensitivity, load limits) is checked against this
//! independent packet-level implementation instead.
//!
//! Modules:
//!
//! * [`time`] — integer-nanosecond virtual time (no float drift in the
//!   event clock),
//! * [`calendar`] — the pending-event set: binary-heap and O(1)
//!   bucket-ring backends behind one enum, bit-identical event order,
//! * [`packet`] — packets and traffic classes,
//! * [`scheduler`] — FIFO, non-preemptive HoL priority, and WFQ service
//!   disciplines (the Section-1 discussion),
//! * [`link`] — a store-and-forward output link with one of those
//!   disciplines,
//! * [`probe`] — delay probes: streaming moments, bounded sample
//!   reservoirs, threshold exceedance counters,
//! * [`network`] — the Figure-2 topology: configuration, event loop, and
//!   the [`network::SimReport`] of measured delays,
//! * [`rng`] — batched RNG draws with a sequence-exactness guarantee,
//! * [`engine`] — the replicated-simulation engine: R independent
//!   replications across threads, deterministic per-replication seeds,
//!   merged estimates with 95% confidence intervals,
//! * [`scale`] — the sharded scale engine: N = 10⁵–10⁶ players across
//!   per-DSLAM subtrees feeding a core link, deterministic across shard
//!   counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod link;
pub mod network;
pub mod packet;
pub mod probe;
pub mod rng;
pub mod scale;
pub mod scheduler;
pub mod time;

pub use calendar::{Calendar, CalendarKind, CalendarStats};
pub use engine::{MergedProbe, ReplicatedReport, SimEngine, SimEngineConfig};
pub use network::{BurstSizing, NetworkConfig, SimReport};
pub use packet::{Packet, TrafficClass};
pub use scale::{ScaleConfig, ScaleEngine, ScaleReport};
pub use time::SimTime;
