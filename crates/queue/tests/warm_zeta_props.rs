//! Property tests for the continuation (warm-started) D/E_K/1 root solves.
//!
//! `DekSolution::solve_warm` seeds branch `j`'s Newton polish from a
//! neighboring load's root for the *same* branch. Two things must hold for
//! every `(K, ρ)` a sweep can visit:
//!
//! 1. **Accuracy** — warm roots agree with cold roots within the documented
//!    tolerance (warm results are Newton-converged to 1e-15 relative, so
//!    the two independently-converged solves may differ only in the last
//!    few ulps);
//! 2. **No branch crossing** — continuation must never let branch `j`'s
//!    Newton iterate drift into branch `i ≠ j`'s basin: the warm root set
//!    must match the cold root set under the *identity* permutation, not
//!    merely as sets.

use fpsping_queue::dek1::DekSolution;
use proptest::prelude::*;

/// Warm-vs-cold root agreement bound (relative to `1 + |ζ|`). Both solves
/// finish with the same Newton polish at 1e-15 relative step tolerance, so
/// their disagreement is a few ulps of independent round-off — 1e-12
/// leaves two orders of headroom, including at the ρ → 1 near-singular
/// edge where the branch-0 root approaches the repelling fixed point 1.
const WARM_VS_COLD_TOL: f64 = 1e-12;

/// Nearest-cold-root index for a warm root — the assignment that must be
/// the identity for continuation to be crossing-free.
fn nearest_index(z: fpsping_num::Complex64, cold: &DekSolution) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, &zc) in cold.zetas().iter().enumerate() {
        let d = (z - zc).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random grid walk: a sorted load ladder (always ending at a
    /// near-singular ρ ∈ [0.995, 0.9995]) walked with continuation, each
    /// rung compared against an independent cold solve.
    #[test]
    fn warm_walk_matches_cold_across_random_grid(
        k in 1u32..=24,
        load_draws in proptest::collection::vec(0.02f64..0.95, 2..10),
        near_one in 0.995f64..0.9995,
    ) {
        let mut loads = load_draws;
        loads.push(near_one);
        loads.sort_by(|a, b| a.partial_cmp(b).expect("finite loads"));
        let mut prev: Option<DekSolution> = None;
        for &rho in &loads {
            let cold = DekSolution::solve(k, rho).expect("cold solve");
            let warm = DekSolution::solve_warm(k, rho, prev.as_ref()).expect("warm solve");
            for (j, (&zc, &zw)) in cold.zetas().iter().zip(warm.zetas()).enumerate() {
                prop_assert!(
                    (zc - zw).abs() <= WARM_VS_COLD_TOL * (1.0 + zc.abs()),
                    "K={k} rho={rho} branch {j}: cold {zc:?} vs warm {zw:?}"
                );
            }
            prev = Some(warm);
        }
    }

    /// Walking the ladder *downward* (continuation seeded from a higher
    /// load) must be as crossing-free as walking up.
    #[test]
    fn warm_walk_downward_matches_cold(
        k in 2u32..=20,
        start in 0.90f64..0.995,
        steps in 3usize..12,
    ) {
        let mut prev: Option<DekSolution> = None;
        for i in 0..steps {
            let rho = 0.02 + (start - 0.02) * (1.0 - i as f64 / steps as f64);
            let cold = DekSolution::solve(k, rho).expect("cold solve");
            let warm = DekSolution::solve_warm(k, rho, prev.as_ref()).expect("warm solve");
            for (j, (&zc, &zw)) in cold.zetas().iter().zip(warm.zetas()).enumerate() {
                prop_assert!(
                    (zc - zw).abs() <= WARM_VS_COLD_TOL * (1.0 + zc.abs()),
                    "K={k} rho={rho} branch {j}: cold {zc:?} vs warm {zw:?}"
                );
            }
            prev = Some(warm);
        }
    }
}

/// Regression: continuation never permutes roots across branches. Fine
/// steps up to ρ = 0.999 — the regime where the roots crowd toward the
/// unit circle and a sloppy seed could plausibly hop basins — checking
/// that each warm root's nearest cold root is its own branch index.
#[test]
fn continuation_never_crosses_roots() {
    for &k in &[3u32, 9, 16] {
        let mut prev: Option<DekSolution> = None;
        let mut loads: Vec<f64> = (1..=18).map(|i| 0.05 * i as f64).collect();
        loads.extend([0.96, 0.97, 0.98, 0.99, 0.995, 0.999]);
        for &rho in &loads {
            let cold = DekSolution::solve(k, rho).expect("cold solve");
            let warm = DekSolution::solve_warm(k, rho, prev.as_ref()).expect("warm solve");
            for (j, &zw) in warm.zetas().iter().enumerate() {
                let nearest = nearest_index(zw, &cold);
                assert_eq!(
                    nearest, j,
                    "K={k} rho={rho}: warm branch {j} landed nearest cold branch {nearest}"
                );
            }
            prev = Some(warm);
        }
    }
}
