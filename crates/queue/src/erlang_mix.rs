//! The sum-of-Erlang-terms MGF representation and its algebra (Appendix A).
//!
//! Every delay factor in the paper — the upstream approximation of
//! eq. (14), the burst waiting time of eq. (18), the packet-position delay
//! of eq. (34) — has an MGF of the form
//!
//! ```text
//! M(s) = c + Σ_λ Σ_{m=1}^{M_λ} A_{λ,m} · (λ/(λ-s))^m ,    Re λ > 0,
//! ```
//!
//! i.e. an atom of mass `c` at zero plus a weighted sum of (possibly
//! complex-pole) Erlang terms. Appendix A shows this family is closed
//! under products: re-expanding `F·G` in partial fractions turns each
//! pole's coefficients into a discrete convolution with the derivatives of
//! the *other* factor (eq. 43). The inversion is then term-by-term,
//!
//! ```text
//! P(X > x) = Re Σ A_{λ,m} · e^{-λx} · Σ_{i<m} (λx)^i / i! ,
//! ```
//!
//! which is exactly how the paper obtains the tail of the total queueing
//! delay from eq. (35).

use fpsping_num::poly::rising_factorial;
use fpsping_num::Complex64;
use fpsping_obs::Counter;

static BRACKET_SEARCHES: Counter = Counter::new("queue.quantile.bracket.searches");
static BRACKET_STEPS: Counter = Counter::new("queue.quantile.bracket.steps");

/// One pole of an [`ErlangMix`] together with the coefficients of all its
/// multiplicities: `Σ_{m=1}^{M} coeffs[m-1] · (pole/(pole-s))^m`.
#[derive(Debug, Clone, PartialEq)]
pub struct PoleBlock {
    /// The pole location λ; `Re λ > 0` for a proper (decaying) term.
    pub pole: Complex64,
    /// `coeffs[m-1]` multiplies the Erlang term of multiplicity `m`.
    pub coeffs: Vec<Complex64>,
}

impl PoleBlock {
    /// Highest multiplicity present.
    pub fn max_multiplicity(&self) -> u32 {
        self.coeffs.len() as u32
    }

    /// Evaluates this block's contribution to the MGF at `s`.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        // Branchless reciprocal: poles and evaluation points are queueing
        // rates / contour points (magnitudes ~1e0–1e6), safely inside
        // `inv_fast`'s range; this sits in the innermost loop of every
        // numerical tail inversion.
        let base = self.pole * (self.pole - s).inv_fast();
        let n = self.coeffs.len();
        if n >= 6 {
            // Equal-coefficient ladder (the uniform K-stage position
            // factor): Σ_m c·base^m is a geometric sum, O(log K) instead
            // of O(K). Guarded to |1 - base| > 0.2 so the cancellation in
            // the closed form stays at the ~1 ulp level of the ladder sum
            // (numerical tails amplify transform noise by ~10^6; a sloppier
            // guard here would show up in the quantile tolerance).
            let c0 = self.coeffs[0];
            let one_minus = Complex64::ONE - base;
            if one_minus.norm_sqr() > 0.04 && self.coeffs.iter().all(|&c| c == c0) {
                let bn = base.powi(n as i32);
                return c0 * base * (Complex64::ONE - bn) * one_minus.inv_fast();
            }
        }
        let mut acc = Complex64::ZERO;
        let mut pw = Complex64::ONE;
        for &c in &self.coeffs {
            pw *= base;
            acc += c * pw;
        }
        acc
    }

    /// The l-th derivative (w.r.t. `s`) of this block at `s`.
    ///
    /// Uses `d^l/ds^l (λ/(λ-s))^m = λ^m (m)_l (λ-s)^{-(m+l)}` with `(m)_l`
    /// the rising factorial.
    pub fn derivative(&self, s: Complex64, l: u32) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for (i, &c) in self.coeffs.iter().enumerate() {
            let m = (i + 1) as u32;
            let lam_pow = self.pole.powi(m as i32);
            let denom = (self.pole - s).powi((m + l) as i32);
            acc += c * lam_pow * rising_factorial(m, l) / denom;
        }
        acc
    }

    /// This block's contribution to the tail `P(X > x)` (complex; the mix
    /// sums blocks and takes the real part).
    ///
    /// The partial exponential sums `P(m) = Σ_{t<m} (λx)^t/t!` for
    /// `m = 1..M` share their prefixes, so one incremental pass computes
    /// all of them in O(M) — the term and sum recurrences are exactly
    /// those of [`partial_exp_complex`], so every `P(m)` (and therefore
    /// the block tail) is bit-identical to the scratch evaluation the
    /// quantile solvers relied on before.
    pub fn tail(&self, x: f64) -> Complex64 {
        let lx = self.pole * x;
        let decay = (-lx).exp();
        let mut acc = Complex64::ZERO;
        // P(1) = 1; P(m+1) = P(m) + term_m with term_m = (λx)^m/m!.
        let mut term = Complex64::ONE;
        let mut psum = Complex64::ONE;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                term *= lx / i as f64;
                psum += term;
            }
            acc += c * psum;
        }
        acc * decay
    }

    /// Contribution to the mean: `Σ_m A_m · m/λ` (Erlang(m, λ) mean).
    pub fn mean(&self) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for (i, &c) in self.coeffs.iter().enumerate() {
            acc += c * ((i + 1) as f64);
        }
        acc / self.pole
    }
}

/// An MGF of the Appendix-A family: constant (atom at zero) plus Erlang
/// terms grouped by pole.
///
/// # Examples
///
/// ```
/// use fpsping_queue::ErlangMix;
///
/// // (1-ρ) + ρ·γ/(γ-s): the paper's eq.-14 upstream approximation.
/// let up = ErlangMix::exponential_with_atom(0.6, 0.4, 2000.0);
/// // An Erlang(3, 500) component:
/// let pos = ErlangMix::single_real_pole(0.0, 500.0, vec![0.0, 0.0, 1.0]);
/// // Appendix-A product — still a valid probability law:
/// let total = up.product(&pos);
/// assert!((total.total_mass() - 1.0).abs() < 1e-10);
/// assert!(total.quantile(0.99999) > pos.quantile(0.99999));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErlangMix {
    /// Mass of the atom at zero (`P(X = 0)` for a proper delay law).
    pub constant: f64,
    /// The pole blocks; poles must be pairwise distinct.
    pub blocks: Vec<PoleBlock>,
}

/// Relative tolerance under which two poles are considered colliding in
/// [`ErlangMix::product`]; the second pole is nudged by this amount.
const POLE_COLLISION_RTOL: f64 = 1e-7;

/// Finds the canonical quantile bracket `scale·2ⁿ` with `n ∈ [0, 200]`
/// minimal such that `done(scale·2ⁿ)` holds (or `n = 200` if none does —
/// the same give-up point as a cold doubling search).
///
/// A valid `hint` (a nearby quantile) only changes *where the search
/// starts*: the walk down/up still lands on the minimal satisfying `n`,
/// so hinted and cold callers obtain the exact same bracket — and
/// therefore bit-identical roots from any deterministic solve run on it.
/// Doubling a finite positive float is exact, so `scale·2ⁿ` is the same
/// value however it is reached.
pub(crate) fn canonical_bracket(done: impl Fn(f64) -> bool, scale: f64, hint: Option<f64>) -> f64 {
    const MAX_DOUBLINGS: i32 = 200;
    BRACKET_SEARCHES.incr();
    let at = |n: i32| scale * 2f64.powi(n);
    let mut n = match hint {
        Some(h) if h.is_finite() && h > 0.0 => {
            ((h / scale).log2().ceil()).clamp(0.0, MAX_DOUBLINGS as f64) as i32
        }
        _ => 0,
    };
    if done(at(n)) {
        while n > 0 && done(at(n - 1)) {
            n -= 1;
            BRACKET_STEPS.incr();
        }
    } else {
        while n < MAX_DOUBLINGS && !done(at(n)) {
            n += 1;
            BRACKET_STEPS.incr();
        }
    }
    at(n)
}

impl ErlangMix {
    /// The MGF of the constant 0 (unit mass at the origin).
    pub fn unit() -> Self {
        Self {
            constant: 1.0,
            blocks: Vec::new(),
        }
    }

    /// A single real-pole mix `c + Σ_m A_m (λ/(λ-s))^m`.
    pub fn single_real_pole(constant: f64, pole: f64, coeffs: Vec<f64>) -> Self {
        assert!(pole > 0.0, "single_real_pole: pole must be positive");
        Self {
            constant,
            blocks: vec![PoleBlock {
                pole: Complex64::from_real(pole),
                coeffs: coeffs.into_iter().map(Complex64::from_real).collect(),
            }],
        }
    }

    /// The paper's eq. (14) shape: `(1-ρ) + ρ·γ/(γ-s)`.
    pub fn exponential_with_atom(atom: f64, weight: f64, rate: f64) -> Self {
        Self::single_real_pole(atom, rate, vec![weight])
    }

    /// Evaluates the MGF at complex `s`.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        let mut acc = Complex64::from_real(self.constant);
        for b in &self.blocks {
            acc += b.eval(s);
        }
        acc
    }

    /// The l-th derivative of the MGF at `s` (constant contributes only at
    /// `l = 0`).
    pub fn derivative(&self, s: Complex64, l: u32) -> Complex64 {
        let mut acc = if l == 0 {
            Complex64::from_real(self.constant)
        } else {
            Complex64::ZERO
        };
        for b in &self.blocks {
            acc += b.derivative(s, l);
        }
        acc
    }

    /// Tail distribution function `P(X > x)` for `x ≥ 0`, by term-by-term
    /// inversion (real part of the complex block sum). Panics if `x < 0`;
    /// finite for finite coefficients (cancellation, not overflow, is the
    /// failure mode — see [`ErlangMix::coeff_l1`]).
    pub fn tail(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "tail: x must be non-negative");
        let t: Complex64 = self.blocks.iter().map(|b| b.tail(x)).sum();
        t.re
    }

    /// Mean of the distribution: `Σ_blocks Σ_m A_m m/λ` (real part).
    /// Finite whenever every block coefficient is finite.
    pub fn mean(&self) -> f64 {
        let m: Complex64 = self.blocks.iter().map(|b| b.mean()).sum();
        m.re
    }

    /// Total mass `M(0) = constant + Σ A` — must be 1 for a probability
    /// law; exposed for validation. Finite whenever every coefficient is
    /// finite.
    pub fn total_mass(&self) -> f64 {
        self.eval(Complex64::ZERO).re
    }

    /// L1 norm of the expansion coefficients, `|c| + Σ|A_{λ,m}|`.
    ///
    /// A probability law has mass 1, so an L1 norm far above 1 means the
    /// expansion relies on massive cancellation between terms — the
    /// intrinsic ill-conditioning of the partial-fraction form when poles
    /// cluster (D/E_K/1 poles approach the position pole β as ρ_d → 0).
    /// Roughly, tail values carry an absolute error of `coeff_l1 · ε_f64`;
    /// callers needing 1e-5 tails should distrust expansions with
    /// `coeff_l1 ≳ 1e7` and fall back to numerical inversion of the
    /// unexpanded factors. Always finite and non-negative for finite
    /// coefficients.
    pub fn coeff_l1(&self) -> f64 {
        self.constant.abs()
            + self
                .blocks
                .iter()
                .map(|b| b.coeffs.iter().map(|c| c.abs()).sum::<f64>())
                .sum::<f64>()
    }

    /// `P(X > 0) = 1 - constant` for a proper law (also `tail(0)`);
    /// finite, in `[0, 1]` up to round-off.
    pub fn prob_positive(&self) -> f64 {
        self.tail(0.0)
    }

    /// The decay rate of the slowest (dominant) pole: `min Re λ`.
    ///
    /// Returns `None` when the mix is a pure atom.
    pub fn dominant_decay(&self) -> Option<f64> {
        self.blocks
            .iter()
            .map(|b| b.pole.re)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Tail using *only* the dominant pole block (plus its complex
    /// conjugate partner, which lives in the same real-part sum) — the
    /// "method of the dominant pole" of §3.3.
    pub fn tail_dominant_pole(&self, x: f64) -> f64 {
        let Some(dom) = self.dominant_decay() else {
            return 0.0;
        };
        // Include every block whose decay is within 0.1% of the dominant
        // one (conjugate pairs and genuine ties).
        let t: Complex64 = self
            .blocks
            .iter()
            .filter(|b| b.pole.re <= dom * (1.0 + 1e-3) + 1e-300)
            .map(|b| b.tail(x))
            .sum();
        t.re
    }

    /// The p-quantile of the delay: smallest `x ≥ 0` with
    /// `P(X > x) ≤ 1 - p`. Solved by bisection on the closed-form tail.
    ///
    /// For the paper's headline number use `p = 0.99999` (the 99.999 %
    /// quantile of §4). Panics unless `p ∈ (0, 1)`; NaN if the bracketed
    /// solve fails to converge.
    pub fn quantile(&self, p: f64) -> f64 {
        self.quantile_with_hint(p, None)
    }

    /// [`ErlangMix::quantile`] warm-started from a nearby known quantile
    /// (e.g. the same mix's quantile at a neighboring grid cell).
    ///
    /// The hint only short-circuits the bracket *search*: both paths end
    /// on the identical canonical bracket `[0, scale·2ⁿ]` (`n` minimal
    /// with the tail below target), so the hinted result is bit-identical
    /// to the cold one — a cell evaluated through a sweep engine's warm
    /// start can be diffed exactly against a fresh evaluation.
    ///
    /// Panics unless `p ∈ (0, 1)`; NaN if the bracketed solve fails to
    /// converge.
    pub fn quantile_with_hint(&self, p: f64, hint: Option<f64>) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        let target = 1.0 - p;
        if self.tail(0.0) <= target {
            return 0.0;
        }
        let scale = self
            .dominant_decay()
            .map(|d| 1.0 / d)
            .unwrap_or(1.0)
            .max(self.mean().abs())
            .max(1e-12);
        let hi = canonical_bracket(|x| self.tail(x) <= target, scale, hint);
        let f = |x: f64| self.tail(x) - target;
        fpsping_num::roots::brent(f, 0.0, hi, 1e-12 * scale.max(1.0), 300)
            .map(|r| r.root)
            .unwrap_or(f64::NAN)
    }

    /// Quantile via the dominant-pole tail (§3.3's shortcut).
    pub fn quantile_dominant_pole(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        let target = 1.0 - p;
        if self.blocks.is_empty() || self.tail_dominant_pole(0.0) <= target {
            return 0.0;
        }
        // lint:allow(unwrap): the empty-blocks case returned 0.0 just above
        let scale = 1.0 / self.dominant_decay().unwrap();
        let mut hi = scale;
        for _ in 0..200 {
            if self.tail_dominant_pole(hi) <= target {
                break;
            }
            hi *= 2.0;
        }
        fpsping_num::roots::brent(
            |x| self.tail_dominant_pole(x) - target,
            0.0,
            hi,
            1e-12 * scale.max(1.0),
            300,
        )
        .map(|r| r.root)
        .unwrap_or(f64::NAN)
    }

    /// Chernoff-bound tail (the method of eq. (36)):
    /// `P(X > x) ≈ inf_{0<s<s_max} e^{-sx}·M(s)`, minimized on the real
    /// segment below the dominant pole.
    pub fn tail_chernoff(&self, x: f64) -> f64 {
        let Some(dom) = self.dominant_decay() else {
            return 0.0;
        };
        let s_max = dom * (1.0 - 1e-9);
        let obj = |s: f64| {
            let v = self.eval(Complex64::from_real(s));
            (-s * x).exp() * v.re
        };
        // Golden-section search on (0, s_max).
        golden_min(obj, 0.0, s_max, 1e-12).1
    }

    /// Quantile via the Chernoff tail. Panics unless `p ∈ (0, 1)`; NaN if
    /// the bracketed solve fails to converge.
    pub fn quantile_chernoff(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        let target = 1.0 - p;
        if self.blocks.is_empty() {
            return 0.0;
        }
        // lint:allow(unwrap): the empty-blocks case returned 0.0 just above
        let scale = 1.0 / self.dominant_decay().unwrap();
        let mut hi = scale;
        for _ in 0..200 {
            if self.tail_chernoff(hi) <= target {
                break;
            }
            hi *= 2.0;
        }
        fpsping_num::roots::brent(
            |x| self.tail_chernoff(x) - target,
            0.0,
            hi,
            1e-12 * scale.max(1.0),
            300,
        )
        .map(|r| r.root)
        .unwrap_or(f64::NAN)
    }

    /// Product of two mixes with disjoint pole sets, re-expanded into the
    /// same family via the Appendix-A convolution.
    ///
    /// Nearly colliding poles (relative distance below `1e-7`) in `other`
    /// are nudged apart by that relative amount first; the paper assumes
    /// distinct poles (it verifies αⱼ ≠ β) and the nudge keeps the result
    /// well-conditioned when an upstream pole happens to graze a
    /// downstream one.
    pub fn product(&self, other: &ErlangMix) -> ErlangMix {
        let other = other.nudged_away_from(self);
        let mut blocks = Vec::with_capacity(self.blocks.len() + other.blocks.len());
        // New coefficients at each pole of `self`: convolve with the
        // derivatives of the full `other` factor (analytic there).
        for b in &self.blocks {
            blocks.push(convolve_block(b, &other));
        }
        for b in &other.blocks {
            blocks.push(convolve_block(b, self));
        }
        ErlangMix {
            constant: self.constant * other.constant,
            blocks,
        }
    }

    /// Returns a copy of `self` whose poles have been nudged away from any
    /// pole of `reference` they nearly coincide with.
    fn nudged_away_from(&self, reference: &ErlangMix) -> ErlangMix {
        let mut out = self.clone();
        for b in &mut out.blocks {
            for rb in &reference.blocks {
                let dist = (b.pole - rb.pole).abs();
                let scale = b.pole.abs().max(rb.pole.abs());
                if dist < POLE_COLLISION_RTOL * scale {
                    b.pole = b.pole * (1.0 + 16.0 * POLE_COLLISION_RTOL);
                }
            }
        }
        out
    }
}

/// Computes the pole block of `F·G` at a pole of `F` (eq. 43):
/// `B_k = Σ_{m=k}^{M} A_m · (-λ)^{m-k} · G^{(m-k)}(λ)/(m-k)!`.
fn convolve_block(block: &PoleBlock, other: &ErlangMix) -> PoleBlock {
    let lam = block.pole;
    let m_max = block.coeffs.len();
    if m_max == 0 {
        return PoleBlock {
            pole: lam,
            coeffs: Vec::new(),
        };
    }
    // g_terms[l] = G^{(l)}(λ)/l! · (-λ)^l for l = 0..M-1, accumulated in
    // one incremental pass per pole of G: the term of multiplicity m
    // contributes A_m·(p·u)^m·C(m+l-1, l)·(-λ·u)^l to g_l, with
    // u = 1/(p-λ) — so powers and binomials update in O(1) per step
    // instead of the O(log) `powi` + divide per (m, l) pair of the naive
    // derivative formula.
    let mut g_terms = vec![Complex64::ZERO; m_max];
    g_terms[0] = Complex64::from_real(other.constant);
    for b in &other.blocks {
        let u = (b.pole - lam).inv();
        let pu = b.pole * u;
        let v = -lam * u;
        let mut pm = Complex64::ONE;
        for (i, &a) in b.coeffs.iter().enumerate() {
            let m = i + 1;
            pm *= pu;
            let apm = a * pm;
            let mut binom = 1.0; // C(m+l-1, l) at l = 0
            let mut vp = Complex64::ONE;
            for (l, g) in g_terms.iter_mut().enumerate() {
                *g += apm * binom * vp;
                binom = binom * (m + l) as f64 / (l + 1) as f64;
                vp *= v;
            }
        }
    }
    let mut coeffs = vec![Complex64::ZERO; m_max];
    for k in 1..=m_max {
        let mut acc = Complex64::ZERO;
        for m in k..=m_max {
            acc += block.coeffs[m - 1] * g_terms[m - k];
        }
        coeffs[k - 1] = acc;
    }
    PoleBlock { pole: lam, coeffs }
}

/// Golden-section minimization of a unimodal-ish function on `(a, b)`;
/// returns `(argmin, min)`.
fn golden_min(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> (f64, f64) {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (a, b);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..200 {
        if (b - a).abs() < tol * (a.abs() + b.abs()).max(1.0) {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

#[cfg(test)]
#[allow(clippy::unnecessary_cast)]
mod tests {
    use super::*;
    use fpsping_num::laplace::{tail_from_mgf, DEFAULT_EULER_M};

    /// Exponential-with-atom mix: (1-w) + w·λ/(λ-s).
    fn expo(w: f64, lam: f64) -> ErlangMix {
        ErlangMix::exponential_with_atom(1.0 - w, w, lam)
    }

    /// Pure Erlang(m, λ) as a mix.
    fn erl(m: usize, lam: f64) -> ErlangMix {
        let mut coeffs = vec![0.0; m];
        coeffs[m - 1] = 1.0;
        ErlangMix::single_real_pole(0.0, lam, coeffs)
    }

    #[test]
    fn unit_mix_is_degenerate_at_zero() {
        let u = ErlangMix::unit();
        assert_eq!(u.total_mass(), 1.0);
        assert_eq!(u.tail(0.0), 0.0);
        assert_eq!(u.mean(), 0.0);
        assert_eq!(u.quantile(0.999), 0.0);
    }

    #[test]
    fn exponential_mix_tail_and_mean() {
        let m = expo(0.3, 2.0);
        assert!((m.total_mass() - 1.0).abs() < 1e-14);
        assert!((m.tail(0.0) - 0.3).abs() < 1e-14);
        assert!((m.tail(1.0) - 0.3 * (-2.0f64).exp()).abs() < 1e-14);
        assert!((m.mean() - 0.3 / 2.0).abs() < 1e-14);
    }

    #[test]
    fn erlang_mix_tail_matches_gamma_q() {
        let m = erl(5, 1.3);
        for &x in &[0.1, 1.0, 5.0, 12.0] {
            let expect = fpsping_num::special::gamma_q(5.0, 1.3 * x);
            assert!((m.tail(x) - expect).abs() < 1e-12, "x={x}");
        }
        assert!((m.mean() - 5.0 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_tail() {
        let m = expo(0.8, 0.5);
        for &p in &[0.9, 0.99, 0.99999] {
            let q = m.quantile(p);
            assert!((m.tail(q) - (1.0 - p)).abs() < 1e-12, "p={p}");
        }
        // Atom large enough that the 50% quantile is 0.
        let m2 = expo(0.3, 1.0);
        assert_eq!(m2.quantile(0.7), 0.0);
    }

    #[test]
    fn product_of_two_exponentials_matches_convolution() {
        // X ~ Exp(1) (no atom), Y ~ Exp(2): sum has tail
        // 2e^{-x} - e^{-2x} (hypoexponential).
        let x = erl(1, 1.0);
        let y = erl(1, 2.0);
        let p = x.product(&y);
        assert!((p.total_mass() - 1.0).abs() < 1e-12);
        for &t in &[0.2, 1.0, 3.0, 8.0] {
            let expect = 2.0 * (-t as f64).exp() - (-2.0 * t as f64).exp();
            assert!(
                (p.tail(t) - expect).abs() < 1e-11,
                "t={t}: {} vs {expect}",
                p.tail(t)
            );
        }
        assert!((p.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn product_with_atoms_keeps_masses() {
        // (0.4 + 0.6·Exp(1)) ⊗ (0.5 + 0.5·Exp(3)).
        let a = expo(0.6, 1.0);
        let b = expo(0.5, 3.0);
        let p = a.product(&b);
        assert!((p.constant - 0.2).abs() < 1e-14);
        assert!((p.total_mass() - 1.0).abs() < 1e-12);
        // Mean adds: 0.6·1 + 0.5/3.
        assert!((p.mean() - (0.6 + 0.5 / 3.0)).abs() < 1e-12);
        // MGF product check at a few points.
        for &s in &[-1.0, -0.2, 0.3] {
            let sc = Complex64::from_real(s);
            let direct = a.eval(sc) * b.eval(sc);
            let expanded = p.eval(sc);
            assert!((direct - expanded).abs() < 1e-12, "s={s}");
        }
    }

    #[test]
    fn product_matches_numerical_inversion() {
        // Three-factor product shaped like the paper's eq. (35):
        // upstream (atom + expo), burst wait (two expo poles), position
        // (Erlang ladder) — validated against Abate–Whitt inversion.
        let up = expo(0.25, 4.0);
        let wait = ErlangMix {
            constant: 0.5,
            blocks: vec![
                PoleBlock {
                    pole: Complex64::from_real(1.0),
                    coeffs: vec![Complex64::from_real(0.3)],
                },
                PoleBlock {
                    pole: Complex64::from_real(2.5),
                    coeffs: vec![Complex64::from_real(0.2)],
                },
            ],
        };
        let pos = ErlangMix::single_real_pole(0.0, 3.0, vec![0.5, 0.5]);
        let total = up.product(&wait).product(&pos);
        assert!((total.total_mass() - 1.0).abs() < 1e-10);
        let mgf = |s: Complex64| total.eval(s);
        for &t in &[0.1, 0.5, 1.5, 4.0] {
            let numeric = tail_from_mgf(mgf, t, DEFAULT_EULER_M);
            let closed = total.tail(t);
            assert!(
                (numeric - closed).abs() < 1e-8,
                "t={t}: numeric {numeric} vs closed {closed}"
            );
        }
    }

    #[test]
    fn product_with_repeated_pole_in_one_factor() {
        // Erlang(3, 2) ⊗ Exp(1): tail check against numerical inversion —
        // exercises multiplicity > 1 convolution.
        let a = erl(3, 2.0);
        let b = erl(1, 1.0);
        let p = a.product(&b);
        let mgf = |s: Complex64| p.eval(s);
        for &t in &[0.3, 1.0, 2.5, 6.0] {
            let numeric = tail_from_mgf(mgf, t, DEFAULT_EULER_M);
            assert!((p.tail(t) - numeric).abs() < 1e-8, "t={t}");
        }
        // Mean adds.
        assert!((p.mean() - (1.5 + 1.0)).abs() < 1e-11);
    }

    #[test]
    fn product_nudges_colliding_poles() {
        let a = erl(1, 1.0);
        let b = erl(1, 1.0); // identical pole — would be singular
        let p = a.product(&b);
        // Exact answer is Erlang(2,1): tail e^{-x}(1+x).
        for &t in &[0.5, 2.0, 5.0] {
            let expect = (-t as f64).exp() * (1.0 + t);
            assert!(
                (p.tail(t) - expect).abs() < 1e-4,
                "t={t}: {} vs {expect}",
                p.tail(t)
            );
        }
    }

    #[test]
    fn complex_conjugate_pair_gives_real_tail() {
        // A conjugate pole pair with conjugate coefficients must produce a
        // real, valid tail.
        let pole = Complex64::new(1.0, 0.7);
        let coef = Complex64::new(0.2, -0.1);
        let m = ErlangMix {
            constant: 0.6,
            blocks: vec![
                PoleBlock {
                    pole,
                    coeffs: vec![coef],
                },
                PoleBlock {
                    pole: pole.conj(),
                    coeffs: vec![coef.conj()],
                },
            ],
        };
        assert!((m.total_mass() - 1.0).abs() < 0.2); // mass ≈ 1 by design
        for &x in &[0.0, 0.5, 2.0, 5.0] {
            let t = m.tail(x);
            assert!(t.is_finite());
            // Imaginary parts cancel inside `tail` by construction; check
            // the complex sum directly.
            let c: Complex64 = m.blocks.iter().map(|b| b.tail(x)).sum();
            assert!(c.im.abs() < 1e-13, "x={x}: im={}", c.im);
        }
    }

    #[test]
    fn chernoff_upper_bounds_exact_tail() {
        let m = expo(0.5, 1.0).product(&erl(2, 3.0));
        for &x in &[0.5, 1.0, 3.0, 6.0] {
            let exact = m.tail(x);
            let chern = m.tail_chernoff(x);
            assert!(
                chern >= exact - 1e-12,
                "Chernoff must upper-bound: x={x}, {chern} < {exact}"
            );
            // ... and not be absurdly loose (within ~an order of magnitude
            // for this well-behaved case).
            assert!(chern < 20.0 * exact.max(1e-12), "x={x}: {chern} vs {exact}");
        }
    }

    #[test]
    fn dominant_pole_tail_is_exact_asymptotically() {
        let m = ErlangMix {
            constant: 0.4,
            blocks: vec![
                PoleBlock {
                    pole: Complex64::from_real(0.5),
                    coeffs: vec![Complex64::from_real(0.35)],
                },
                PoleBlock {
                    pole: Complex64::from_real(5.0),
                    coeffs: vec![Complex64::from_real(0.25)],
                },
            ],
        };
        let x = 20.0;
        let full = m.tail(x);
        let dom = m.tail_dominant_pole(x);
        assert!((full - dom).abs() / full < 1e-10);
        // At x = 0 the dominant tail misses the fast pole's mass.
        assert!(m.tail_dominant_pole(0.0) < m.tail(0.0));
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let m = expo(0.7, 2.0).product(&erl(2, 5.0));
        let s = Complex64::from_real(-0.3);
        let h = 1e-5;
        for l in 1..4u32 {
            // Central finite difference of the (l-1)-th derivative.
            let f1 = m.derivative(s + Complex64::from_real(h), l - 1);
            let f2 = m.derivative(s - Complex64::from_real(h), l - 1);
            let fd = (f1 - f2) / (2.0 * h);
            let an = m.derivative(s, l);
            assert!(
                (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                "l={l}: fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn golden_min_finds_parabola_vertex() {
        let (x, v) = golden_min(|x| (x - 2.0) * (x - 2.0) + 1.0, 0.0, 10.0, 1e-12);
        assert!((x - 2.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-10);
    }
}
