//! # fpsping-queue
//!
//! The queueing theory of *"Modeling Ping times in First Person Shooter
//! games"* (Degrande et al., CWI PNA-R0608, 2006), Section 3 and the
//! appendices.
//!
//! The paper decomposes the stochastic part of the ping into three
//! independent delays and computes the quantile of their sum from moment
//! generating functions:
//!
//! ```text
//! total(s) = D_u(s) · W(s) · P(s)          (eq. 35)
//!            └──┬──┘  └─┬─┘  └─┬─┘
//!   upstream M/G/1   D/E_K/1   packet position
//!   (eq. 14)         burst wait within burst
//!                    (eqs. 18–27)  (eqs. 30–34)
//! ```
//!
//! Module map:
//!
//! * [`erlang_mix`] — the representation every factor shares: a constant
//!   (atom at zero) plus a sum of Erlang terms `A·(λ/(λ-s))^m`; products
//!   are re-expanded by the partial-fraction convolution of Appendix A and
//!   inverted in closed form.
//! * [`nddd1`] — the upstream N·D/D/1 queue: the dominant-term binomial
//!   supremum (eq. 4), the Chernoff / large-deviations estimate (eq. 10)
//!   and its M/D/1 Poisson limit (eq. 12).
//! * [`mg1`] — the M/G/1 queue the upstream converges to: exact
//!   Pollaczek–Khinchine transform and mean, the dominant pole γ, and the
//!   paper's two-term approximation `D_u(s) ≈ (1-ρ) + ρ·γ/(γ-s)` (eq. 14).
//! * [`dek1`] — the downstream D/E_K/1 queue: the K complex poles of
//!   eq. (26) via Appendix C's fixed-point iteration, the closed-form
//!   weights of eq. (27), and the resulting burst waiting-time law.
//! * [`position`] — the within-burst packet position delay (eqs. 30–34),
//!   uniform position and fixed-spot variants.
//! * [`combine`] — the product model and the paper's three quantile
//!   methods: full Erlang expansion (primary), dominant pole, and the
//!   Chernoff bound (eq. 36), plus the sum-of-quantiles shortcut.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod dek1;
pub mod erlang_mix;
pub mod mg1;
pub mod multi_server;
pub mod nddd1;
pub mod position;

pub use combine::{PositionFactor, TotalDelay};
pub use dek1::{DEk1, DekSolution};
pub use erlang_mix::ErlangMix;
pub use mg1::Mg1;
pub use multi_server::{MultiServerDownstream, ServerClass};
pub use position::{Position, PositionDelay};

/// Errors surfaced by the queueing constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    /// The offered load is not strictly inside (0, 1); no steady state.
    UnstableLoad {
        /// The offending load value.
        rho: f64,
    },
    /// A parameter is out of its admissible domain.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An internal root search failed to converge (should not happen for
    /// loads in (0, 1); indicates pathological parameters).
    SolveFailure {
        /// Human-readable description of what failed.
        what: &'static str,
    },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::UnstableLoad { rho } => {
                write!(f, "load {rho} is outside the stable region (0, 1)")
            }
            QueueError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
            QueueError::SolveFailure { what } => write!(f, "solver failure: {what}"),
        }
    }
}

impl std::error::Error for QueueError {}
