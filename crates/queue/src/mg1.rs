//! The upstream M/G/1 queue of §3.1.
//!
//! The superposition of many periodic client streams converges to a
//! Poisson stream (eq. 11 — reproduced numerically in the tests and in the
//! `poisson_limit` bench), so the upstream aggregation queue is analyzed
//! as M/G/1. This module provides:
//!
//! * the exact Pollaczek–Khinchine waiting-time transform (MGF convention
//!   `W(s) = (1-ρ)s / (s + λ(1 - B(s)))`) and mean
//!   `E[W] = λE[S²]/(2(1-ρ))`,
//! * the **dominant pole** γ — the positive root of `λ(B(γ) - 1) = γ` —
//!   and the paper's two-term approximation of eq. (14),
//!   `D_u(s) ≈ (1-ρ) + ρ·γ/(γ-s)`, whose inverse is the exponential tail
//!   `P(W > x) ≈ ρ·e^{-γx}`,
//! * multi-class mixing (eq. 13): several gamer classes with distinct
//!   packet sizes / periods collapse into one M/G/1 whose service law is
//!   the λ-weighted mixture ("at any arrival one could flip a coin to
//!   decide from which class the arrival is").

use crate::erlang_mix::ErlangMix;
use crate::QueueError;
use fpsping_dist::{Distribution, Mixture};
use fpsping_num::finite_guard::finite;
use fpsping_num::Complex64;
use fpsping_obs::Counter;
use std::sync::OnceLock;

static POLE_SOLVES: Counter = Counter::new("queue.mg1.pole.solves");
static POLE_BRACKET_EXPANSIONS: Counter = Counter::new("queue.mg1.pole.bracket_expansions");
static POLE_BRENT_ITERS: Counter = Counter::new("queue.mg1.pole.brent_iterations");
static CDF_CLAMP_EXCURSIONS: Counter = Counter::new("queue.mg1.cdf_exact.clamp_excursions");

/// How far outside `[0, 1]` the pre-clamp Franx CDF sum may wander before
/// it is counted as a genuine cancellation blow-up rather than benign
/// last-ulp round-off. The alternating sum loses ~`ε·e^{λt}` absolute
/// digits, so by `λt ≈ 20` excursions of ~1e-7 are expected and anything
/// past this tolerance means the formula's answer is numerically dead.
pub const CDF_EXCURSION_TOL: f64 = 1e-6;

/// An M/G/1 queue: Poisson(λ) arrivals, i.i.d. service from a
/// [`Distribution`].
///
/// # Examples
///
/// ```
/// use fpsping_queue::mg1::mdd1;
///
/// // 80-byte packets on a 5 Mbps link (τ = 128 µs) at 50% load.
/// let q = mdd1(0.5 / 0.000128, 0.000128).unwrap();
/// // Pollaczek–Khinchine mean wait: ρτ/(2(1-ρ)) = 64 µs.
/// assert!((q.mean_wait() - 64e-6).abs() < 1e-9);
/// // The paper's eq.-14 tail approximation:
/// let tail = q.wait_tail_approx(0.001).unwrap();
/// assert!(tail > 0.0 && tail < 0.5);
/// ```
#[derive(Debug)]
pub struct Mg1 {
    lambda: f64,
    service: Box<dyn Distribution>,
    rho: f64,
    // The dominant pole γ depends only on (λ, service law); it is solved
    // lazily once and shared by every paper_mix()/wait_tail_approx() call
    // on this queue. `with_dominant_pole` pre-seeds it from an external
    // cache.
    pole: OnceLock<f64>,
}

impl Mg1 {
    /// Builds an M/G/1 with arrival rate `lambda` (per second) and the
    /// given service-time law (seconds). Requires `ρ = λ·E[S] ∈ (0, 1)`.
    pub fn new(lambda: f64, service: Box<dyn Distribution>) -> Result<Self, QueueError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        let mean = service.mean();
        if !(mean.is_finite() && mean > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "service mean",
                value: mean,
            });
        }
        let rho = lambda * mean;
        if !(0.0 < rho && rho < 1.0) {
            return Err(QueueError::UnstableLoad { rho });
        }
        Ok(Self {
            lambda,
            service,
            rho,
            pole: OnceLock::new(),
        })
    }

    /// Builds an M/G/1 whose dominant pole γ is already known (e.g. from
    /// a solver cache keyed on `(λ, packet mix)`), skipping the Brent
    /// solve entirely. The caller is responsible for `gamma` being the
    /// pole of exactly this `(lambda, service)` pair — it must have come
    /// from [`Mg1::dominant_pole`] on an identically-parameterised queue.
    pub fn with_dominant_pole(
        lambda: f64,
        service: Box<dyn Distribution>,
        gamma: f64,
    ) -> Result<Self, QueueError> {
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "gamma",
                value: gamma,
            });
        }
        let q = Self::new(lambda, service)?;
        let _ = q.pole.set(gamma);
        Ok(q)
    }

    /// Multi-class construction (eq. 13): class `i` contributes Poisson
    /// arrivals of rate `λᵢ` with its own service law; the aggregate is
    /// M/G/1 with `λ = Σλᵢ` and the λ-weighted service mixture.
    pub fn multi_class(classes: Vec<(f64, Box<dyn Distribution>)>) -> Result<Self, QueueError> {
        if classes.is_empty() {
            return Err(QueueError::InvalidParameter {
                name: "classes",
                value: 0.0,
            });
        }
        let lambda: f64 = classes.iter().map(|(l, _)| *l).sum();
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        let service = Mixture::new(classes);
        Self::new(lambda, Box::new(service))
    }

    /// Arrival rate λ; finite and positive by construction.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Load ρ = λ·E[S]; finite in `(0, 1)` by construction (stability is
    /// checked in `new`).
    pub fn load(&self) -> f64 {
        self.rho
    }

    /// The service-time law.
    pub fn service(&self) -> &dyn Distribution {
        self.service.as_ref()
    }

    /// Mean waiting time (Pollaczek–Khinchine):
    /// `E[W] = λ·E[S²] / (2(1-ρ))`. Finite for every stable queue whose
    /// service law has finite variance.
    pub fn mean_wait(&self) -> f64 {
        let s2 = self.service.variance() + self.service.mean().powi(2);
        finite(
            "Mg1::mean_wait",
            self.lambda * s2 / (2.0 * (1.0 - self.rho)),
        )
    }

    /// Exact waiting-time MGF `W(s) = (1-ρ)s / (s + λ(1 - B(s)))`.
    ///
    /// `None` where the service MGF does not exist (beyond its abscissa of
    /// convergence) or at the transform's own pole.
    pub fn wait_mgf_exact(&self, s: Complex64) -> Option<Complex64> {
        if s.abs() < 1e-12 {
            return Some(Complex64::ONE + s * self.mean_wait());
        }
        let b = self.service.mgf(s)?;
        let denom = s + self.lambda * (Complex64::ONE - b);
        if denom.abs() < 1e-300 {
            return None;
        }
        Some((1.0 - self.rho) * s / denom)
    }

    /// The dominant pole γ of the waiting-time transform: the unique
    /// positive root of `λ(B(γ) - 1) = γ`.
    ///
    /// This is the decay rate in eq. (14). Fails only for pathological
    /// service laws (e.g. heavy tails with no MGF on `s > 0`). The root
    /// solve runs at most once per queue; repeated calls return the
    /// memoized value.
    pub fn dominant_pole(&self) -> Result<f64, QueueError> {
        if let Some(&g) = self.pole.get() {
            return Ok(g);
        }
        let g = self.solve_dominant_pole()?;
        let _ = self.pole.set(g);
        Ok(g)
    }

    fn solve_dominant_pole(&self) -> Result<f64, QueueError> {
        POLE_SOLVES.incr();
        let f = |s: f64| -> Option<f64> {
            let b = self.service.mgf(Complex64::from_real(s))?;
            let v = self.lambda * (b.re - 1.0) - s;
            // Clamp overflowed MGF values so the bracketing arithmetic
            // stays finite.
            Some(if v.is_finite() { v } else { f64::MAX })
        };
        // f(0) = 0, f'(0) = ρ-1 < 0; find s_hi with f(s_hi) > 0, treating a
        // non-existent MGF as +∞ (the pole of B itself bounds γ above).
        let scale = 1.0 / self.service.mean();
        let mut lo = 0.0f64;
        let mut hi = scale * 0.5;
        let f_hi;
        let mut expansions = 0;
        loop {
            match f(hi) {
                Some(v) if v > 0.0 => {
                    f_hi = v;
                    break;
                }
                Some(v) => {
                    lo = hi;
                    let _ = v;
                    hi *= 2.0;
                }
                None => {
                    // Stepped past B's abscissa: bisect back toward `lo`
                    // until the MGF exists and is positive there.
                    let mut a = lo;
                    let mut b = hi;
                    let mut found = None;
                    for _ in 0..200 {
                        let m = 0.5 * (a + b);
                        match f(m) {
                            Some(v) if v > 0.0 => {
                                found = Some((m, v));
                                break;
                            }
                            Some(_) => a = m,
                            None => b = m,
                        }
                    }
                    match found {
                        Some((m, v)) => {
                            hi = m;
                            f_hi = v;
                            break;
                        }
                        None => {
                            return Err(QueueError::SolveFailure {
                                what: "no positive root below the service MGF's abscissa",
                            })
                        }
                    }
                }
            }
            expansions += 1;
            POLE_BRACKET_EXPANSIONS.incr();
            if expansions > 400 {
                return Err(QueueError::SolveFailure {
                    what: "dominant pole bracket expansion",
                });
            }
        }
        let _ = f_hi;
        // Brent on [lo', hi] where lo' is slightly above 0 (f(0) = 0 is the
        // trivial root).
        let lo = (lo.max(1e-12 * scale)).min(hi * 0.5);
        let g = |s: f64| f(s).unwrap_or(f64::MAX);
        // Ensure the left end is negative (we are past the trivial root's
        // basin); expand right from lo if needed.
        let mut a = lo;
        while g(a) > 0.0 && a > 1e-300 {
            a *= 0.5;
        }
        fpsping_num::roots::brent(g, a, hi, 1e-14 * scale.max(1.0), 300)
            .map(|r| {
                POLE_BRENT_ITERS.add(r.iterations as u64);
                r.root
            })
            .map_err(|_| QueueError::SolveFailure {
                what: "dominant pole Brent solve",
            })
    }

    /// The paper's approximation (eq. 14):
    /// `D_u(s) ≈ (1-ρ) + ρ·γ/(γ-s)` as an [`ErlangMix`].
    pub fn paper_mix(&self) -> Result<ErlangMix, QueueError> {
        let gamma = self.dominant_pole()?;
        Ok(ErlangMix::exponential_with_atom(
            1.0 - self.rho,
            self.rho,
            gamma,
        ))
    }

    /// Tail of the paper's approximation: `P(W > x) ≈ ρ·e^{-γx}`.
    pub fn wait_tail_approx(&self, x: f64) -> Result<f64, QueueError> {
        let gamma = self.dominant_pole()?;
        Ok(self.rho * (-gamma * x).exp())
    }

    /// Tail by numerical inversion of the exact Pollaczek–Khinchine
    /// transform (Abate–Whitt Euler) — the validation reference.
    /// Panics unless `x > 0`; accuracy (not finiteness) degrades in the
    /// deep tail, as for any numerical inversion.
    pub fn wait_tail_exact(&self, x: f64) -> f64 {
        assert!(x > 0.0, "wait_tail_exact: x must be positive");
        fpsping_num::laplace::tail_from_mgf(
            |s| self.wait_mgf_exact(s).unwrap_or(Complex64::ZERO),
            x,
            fpsping_num::laplace::DEFAULT_EULER_M,
        )
    }
}

/// Convenience: M/D/1 with packet service time `tau` seconds.
pub fn mdd1(lambda: f64, tau: f64) -> Result<Mg1, QueueError> {
    Mg1::new(lambda, Box::new(fpsping_dist::Deterministic::new(tau)))
}

/// Exact M/D/1 waiting-time CDF (the classical Erlang/Franx formula):
///
/// ```text
/// P(W ≤ t) = (1-ρ) Σ_{k=0}^{⌊t/τ⌋} [λ(kτ - t)]^k / k! · e^{-λ(kτ - t)}.
/// ```
///
/// Exact up to floating point. The alternating terms cancel, so absolute
/// precision degrades like `ε·e^{λt}` — ~1e-7 by `λt ≈ 20`; beyond that
/// prefer the dominant-pole tail. (Conversely, numerical transform
/// inversion is weakest near the kinks of this CDF at `t = kτ`, where
/// this formula is the better reference — the tests demonstrate both.)
pub fn mdd1_wait_cdf_exact(lambda: f64, tau: f64, t: f64) -> f64 {
    assert!(
        lambda > 0.0 && tau > 0.0,
        "mdd1_wait_cdf_exact: positive parameters"
    );
    let rho = lambda * tau;
    assert!(rho < 1.0, "mdd1_wait_cdf_exact: unstable load {rho}");
    if t < 0.0 {
        return 0.0;
    }
    let kmax = (t / tau).floor() as u64;
    let mut sum = 0.0f64;
    for k in 0..=kmax {
        let a = lambda * (k as f64 * tau - t); // ≤ 0
                                               // [a]^k/k! e^{-a} computed in log space for the magnitude, sign
                                               // tracked separately: sign = (-1)^k for a < 0.
        let term = if k == 0 {
            (-a).exp()
        } else {
            let ln_mag = k as f64 * a.abs().ln() - fpsping_num::special::ln_factorial(k) - a;
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sign * ln_mag.exp()
        };
        sum += term;
    }
    let raw = finite("mdd1_wait_cdf_exact: pre-clamp sum", (1.0 - rho) * sum);
    // The clamp below keeps the return value a valid probability, but it
    // must not silently absorb a cancellation blow-up: count and warn when
    // the pre-clamp value leaves [0, 1] by more than the documented
    // tolerance, so the caller can tell "last-ulp round-off" from "the
    // alternating sum has no digits left at this λt".
    if !(-CDF_EXCURSION_TOL..=1.0 + CDF_EXCURSION_TOL).contains(&raw) {
        CDF_CLAMP_EXCURSIONS.incr();
        fpsping_obs::warn_once(
            "queue.mg1.cdf_exact.clamp_excursions",
            &format!(
                "mdd1_wait_cdf_exact: pre-clamp CDF {raw:.6e} outside [0,1] beyond \
                 tolerance {CDF_EXCURSION_TOL:.0e} (λ={lambda}, τ={tau}, t={t}; \
                 λt={:.1} — the alternating Franx sum loses ~ε·e^{{λt}} digits); \
                 prefer the dominant-pole tail in this regime",
                lambda * t
            ),
        );
    }
    raw.clamp(0.0, 1.0)
}

/// Exact M/D/1 waiting-time tail via [`mdd1_wait_cdf_exact`]; inherits
/// that function's panics (positive finite parameters, ρ < 1) and its
/// `ε·e^{λt}` precision decay.
pub fn mdd1_wait_tail_exact(lambda: f64, tau: f64, t: f64) -> f64 {
    1.0 - mdd1_wait_cdf_exact(lambda, tau, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsping_dist::{Deterministic, Erlang, Exponential};
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn mm1_dominant_pole_is_mu_minus_lambda() {
        // M/M/1: exact tail ρ e^{-(μ-λ)x}; γ = μ - λ and eq. (14) is exact.
        let (lambda, mu) = (0.6, 1.0);
        let q = Mg1::new(lambda, Box::new(Exponential::new(mu))).unwrap();
        let gamma = q.dominant_pole().unwrap();
        assert!((gamma - (mu - lambda)).abs() < 1e-10);
        for &x in &[0.5, 2.0, 8.0] {
            let exact = q.wait_tail_exact(x);
            let approx = q.wait_tail_approx(x).unwrap();
            assert!((exact - approx).abs() < 1e-8, "x={x}: {exact} vs {approx}");
        }
    }

    #[test]
    fn md1_mean_wait_formula() {
        // M/D/1: E[W] = ρτ/(2(1-ρ)).
        let (lambda, tau) = (50.0, 0.01); // ρ = 0.5
        let q = mdd1(lambda, tau).unwrap();
        assert!((q.load() - 0.5).abs() < 1e-12);
        assert!((q.mean_wait() - 0.5 * tau / (2.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn md1_dominant_pole_satisfies_equation() {
        let (lambda, tau) = (70.0, 0.01); // ρ = 0.7
        let q = mdd1(lambda, tau).unwrap();
        let g = q.dominant_pole().unwrap();
        assert!(g > 0.0);
        let resid = lambda * ((g * tau).exp() - 1.0) - g;
        assert!(resid.abs() < 1e-6, "residual {resid}");
    }

    #[test]
    fn md1_tail_matches_simulation() {
        let (lambda, tau) = (60.0, 0.01); // ρ = 0.6
        let q = mdd1(lambda, tau).unwrap();
        // Lindley with Poisson arrivals.
        let mut rng = StdRng::seed_from_u64(0x4D_4431);
        let mut w = 0.0f64;
        let xs = [0.005, 0.02, 0.05];
        let mut exceed = [0u64; 3];
        let n = 3_000_000;
        let uni = |rng: &mut StdRng| {
            ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-300)
        };
        for _ in 0..n {
            for (c, &x) in exceed.iter_mut().zip(&xs) {
                if w > x {
                    *c += 1;
                }
            }
            let inter = -uni(&mut rng).ln() / lambda;
            w = (w + tau - inter).max(0.0);
        }
        for (i, &x) in xs.iter().enumerate() {
            let sim = exceed[i] as f64 / n as f64;
            let exact = q.wait_tail_exact(x);
            assert!(
                (sim - exact).abs() < 0.1 * sim.max(1e-3),
                "x={x}: exact {exact:.6} vs sim {sim:.6}"
            );
            // The eq.-14 approximation should be within ~25% of exact in
            // the tail region (it matches decay rate, approximates the
            // prefactor by ρ).
            let approx = q.wait_tail_approx(x).unwrap();
            assert!(
                (approx - exact).abs() < 0.3 * exact.max(1e-4),
                "x={x}: approx {approx:.6} vs exact {exact:.6}"
            );
        }
    }

    #[test]
    fn paper_mix_mass_and_shape() {
        let q = mdd1(40.0, 0.01).unwrap(); // ρ = 0.4
        let mix = q.paper_mix().unwrap();
        assert!((mix.total_mass() - 1.0).abs() < 1e-12);
        assert!((mix.constant - 0.6).abs() < 1e-12);
        assert!((mix.prob_positive() - 0.4).abs() < 1e-12);
        assert_eq!(mix.blocks.len(), 1);
    }

    #[test]
    fn erlang_service_pole_below_service_rate() {
        // M/E_K/1: B(s) diverges at s = rate; γ must lie below it.
        let service = Erlang::new(4, 400.0); // mean 0.01
        let q = Mg1::new(50.0, Box::new(service)).unwrap(); // ρ = 0.5
        let g = q.dominant_pole().unwrap();
        assert!(g > 0.0 && g < 400.0);
        let b = Erlang::new(4, 400.0)
            .mgf(Complex64::from_real(g))
            .unwrap()
            .re;
        assert!((50.0 * (b - 1.0) - g).abs() < 1e-6);
    }

    #[test]
    fn multi_class_reduces_to_weighted_mixture() {
        // Two gamer classes (eq. 13): λ₁ with Det(τ₁), λ₂ with Det(τ₂).
        let q = Mg1::multi_class(vec![
            (
                30.0,
                Box::new(Deterministic::new(0.01)) as Box<dyn Distribution>,
            ),
            (10.0, Box::new(Deterministic::new(0.02))),
        ])
        .unwrap();
        assert!((q.lambda() - 40.0).abs() < 1e-12);
        // ρ = 30·0.01 + 10·0.02 = 0.5.
        assert!((q.load() - 0.5).abs() < 1e-12);
        // E[S²] = (0.75·1e-4 + 0.25·4e-4); mean wait via P-K.
        let s2 = 0.75 * 1e-4 + 0.25 * 4e-4;
        assert!((q.mean_wait() - 40.0 * s2 / (2.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn rejects_unstable() {
        assert!(matches!(
            mdd1(100.0, 0.01),
            Err(QueueError::UnstableLoad { .. })
        ));
        assert!(matches!(
            mdd1(-1.0, 0.01),
            Err(QueueError::InvalidParameter { .. })
        ));
        assert!(Mg1::multi_class(vec![]).is_err());
    }

    #[test]
    fn exact_mgf_at_zero_is_one() {
        let q = mdd1(30.0, 0.01).unwrap();
        let v = q.wait_mgf_exact(Complex64::ZERO).unwrap();
        assert!((v - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn franx_formula_matches_numerical_inversion() {
        // The M/D/1 waiting CDF has derivative kinks at t = kτ, where the
        // Euler inversion converges slowly (error ~1e-3 right at a kink);
        // away from kinks the two agree tightly.
        let (lambda, tau) = (60.0, 0.01); // ρ = 0.6
        let q = mdd1(lambda, tau).unwrap();
        for &t in &[0.0005, 0.005, 0.015, 0.043, 0.087] {
            let exact = mdd1_wait_tail_exact(lambda, tau, t);
            let numeric = q.wait_tail_exact(t);
            assert!(
                (exact - numeric).abs() < 2e-3,
                "t={t}: Franx {exact:.9} vs Abate–Whitt {numeric:.9}"
            );
        }
    }

    #[test]
    fn franx_formula_matches_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let (lambda, tau) = (60.0f64, 0.01f64);
        let mut rng = StdRng::seed_from_u64(1);
        let uni = |rng: &mut StdRng| {
            ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-300)
        };
        let mut w = 0.0f64;
        let ts = [0.005, 0.01, 0.02, 0.03];
        let mut cnt = [0u64; 4];
        let n = 5_000_000u64;
        for _ in 0..n {
            for (c, &t) in cnt.iter_mut().zip(&ts) {
                if w <= t {
                    *c += 1;
                }
            }
            let inter = -uni(&mut rng).ln() / lambda;
            w = (w + tau - inter).max(0.0);
        }
        for (i, &t) in ts.iter().enumerate() {
            let mc = cnt[i] as f64 / n as f64;
            let fx = mdd1_wait_cdf_exact(lambda, tau, t);
            assert!(
                (fx - mc).abs() < 1.5e-3,
                "t={t}: Franx {fx:.6} vs MC {mc:.6}"
            );
        }
    }

    #[test]
    fn franx_formula_boundary_values() {
        let (lambda, tau) = (40.0, 0.01); // ρ = 0.4
                                          // P(W = 0) = 1-ρ.
        assert!((mdd1_wait_cdf_exact(lambda, tau, 0.0) - 0.6).abs() < 1e-12);
        assert_eq!(mdd1_wait_cdf_exact(lambda, tau, -1.0), 0.0);
        // Monotone in t.
        let mut prev = 0.0;
        for i in 0..100 {
            let c = mdd1_wait_cdf_exact(lambda, tau, i as f64 * 0.002);
            // Alternating-sum cancellation bounds monotonicity checks to
            // ~ε·e^{λt} ≈ 1e-6 at the far end of this grid.
            assert!(c >= prev - 1e-6);
            prev = c;
        }
        assert!(prev > 0.999999);
    }

    #[test]
    fn franx_deep_tail_matches_dominant_pole_decay() {
        // log tail slope ≈ -γ for large t.
        let (lambda, tau) = (70.0, 0.01);
        let q = mdd1(lambda, tau).unwrap();
        let gamma = q.dominant_pole().unwrap();
        let (t1, t2) = (0.1, 0.14);
        let r = (mdd1_wait_tail_exact(lambda, tau, t1) / mdd1_wait_tail_exact(lambda, tau, t2))
            .ln()
            / (t2 - t1);
        assert!((r - gamma).abs() < 0.02 * gamma, "decay {r} vs γ {gamma}");
    }

    #[test]
    fn franx_cancellation_blowup_is_counted_not_silent() {
        // ρ = 0.95, λt = 50: the alternating sum's ε·e^{λt} round-off is
        // ~1e11 — astronomically past any probability. The clamp keeps the
        // return value in [0, 1], but the excursion must be observable.
        let (lambda, tau, t) = (100.0, 0.0095, 0.5);
        let before = CDF_CLAMP_EXCURSIONS.get();
        let c = mdd1_wait_cdf_exact(lambda, tau, t);
        assert!(
            (0.0..=1.0).contains(&c),
            "clamped value stays a probability"
        );
        assert!(
            CDF_CLAMP_EXCURSIONS.get() > before,
            "a pre-clamp excursion beyond {CDF_EXCURSION_TOL:e} must be counted"
        );
        assert!(
            fpsping_obs::warnings()
                .iter()
                .any(|w| w.contains("queue.mg1.cdf_exact.clamp_excursions")),
            "the excursion must emit a warn_once"
        );
        // Benign regime (λt small): no excursion is recorded.
        let before = CDF_CLAMP_EXCURSIONS.get();
        let c = mdd1_wait_cdf_exact(60.0, 0.01, 0.02);
        assert!((0.0..=1.0).contains(&c));
        assert_eq!(
            CDF_CLAMP_EXCURSIONS.get(),
            before,
            "well-conditioned evaluations must not count excursions"
        );
    }

    #[test]
    fn heavier_load_means_heavier_tail() {
        let q1 = mdd1(30.0, 0.01).unwrap();
        let q2 = mdd1(80.0, 0.01).unwrap();
        for &x in &[0.01, 0.05] {
            assert!(q2.wait_tail_exact(x) > q1.wait_tail_exact(x));
        }
        assert!(q2.dominant_pole().unwrap() < q1.dominant_pole().unwrap());
    }
}
