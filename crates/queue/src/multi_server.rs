//! Multiple game servers sharing one downstream pipe (§3.2, opening
//! paragraph).
//!
//! *"If traffic stemming from more servers is transported over a reserved
//! bit pipe, the N·D/G/1 queuing model applies where G = ΣE_K (i.e., a
//! weighted mix of Erlang distributions), which [...] is very well
//! approximated by M/G/1, if the number of servers is high enough."*
//!
//! Each server `i` ticks every `Tᵢ` (rate `1/Tᵢ` bursts per second) and
//! brings Erlang(Kᵢ) work with mean `b̄ᵢ` seconds. The superposition of
//! many independent periodic burst streams converges to Poisson (the same
//! eq.-11 argument as upstream), so the shared queue is M/G/1 whose
//! service law is the rate-weighted Erlang mixture — handled by
//! [`Mg1::multi_class`] and the eq.-14 dominant-pole approximation.

use crate::combine::TotalDelay;
use crate::erlang_mix::ErlangMix;
use crate::mg1::Mg1;
use crate::position::PositionDelay;
use crate::QueueError;
use fpsping_dist::{Distribution, Erlang};

/// One game server's downstream burst class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerClass {
    /// Tick interval `Tᵢ` in seconds (bursts arrive at rate `1/Tᵢ`).
    pub tick_s: f64,
    /// Erlang order of this server's burst sizes.
    pub k: u32,
    /// Mean burst *service time* `b̄ᵢ` in seconds (burst bytes over the
    /// pipe rate).
    pub mean_service_s: f64,
}

impl ServerClass {
    fn validate(&self) -> Result<(), QueueError> {
        if !(self.tick_s.is_finite() && self.tick_s > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "tick_s",
                value: self.tick_s,
            });
        }
        if self.k < 1 {
            return Err(QueueError::InvalidParameter {
                name: "k",
                value: self.k as f64,
            });
        }
        if !(self.mean_service_s.is_finite() && self.mean_service_s > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "mean_service_s",
                value: self.mean_service_s,
            });
        }
        Ok(())
    }

    /// The load this class offers: `b̄ᵢ/Tᵢ`; finite and positive once
    /// `validate` has passed.
    pub fn load(&self) -> f64 {
        self.mean_service_s / self.tick_s
    }

    /// Erlang service rate `βᵢ = Kᵢ/b̄ᵢ`; finite and positive once
    /// `validate` has passed.
    pub fn beta(&self) -> f64 {
        self.k as f64 / self.mean_service_s
    }
}

/// The shared downstream pipe carrying several servers' burst streams.
///
/// # Examples
///
/// ```
/// use fpsping_queue::{MultiServerDownstream, ServerClass};
///
/// let pipe = MultiServerDownstream::new(vec![
///     ServerClass { tick_s: 0.040, k: 9, mean_service_s: 0.008 },
///     ServerClass { tick_s: 0.060, k: 20, mean_service_s: 0.012 },
/// ]).unwrap();
/// assert!((pipe.load() - 0.4).abs() < 1e-12);
/// let tagged = pipe.total_delay_for(0).unwrap();
/// assert!(tagged.quantile(0.99999) > 0.0);
/// ```
#[derive(Debug)]
pub struct MultiServerDownstream {
    classes: Vec<ServerClass>,
    queue: Mg1,
}

impl MultiServerDownstream {
    /// Builds the M/G/1 approximation of the shared queue; requires the
    /// total load `Σ b̄ᵢ/Tᵢ` strictly inside (0, 1).
    pub fn new(classes: Vec<ServerClass>) -> Result<Self, QueueError> {
        if classes.is_empty() {
            return Err(QueueError::InvalidParameter {
                name: "classes",
                value: 0.0,
            });
        }
        for c in &classes {
            c.validate()?;
        }
        let mg1_classes: Vec<(f64, Box<dyn Distribution>)> = classes
            .iter()
            .map(|c| {
                (
                    1.0 / c.tick_s,
                    Box::new(Erlang::new(c.k, c.beta())) as Box<dyn Distribution>,
                )
            })
            .collect();
        let queue = Mg1::multi_class(mg1_classes)?;
        Ok(Self { classes, queue })
    }

    /// The server classes.
    pub fn classes(&self) -> &[ServerClass] {
        &self.classes
    }

    /// Total offered load `Σ b̄ᵢ/Tᵢ`; finite in `(0, 1)` for a
    /// constructed (stable) system.
    pub fn load(&self) -> f64 {
        self.queue.load()
    }

    /// The underlying M/G/1 (Erlang-mixture service).
    pub fn queue(&self) -> &Mg1 {
        &self.queue
    }

    /// Burst waiting-time law in the eq.-14 two-term form.
    pub fn burst_wait_mix(&self) -> Result<ErlangMix, QueueError> {
        self.queue.paper_mix()
    }

    /// Mean burst waiting time (exact Pollaczek–Khinchine on the mixture);
    /// finite for a constructed (stable, ρ < 1) system.
    pub fn mean_wait(&self) -> f64 {
        self.queue.mean_wait()
    }

    /// The total downstream delay model for a tagged packet of server
    /// `idx`: shared-queue wait ⊗ that server's own within-burst position
    /// delay (uniform position).
    pub fn total_delay_for(&self, idx: usize) -> Result<TotalDelay, QueueError> {
        let c = *self.classes.get(idx).ok_or(QueueError::InvalidParameter {
            name: "idx",
            value: idx as f64,
        })?;
        let wait = self.burst_wait_mix()?;
        let position = PositionDelay::uniform(c.k, c.beta())?;
        match position.to_mix() {
            Ok(pos) => Ok(TotalDelay::from_mixes(ErlangMix::unit(), wait, pos)),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes_3() -> Vec<ServerClass> {
        vec![
            ServerClass {
                tick_s: 0.040,
                k: 9,
                mean_service_s: 0.008,
            },
            ServerClass {
                tick_s: 0.060,
                k: 20,
                mean_service_s: 0.012,
            },
            ServerClass {
                tick_s: 0.050,
                k: 2,
                mean_service_s: 0.010,
            },
        ]
    }

    #[test]
    fn load_adds_across_classes() {
        let m = MultiServerDownstream::new(classes_3()).unwrap();
        let expect = 0.008 / 0.040 + 0.012 / 0.060 + 0.010 / 0.050;
        assert!((m.load() - expect).abs() < 1e-12);
    }

    #[test]
    fn rejects_overload_and_empty() {
        assert!(MultiServerDownstream::new(vec![]).is_err());
        let too_much = vec![
            ServerClass {
                tick_s: 0.04,
                k: 9,
                mean_service_s: 0.03,
            },
            ServerClass {
                tick_s: 0.04,
                k: 9,
                mean_service_s: 0.02,
            },
        ];
        assert!(matches!(
            MultiServerDownstream::new(too_much),
            Err(QueueError::UnstableLoad { .. })
        ));
    }

    #[test]
    fn wait_mix_is_probability_law() {
        let m = MultiServerDownstream::new(classes_3()).unwrap();
        let mix = m.burst_wait_mix().unwrap();
        assert!((mix.total_mass() - 1.0).abs() < 1e-10);
        assert!(
            (mix.prob_positive() - m.load()).abs() < 1e-10,
            "eq. 14 weight is ρ"
        );
    }

    #[test]
    fn tagged_server_total_delay_builds() {
        let m = MultiServerDownstream::new(classes_3()).unwrap();
        for idx in 0..3 {
            let td = m.total_delay_for(idx).unwrap();
            let q = td.quantile(0.99999);
            assert!(q.is_finite() && q > 0.0, "server {idx}: quantile {q}");
        }
        assert!(m.total_delay_for(9).is_err());
    }

    #[test]
    fn burstier_server_has_larger_position_quantile() {
        // Light shared load, equal burst means: only the Erlang order
        // differs, so the K = 2 server's tagged packets must see a larger
        // total-delay quantile than the K = 20 server's.
        let m = MultiServerDownstream::new(vec![
            ServerClass {
                tick_s: 0.10,
                k: 20,
                mean_service_s: 0.010,
            },
            ServerClass {
                tick_s: 0.10,
                k: 2,
                mean_service_s: 0.010,
            },
        ])
        .unwrap();
        assert!(m.load() < 0.25);
        let q_k20 = m.total_delay_for(0).unwrap().quantile(0.99999);
        let q_k2 = m.total_delay_for(1).unwrap().quantile(0.99999);
        assert!(q_k2 > q_k20, "K=2 {q_k2} should exceed K=20 {q_k20}");
    }

    #[test]
    fn matches_superposed_periodic_simulation() {
        // Ground truth: superpose 12 periodic burst streams with random
        // phases and Erlang sizes; Lindley the shared queue; compare the
        // wait tail with the M/G/1 eq.-14 approximation.
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let classes: Vec<ServerClass> = (0..12)
            .map(|i| ServerClass {
                tick_s: 0.040 + 0.002 * (i % 5) as f64,
                k: [2u32, 9, 20][i % 3],
                mean_service_s: 0.002,
            })
            .collect();
        let m = MultiServerDownstream::new(classes.clone()).unwrap();
        assert!(m.load() < 0.7 && m.load() > 0.4, "load {}", m.load());
        let mix = m.burst_wait_mix().unwrap();

        let mut rng = StdRng::seed_from_u64(0x3333);
        let uni = |rng: &mut StdRng| {
            ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-300)
        };
        let horizon = 2_000.0 * 0.05;
        let xs = [0.002, 0.005, 0.01];
        let mut exceed = [0u64; 3];
        let mut total = 0u64;
        // Repeat with fresh phases for averaging.
        for rep in 0..30 {
            let mut arrivals: Vec<(f64, usize)> = Vec::new();
            let _ = rep;
            for (ci, c) in classes.iter().enumerate() {
                let mut t = uni(&mut rng) * c.tick_s;
                while t < horizon {
                    arrivals.push((t, ci));
                    t += c.tick_s;
                }
            }
            arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut w = 0.0f64;
            let mut prev = 0.0f64;
            for &(t, ci) in &arrivals {
                w = (w - (t - prev)).max(0.0);
                if t > 5.0 {
                    for (c, &x) in exceed.iter_mut().zip(&xs) {
                        if w > x {
                            *c += 1;
                        }
                    }
                    total += 1;
                }
                // Erlang(k) burst work.
                let c = &classes[ci];
                let mut prod = 1.0f64;
                for _ in 0..c.k {
                    prod *= uni(&mut rng);
                }
                w += -prod.ln() / c.beta();
                prev = t;
            }
        }
        for (i, &x) in xs.iter().enumerate() {
            let sim = exceed[i] as f64 / total as f64;
            let analytic = mix.tail(x);
            // Two approximation layers stack here: the eq.-14 two-term
            // M/G/1 form (prefactor ρ rather than the true residue) and
            // the Poisson limit over only 12 periodic streams, which
            // makes the true tail lighter — by a factor that grows toward
            // the deep tail (observed ≈6.5× at x = 0.01 for this stream
            // count). The analytic value must act as a modest upper
            // envelope with the right decay.
            assert!(
                analytic > 0.8 * sim && analytic < 8.0 * sim.max(1e-5),
                "x={x}: analytic {analytic:.5} vs sim {sim:.5}"
            );
        }
    }
}
