//! The within-burst packet-position delay of §3.2.2 (eqs. 28–34).
//!
//! A tagged packet in a burst waits for the burst's queueing delay *plus*
//! the transmission of every packet ahead of it in the same burst. With
//! the burst's total service time Erlang(K, β) and the tagged packet's
//! relative position `u ∈ [0, 1]`, the extra delay is `u·B`.
//!
//! Two position laws from the paper:
//!
//! * **Fixed spot θ** (eq. 31–32): `P(s) = (β/θ / (β/θ - s))^K` — an
//!   Erlang(K, β/θ); worst case θ = 1.
//! * **Uniform position** (eq. 33–34): for K > 1 the MGF telescopes
//!   (Horner) into a uniform mixture of Erlang(m, β), m = 1..K-1:
//!   `P(s) = (K-1)⁻¹ Σ_m (β/(β-s))^m`. For K = 1 the transform has a
//!   logarithmic branch point (eq. 33) and no Erlang form; the tail is
//!   still available by quadrature.
//!
//! In both closed-form cases the dominant pole of `W(s)` dominates these
//! poles, as the paper notes.

use crate::erlang_mix::ErlangMix;
use crate::QueueError;
use fpsping_num::cmp::exact_zero;
use fpsping_num::quad::gauss_legendre_composite;
use fpsping_num::special::gamma_q;

/// Where the tagged packet sits inside its burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Position {
    /// Always the same relative spot `θ ∈ (0, 1]` (eq. 31); `θ = 1` is the
    /// last packet of the burst — the worst case.
    Spot(f64),
    /// Uniform over the burst (eq. 33) — the case the paper carries
    /// through §3.3 and §4.
    Uniform,
}

/// The packet-position delay `u·B`, `B ~ Erlang(K, β)`.
///
/// # Examples
///
/// ```
/// use fpsping_queue::PositionDelay;
///
/// // K = 9 bursts with mean service 24 ms → β = 9/0.024.
/// let pos = PositionDelay::uniform(9, 9.0 / 0.024).unwrap();
/// // Mean position delay is half the burst service time (eq. 34).
/// assert!((pos.mean() - 0.012).abs() < 1e-12);
/// assert!(pos.tail(0.0) == 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PositionDelay {
    k: u32,
    beta: f64,
    position: Position,
}

impl PositionDelay {
    /// Builds the position delay for burst order `k`, burst service rate
    /// `beta = K/b̄` (per second) and the given position law.
    pub fn new(k: u32, beta: f64, position: Position) -> Result<Self, QueueError> {
        if k < 1 {
            return Err(QueueError::InvalidParameter {
                name: "k",
                value: k as f64,
            });
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "beta",
                value: beta,
            });
        }
        if let Position::Spot(theta) = position {
            if !(theta > 0.0 && theta <= 1.0) {
                return Err(QueueError::InvalidParameter {
                    name: "theta",
                    value: theta,
                });
            }
        }
        Ok(Self { k, beta, position })
    }

    /// Uniform-position delay — the paper's default (§3.2.2 end: *"we only
    /// consider this case where the packet can be anywhere in the burst and
    /// K > 1"*).
    pub fn uniform(k: u32, beta: f64) -> Result<Self, QueueError> {
        Self::new(k, beta, Position::Uniform)
    }

    /// Erlang order K.
    pub fn order(&self) -> u32 {
        self.k
    }

    /// Burst service rate β; finite and positive by construction.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The configured position law.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Mean position delay: `K/(2β) = b̄/2` for uniform, `θ·K/β` for a
    /// fixed spot. Finite and non-negative by construction.
    pub fn mean(&self) -> f64 {
        match self.position {
            Position::Uniform => self.k as f64 / (2.0 * self.beta),
            Position::Spot(theta) => theta * self.k as f64 / self.beta,
        }
    }

    /// The delay law as an [`ErlangMix`] for the eq. (35) product.
    ///
    /// Returns `Err` for `Uniform` with `K = 1`, whose transform (eq. 33)
    /// is not rational; the paper restricts to K > 1 for the same reason.
    pub fn to_mix(&self) -> Result<ErlangMix, QueueError> {
        match self.position {
            Position::Spot(theta) => {
                // Erlang(K, β/θ).
                let mut coeffs = vec![0.0; self.k as usize];
                // lint:allow(unwrap): the constructor rejects K = 0, so `coeffs` is non-empty
                *coeffs.last_mut().unwrap() = 1.0;
                Ok(ErlangMix::single_real_pole(0.0, self.beta / theta, coeffs))
            }
            Position::Uniform => {
                if self.k == 1 {
                    return Err(QueueError::InvalidParameter {
                        name: "k (uniform needs K > 1)",
                        value: 1.0,
                    });
                }
                // Uniform mixture over Erlang(m, β), m = 1..K-1 (eq. 34).
                let w = 1.0 / (self.k - 1) as f64;
                let coeffs = vec![w; (self.k - 1) as usize];
                Ok(ErlangMix::single_real_pole(0.0, self.beta, coeffs))
            }
        }
    }

    /// Tail `P(u·B > x)` — closed form where the mix exists, quadrature on
    /// `∫₀¹ Q_K(βx/τ)dτ` for the K = 1 uniform case. Panics if `x < 0`;
    /// finite in `[0, 1]`.
    pub fn tail(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "tail: x must be non-negative");
        if exact_zero(x) {
            // u·B > 0 a.s. (u > 0 a.s. under Uniform; B > 0 a.s.).
            return 1.0;
        }
        match self.to_mix() {
            Ok(mix) => mix.tail(x),
            Err(_) => {
                // K = 1 uniform: ∫₀¹ e^{-βx/τ} dτ, integrand → 0 at τ→0.
                gauss_legendre_composite(
                    |tau| {
                        if tau <= 0.0 {
                            0.0
                        } else {
                            gamma_q(self.k as f64, self.beta * x / tau)
                        }
                    },
                    0.0,
                    1.0,
                    64,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn sample_ub(k: u32, beta: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let uni = |rng: &mut StdRng| {
            ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-300)
        };
        for _ in 0..n {
            let mut prod = 1.0f64;
            for _ in 0..k {
                prod *= uni(&mut rng);
            }
            let b = -prod.ln() / beta;
            out.push(uni(&mut rng) * b);
        }
        out
    }

    #[test]
    fn uniform_mean_is_half_burst() {
        // E[u·B] = b̄/2 (§4: the packet-position delay is linear in burst
        // size, hence in load).
        let p = PositionDelay::uniform(9, 9.0 / 0.03).unwrap();
        assert!((p.mean() - 0.015).abs() < 1e-12);
        let mix = p.to_mix().unwrap();
        assert!((mix.mean() - 0.015).abs() < 1e-12);
        assert!((mix.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_mix_structure_matches_eq34() {
        let k = 9u32;
        let p = PositionDelay::uniform(k, 100.0).unwrap();
        let mix = p.to_mix().unwrap();
        assert_eq!(mix.blocks.len(), 1);
        assert_eq!(mix.blocks[0].coeffs.len(), (k - 1) as usize);
        for &c in &mix.blocks[0].coeffs {
            assert!((c.re - 1.0 / 8.0).abs() < 1e-14);
            assert!(c.im.abs() < 1e-300);
        }
    }

    #[test]
    fn spot_is_scaled_erlang() {
        let p = PositionDelay::new(5, 50.0, Position::Spot(0.5)).unwrap();
        let mix = p.to_mix().unwrap();
        // Erlang(5, 100): tail at x matches gamma_q(5, 100x).
        for &x in &[0.01, 0.05, 0.1] {
            let expect = fpsping_num::special::gamma_q(5.0, 100.0 * x);
            assert!((mix.tail(x) - expect).abs() < 1e-12);
        }
        assert!((p.mean() - 0.5 * 5.0 / 50.0).abs() < 1e-14);
    }

    #[test]
    fn worst_case_spot_tail_bounds_uniform_tail() {
        // θ = 1 packet sees the whole burst: its delay stochastically
        // dominates the uniform-position delay.
        let k = 9u32;
        let beta = 300.0;
        let last = PositionDelay::new(k, beta, Position::Spot(1.0)).unwrap();
        let unif = PositionDelay::uniform(k, beta).unwrap();
        for &x in &[0.001, 0.01, 0.03, 0.06] {
            assert!(last.tail(x) >= unif.tail(x) - 1e-12, "x={x}");
        }
    }

    #[test]
    fn uniform_tail_matches_monte_carlo() {
        let (k, beta) = (9u32, 9.0 / 0.03);
        let p = PositionDelay::uniform(k, beta).unwrap();
        let sample = sample_ub(k, beta, 2_000_000, 0xFACE);
        for &x in &[0.005, 0.015, 0.03, 0.05] {
            let emp = sample.iter().filter(|&&v| v > x).count() as f64 / sample.len() as f64;
            let analytic = p.tail(x);
            assert!(
                (emp - analytic).abs() < 0.05 * emp.max(1e-3),
                "x={x}: analytic {analytic:.6} vs MC {emp:.6}"
            );
        }
    }

    #[test]
    fn k1_uniform_tail_by_quadrature() {
        // K = 1 (eq. 33 regime): tail = ∫₀¹ e^{-βx/τ}dτ, cross-check by MC.
        let beta = 20.0;
        let p = PositionDelay::uniform_k1_for_tests(beta);
        let sample = sample_ub(1, beta, 2_000_000, 0xAB);
        for &x in &[0.01, 0.05, 0.15] {
            let emp = sample.iter().filter(|&&v| v > x).count() as f64 / sample.len() as f64;
            let analytic = p.tail(x);
            assert!(
                (emp - analytic).abs() < 0.05 * emp.max(1e-3),
                "x={x}: analytic {analytic:.6} vs MC {emp:.6}"
            );
        }
        assert!(p.to_mix().is_err(), "K=1 uniform has no rational MGF");
    }

    impl PositionDelay {
        /// Test-only constructor for the K = 1 uniform case (the public
        /// `to_mix` refuses it; `tail` still works by quadrature).
        fn uniform_k1_for_tests(beta: f64) -> Self {
            Self {
                k: 1,
                beta,
                position: Position::Uniform,
            }
        }
    }

    #[test]
    fn tail_at_zero_is_one() {
        let p = PositionDelay::uniform(20, 500.0).unwrap();
        assert_eq!(p.tail(0.0), 1.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(PositionDelay::new(0, 1.0, Position::Uniform).is_err());
        assert!(PositionDelay::new(5, -1.0, Position::Uniform).is_err());
        assert!(PositionDelay::new(5, 1.0, Position::Spot(0.0)).is_err());
        assert!(PositionDelay::new(5, 1.0, Position::Spot(1.5)).is_err());
    }
}
