//! Combining the three delay components (§3.3, eqs. 35–36).
//!
//! The total stochastic queueing delay is the independent sum of the
//! upstream wait (eq. 14), the downstream burst wait (eq. 18) and the
//! within-burst position delay (eq. 34); its MGF is the product
//! `D_u(s)·W(s)·P(s)`, re-expanded into a sum of Erlang terms by the
//! Appendix-A algebra and inverted term by term (eq. 35) — "trivial to
//! invert".
//!
//! Four quantile methods, in the paper's order of preference:
//!
//! 1. [`TotalDelay::quantile`] — full Erlang-term expansion (the paper's
//!    choice: *"In this paper we use the first method"*),
//! 2. [`TotalDelay::quantile_dominant_pole`] — keep only the dominant pole
//!    of eq. (35),
//! 3. [`TotalDelay::quantile_chernoff`] — the Chernoff bound of eq. (36),
//! 4. [`TotalDelay::quantile_sum_of_quantiles`] — quantile of the sum ≈
//!    sum of the per-component quantiles.
//!
//! Two regimes have no (usable) closed-form expansion and run on
//! numerical inversion of the unexpanded factor product instead:
//!
//! * **ill-conditioned expansions** — at low downstream load (or high K)
//!   the D/E_K/1 poles collapse onto the position pole β and the eq.-(35)
//!   coefficients explode while cancelling (detected via the coefficient
//!   L1 norm),
//! * **K = 1 with uniform position** — the position transform is the
//!   *logarithmic* eq. (33), `P(s) = -(β/s)·ln(1-s/β)`, a branch point
//!   rather than a pole; the paper stops at "we only consider K > 1", we
//!   carry the case numerically.

use crate::dek1::DEk1;
use crate::erlang_mix::ErlangMix;
use crate::mg1::Mg1;
use crate::position::{Position, PositionDelay};
use crate::QueueError;
use fpsping_num::batch::SimplePoleBank;
use fpsping_num::cmp::{exact_eq, exact_zero};
use fpsping_num::Complex64;
use fpsping_obs::Counter;

static CHERNOFF_EXPANSIONS: Counter = Counter::new("queue.combine.chernoff.bracket_expansions");
static POSITION_EXPANSIONS: Counter = Counter::new("queue.combine.position.bracket_expansions");
static EXPANSIONS_SKIPPED: Counter =
    Counter::new("queue.combine.expansion.skipped_ill_conditioned");
static FAST_QUANTILES: Counter = Counter::new("queue.combine.quantile_fast.calls");
static FAST_TAIL_EVALS: Counter = Counter::new("queue.combine.quantile_fast.tail_evals");
static FAST_FALLBACKS: Counter = Counter::new("queue.combine.quantile_fast.fallbacks");
static QUANTILE_BRACKET_FAILURES: Counter = Counter::new("queue.combine.quantile.bracket_failures");

/// The position-delay factor: either a proper Erlang mix (K > 1 uniform,
/// or any fixed spot) or the K = 1 logarithmic transform of eq. (33).
#[derive(Debug, Clone)]
pub enum PositionFactor {
    /// Rational case — participates in the eq.-(35) expansion.
    Mix(ErlangMix),
    /// `K = 1`, uniform position: `P(s) = -(β/s)·ln(1 - s/β)` (eq. 33).
    LogK1 {
        /// The (exponential) burst service rate β = 1/b̄.
        beta: f64,
    },
}

impl PositionFactor {
    /// Evaluates the factor's MGF at `s`.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        match self {
            PositionFactor::Mix(m) => m.eval(s),
            PositionFactor::LogK1 { beta } => {
                let z = s / *beta;
                if z.abs() < 1e-6 {
                    // Series Σ zⁿ/(n+1) around the removable singularity.
                    Complex64::ONE + z / 2.0 + z * z / 3.0 + z * z * z / 4.0
                } else {
                    -(Complex64::ONE / z) * (Complex64::ONE - z).ln()
                }
            }
        }
    }

    /// Mean of the factor's distribution; finite for every supported law.
    pub fn mean(&self) -> f64 {
        match self {
            PositionFactor::Mix(m) => m.mean(),
            // E[u·B] = E[u]·E[B] = 1/(2β).
            PositionFactor::LogK1 { beta } => 0.5 / beta,
        }
    }

    /// Tail `P(X > x)`; finite in `[0, 1]` for all `x`.
    pub fn tail(&self, x: f64) -> f64 {
        match self {
            PositionFactor::Mix(m) => m.tail(x),
            PositionFactor::LogK1 { beta } => {
                if x <= 0.0 {
                    return 1.0;
                }
                // ∫₀¹ e^{-βx/τ} dτ.
                fpsping_num::quad::gauss_legendre_composite(
                    |tau| {
                        if tau <= 0.0 {
                            0.0
                        } else {
                            (-beta * x / tau).exp()
                        }
                    },
                    0.0,
                    1.0,
                    64,
                )
            }
        }
    }

    /// Decay bound: the factor is analytic on `Re s < decay`.
    pub fn decay_bound(&self) -> Option<f64> {
        match self {
            PositionFactor::Mix(m) => m.dominant_decay(),
            PositionFactor::LogK1 { beta } => Some(*beta),
        }
    }

    /// p-quantile of the factor alone. NaN if the bracketed solve fails
    /// to converge (does not happen for valid factor states).
    pub fn quantile(&self, p: f64) -> f64 {
        match self {
            PositionFactor::Mix(m) => {
                if m.blocks.is_empty() {
                    0.0
                } else {
                    m.quantile(p)
                }
            }
            PositionFactor::LogK1 { beta } => {
                let target = 1.0 - p;
                let mut hi = 1.0 / beta;
                let mut n = 0;
                while self.tail(hi) > target && n < 200 {
                    hi *= 2.0;
                    n += 1;
                    POSITION_EXPANSIONS.incr();
                }
                fpsping_num::roots::brent(|x| self.tail(x) - target, 0.0, hi, 1e-14 / beta, 300)
                    .map(|r| r.root)
                    .unwrap_or(f64::NAN)
            }
        }
    }
}

/// The total stochastic delay model `D_u·W·P` with all three factors and
/// (where it exists and is trustworthy) their expanded product.
#[derive(Debug, Clone)]
pub struct TotalDelay {
    upstream: ErlangMix,
    burst_wait: ErlangMix,
    position: PositionFactor,
    product: Option<ErlangMix>,
    well_conditioned: bool,
    /// Flat SoA view of `burst_wait` when all its poles are simple — the
    /// hot operand of the numerical tail inversion (K reciprocals per
    /// contour point). `None` when a pole has multiplicity > 1 or the
    /// bank would be too small to pay for itself.
    burst_bank: Option<SimplePoleBank>,
}

/// Builds the flat evaluation bank for a burst-wait mix of ≥ 4 simple
/// poles (the D/E_K/1 shape); smaller or multiplicity-carrying mixes stay
/// on the blockwise path.
fn burst_bank_of(burst: &ErlangMix) -> Option<SimplePoleBank> {
    if burst.blocks.len() < 4 || burst.blocks.iter().any(|b| b.coeffs.len() != 1) {
        return None;
    }
    let poles: Vec<Complex64> = burst.blocks.iter().map(|b| b.pole).collect();
    let weights: Vec<Complex64> = burst.blocks.iter().map(|b| b.coeffs[0]).collect();
    Some(SimplePoleBank::new(burst.constant, &poles, &weights))
}

/// Expansion coefficients above this L1 norm lose too many of f64's ~16
/// digits to cancellation for a trustworthy 1e-5 tail.
const CONDITION_LIMIT: f64 = 1e6;

/// Absolute noise floor of the Abate–Whitt inversion backing the
/// unexpanded-product tail (`tail_numeric` is documented ~1e-10-accurate;
/// one extra decade of headroom). Below this, the clamped numeric tail is
/// sign-noise — non-monotone, dipping through zero at pseudo-random `x` —
/// and a bracketed quantile solve on it finds a crossing of *noise*, not
/// of the distribution. Targets under the floor are rejected outright.
const NUMERIC_TAIL_FLOOR: f64 = 1e-9;

/// Convergence width (seconds) of [`TotalDelay::quantile_fast`]'s secant
/// solve: 2e-8 s = 2e-5 ms. Together with the ~8e-6 ms warm-root
/// deviation this keeps the batch path's worst case ~3× under the
/// engine's documented 1e-4 ms tolerance while saving roughly one tail
/// evaluation per cell over a tighter setting.
const QUANTILE_FAST_ATOL: f64 = 2e-8;

/// Exact lower bound on the coefficient L1 norm of the re-expanded
/// product `D_u·W·P`, from the simple (multiplicity-1) burst-wait poles
/// alone: Appendix A assigns pole `b_j` the coefficient
/// `A_j·D_u(b_j)·P(b_j)`, each of which contributes its modulus to the
/// L1 norm. Returns `+∞` (never NaN) when a burst pole sits on a pole of
/// another factor — the expansion there is degenerate-by-collision, the
/// worst conditioning of all.
fn expansion_l1_lower_bound(up: &ErlangMix, burst: &ErlangMix, pos: &ErlangMix) -> f64 {
    let mut bound = 0.0f64;
    for b in &burst.blocks {
        if b.coeffs.len() != 1 {
            continue;
        }
        let coeff = b.coeffs[0] * up.eval(b.pole) * pos.eval(b.pole);
        let term = coeff.abs();
        if !term.is_finite() {
            return f64::INFINITY;
        }
        bound += term;
    }
    bound
}

impl TotalDelay {
    /// Assembles the model from already-built component mixes.
    pub fn from_mixes(upstream: ErlangMix, burst_wait: ErlangMix, position: ErlangMix) -> Self {
        let product = upstream.product(&burst_wait).product(&position);
        let well_conditioned =
            product.coeff_l1() < CONDITION_LIMIT && (product.total_mass() - 1.0).abs() < 1e-6;
        let burst_bank = burst_bank_of(&burst_wait);
        Self {
            upstream,
            burst_wait,
            position: PositionFactor::Mix(position),
            product: Some(product),
            well_conditioned,
            burst_bank,
        }
    }

    /// Assembles the paper's model from the upstream M/G/1 (eq. 14
    /// approximation), the downstream D/E_K/1 and the position law.
    ///
    /// Pass `upstream = None` when the uplink is negligible (the paper
    /// notes `D_up` is negligible whenever `ρ_u ≪ ρ_d`). The K = 1
    /// uniform-position case is accepted and handled numerically via
    /// eq. (33).
    pub fn new(
        upstream: Option<&Mg1>,
        downstream: &DEk1,
        position: &PositionDelay,
    ) -> Result<Self, QueueError> {
        let up = match upstream {
            Some(q) => q.paper_mix()?,
            None => ErlangMix::unit(),
        };
        if position.order() == 1 && matches!(position.position(), Position::Uniform) {
            let pos = PositionFactor::LogK1 {
                beta: position.beta(),
            };
            let burst_wait = downstream.to_mix();
            let burst_bank = burst_bank_of(&burst_wait);
            return Ok(Self {
                upstream: up,
                burst_wait,
                position: pos,
                product: None,
                well_conditioned: false,
                burst_bank,
            });
        }
        Ok(Self::from_mixes(
            up,
            downstream.to_mix(),
            position.to_mix()?,
        ))
    }

    /// [`TotalDelay::new`], except that the eq.-(35) re-expansion is
    /// *skipped* when a cheap lower bound already proves it would be
    /// discarded as ill-conditioned.
    ///
    /// The re-expanded coefficient at a simple burst-wait pole `b_j` is
    /// exactly `A_j · D_u(b_j) · P(b_j)` (Appendix A with multiplicity 1),
    /// so `Σ_j |A_j·D_u(b_j)·P(b_j)|` is a lower bound on the product's
    /// coefficient L1 norm. When that bound is already ≥ the condition
    /// limit, [`TotalDelay::tail`] and the quantile methods would route
    /// to numerical inversion anyway — building (then ignoring) the
    /// O(K²) expansion is pure waste on a sweep's cold path.
    ///
    /// Every probability-facing method behaves identically to a model
    /// from [`TotalDelay::new`]; only the diagnostic accessors differ on
    /// skipped cells ([`TotalDelay::product`] returns `None`,
    /// [`TotalDelay::tail_expanded`] panics). The batch engine uses this;
    /// the bit-exact configurations keep [`TotalDelay::new`].
    pub fn new_deferring_ill_conditioned(
        upstream: Option<&Mg1>,
        downstream: &DEk1,
        position: &PositionDelay,
    ) -> Result<Self, QueueError> {
        let up = match upstream {
            Some(q) => q.paper_mix()?,
            None => ErlangMix::unit(),
        };
        if position.order() == 1 && matches!(position.position(), Position::Uniform) {
            let burst_wait = downstream.to_mix();
            let burst_bank = burst_bank_of(&burst_wait);
            return Ok(Self {
                upstream: up,
                burst_wait,
                position: PositionFactor::LogK1 {
                    beta: position.beta(),
                },
                product: None,
                well_conditioned: false,
                burst_bank,
            });
        }
        let burst = downstream.to_mix();
        let pos = position.to_mix()?;
        if expansion_l1_lower_bound(&up, &burst, &pos) >= CONDITION_LIMIT {
            EXPANSIONS_SKIPPED.incr();
            let burst_bank = burst_bank_of(&burst);
            return Ok(Self {
                upstream: up,
                burst_wait: burst,
                position: PositionFactor::Mix(pos),
                product: None,
                well_conditioned: false,
                burst_bank,
            });
        }
        Ok(Self::from_mixes(up, burst, pos))
    }

    /// Whether the eq.-(35) expansion exists and is numerically
    /// trustworthy; when `false`, [`TotalDelay::tail`] and
    /// [`TotalDelay::quantile`] use numerical inversion of the unexpanded
    /// product instead.
    pub fn expansion_well_conditioned(&self) -> bool {
        self.well_conditioned
    }

    /// The upstream factor `D_u(s)`.
    pub fn upstream(&self) -> &ErlangMix {
        &self.upstream
    }

    /// The burst-wait factor `W(s)`.
    pub fn burst_wait(&self) -> &ErlangMix {
        &self.burst_wait
    }

    /// The position factor `P(s)`.
    pub fn position(&self) -> &PositionFactor {
        &self.position
    }

    /// The expanded product of eq. (35) (`None` for the K = 1 logarithmic
    /// case, which has no rational expansion).
    pub fn product(&self) -> Option<&ErlangMix> {
        self.product.as_ref()
    }

    /// Mean total delay — computed as the sum of the three component
    /// means, which is exact for independent summands and stays
    /// well-conditioned even when the expanded product does not. Finite
    /// for every constructible model.
    pub fn mean(&self) -> f64 {
        self.upstream.mean() + self.burst_wait.mean() + self.position.mean()
    }

    /// The unexpanded product MGF.
    fn eval_factors(&self, s: Complex64) -> Complex64 {
        let burst = match &self.burst_bank {
            Some(bank) => bank.eval(s),
            None => self.burst_wait.eval(s),
        };
        self.upstream.eval(s) * burst * self.position.eval(s)
    }

    /// Tail `P(total > x)`: closed-form expansion when well-conditioned,
    /// numerical inversion of the unexpanded product otherwise. Finite in
    /// `[0, 1]` for all `x ≥ 0`.
    pub fn tail(&self, x: f64) -> f64 {
        if self.well_conditioned {
            self.product
                .as_ref()
                // lint:allow(unwrap): the constructor sets `well_conditioned` only after building `product`
                .expect("well-conditioned implies product")
                .tail(x)
        } else if exact_zero(x) {
            // P(total > 0) ≥ P(position > 0) = 1 (position is a.s.
            // positive for every supported law).
            1.0 - self.upstream.constant
                * self.burst_wait.constant
                * match &self.position {
                    PositionFactor::Mix(m) => m.constant,
                    PositionFactor::LogK1 { .. } => 0.0,
                }
        } else {
            self.tail_numeric(x).clamp(0.0, 1.0)
        }
    }

    /// Tail from the eq.-(35) expansion regardless of conditioning —
    /// exposed for studying exactly where the closed form degrades.
    /// Panics for the K = 1 case, which has no expansion.
    pub fn tail_expanded(&self, x: f64) -> f64 {
        self.product
            .as_ref()
            // lint:allow(unwrap): the K = 1 panic is the documented contract of this diagnostic entry point
            .expect("tail_expanded: no rational expansion exists (K = 1 uniform position)")
            .tail(x)
    }

    /// Tail by numerical Laplace inversion of the *unexpanded* product —
    /// an independent cross-check of the Appendix-A algebra (and the only
    /// path for K = 1). Panics unless `x > 0`; accuracy is ~1e-10
    /// absolute, so values below that are noise (can dip slightly
    /// negative before the caller clamps).
    pub fn tail_numeric(&self, x: f64) -> f64 {
        assert!(x > 0.0, "tail_numeric: x must be positive");
        fpsping_num::laplace::tail_from_mgf(
            |s| self.eval_factors(s),
            x,
            fpsping_num::laplace::DEFAULT_EULER_M,
        )
    }

    /// Method 1 (the paper's): p-quantile from the full expansion (with
    /// the numerical-inversion fallback when the expansion is
    /// ill-conditioned or absent). Panics unless `p ∈ (0, 1)`; NaN if the
    /// bracketed solve fails to converge.
    pub fn quantile(&self, p: f64) -> f64 {
        self.quantile_with_hint(p, None)
    }

    /// [`TotalDelay::quantile`] warm-started from a nearby known quantile
    /// (a neighboring sweep cell's value). Like
    /// [`ErlangMix::quantile_with_hint`], the hint only accelerates the
    /// bracket search — the bracket itself, and therefore the root, is
    /// bit-identical to the cold path's. Panics unless `p ∈ (0, 1)`; NaN
    /// exactly when [`TotalDelay::try_quantile_with_hint`] reports an
    /// error (never a clamped-noise pseudo-root).
    pub fn quantile_with_hint(&self, p: f64, hint: Option<f64>) -> f64 {
        self.try_quantile_with_hint(p, hint).unwrap_or(f64::NAN)
    }

    /// Fallible form of [`TotalDelay::quantile`]: same value on success,
    /// explicit [`QueueError::SolveFailure`] where the infallible form
    /// returns NaN. Panics unless `p ∈ (0, 1)`.
    pub fn try_quantile(&self, p: f64) -> Result<f64, QueueError> {
        self.try_quantile_with_hint(p, None)
    }

    /// Fallible p-quantile with an optional warm-start hint.
    ///
    /// On the numeric-inversion regime (ill-conditioned or K = 1 models)
    /// the solve runs on `tail_numeric(x).clamp(0, 1)`, whose clamp used
    /// to *hide* failure modes: a target below the inversion's noise
    /// floor, or a doubling search that never crosses the target, both
    /// previously handed the Brent solve a non-monotone noise curve and
    /// returned whichever pseudo-root it hit. Those cases are now explicit
    /// [`QueueError::SolveFailure`]s (and counted under
    /// `queue.combine.quantile.bracket_failures`). Panics unless
    /// `p ∈ (0, 1)`; the returned value is finite and non-negative.
    pub fn try_quantile_with_hint(&self, p: f64, hint: Option<f64>) -> Result<f64, QueueError> {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        if self.well_conditioned {
            // lint:allow(unwrap): the constructor sets `well_conditioned` only after building `product`
            let q = self.product.as_ref().unwrap().quantile_with_hint(p, hint);
            return if q.is_finite() {
                Ok(q)
            } else {
                Err(QueueError::SolveFailure {
                    what: "expanded-product quantile solve",
                })
            };
        }
        let target = 1.0 - p;
        if target < NUMERIC_TAIL_FLOOR {
            // The clamped numeric tail has no digits at this depth; any
            // bracket the search found would be a zero-crossing of
            // inversion noise, not of the distribution.
            QUANTILE_BRACKET_FAILURES.incr();
            return Err(QueueError::SolveFailure {
                what: "quantile target below the numeric inversion's noise floor",
            });
        }
        if self.tail(0.0) <= target {
            return Ok(0.0);
        }
        let scale = self.mean().abs().max(1e-9);
        let hi = crate::erlang_mix::canonical_bracket(|x| self.tail(x) <= target, scale, hint);
        if self.tail(hi) > target {
            // The doubling search gave up at its cap without ever crossing
            // the target — previously this handed Brent an unbracketed
            // interval and returned garbage.
            QUANTILE_BRACKET_FAILURES.incr();
            return Err(QueueError::SolveFailure {
                what: "quantile bracket search never crossed the target",
            });
        }
        fpsping_num::roots::brent(
            |x| self.tail(x.max(1e-15)) - target,
            0.0,
            hi,
            1e-10 * scale,
            300,
        )
        .map(|r| r.root)
        .map_err(|_| QueueError::SolveFailure {
            what: "total-delay quantile Brent solve",
        })
    }

    /// Tolerance-relaxed quantile for the batch engine's sweep path.
    ///
    /// Replaces the bracketed Brent solve with a safeguarded secant on
    /// `ln tail(x)`, which is near-linear once the dominant exponential
    /// takes over: seeded from `hint` (a neighboring sweep cell, seconds)
    /// or the exponential-with-matched-mean guess, with the second point
    /// one asymptotic-decay-rate step away, it typically converges in 3-5
    /// tail evaluations against Brent's ~30. On the numerical-inversion
    /// regime every evaluation is a 2m+1-point Laplace inversion, so this
    /// is the difference between ~300 µs and ~25 µs per sweep cell;
    /// well-conditioned cells run the same secant on the cheap expansion
    /// tail.
    ///
    /// The secant terminates at step width [`QUANTILE_FAST_ATOL`]
    /// (2e-8 s = 2e-5 ms), several times under the engine's documented
    /// batch tolerance; any breakdown (non-finite tail, eval budget
    /// exhausted) falls back to the exact
    /// [`TotalDelay::quantile_with_hint`] path. Panics unless
    /// `p ∈ (0, 1)`; NaN only if the fallback itself fails to converge.
    pub fn quantile_fast(&self, p: f64, hint: Option<f64>) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile_fast: p must lie in (0,1), got {p}"
        );
        FAST_QUANTILES.incr();
        let target = 1.0 - p;
        if self.tail(0.0) <= target {
            return 0.0;
        }
        let scale = self.mean().abs().max(1e-9);
        let seed = hint
            .filter(|h| h.is_finite() && *h > 0.0)
            // Exponential with the model's mean: exact if the total were
            // memoryless, an upper-ish start otherwise — either way one
            // slope step away from the linear regime.
            .unwrap_or_else(|| scale * (1.0 / target).ln());
        let solved = match (self.well_conditioned, &self.product) {
            (true, Some(prod)) => self.quantile_log_secant(|x| prod.tail(x), target, seed),
            // Below the inversion noise floor the secant would chase
            // sign-noise; route straight to the (also-rejecting) fallback.
            _ if target < NUMERIC_TAIL_FLOOR => None,
            _ => self.quantile_log_secant(|x| self.tail_numeric(x.max(1e-15)), target, seed),
        };
        if let Some(x) = solved {
            return x;
        }
        FAST_FALLBACKS.incr();
        self.quantile_with_hint(p, hint)
    }

    /// The total's asymptotic decay rate: the tail behaves like
    /// `e^{-r·x}` with `r` the smallest decay bound among the three
    /// factors (the product is analytic on `Re s < r`). `None` when no
    /// factor reports one.
    fn decay_rate(&self) -> Option<f64> {
        let r = [
            self.upstream.dominant_decay(),
            self.burst_wait.dominant_decay(),
            self.position.decay_bound(),
        ]
        .into_iter()
        .flatten()
        .fold(f64::INFINITY, f64::min);
        r.is_finite().then_some(r)
    }

    /// Safeguarded secant on `ln tail(x) − ln target`, the workhorse of
    /// [`TotalDelay::quantile_fast`]. Maintains the sign bracket
    /// discovered along the way; a secant step that leaves it (or a
    /// degenerate secant) bisects instead, so progress never stalls on
    /// inversion noise. `None` on any non-finite tail value or when the
    /// evaluation budget runs out — the caller falls back to Brent.
    fn quantile_log_secant(
        &self,
        tail: impl Fn(f64) -> f64,
        target: f64,
        seed: f64,
    ) -> Option<f64> {
        const MAX_EVALS: usize = 40;
        let ln_target = target.ln();
        let mut evals = 0usize;
        let f = |x: f64| -> Option<f64> {
            FAST_TAIL_EVALS.incr();
            let t = tail(x);
            if !t.is_finite() {
                return None;
            }
            // Clamp before the log: beyond the inversion's noise floor the
            // tail can dip ≤ 0, which simply reads as "far past the root".
            Some(t.max(1e-300).ln() - ln_target)
        };
        // f is decreasing: f(lo) > 0 ≥ f(hi). The caller's atom check
        // guarantees f(0+) > 0.
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        let mut x0 = seed.max(QUANTILE_FAST_ATOL);
        evals += 1;
        let mut f0 = f(x0)?;
        // Second point: one step along the asymptotic log-slope −r lands
        // it near the root (exact if the tail were already in its
        // single-exponential regime), so the first secant is interpolation
        // rather than a blind 5% probe.
        let mut x1 = match self.decay_rate().filter(|r| *r > 0.0) {
            Some(r) if (f0 / r).abs() > QUANTILE_FAST_ATOL => (x0 + f0 / r).max(0.25 * x0),
            _ => x0 * 1.05 + QUANTILE_FAST_ATOL,
        };
        if exact_eq(x1, x0) {
            x1 = x0 * 1.05 + QUANTILE_FAST_ATOL;
        }
        evals += 1;
        let mut f1 = f(x1)?;
        loop {
            for (x, fx) in [(x0, f0), (x1, f1)] {
                if fx > 0.0 {
                    lo = lo.max(x);
                } else {
                    hi = hi.min(x);
                }
            }
            if evals >= MAX_EVALS {
                return None;
            }
            let denom = f1 - f0;
            let mut next = if exact_zero(denom) {
                f64::NAN
            } else {
                x1 - f1 * (x1 - x0) / denom
            };
            if !next.is_finite() || next <= lo || next >= hi {
                // Left the known bracket or degenerated: bisect when both
                // ends are known, otherwise push outward geometrically.
                next = if hi.is_finite() {
                    0.5 * (lo + hi)
                } else {
                    x0.max(x1) * 2.0
                };
            }
            if (next - x1).abs() <= QUANTILE_FAST_ATOL {
                return Some(next);
            }
            evals += 1;
            let fnext = f(next)?;
            (x0, f0) = (x1, f1);
            (x1, f1) = (next, fnext);
        }
    }

    /// Method 2: p-quantile keeping only the dominant pole of eq. (35)
    /// ("a good approximation as long as the residue associated with the
    /// dominant pole is not too small"). Only meaningful when the
    /// expansion exists and is well-conditioned.
    pub fn quantile_dominant_pole(&self, p: f64) -> f64 {
        match &self.product {
            Some(prod) => prod.quantile_dominant_pole(p),
            None => f64::NAN,
        }
    }

    /// Chernoff tail of eq. (36), evaluated on the *unexpanded* factor
    /// product (numerically stable at any conditioning):
    /// `P(D > d) ≈ inf_{0<s<s_max} e^{-sd}·D_u(s)·W(s)·P(s)`.
    pub fn tail_chernoff(&self, x: f64) -> f64 {
        let s_max = [
            self.upstream.dominant_decay(),
            self.burst_wait.dominant_decay(),
            self.position.decay_bound(),
        ]
        .into_iter()
        .flatten()
        .fold(f64::INFINITY, f64::min);
        if !s_max.is_finite() {
            return 0.0;
        }
        let s_max = s_max * (1.0 - 1e-9);
        let obj = |s: f64| {
            let v = self.eval_factors(Complex64::from_real(s));
            (-s * x).exp() * v.re
        };
        // Golden-section over s.
        const INV_PHI: f64 = 0.618_033_988_749_894_8;
        let (mut a, mut b) = (0.0, s_max);
        let mut c = b - INV_PHI * (b - a);
        let mut d = a + INV_PHI * (b - a);
        let (mut fc, mut fd) = (obj(c), obj(d));
        for _ in 0..200 {
            if fc < fd {
                b = d;
                d = c;
                fd = fc;
                c = b - INV_PHI * (b - a);
                fc = obj(c);
            } else {
                a = c;
                c = d;
                fc = fd;
                d = a + INV_PHI * (b - a);
                fd = obj(d);
            }
        }
        obj(0.5 * (a + b)).min(1.0)
    }

    /// Method 3: p-quantile from the Chernoff bound of eq. (36). Panics
    /// unless `p ∈ (0, 1)`; NaN if the bracketed solve fails to converge.
    pub fn quantile_chernoff(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        let target = 1.0 - p;
        if self.tail_chernoff(0.0) <= target {
            return 0.0;
        }
        let scale = self.mean().abs().max(1e-9);
        let mut hi = scale;
        let mut expansions = 0;
        while self.tail_chernoff(hi) > target && expansions < 200 {
            hi *= 2.0;
            expansions += 1;
            CHERNOFF_EXPANSIONS.incr();
        }
        fpsping_num::roots::brent(
            |x| self.tail_chernoff(x) - target,
            0.0,
            hi,
            1e-10 * scale,
            300,
        )
        .map(|r| r.root)
        .unwrap_or(f64::NAN)
    }

    /// Method 4: sum of the component quantiles ("the quantile of a sum of
    /// delay contributions can be approximated by the sum of the quantiles
    /// of the individual delay terms"). Same domain and NaN behavior as
    /// [`TotalDelay::quantile`].
    pub fn quantile_sum_of_quantiles(&self, p: f64) -> f64 {
        let q_mix = |m: &ErlangMix| {
            if m.blocks.is_empty() {
                0.0
            } else {
                m.quantile(p)
            }
        };
        q_mix(&self.upstream) + q_mix(&self.burst_wait) + self.position.quantile(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::mdd1;
    use crate::position::PositionDelay;

    /// A representative paper scenario: T = 60 ms, K = 9, ρ_d = 0.5,
    /// upstream M/D/1 at ρ_u = 0.32 (P_S = 125 B, P_C = 80 B).
    fn paper_like_model() -> TotalDelay {
        let t = 0.06;
        let rho_d = 0.5;
        let k = 9u32;
        let mean_service = rho_d * t;
        let dek1 = DEk1::new(k, mean_service, t).unwrap();
        let beta = k as f64 / mean_service;
        let pos = PositionDelay::uniform(k, beta).unwrap();
        // Upstream: packets of 80 B on 5 Mbps → τ = 128 µs; ρ_u = ρ_d·80/125.
        let tau = 80.0 * 8.0 / 5_000_000.0;
        let rho_u = rho_d * 80.0 / 125.0;
        let up = mdd1(rho_u / tau, tau).unwrap();
        TotalDelay::new(Some(&up), &dek1, &pos).unwrap()
    }

    #[test]
    fn product_is_a_probability_law() {
        let m = paper_like_model();
        assert!((m.product().unwrap().total_mass() - 1.0).abs() < 1e-8);
        let mut prev = 1.0 + 1e-12;
        for i in 0..60 {
            let x = i as f64 * 0.005;
            let t = m.tail(x);
            assert!((-1e-9..=1.0 + 1e-9).contains(&t), "tail({x}) = {t}");
            assert!(t <= prev + 1e-9, "monotone at {x}");
            prev = t;
        }
    }

    #[test]
    fn closed_form_matches_numeric_inversion() {
        let m = paper_like_model();
        for &x in &[0.005, 0.02, 0.05, 0.1] {
            let closed = m.tail(x);
            let numeric = m.tail_numeric(x);
            assert!(
                (closed - numeric).abs() < 1e-7,
                "x={x}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn mean_adds_components() {
        // When the expansion is well-conditioned, the expanded product's
        // own mean must agree with the sum of the component means.
        let m = paper_like_model();
        assert!(m.expansion_well_conditioned());
        let sum = m.upstream().mean() + m.burst_wait().mean() + m.position().mean();
        assert!((m.product().unwrap().mean() - sum).abs() < 1e-8 * sum);
        assert!((m.mean() - sum).abs() < 1e-12);
    }

    #[test]
    fn quantile_methods_agree_in_order_of_magnitude() {
        let m = paper_like_model();
        let p = 0.99999;
        let q1 = m.quantile(p);
        let q2 = m.quantile_dominant_pole(p);
        let q3 = m.quantile_chernoff(p);
        let q4 = m.quantile_sum_of_quantiles(p);
        assert!(q1 > 0.0);
        for (name, q) in [("dominant", q2), ("chernoff", q3), ("sum-of-q", q4)] {
            assert!(
                q > 0.5 * q1 && q < 2.0 * q1,
                "{name} quantile {q} vs full {q1}"
            );
        }
        // Chernoff tail ≥ exact tail ⇒ Chernoff quantile ≥ exact quantile.
        assert!(q3 >= q1 - 1e-9);
        // Sum-of-quantiles over-estimates for independent sums.
        assert!(q4 >= q1 - 1e-9);
    }

    #[test]
    fn without_upstream_matches_downstream_product() {
        // Load high enough that the expansion is well-conditioned.
        let t = 0.04;
        let k = 9u32;
        let mean_service = 0.6 * t;
        let dek1 = DEk1::new(k, mean_service, t).unwrap();
        let pos = PositionDelay::uniform(k, k as f64 / mean_service).unwrap();
        let m = TotalDelay::new(None, &dek1, &pos).unwrap();
        assert!(m.expansion_well_conditioned());
        let direct = dek1.to_mix().product(&pos.to_mix().unwrap());
        for &x in &[0.001, 0.01, 0.03] {
            assert!((m.tail(x) - direct.tail(x)).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn ill_conditioned_expansion_falls_back_to_numeric() {
        // Low load, K = 9: the D/E_K/1 poles collapse onto β and the
        // eq.-(35) expansion blows up; the auto tail must stay a valid
        // probability and match the position-delay tail (which dominates
        // at low load).
        let t = 0.06;
        let k = 9u32;
        let rho = 0.05;
        let dek1 = DEk1::new(k, rho * t, t).unwrap();
        let pos = PositionDelay::uniform(k, k as f64 / (rho * t)).unwrap();
        let m = TotalDelay::new(None, &dek1, &pos).unwrap();
        assert!(!m.expansion_well_conditioned());
        for &x in &[0.001, 0.004, 0.008] {
            let t_auto = m.tail(x);
            let t_pos = pos.tail(x);
            assert!((0.0..=1.0).contains(&t_auto));
            assert!(
                (t_auto - t_pos).abs() < 1e-3 * t_pos.max(1e-9) + 1e-9,
                "x={x}: auto {t_auto:e} vs position {t_pos:e}"
            );
        }
    }

    #[test]
    fn noise_floor_quantile_is_an_error_not_clamped_garbage() {
        // Ill-conditioned model: every tail/quantile runs on the clamped
        // numerical inversion, whose absolute accuracy is ~1e-10. A target
        // of 1e-12 sits below that floor; the clamp used to hide the
        // resulting non-monotone noise from the bracket search, and the
        // Brent solve would return whichever noise zero-crossing it hit —
        // a finite, plausible-looking, meaningless quantile.
        let t = 0.06;
        let k = 9u32;
        let rho = 0.05;
        let dek1 = DEk1::new(k, rho * t, t).unwrap();
        let pos = PositionDelay::uniform(k, k as f64 / (rho * t)).unwrap();
        let m = TotalDelay::new(None, &dek1, &pos).unwrap();
        assert!(!m.expansion_well_conditioned());
        let p = 1.0 - 1e-12;
        assert!(matches!(
            m.try_quantile(p),
            Err(QueueError::SolveFailure { .. })
        ));
        // The infallible forms surface the failure as NaN, never a number.
        assert!(m.quantile(p).is_nan());
        assert!(m.quantile_fast(p, None).is_nan());
        // Targets above the floor still solve, and the fallible and
        // infallible paths agree exactly.
        let q = m.try_quantile(0.99999).unwrap();
        assert!(q.is_finite() && q > 0.0);
        assert_eq!(q, m.quantile(0.99999));
    }

    #[test]
    fn upstream_only_shifts_tail_up() {
        // Adding an upstream component can only increase the total delay.
        let t = 0.06;
        let k = 9u32;
        let dek1 = DEk1::new(k, 0.5 * t, t).unwrap();
        let pos = PositionDelay::uniform(k, k as f64 / (0.5 * t)).unwrap();
        let without = TotalDelay::new(None, &dek1, &pos).unwrap();
        let up = mdd1(0.32 / 0.000_128, 0.000_128).unwrap();
        let with = TotalDelay::new(Some(&up), &dek1, &pos).unwrap();
        for &x in &[0.005, 0.02, 0.06] {
            assert!(with.tail(x) >= without.tail(x) - 1e-9, "x={x}");
        }
        assert!(with.quantile(0.99999) >= without.quantile(0.99999));
    }

    #[test]
    fn low_load_quantile_tracks_position_delay() {
        // §4: at low load the burst wait is negligible and the packet
        // position delay dominates, making the quantile ≈ the position
        // quantile.
        let t = 0.06;
        let k = 9u32;
        let rho = 0.05;
        let dek1 = DEk1::new(k, rho * t, t).unwrap();
        let pos = PositionDelay::uniform(k, k as f64 / (rho * t)).unwrap();
        let m = TotalDelay::new(None, &dek1, &pos).unwrap();
        let p = 0.99999;
        let q_total = m.quantile(p);
        let q_pos = pos.to_mix().unwrap().quantile(p);
        assert!(
            (q_total - q_pos).abs() < 0.05 * q_pos,
            "total {q_total} vs position {q_pos}"
        );
    }

    // ---- K = 1 (eq. 33, logarithmic position transform) ----

    fn k1_model(rho: f64, t: f64) -> TotalDelay {
        let dek1 = DEk1::new(1, rho * t, t).unwrap();
        let pos = PositionDelay::uniform(1, 1.0 / (rho * t)).unwrap();
        TotalDelay::new(None, &dek1, &pos).unwrap()
    }

    #[test]
    fn k1_model_builds_without_expansion() {
        let m = k1_model(0.5, 0.06);
        assert!(m.product().is_none());
        assert!(!m.expansion_well_conditioned());
        assert!(matches!(m.position(), PositionFactor::LogK1 { .. }));
    }

    #[test]
    fn k1_log_mgf_value_and_series_agree() {
        let f = PositionFactor::LogK1 { beta: 100.0 };
        // At s = 0 the MGF is 1.
        assert!((f.eval(Complex64::ZERO) - Complex64::ONE).abs() < 1e-12);
        // Series and closed form agree near the seam.
        let s1 = Complex64::from_real(100.0 * 0.9e-6);
        let s2 = Complex64::from_real(100.0 * 1.1e-6);
        let v1 = f.eval(s1);
        let v2 = f.eval(s2);
        assert!((v2 - v1).abs() < 1e-7, "seam continuity: {v1} vs {v2}");
        // Against direct quadrature of E[e^{s·uB}] = ∫₀¹ β/(β-sτ) dτ.
        let s = Complex64::from_real(-50.0);
        let direct = fpsping_num::quad::gauss_legendre_composite(
            |tau| 100.0 / (100.0 - (-50.0f64) * tau),
            0.0,
            1.0,
            32,
        );
        assert!((f.eval(s).re - direct).abs() < 1e-10);
    }

    #[test]
    fn k1_tail_matches_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let (rho, t) = (0.5, 0.06);
        let m = k1_model(rho, t);
        let beta = 1.0 / (rho * t);
        // Simulate Lindley (D/M/1) + u·Exp(β) position + nothing upstream.
        let mut rng = StdRng::seed_from_u64(0x4B31);
        let uni = |rng: &mut StdRng| {
            ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-300)
        };
        let mut w = 0.0f64;
        let xs = [0.02, 0.05, 0.1];
        let mut cnt = [0u64; 3];
        let n = 2_000_000u64;
        for _ in 0..n {
            let total = w + uni(&mut rng) * (-uni(&mut rng).ln() / beta);
            for (c, &x) in cnt.iter_mut().zip(&xs) {
                if total > x {
                    *c += 1;
                }
            }
            let b = -uni(&mut rng).ln() / beta;
            w = (w + b - t).max(0.0);
        }
        for (i, &x) in xs.iter().enumerate() {
            let mc = cnt[i] as f64 / n as f64;
            let an = m.tail(x);
            assert!(
                (an - mc).abs() < 0.05 * mc.max(1e-4),
                "x={x}: analytic {an:.6} vs MC {mc:.6}"
            );
        }
    }

    #[test]
    fn k1_quantile_and_mean_are_finite_and_sane() {
        let m = k1_model(0.4, 0.04);
        let q = m.quantile(0.99999);
        assert!(q.is_finite() && q > 0.0);
        // Mean = burst-wait mean + b̄/2.
        let expected_pos_mean = 0.5 * 0.4 * 0.04;
        assert!((m.position().mean() - expected_pos_mean).abs() < 1e-12);
        assert!(m.mean() > expected_pos_mean);
        // Exponential bursts (K=1) are burstier than Erlang-9 at the same
        // load: the K=1 quantile must exceed the K=9 quantile.
        let t = 0.04;
        let dek9 = DEk1::new(9, 0.4 * t, t).unwrap();
        let pos9 = PositionDelay::uniform(9, 9.0 / (0.4 * t)).unwrap();
        let m9 = TotalDelay::new(None, &dek9, &pos9).unwrap();
        assert!(q > m9.quantile(0.99999), "K=1 must be worse than K=9");
    }
}
