//! The N·D/D/1 upstream queue of §3.1 (eqs. 2–12).
//!
//! `N` clients each send one packet of service time `τ = p/C` every `D`
//! seconds, with independent random phases. The paper's chain of
//! approximations for the stationary workload tail `P(Q > w)` (expressed
//! here in time units):
//!
//! 1. **Dominant term / binomial supremum** (eq. 4):
//!    `P(Q > w) ≈ sup_{0<t≤D} P(Bin(N, t/D) > (w+t)/τ)` — "often very
//!    accurate".
//! 2. **Chernoff / large-deviations estimate** (eqs. 7–10): replace the
//!    binomial tail by its Chernoff bound with the optimizing `s*` of
//!    eq. (9) in closed form, then minimize the exponent over the window
//!    length `t`.
//! 3. **M/D/1 (Poisson) limit** (eqs. 11–12): as `N → ∞` with the load
//!    fixed, the input converges to Poisson and the exponent simplifies
//!    accordingly.
//!
//! All three are implemented; the tests pit them against a brute-force
//! phase-randomized simulation and against each other (the limit ordering
//! of eq. 11).

use crate::QueueError;
use fpsping_num::special::binomial_tail_ge;

/// An N·D/D/1 queue: `n` periodic unit-packet flows of period `d` and
/// per-packet service time `tau` (all times in seconds).
///
/// # Examples
///
/// ```
/// use fpsping_queue::nddd1::NDdd1;
///
/// // 32 gamers sending every 40 ms; 0.5 ms packets → ρ = 0.4.
/// let q = NDdd1::new(32, 0.040, 0.0005).unwrap();
/// let tail = q.tail_binomial_sup(0.002); // eq. (4)
/// assert!(tail > 0.0 && tail < 0.1);
/// // The Chernoff estimate (eq. 10) has the same order of magnitude:
/// let chern = q.tail_chernoff(0.002);
/// assert!(chern > 0.1 * tail && chern < 10.0 * tail);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NDdd1 {
    n: u64,
    d: f64,
    tau: f64,
}

impl NDdd1 {
    /// Builds the queue; requires `ρ = n·τ/d ∈ (0, 1)`.
    pub fn new(n: u64, d: f64, tau: f64) -> Result<Self, QueueError> {
        if n == 0 {
            return Err(QueueError::InvalidParameter {
                name: "n",
                value: 0.0,
            });
        }
        if !(d.is_finite() && d > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "d",
                value: d,
            });
        }
        if !(tau.is_finite() && tau > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "tau",
                value: tau,
            });
        }
        let rho = n as f64 * tau / d;
        if rho >= 1.0 {
            return Err(QueueError::UnstableLoad { rho });
        }
        Ok(Self { n, d, tau })
    }

    /// Number of flows N.
    pub fn flows(&self) -> u64 {
        self.n
    }

    /// Period D (seconds); finite and positive by construction.
    pub fn period(&self) -> f64 {
        self.d
    }

    /// Per-packet service time τ (seconds); finite and positive by
    /// construction.
    pub fn service(&self) -> f64 {
        self.tau
    }

    /// Load ρ = Nτ/D; finite in `(0, 1)` by construction.
    pub fn load(&self) -> f64 {
        self.n as f64 * self.tau / self.d
    }

    /// Eq. (4): the dominant-term binomial supremum for `P(Q > w)`.
    ///
    /// For each candidate arrival count `j` the best window is the longest
    /// `t` that still requires only `j` arrivals to overflow, i.e.
    /// `t_j = min(D, jτ - w)`; the supremum is then the max over `j` of
    /// `P(Bin(N, t_j/D) ≥ j)`.
    pub fn tail_binomial_sup(&self, w: f64) -> f64 {
        assert!(w >= 0.0, "tail: w must be non-negative");
        let j_min = (w / self.tau).floor() as u64 + 1;
        let mut best = 0.0f64;
        for j in j_min..=self.n {
            let t = (j as f64 * self.tau - w).min(self.d);
            if t <= 0.0 {
                continue;
            }
            let p = (t / self.d).min(1.0);
            let val = binomial_tail_ge(self.n, p, j);
            if val > best {
                best = val;
            }
        }
        best.min(1.0)
    }

    /// Eqs. (7)–(10): the Chernoff / large-deviations estimate.
    ///
    /// `ln P(Q > w) ≈ sup_{0<t≤D} inf_{s≥0} [-s(w+t) + N·ln(1-q+q·e^{sτ})]`
    /// — the inner infimum has the closed-form optimizer `s*` of eq. (9);
    /// the outer supremum over the window length `t` is located by a grid
    /// scan plus golden-section refinement.
    pub fn tail_chernoff(&self, w: f64) -> f64 {
        assert!(w >= 0.0, "tail: w must be non-negative");
        // Windows with w + t ≥ Nτ cannot overflow (exponent -∞).
        let t_max = (self.n as f64 * self.tau - w).min(self.d);
        if t_max <= 0.0 {
            return 0.0;
        }
        let exponent = |t: f64| self.chernoff_exponent(w, t);
        let max_exp = grid_golden_max(exponent, 1e-9 * self.d, t_max * (1.0 - 1e-12));
        max_exp.exp().min(1.0)
    }

    /// The inner Chernoff exponent `sup_s [-s·c + N·ln(1 - q + q·e^{sτ})]`
    /// at window `t`, with `c = w + t` (time units) and `q = t/D` — the
    /// bracketed quantity of eq. (8) with eq. (9) substituted.
    fn chernoff_exponent(&self, w: f64, t: f64) -> f64 {
        let c = w + t;
        let q = (t / self.d).min(1.0);
        let n = self.n as f64;
        // Overflow needs c/τ arrivals; impossible beyond N (exponent -∞).
        if c >= n * self.tau {
            return f64::NEG_INFINITY;
        }
        // Optimizer (eq. 9): e^{s*τ} = c(1-q) / (q(Nτ - c)).
        let y = (c * (1.0 - q)) / (q * (n * self.tau - c));
        if y <= 1.0 {
            // s* ≤ 0: the event is not rare at this window; bound is 1.
            return 0.0;
        }
        let s = y.ln() / self.tau;
        -s * c + n * (1.0 - q + q * y).ln()
    }

    /// Eq. (12): the Poisson / M/D/1 limit of the Chernoff estimate.
    ///
    /// Same outer supremum over `t`, with the binomial log-MGF replaced by
    /// the Poisson one (`(Nt/D)(e^{sτ} - 1)`), closed-form inner optimizer.
    /// Panics if `w < 0`; finite in `[0, 1]`.
    pub fn tail_mdd1_limit(&self, w: f64) -> f64 {
        assert!(w >= 0.0, "tail: w must be non-negative");
        let exponent = |t: f64| self.poisson_exponent(w, t);
        // The optimal window is O(D); search a generous multiple.
        let max_exp = grid_golden_max(exponent, 1e-9 * self.d, 20.0 * self.d);
        max_exp.exp().min(1.0)
    }

    fn poisson_exponent(&self, w: f64, t: f64) -> f64 {
        let c = w + t;
        let n = self.n as f64;
        let mean_arrivals = n * t / self.d; // Poisson mean in window t
        let need = c / self.tau; // service-time units required
        if need <= mean_arrivals {
            return 0.0; // not rare
        }
        // sup_s [-s·c + m(e^{sτ} - 1)]: e^{s*τ} = need/m.
        let y: f64 = need / mean_arrivals;
        -(need) * y.ln() + mean_arrivals * (y - 1.0)
    }
}

/// Maximizes `f` on `[a, b]` by a coarse grid scan followed by
/// golden-section refinement around the best grid cell; returns the
/// maximum value. Robust to `-∞` plateaus at the domain edges.
fn grid_golden_max(f: impl Fn(f64) -> f64, a: f64, b: f64) -> f64 {
    const GRID: usize = 256;
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let step = (b - a) / GRID as f64;
    let mut best_i = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for i in 0..=GRID {
        let v = f(a + i as f64 * step);
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    if !best_v.is_finite() {
        return best_v;
    }
    // Full-width refinement bracket around the best grid point: the
    // interior case is [x_{i-1}, x_{i+1}]; at either edge the bracket
    // keeps its two-cell width by extending inward ([x_0, x_2] at the
    // left edge, [x_{G-2}, b] at the right) instead of silently
    // collapsing to half width against the domain boundary — a half
    // bracket can exclude a true optimum that the coarse grid stepped
    // over just inside the neighboring cell.
    let (lo_i, hi_i) = if best_i == 0 {
        (0, 2.min(GRID))
    } else if best_i == GRID {
        (GRID - 2, GRID)
    } else {
        (best_i - 1, best_i + 1)
    };
    let (mut lo, mut hi) = (a + lo_i as f64 * step, (a + hi_i as f64 * step).min(b));
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..120 {
        if fc > fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = f(d);
        }
    }
    f(0.5 * (lo + hi)).max(best_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Brute-force stationary-workload simulation: random phases, run the
    /// workload process over many periods, sample the virtual wait at
    /// random instants.
    fn simulate_workload_tail(n: usize, d: f64, tau: f64, xs: &[f64], reps: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(0x9D1);
        let uni = |rng: &mut StdRng| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut exceed = vec![0u64; xs.len()];
        let mut total = 0u64;
        for _ in 0..reps {
            // Fresh random phases each replication; warm 3 periods, sample
            // over the following 8 periods at random instants.
            let mut phases: Vec<f64> = (0..n).map(|_| uni(&mut rng) * d).collect();
            phases.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let horizon_periods = 11usize;
            let mut arrivals: Vec<f64> = Vec::with_capacity(n * horizon_periods);
            for k in 0..horizon_periods {
                for &ph in &phases {
                    arrivals.push(ph + k as f64 * d);
                }
            }
            arrivals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Workload just after each arrival; between arrivals it drains
            // linearly. Sample at random times in [3D, 11D).
            let mut samples: Vec<f64> = (0..200)
                .map(|_| 3.0 * d + uni(&mut rng) * 8.0 * d)
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut v = 0.0f64; // workload in time units
            let mut prev_t = 0.0f64;
            let mut si = 0usize;
            for &a in &arrivals {
                // Drain until arrival; emit samples falling in [prev_t, a).
                while si < samples.len() && samples[si] < a {
                    let w = (v - (samples[si] - prev_t)).max(0.0);
                    for (c, &x) in exceed.iter_mut().zip(xs) {
                        if w > x {
                            *c += 1;
                        }
                    }
                    total += 1;
                    si += 1;
                }
                v = (v - (a - prev_t)).max(0.0) + tau;
                prev_t = a;
            }
        }
        exceed.iter().map(|&c| c as f64 / total as f64).collect()
    }

    #[test]
    fn binomial_sup_matches_simulation() {
        // N = 16 flows at 50% load.
        let (n, d, tau) = (16u64, 0.04, 0.00125);
        let q = NDdd1::new(n, d, tau).unwrap();
        assert!((q.load() - 0.5).abs() < 1e-12);
        let xs = [0.002, 0.004, 0.006];
        let sim = simulate_workload_tail(n as usize, d, tau, &xs, 6_000);
        for (&x, &s) in xs.iter().zip(&sim) {
            let a = q.tail_binomial_sup(x);
            // Eq. (4) keeps only the dominant term of a union, so it
            // under-counts at mild quantiles and sharpens as the event gets
            // rarer; accept order-of-magnitude agreement (factor 4) and
            // never an over-estimate beyond sampling noise.
            assert!(
                a > 0.25 * s && a < 2.0 * s.max(1e-5),
                "x={x}: binomial-sup {a:.6} vs sim {s:.6}"
            );
        }
    }

    #[test]
    fn chernoff_close_to_binomial_sup() {
        let q = NDdd1::new(32, 0.04, 0.000_5).unwrap(); // ρ = 0.4
        for &w in &[0.0005, 0.001, 0.002] {
            let b = q.tail_binomial_sup(w);
            let c = q.tail_chernoff(w);
            // Chernoff is an upper-bound-flavoured estimate of the same
            // dominant term: same order of magnitude.
            assert!(c > 0.2 * b && c < 10.0 * b.max(1e-12), "w={w}: {c} vs {b}");
        }
    }

    #[test]
    fn poisson_limit_approached_as_n_grows() {
        // Eq. (11): fix load and w; scale N and D together. The binomial
        // Chernoff estimate must approach its Poisson (M/D/1) limit —
        // both share the prefactor-free large-deviations structure, so
        // the log-gap genuinely vanishes.
        let tau = 0.0002;
        let w = 0.0015;
        let mut prev_gap = f64::INFINITY;
        for &scale in &[1u64, 4, 16] {
            let n = 40 * scale;
            let d = n as f64 * tau / 0.5; // keep ρ = 0.5
            let q = NDdd1::new(n, d, tau).unwrap();
            let b = (q.tail_chernoff(w)).ln();
            let m = (q.tail_mdd1_limit(w)).ln();
            let gap = (b - m).abs();
            assert!(
                gap <= prev_gap + 1e-9,
                "scale {scale}: log-gap {gap} grew from {prev_gap}"
            );
            prev_gap = gap;
        }
        assert!(
            prev_gap < 0.2,
            "limit log-gap should shrink, got {prev_gap}"
        );
    }

    #[test]
    fn tail_is_monotone_in_w_and_load() {
        let q = NDdd1::new(24, 0.04, 0.001).unwrap(); // ρ = 0.6
        let mut prev = 1.1;
        for i in 0..20 {
            let w = i as f64 * 0.0005;
            let t = q.tail_binomial_sup(w);
            assert!(t <= prev + 1e-12, "w={w}");
            assert!((0.0..=1.0).contains(&t));
            prev = t;
        }
        let q_heavy = NDdd1::new(36, 0.04, 0.001).unwrap(); // ρ = 0.9
        for &w in &[0.001, 0.003] {
            assert!(q_heavy.tail_binomial_sup(w) > q.tail_binomial_sup(w));
        }
    }

    #[test]
    fn zero_wait_probability_below_one() {
        let q = NDdd1::new(8, 0.04, 0.001).unwrap(); // ρ = 0.2
        let t0 = q.tail_binomial_sup(0.0);
        assert!(t0 > 0.0 && t0 <= 1.0);
    }

    #[test]
    fn impossible_backlog_has_zero_probability() {
        // Workload can never exceed N·τ (all packets of one period back to
        // back); beyond that every method must report (near) zero.
        let q = NDdd1::new(10, 0.04, 0.001).unwrap();
        let w = 10.0 * 0.001 + 0.001;
        assert_eq!(q.tail_binomial_sup(w), 0.0);
        assert!(q.tail_chernoff(w) < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(NDdd1::new(0, 0.04, 0.001).is_err());
        assert!(matches!(
            NDdd1::new(50, 0.04, 0.001),
            Err(QueueError::UnstableLoad { .. })
        ));
        assert!(NDdd1::new(10, -0.04, 0.001).is_err());
    }

    /// Pin for the edge-bracket fix in `grid_golden_max`: when the coarse
    /// scan's best point is the *first* grid point, the refinement bracket
    /// must still span two grid cells ([x₀, x₂]). The old
    /// `best_i.saturating_sub(1)` bracket collapsed to the half-width
    /// [x₀, x₁] and missed a maximum that the grid stepped over inside the
    /// second cell.
    #[test]
    fn grid_golden_max_refines_past_the_first_grid_cell() {
        // Domain [0, 256] → grid step 1. A narrow peak of height 1 at
        // x = 0 makes index 0 the best *grid* point (the true peak of
        // height 2 at x = 1.5 is sampled only at x = 1 and x = 2, both
        // far down its flanks).
        let bump = |x: f64, c: f64, w: f64| {
            let z = (x - c) / w;
            (-z * z).exp()
        };
        let f = |x: f64| bump(x, 0.0, 0.2) + 2.0 * bump(x, 1.5, 0.35);
        assert!(f(0.0) > f(1.0) && f(0.0) > f(2.0), "grid best is index 0");
        let got = grid_golden_max(f, 0.0, 256.0);
        assert!(
            got > 1.9,
            "refinement must reach the true peak in (x₁, x₂): got {got}"
        );
    }
}
