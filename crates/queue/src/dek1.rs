//! The D/E_K/1 queue of §3.2.1 — burst waiting time at the downstream
//! bottleneck.
//!
//! Bursts arrive every `T` seconds; the work each burst brings is
//! Erlang(K, β) distributed with mean `b̄ = K/β` seconds (burst size over
//! the link rate). The waiting-time MGF is (eq. 18)
//!
//! ```text
//! W(s) = (1 - Σaⱼ) + Σⱼ aⱼ·αⱼ/(αⱼ - s),
//! ```
//!
//! with K poles `αⱼ = β(1 - ζⱼ)` (eq. 25) where `ζⱼ` is, per branch
//! `j = 1..K`, the unique root with `Re z < 1` of (eq. 26)
//!
//! ```text
//! z = exp((z-1)/ρ_d + 2πi(j-1)/K),        ρ_d = b̄/T,
//! ```
//!
//! found by the fixed-point iteration from `z = 0` that Appendix C proves
//! convergent (here polished by a complex Newton step for full double
//! precision), and weights (eq. 27, the Vandermonde/Lagrange closed form
//! derived in Appendix D)
//!
//! ```text
//! aⱼ = ζⱼ^K · Π_{k≠j} (1-ζ_k)/(ζⱼ-ζ_k).
//! ```
//!
//! For K = 1 this collapses to the classical D/M/1 solution
//! `P(W > x) = σ·e^{-μ(1-σ)x}` (Kleinrock [15]), which the tests verify.

use crate::erlang_mix::{ErlangMix, PoleBlock};
use crate::QueueError;
use fpsping_num::batch::{complex_fixed_point_lockstep, complex_newton_lockstep};
use fpsping_num::cmp::exact_zero;
use fpsping_num::finite_guard::{finite, finite_c};
use fpsping_num::Complex64;
use fpsping_obs::Counter;

static ZETA_SOLVES: Counter = Counter::new("queue.dek1.zeta.solves");
static ZETA_POLISH_STEPS: Counter = Counter::new("queue.dek1.zeta.newton_polish_steps");
static ZETA_COLD_SOLVES: Counter = Counter::new("queue.dek1.zeta.cold_solves");
static ZETA_WARM_SOLVES: Counter = Counter::new("queue.dek1.zeta.warm_solves");
static ZETA_WARM_STEPS: Counter = Counter::new("queue.dek1.zeta.warm_newton_steps");
static ZETA_WARM_FALLBACKS: Counter = Counter::new("queue.dek1.zeta.warm_fallbacks");

/// Residual tolerance `|z - map(z)|` for accepting a continuation
/// warm-started root. Cold solves land around 1e-15; anything above this
/// means the Newton polish wandered and the cell falls back to the cold
/// fixed-point path.
const WARM_RESIDUAL_TOL: f64 = 1e-10;

/// Solved D/E_K/1 queue: burst inter-arrival `T`, Erlang(K, β) service.
///
/// # Examples
///
/// ```
/// use fpsping_queue::DEk1;
///
/// // Bursts every 40 ms bringing Erlang(9) work with mean 24 ms (ρ = 0.6).
/// let q = DEk1::new(9, 0.024, 0.040).unwrap();
/// assert!((q.load() - 0.6).abs() < 1e-12);
/// // Probability a burst waits at all, and the 99.999% waiting quantile:
/// assert!(q.prob_wait() > 0.0 && q.prob_wait() < 1.0);
/// assert!(q.wait_quantile(0.99999) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DEk1 {
    k: u32,
    beta: f64,
    t: f64,
    rho: f64,
    zetas: Vec<Complex64>,
    alphas: Vec<Complex64>,
    weights: Vec<Complex64>,
}

/// The *dimensionless* part of a D/E_K/1 solve: the branch roots ζⱼ and
/// weights aⱼ of eqs. (26)–(27) depend only on `(K, ρ_d)`, not on the
/// time scale `T`. Solving once per `(K, ρ_d)` and rescaling through
/// [`DEk1::from_solution`] lets sweep engines share the expensive
/// fixed-point/Newton work across cells — the reconstruction uses the
/// exact same floating-point operations as [`DEk1::new`], so a cached
/// rebuild is bit-identical to a fresh solve.
#[derive(Debug, Clone)]
pub struct DekSolution {
    k: u32,
    rho: f64,
    zetas: Vec<Complex64>,
    weights: Vec<Complex64>,
}

impl DekSolution {
    /// Solves the branch equations for Erlang order `k` at load `rho`.
    pub fn solve(k: u32, rho: f64) -> Result<Self, QueueError> {
        if k < 1 {
            return Err(QueueError::InvalidParameter {
                name: "k",
                value: k as f64,
            });
        }
        if !(0.0..1.0).contains(&rho) || exact_zero(rho) {
            return Err(QueueError::UnstableLoad { rho });
        }
        let zetas = solve_zetas(k, rho)?;
        let weights = solve_weights(&zetas);
        Ok(Self {
            k,
            rho,
            zetas,
            weights,
        })
    }

    /// Continuation solve: like [`DekSolution::solve`], but seeds the K
    /// roots from `prev` — a solution for the *same Erlang order* at a
    /// neighboring load — and polishes with Newton only, skipping the
    /// (expensive) fixed-point stage.
    ///
    /// Falls back to the cold path, transparently, when `prev` is absent,
    /// has a different order, or when any warm-polished root fails the
    /// validity gates (finite, `Re ζ < 1`, `|ζ| < 1`, branch residual
    /// ≤ 1e-10) — so the result is always a valid solution, warm or not.
    ///
    /// Warm-started roots are *not* bit-identical to cold ones: Newton
    /// from a neighboring seed lands within ~1e-15 relative of the cold
    /// root but may differ in the last ulps. The engine's batch sweep
    /// bounds the resulting RTT-quantile deviation by its documented
    /// `BATCH_RTT_TOLERANCE_MS` (1e-4 ms; observed warm-root contribution
    /// is ~1e-9 ms). Callers that need bit-exact reproduction of the
    /// serial path must use [`DekSolution::solve`].
    pub fn solve_warm(k: u32, rho: f64, prev: Option<&DekSolution>) -> Result<Self, QueueError> {
        if k < 1 {
            return Err(QueueError::InvalidParameter {
                name: "k",
                value: k as f64,
            });
        }
        if !(0.0..1.0).contains(&rho) || exact_zero(rho) {
            return Err(QueueError::UnstableLoad { rho });
        }
        if let Some(p) = prev {
            if p.k == k {
                if let Some(zetas) = solve_zetas_warm(k, rho, &p.zetas) {
                    ZETA_SOLVES.incr();
                    ZETA_WARM_SOLVES.incr();
                    let weights = solve_weights(&zetas);
                    return Ok(Self {
                        k,
                        rho,
                        zetas,
                        weights,
                    });
                }
                ZETA_WARM_FALLBACKS.incr();
                // Cold fallback below re-counts the solve.
            }
        }
        let zetas = solve_zetas(k, rho)?;
        let weights = solve_weights(&zetas);
        Ok(Self {
            k,
            rho,
            zetas,
            weights,
        })
    }

    /// Erlang order K.
    pub fn order(&self) -> u32 {
        self.k
    }

    /// Load ρ_d the roots were solved at; finite in `(0, 1)` by
    /// construction.
    pub fn load(&self) -> f64 {
        self.rho
    }

    /// The solved branch roots ζⱼ (read-only view, for continuation
    /// seeding and diagnostics).
    pub fn zetas(&self) -> &[Complex64] {
        &self.zetas
    }
}

impl DEk1 {
    /// Builds and solves the queue from the Erlang order `k`, the mean
    /// burst *service time* `mean_service` (seconds of work per burst) and
    /// the burst inter-arrival time `t` (seconds).
    ///
    /// The load `ρ_d = mean_service / t` must lie strictly in (0, 1).
    pub fn new(k: u32, mean_service: f64, t: f64) -> Result<Self, QueueError> {
        if k < 1 {
            return Err(QueueError::InvalidParameter {
                name: "k",
                value: k as f64,
            });
        }
        if !(mean_service.is_finite() && mean_service > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "mean_service",
                value: mean_service,
            });
        }
        if !(t.is_finite() && t > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "t",
                value: t,
            });
        }
        let rho = mean_service / t;
        let solution = DekSolution::solve(k, rho)?;
        Ok(Self::rescale(&solution, mean_service, t))
    }

    /// Rebuilds the queue from a cached dimensionless [`DekSolution`] and
    /// the time scale `(mean_service, t)`. The solution must have been
    /// solved at exactly `mean_service / t` (bit-for-bit, so cached and
    /// fresh results agree to the last ulp); the Erlang order is taken
    /// from the solution.
    pub fn from_solution(
        solution: &DekSolution,
        mean_service: f64,
        t: f64,
    ) -> Result<Self, QueueError> {
        if !(mean_service.is_finite() && mean_service > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "mean_service",
                value: mean_service,
            });
        }
        if !(t.is_finite() && t > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "t",
                value: t,
            });
        }
        let rho = mean_service / t;
        if rho.to_bits() != solution.rho.to_bits() {
            return Err(QueueError::InvalidParameter {
                name: "solution_rho",
                value: rho,
            });
        }
        Ok(Self::rescale(solution, mean_service, t))
    }

    /// Shared reconstruction path: attaches the time scale to the
    /// dimensionless roots. Both `new` and `from_solution` funnel through
    /// here, which is what makes cached rebuilds bit-identical.
    fn rescale(solution: &DekSolution, mean_service: f64, t: f64) -> Self {
        let beta = solution.k as f64 / mean_service;
        let alphas: Vec<Complex64> = solution.zetas.iter().map(|&z| (1.0 - z) * beta).collect();
        Self {
            k: solution.k,
            beta,
            t,
            rho: solution.rho,
            zetas: solution.zetas.clone(),
            alphas,
            weights: solution.weights.clone(),
        }
    }

    /// Erlang order K.
    pub fn order(&self) -> u32 {
        self.k
    }

    /// Erlang service rate β = K / b̄ (per second); finite and positive
    /// by construction.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Burst inter-arrival time T (seconds); finite and positive by
    /// construction.
    pub fn inter_arrival(&self) -> f64 {
        self.t
    }

    /// Load ρ_d = b̄/T; finite in `(0, 1)` by construction.
    pub fn load(&self) -> f64 {
        self.rho
    }

    /// The branch roots ζⱼ of eq. (26), `j = 1..K` (ζ₁ real, the rest in
    /// conjugate pairs).
    pub fn zetas(&self) -> &[Complex64] {
        &self.zetas
    }

    /// The waiting-time poles αⱼ = β(1-ζⱼ) of eq. (25).
    pub fn alphas(&self) -> &[Complex64] {
        &self.alphas
    }

    /// The weights aⱼ of eq. (27).
    pub fn weights(&self) -> &[Complex64] {
        &self.weights
    }

    /// Probability that a burst has to wait at all, `P(W > 0) = Σⱼ aⱼ`.
    /// Finite in `[0, 1]` up to solver round-off.
    pub fn prob_wait(&self) -> f64 {
        finite(
            "DEk1::prob_wait",
            self.weights.iter().copied().sum::<Complex64>().re,
        )
    }

    /// Waiting-time MGF `W(s)` of eq. (18).
    pub fn wait_mgf(&self, s: Complex64) -> Complex64 {
        self.to_mix().eval(s)
    }

    /// Tail `P(W > x)` of the burst waiting time, eq. (18) inverted:
    /// `Re Σⱼ aⱼ e^{-αⱼx}`. Panics if `x < 0`; finite for all valid
    /// states (Re αⱼ > 0, so every term decays).
    pub fn wait_tail(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "wait_tail: x must be non-negative");
        let mut acc = Complex64::ZERO;
        for (a, alpha) in self.weights.iter().zip(&self.alphas) {
            acc += *a * (-*alpha * x).exp();
        }
        finite("DEk1::wait_tail", acc.re)
    }

    /// Mean burst waiting time `Re Σ aⱼ/αⱼ`; finite for all valid states
    /// (every αⱼ is nonzero).
    pub fn mean_wait(&self) -> f64 {
        let mut acc = Complex64::ZERO;
        for (a, alpha) in self.weights.iter().zip(&self.alphas) {
            acc += *a / *alpha;
        }
        finite("DEk1::mean_wait", acc.re)
    }

    /// p-quantile of the burst waiting time. Panics unless `p ∈ (0, 1)`;
    /// NaN if the bracketed solve fails to converge.
    pub fn wait_quantile(&self, p: f64) -> f64 {
        self.to_mix().quantile(p)
    }

    /// The waiting-time law as an [`ErlangMix`] (constant `1 - Σaⱼ` plus K
    /// simple poles) — the form consumed by the eq. (35) product.
    pub fn to_mix(&self) -> ErlangMix {
        let blocks = self
            .weights
            .iter()
            .zip(&self.alphas)
            .map(|(&a, &alpha)| PoleBlock {
                pole: alpha,
                coeffs: vec![a],
            })
            .collect();
        ErlangMix {
            constant: 1.0 - self.prob_wait(),
            blocks,
        }
    }

    /// Residual of the pole-defining equation (54),
    /// `(1 - s/β)^K - e^{-sT}`, at pole index `j` — exposed for
    /// validation/tests. Panics if `j` is out of range; finite and
    /// near-zero for solved states.
    pub fn pole_residual(&self, j: usize) -> f64 {
        let s = self.alphas[j];
        let lhs = (Complex64::ONE - s / self.beta).powi(self.k as i32);
        let rhs = (-s * self.t).exp();
        (lhs - rhs).abs()
    }
}

/// The branch-`j` fixed-point map of eq. (26):
/// `z ↦ exp((z-1)/ρ + 2πi·j/K)` (0-based `j`).
#[inline]
fn branch_map(k: u32, rho: f64, j: usize, z: Complex64) -> Complex64 {
    let phase = 2.0 * std::f64::consts::PI * j as f64 / k as f64;
    ((z - 1.0) / rho + Complex64::new(0.0, phase)).exp()
}

/// `(g, g')` for the Newton polish on branch `j`: `g(z) = z - map(z)`,
/// `g'(z) = 1 - map(z)/ρ`.
#[inline]
fn branch_newton(k: u32, rho: f64, j: usize, z: Complex64) -> (Complex64, Complex64) {
    let m = branch_map(k, rho, j, z);
    (z - m, Complex64::ONE - m / rho)
}

/// Solves the K branch equations (26) by Appendix C's fixed-point
/// iteration from `z = 0`, then polishes each root with complex Newton on
/// `g(z) = z - exp((z-1)/ρ + iφ)`. All K branches run in lockstep through
/// the batch kernels; per branch the iterate sequence — and therefore the
/// result, to the last bit — is identical to the historical one-root-at-a-
/// time loop.
fn solve_zetas(k: u32, rho: f64) -> Result<Vec<Complex64>, QueueError> {
    ZETA_SOLVES.incr();
    ZETA_COLD_SOLVES.incr();
    let mut zetas = vec![Complex64::ZERO; k as usize];
    // Fixed point to modest precision (contraction factor |ζ|/ρ can
    // approach 1 near saturation)...
    complex_fixed_point_lockstep(|j, z| branch_map(k, rho, j, z), &mut zetas, 1e-8, 2_000_000)
        .ok_or(QueueError::SolveFailure {
            what: "fixed-point iteration for ζ did not converge",
        })?;
    // ...then Newton to machine precision.
    let polish = complex_newton_lockstep(
        |j, z| branch_newton(k, rho, j, z),
        &mut zetas,
        50,
        1e-15,
        1e-300,
    );
    ZETA_POLISH_STEPS.add(polish.steps);
    validate_zetas(&zetas)?;
    Ok(zetas)
}

/// Continuation solve: polishes `seeds` (the converged roots of a
/// *neighboring* load) with Newton only, skipping the fixed-point stage.
///
/// Every accepted root must pass the same validity gates as a cold solve
/// plus two checks that together rule out landing on a wrong root:
///
/// * **residual** `|z - map_j(z)| ≤ 1e-10` — each branch solves a
///   differently-phased equation, so a converged iterate satisfies its
///   *own* branch's equation or none;
/// * **modulus** `|ζ| < ρ` — branch `j`'s *attracting* fixed point (the
///   queueing root Appendix C's iteration converges to) has map
///   derivative `ζ/ρ` of modulus < 1, i.e. `|ζ| < ρ`. The trivial
///   repelling root `z = 1` of the branch-0 equation has residual 0 and
///   `Re z < 1` in floats (`0.999…9`), so the residual and half-plane
///   gates alone would accept it; only the modulus gate excludes it.
///   Newton genuinely reaches it when a downward load step starts the
///   polish above the basin boundary — see the
///   `continuation_never_reaches_the_trivial_root` test.
///
/// Returns `None` if any branch fails a gate; callers fall back to the
/// cold path.
fn solve_zetas_warm(k: u32, rho: f64, seeds: &[Complex64]) -> Option<Vec<Complex64>> {
    debug_assert_eq!(seeds.len(), k as usize);
    let mut zetas = seeds.to_vec();
    let polish = complex_newton_lockstep(
        |j, z| branch_newton(k, rho, j, z),
        &mut zetas,
        50,
        1e-15,
        1e-300,
    );
    ZETA_WARM_STEPS.add(polish.steps);
    for (j, &z) in zetas.iter().enumerate() {
        if !z.is_finite() || z.re >= 1.0 || z.norm_sqr() >= rho * rho {
            return None;
        }
        if (z - branch_map(k, rho, j, z)).abs() > WARM_RESIDUAL_TOL {
            return None;
        }
    }
    Some(zetas)
}

/// Shared validity gate for cold-solved roots: finite and inside the
/// `Re z < 1` half-plane, per Appendix C.
fn validate_zetas(zetas: &[Complex64]) -> Result<(), QueueError> {
    for &z in zetas {
        if !z.is_finite() || z.re >= 1.0 {
            return Err(QueueError::SolveFailure {
                what: "ζ root left the Re z < 1 half-plane",
            });
        }
        finite_c("solve_zetas: polished root", z);
    }
    Ok(())
}

/// Closed-form weights of eq. (27): `aⱼ = ζⱼ^K Π_{k≠j}(1-ζ_k)/(ζⱼ-ζ_k)`
/// (the Lagrange/Vandermonde solution derived in Appendix D).
fn solve_weights(zetas: &[Complex64]) -> Vec<Complex64> {
    let k = zetas.len();
    let mut weights = Vec::with_capacity(k);
    for j in 0..k {
        let zj = zetas[j];
        // At vanishing load the roots underflow to 0 and the Lagrange
        // ratios become 0/0; the true weight magnitude is ≤ |ζ| there, so
        // report an exact 0 instead of NaN.
        if zj.abs() < 1e-60 {
            weights.push(Complex64::ZERO);
            continue;
        }
        let mut a = zj.powi(k as i32);
        for (i, &zi) in zetas.iter().enumerate() {
            if i == j {
                continue;
            }
            a *= (Complex64::ONE - zi) / (zj - zi);
        }
        weights.push(if a.is_finite() {
            finite_c("solve_weights: Lagrange weight", a)
        } else {
            Complex64::ZERO
        });
    }
    weights
}

#[cfg(test)]
#[allow(clippy::unnecessary_cast)]
mod tests {
    use super::*;

    /// Brute-force simulation of the Lindley recursion (15) for
    /// ground-truth tails.
    fn simulate_tail(k: u32, mean_service: f64, t: f64, xs: &[f64], n: usize) -> Vec<f64> {
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD0E5);
        let beta = k as f64 / mean_service;
        let mut exceed = vec![0u64; xs.len()];
        let mut w = 0.0f64;
        let uniform = |rng: &mut StdRng| {
            ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-300)
        };
        for _ in 0..n {
            for (cnt, &x) in exceed.iter_mut().zip(xs) {
                if w > x {
                    *cnt += 1;
                }
            }
            // b ~ Erlang(k, beta).
            let mut prod = 1.0f64;
            for _ in 0..k {
                prod *= uniform(&mut rng);
            }
            let b = -prod.ln() / beta;
            w = (w + b - t).max(0.0);
        }
        exceed.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn k1_matches_dm1_closed_form() {
        // D/M/1 at ρ = 0.6: σ solves σ = e^{-(1-σ)/ρ};
        // P(W > x) = σ e^{-μ(1-σ)x}.
        let q = DEk1::new(1, 0.6, 1.0).unwrap();
        let sigma = q.zetas()[0];
        assert!(sigma.im.abs() < 1e-12);
        let s = sigma.re;
        assert!((s - ((s - 1.0) / 0.6f64).exp()).abs() < 1e-12);
        // Weight a₁ = σ for K = 1.
        assert!((q.weights()[0].re - s).abs() < 1e-12);
        let mu = 1.0 / 0.6;
        for &x in &[0.0, 0.5, 2.0, 10.0] {
            let expect = s * (-mu * (1.0 - s) * (x as f64)).exp();
            assert!((q.wait_tail(x) - expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn poles_satisfy_defining_equation() {
        for &(k, rho) in &[(2u32, 0.3), (9, 0.5), (20, 0.8), (20, 0.05)] {
            let q = DEk1::new(k, rho * 0.04, 0.04).unwrap();
            for j in 0..k as usize {
                assert!(
                    q.pole_residual(j) < 1e-9,
                    "K={k} ρ={rho} pole {j}: residual {}",
                    q.pole_residual(j)
                );
                assert!(q.alphas()[j].re > 0.0, "pole must decay");
                assert!(q.zetas()[j].abs() < 1.0, "|ζ| < 1 per Appendix C");
            }
        }
    }

    #[test]
    fn zeta_one_is_real_and_dominant() {
        let q = DEk1::new(9, 0.5 * 0.06, 0.06).unwrap();
        let z1 = q.zetas()[0];
        assert!(z1.im.abs() < 1e-12);
        for &z in &q.zetas()[1..] {
            assert!(z.abs() < z1.abs() + 1e-12, "|ζ₁| is the largest modulus");
        }
        // Dominant pole (slowest decay) is α₁ = β(1-ζ₁) — smallest Re α.
        let a1 = q.alphas()[0].re;
        for &a in &q.alphas()[1..] {
            assert!(a.re >= a1 - 1e-12);
        }
    }

    #[test]
    fn weights_satisfy_vandermonde_identities() {
        // Eq. (63): Σⱼ aⱼ ζⱼ^{-m} = 1 for m = 1..K.
        let q = DEk1::new(7, 0.7 * 0.05, 0.05).unwrap();
        for m in 1..=7i32 {
            let s: Complex64 = q
                .weights()
                .iter()
                .zip(q.zetas())
                .map(|(&a, &z)| a * z.powi(-m))
                .sum();
            assert!((s - Complex64::ONE).abs() < 1e-8, "identity m={m}: {s}");
        }
    }

    #[test]
    fn mgf_is_one_at_zero_and_mass_is_valid() {
        for &(k, rho) in &[(2u32, 0.2), (9, 0.6), (20, 0.9)] {
            let q = DEk1::new(k, rho * 0.06, 0.06).unwrap();
            let w0 = q.wait_mgf(Complex64::ZERO);
            assert!(
                (w0 - Complex64::ONE).abs() < 1e-9,
                "K={k} ρ={rho}: W(0)={w0}"
            );
            let pw = q.prob_wait();
            assert!((0.0..1.0).contains(&pw), "P(wait) = {pw}");
            // Tail is 1-monotone-ish and within [0, 1] on a grid.
            let mut prev = 1.0;
            for i in 0..50 {
                let x = i as f64 * 0.01;
                let t = q.wait_tail(x);
                assert!((-1e-9..=1.0).contains(&t), "tail({x}) = {t}");
                assert!(t <= prev + 1e-9, "tail must not increase");
                prev = t;
            }
        }
    }

    #[test]
    fn low_load_bursts_rarely_wait() {
        let q = DEk1::new(20, 0.05 * 0.04, 0.04).unwrap();
        assert!(
            q.prob_wait() < 1e-6,
            "P(wait) = {} at 5% load",
            q.prob_wait()
        );
    }

    #[test]
    fn high_load_bursts_often_wait_and_more_than_low_load() {
        // K = 20 service is nearly deterministic (CoV 0.22), so even at 90%
        // load waits are not the rule (a pure D/D/1 never waits) — but they
        // must be frequent compared to moderate load, and K = 2 (bursty)
        // must wait more than K = 20 at the same load.
        let q90 = DEk1::new(20, 0.9 * 0.04, 0.04).unwrap();
        let q50 = DEk1::new(20, 0.5 * 0.04, 0.04).unwrap();
        assert!(
            q90.prob_wait() > 0.2,
            "P(wait) = {} at 90% load",
            q90.prob_wait()
        );
        assert!(q90.prob_wait() > 10.0 * q50.prob_wait());
        let bursty = DEk1::new(2, 0.9 * 0.04, 0.04).unwrap();
        assert!(bursty.prob_wait() > q90.prob_wait());
    }

    #[test]
    fn tail_matches_lindley_simulation_k9() {
        let (k, rho, t) = (9u32, 0.6, 0.06);
        let q = DEk1::new(k, rho * t, t).unwrap();
        let xs = [0.01, 0.03, 0.06, 0.12];
        let sim = simulate_tail(k, rho * t, t, &xs, 4_000_000);
        for (&x, &s) in xs.iter().zip(&sim) {
            let a = q.wait_tail(x);
            assert!(
                (a - s).abs() < 0.12 * s.max(2e-4),
                "x={x}: analytic {a:.6} vs sim {s:.6}"
            );
        }
    }

    #[test]
    fn tail_matches_lindley_simulation_k2() {
        let (k, rho, t) = (2u32, 0.4, 0.04);
        let q = DEk1::new(k, rho * t, t).unwrap();
        let xs = [0.005, 0.02, 0.05];
        let sim = simulate_tail(k, rho * t, t, &xs, 4_000_000);
        for (&x, &s) in xs.iter().zip(&sim) {
            let a = q.wait_tail(x);
            assert!(
                (a - s).abs() < 0.12 * s.max(2e-4),
                "x={x}: analytic {a:.6} vs sim {s:.6}"
            );
        }
    }

    #[test]
    fn mean_wait_matches_simulation() {
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let (k, rho, t) = (9u32, 0.7, 0.05);
        let q = DEk1::new(k, rho * t, t).unwrap();
        let beta = k as f64 / (rho * t);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut w = 0.0f64;
        let mut acc = 0.0f64;
        let n = 2_000_000;
        for _ in 0..n {
            acc += w;
            let mut prod = 1.0f64;
            for _ in 0..k {
                prod *= ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-300);
            }
            w = (w + (-prod.ln() / beta) - t).max(0.0);
        }
        let sim_mean = acc / n as f64;
        assert!(
            (q.mean_wait() - sim_mean).abs() < 0.03 * sim_mean,
            "analytic {} vs sim {}",
            q.mean_wait(),
            sim_mean
        );
    }

    #[test]
    fn quantile_inverts_tail() {
        let q = DEk1::new(9, 0.6 * 0.06, 0.06).unwrap();
        let p = 0.99999;
        let x = q.wait_quantile(p);
        assert!((q.wait_tail(x) - (1.0 - p)).abs() < 1e-10);
    }

    #[test]
    fn rejects_unstable_and_invalid() {
        assert!(matches!(
            DEk1::new(9, 0.06, 0.06),
            Err(QueueError::UnstableLoad { .. })
        ));
        assert!(matches!(
            DEk1::new(9, 0.07, 0.06),
            Err(QueueError::UnstableLoad { .. })
        ));
        assert!(matches!(
            DEk1::new(9, -1.0, 0.06),
            Err(QueueError::InvalidParameter { .. })
        ));
        assert!(matches!(
            DEk1::new(0, 0.01, 0.06),
            Err(QueueError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn near_saturation_matches_heavy_traffic_law() {
        // Kingman heavy-traffic: E[W] ≈ σ_b² / (2(T - b̄)) for D/G/1.
        let (k, rho, t) = (20u32, 0.97, 0.04);
        let q = DEk1::new(k, rho * t, t).unwrap();
        assert!(q.prob_wait() > 0.6, "P(wait) = {}", q.prob_wait());
        let b = rho * t;
        let sigma2 = b * b / k as f64;
        let kingman = sigma2 / (2.0 * (t - b));
        assert!(
            (q.mean_wait() - kingman).abs() < 0.25 * kingman,
            "mean {} vs Kingman {kingman}",
            q.mean_wait()
        );
        for j in 0..k as usize {
            assert!(q.pole_residual(j) < 1e-8);
        }
    }

    #[test]
    fn warm_solve_matches_cold_within_tolerance() {
        let k = 9u32;
        let mut prev: Option<DekSolution> = None;
        for i in 1..=18 {
            let rho = 0.05 * i as f64;
            let cold = DekSolution::solve(k, rho).unwrap();
            let warm = DekSolution::solve_warm(k, rho, prev.as_ref()).unwrap();
            for (&zc, &zw) in cold.zetas().iter().zip(warm.zetas()) {
                assert!(
                    (zc - zw).abs() <= 1e-12 * (1.0 + zc.abs()),
                    "rho={rho}: cold {zc} vs warm {zw}"
                );
            }
            prev = Some(warm);
        }
    }

    #[test]
    fn warm_solve_without_prev_is_bit_identical_to_cold() {
        let cold = DekSolution::solve(20, 0.7).unwrap();
        let warm = DekSolution::solve_warm(20, 0.7, None).unwrap();
        for (zc, zw) in cold.zetas().iter().zip(warm.zetas()) {
            assert_eq!(zc.re.to_bits(), zw.re.to_bits());
            assert_eq!(zc.im.to_bits(), zw.im.to_bits());
        }
    }

    #[test]
    fn warm_solve_with_order_mismatch_falls_back_to_cold() {
        let prev = DekSolution::solve(9, 0.5).unwrap();
        let cold = DekSolution::solve(20, 0.5).unwrap();
        let warm = DekSolution::solve_warm(20, 0.5, Some(&prev)).unwrap();
        for (zc, zw) in cold.zetas().iter().zip(warm.zetas()) {
            assert_eq!(zc.re.to_bits(), zw.re.to_bits(), "fallback must be cold");
            assert_eq!(zc.im.to_bits(), zw.im.to_bits());
        }
    }

    #[test]
    fn continuation_never_reaches_the_trivial_root() {
        // A downward load step whose seed sits above the Newton basin
        // boundary of branch 0: the polish converges to the trivial
        // repelling root z = 1, which has residual ~1e-16 and
        // `Re z = 0.999…9 < 1` — the residual and half-plane gates accept
        // it. The modulus gate (|ζ| < ρ holds for every attracting root)
        // must reject the warm result and fall back to cold.
        let k = 2u32;
        let prev = DekSolution::solve(k, 0.9662).unwrap();
        let warm = DekSolution::solve_warm(k, 0.8802, Some(&prev)).unwrap();
        let cold = DekSolution::solve(k, 0.8802).unwrap();
        for (zw, zc) in warm.zetas().iter().zip(cold.zetas()) {
            assert!(
                zw.abs() < 0.8802,
                "warm root {zw:?} is not an attracting fixed point"
            );
            assert!(
                (*zw - *zc).abs() <= 1e-12 * (1.0 + zc.abs()),
                "warm {zw:?} vs cold {zc:?}"
            );
        }
    }

    #[test]
    fn warm_solve_rejects_unstable_load() {
        let prev = DekSolution::solve(9, 0.9).unwrap();
        assert!(matches!(
            DekSolution::solve_warm(9, 1.0, Some(&prev)),
            Err(QueueError::UnstableLoad { .. })
        ));
    }

    #[test]
    fn conjugate_structure_of_roots() {
        // Roots for branches j and K-j are conjugates (K=8: j=1↔7, 2↔6...).
        let q = DEk1::new(8, 0.5 * 0.04, 0.04).unwrap();
        let z = q.zetas();
        for j in 1..8usize {
            let partner = 8 - j;
            assert!(
                (z[j] - z[partner].conj()).abs() < 1e-10,
                "branch {j} vs conj of {partner}"
            );
        }
    }
}
