//! Estimator bench: the convergence study (per-player p99 error vs ping
//! count against the analytic quantile) plus the raw ingest throughput
//! of the per-player estimator bank on a synthetic 1 000-player packet
//! feed. Writes `BENCH_estimator.json` at the repo root;
//! `scripts/tier1.sh` asserts the committed file's invariants.
//!
//! Run with `--test` for a quick smoke: a smaller study, a shorter feed,
//! and — because the committed JSON carries the full-run acceptance
//! figures — **no file write**.

use fpsping_bench::estimator_study::{pings_to_trustworthy, run_study, StudyConfig};
use fpsping_traffic::estimator::{EstimatorBank, DEFAULT_CHECKPOINTS};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Trustworthiness bar for the convergence study (median per-player
/// |rel err| of the p99 estimate; must hold at every later checkpoint).
const TRUST_THRESHOLD: f64 = 0.10;

/// Ingest acceptance floor (packets/s across 1 000 players, 1 core).
const INGEST_FLOOR: f64 = 1e6;

/// Synthetic line-rate feed: `players` clients each send `pings` pings
/// through one shared bank; every ping is sent and all but every 97th
/// is answered (exercising the loss path at ~1%), with an LCG-jittered
/// RTT and hold. Returns (packets processed, wall seconds) — one packet
/// per send plus one per delivered pong, matching what the sim tap
/// feeds per packet event.
fn ingest(players: usize, pings: usize) -> (u64, f64) {
    let mut bank = EstimatorBank::new(players, &DEFAULT_CHECKPOINTS);
    let mut lcg: u64 = 0x1234_5678_9ABC_DEF0;
    let mut jitter = || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (lcg >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut packets = 0u64;
    let t0 = Instant::now();
    let mut now_ms = 0.0f64;
    for round in 0..pings {
        now_ms += 40.0;
        for i in 0..players {
            let seq = bank.on_ping_sent(i, now_ms);
            packets += 1;
            if (round * players + i).is_multiple_of(97) {
                continue; // dropped in flight: the recycle path counts it lost
            }
            let rtt = 12.0 + 25.0 * jitter();
            let hold = 20.0 * jitter();
            bank.on_pong(i, seq, now_ms + rtt + hold, hold);
            packets += 1;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let summary = bank.into_summary();
    // The feed is trusted input for a timing loop, but a bank that
    // miscounts would time the wrong code — sanity-gate it.
    let expected_losses = (players * pings).div_ceil(97) as u64;
    assert_eq!(
        summary.counters.matches + expected_losses,
        (players * pings) as u64,
        "ingest feed mismatch: {:?}",
        summary.counters
    );
    assert_eq!(summary.counters.invalid_samples, 0);
    (packets, wall)
}

fn run(quick: bool) {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cfg = if quick {
        StudyConfig::quick()
    } else {
        StudyConfig::default_study()
    };
    println!(
        "convergence study: N={} for {} s simulated...",
        cfg.players, cfg.sim_seconds
    );
    let study = run_study(&cfg);
    let est = &study.summary;
    let pooled_p99 = est
        .pooled_p99
        .as_ref()
        .expect("study produced samples")
        .estimate();
    let pooled_p999 = est
        .pooled_p999
        .as_ref()
        .expect("study produced samples")
        .estimate();
    let p99_err_pct = 100.0 * (pooled_p99 - study.analytic_p99_ms) / study.analytic_p99_ms;
    let p999_err_pct = 100.0 * (pooled_p999 - study.analytic_p999_ms) / study.analytic_p999_ms;
    println!(
        "  analytic p99 {:.3} ms / p99.9 {:.3} ms; pooled {:.3} ms ({p99_err_pct:+.2}%) / {:.3} ms ({p999_err_pct:+.2}%)",
        study.analytic_p99_ms, study.analytic_p999_ms, pooled_p99, pooled_p999
    );
    for e in &study.errors {
        println!(
            "  {:>5} pings: median |err| {:.2}%, p90 {:.2}% ({} players)",
            e.pings,
            e.median_rel_err * 100.0,
            e.p90_rel_err * 100.0,
            e.players_reached
        );
    }
    let trustworthy = pings_to_trustworthy(&study.errors, TRUST_THRESHOLD);
    println!(
        "  pings to trustworthy (median <= {:.0}%): {:?}",
        TRUST_THRESHOLD * 100.0,
        trustworthy
    );

    let (ingest_players, ingest_pings) = if quick { (1_000, 200) } else { (1_000, 2_000) };
    println!("ingest: {ingest_players} players x {ingest_pings} pings...");
    let (packets, wall) = ingest(ingest_players, ingest_pings);
    let pps = packets as f64 / wall;
    println!(
        "  {packets} packets in {:.0} ms -> {:.2} M packets/s",
        wall * 1e3,
        pps / 1e6
    );

    if quick {
        println!("--test: skipping BENCH_estimator.json (committed file carries the full run)");
        return;
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"estimator convergence, N={} at rho_d={:.2} for {} s (seed {:#x}); ingest feed {} players x {} pings\",",
        cfg.players,
        study.scenario.downlink_load(),
        cfg.sim_seconds,
        cfg.seed,
        ingest_players,
        ingest_pings
    );
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"analytic_p99_ms\": {:.4},", study.analytic_p99_ms);
    let _ = writeln!(
        json,
        "  \"analytic_p999_ms\": {:.4},",
        study.analytic_p999_ms
    );
    let _ = writeln!(json, "  \"pooled_p99_ms\": {pooled_p99:.4},");
    let _ = writeln!(json, "  \"pooled_p99_err_pct\": {p99_err_pct:.2},");
    let _ = writeln!(json, "  \"pooled_p999_ms\": {pooled_p999:.4},");
    let _ = writeln!(json, "  \"pooled_p999_err_pct\": {p999_err_pct:.2},");
    let c = est.counters;
    let _ = writeln!(
        json,
        "  \"counters\": {{\"matches\": {}, \"losses\": {}, \"reorders\": {}, \"late_replies\": {}, \"invalid_samples\": {}}},",
        c.matches, c.losses, c.reorders, c.late_replies, c.invalid_samples
    );
    let _ = writeln!(json, "  \"convergence\": [");
    for (i, e) in study.errors.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"pings\": {}, \"players_reached\": {}, \"median_rel_err\": {:.4}, \"p90_rel_err\": {:.4}}}{}",
            e.pings,
            e.players_reached,
            e.median_rel_err,
            e.p90_rel_err,
            if i + 1 < study.errors.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"trust_threshold\": {TRUST_THRESHOLD},");
    let _ = writeln!(
        json,
        "  \"pings_to_trustworthy\": {},",
        trustworthy.expect("full study must settle under the trust threshold")
    );
    let _ = writeln!(json, "  \"ingest_players\": {ingest_players},");
    let _ = writeln!(json, "  \"ingest_packets\": {packets},");
    let _ = writeln!(json, "  \"ingest_wall_ms\": {:.1},", wall * 1e3);
    let _ = writeln!(json, "  \"ingest_packets_per_sec\": {pps:.0},");
    let _ = writeln!(
        json,
        "  \"note\": \"pooled tails are count-weighted P2 merges across players; the estimator observes hold-corrected RTTs, directly comparable to the analytic upstream+downstream quantile. pings_to_trustworthy = first checkpoint where the median per-player |rel err| of the p99 estimate drops under the threshold and stays there.\""
    );
    json.push_str("}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_estimator.json");
    std::fs::write(&out, &json).expect("write BENCH_estimator.json");
    println!("wrote {}", out.display());

    assert!(
        p99_err_pct.abs() <= 10.0,
        "pooled p99 err {p99_err_pct:.2}% exceeds the 10% acceptance bound"
    );
    assert!(
        trustworthy.expect("settled") <= 500,
        "median error did not settle under {TRUST_THRESHOLD} by 500 pings"
    );
    assert!(
        pps >= INGEST_FLOOR,
        "ingest {pps:.0} packets/s below the 1M floor"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    run(quick);
}
