//! Criterion performance benches: the computational kernels of the
//! reproduction.
//!
//! * D/E_K/1 pole + weight solve as K grows (the eq.-26 fixed point),
//! * the full RTT-quantile pipeline per scenario (what a capacity
//!   planner would run in an inner loop),
//! * the Appendix-A Erlang-mix product,
//! * discrete-event simulator throughput (events/second),
//! * synthetic LAN-party trace generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpsping::{RttModel, Scenario};
use fpsping_dist::Deterministic;
use fpsping_queue::{DEk1, PositionDelay};
use fpsping_sim::{NetworkConfig, SimTime};
use fpsping_traffic::LanPartyConfig;
use std::hint::black_box;

fn bench_dek1_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("dek1_solve");
    for &k in &[2u32, 9, 20, 30] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| DEk1::new(black_box(k), 0.6 * 0.04, 0.04).unwrap())
        });
    }
    g.finish();
}

fn bench_rtt_quantile(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtt_quantile");
    for &(k, rho) in &[(9u32, 0.5), (20, 0.5), (9, 0.05)] {
        let name = format!("k{k}_rho{}", (rho * 100.0) as u32);
        g.bench_function(&name, |b| {
            let s = Scenario::paper_default()
                .with_erlang_order(k)
                .with_load(rho);
            b.iter(|| {
                let m = RttModel::build(black_box(&s)).unwrap();
                black_box(m.rtt_quantile_ms())
            })
        });
    }
    g.finish();
}

fn bench_erlang_mix_product(c: &mut Criterion) {
    let dek1 = DEk1::new(20, 0.6 * 0.04, 0.04).unwrap();
    let pos = PositionDelay::uniform(20, 20.0 / (0.6 * 0.04)).unwrap();
    let w = dek1.to_mix();
    let p = pos.to_mix().unwrap();
    c.bench_function("erlang_mix_product_k20", |b| {
        b.iter(|| black_box(&w).product(black_box(&p)))
    });
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.bench_function("n40_5s", |b| {
        b.iter(|| {
            let mut cfg =
                NetworkConfig::paper_scenario(40, Box::new(Deterministic::new(125.0)), 40.0, 7);
            cfg.duration = SimTime::from_secs(5.0);
            cfg.warmup = SimTime::from_secs(0.5);
            black_box(cfg.run())
        })
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(10);
    g.bench_function("lan_party_6min", |b| {
        b.iter(|| black_box(LanPartyConfig::default().generate(11)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dek1_solve,
    bench_rtt_quantile,
    bench_erlang_mix_product,
    bench_sim_throughput,
    bench_trace_generation
);
criterion_main!(benches);
