//! Scale bench for the sharded million-player engine (`ScaleEngine`):
//! an events/s and peak-RSS curve vs N up to 10⁶, the calendar-vs-heap
//! wall-time comparison on the N=10⁵ single-job workload, and the
//! Poisson-limit check (measured core wait vs the exact M/D/1 mean from
//! `fpsping_queue::mg1::mdd1`). Writes `BENCH_scale.json` at the repo
//! root; `scripts/tier1.sh` asserts the committed file's invariants.
//!
//! Determinism is asserted *before* any timing: the merged report must
//! be bit-identical across `--shards 1` vs `--shards 2` and across the
//! heap and bucket calendar backends, so every number below describes
//! the same event sequence.
//!
//! Peak RSS is read from `/proc/self/status` `VmHWM` — a cumulative
//! high-water mark, so the curve runs in ascending N and each entry
//! reports "peak so far"; the N=10⁶ entry is the figure the ~2 GiB
//! acceptance bound applies to. Run with `--test` for a quick smoke
//! (shorter durations, no JSON beyond the same schema).

use fpsping_sim::calendar::Scheduled;
use fpsping_sim::link::{Link, LinkAction};
use fpsping_sim::rng::BatchRng;
use fpsping_sim::scheduler::Discipline;
use fpsping_sim::{Calendar, CalendarKind, Packet, ScaleConfig, ScaleEngine, ScaleReport, SimTime};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Master seed for every scenario in this bench.
const MASTER_SEED: u64 = 0x5CA1E;

/// A scale scenario at the default operating point (DSLAM load 0.5,
/// core load 0.8, 4 096 players/DSLAM) with this bench's seed.
fn scenario(n: usize, dur_s: f64, warmup_s: f64) -> ScaleConfig {
    let mut cfg = ScaleConfig::new(n);
    cfg.duration = SimTime::from_secs(dur_s);
    cfg.warmup = SimTime::from_secs(warmup_s);
    cfg.seed = MASTER_SEED;
    cfg
}

/// Asserts two merged reports are bit-identical (counts, probe moments,
/// quantiles, utilizations, calendar op counts).
fn assert_reports_identical(a: &ScaleReport, b: &ScaleReport, what: &str) {
    assert_eq!(a.events, b.events, "{what}: event totals differ");
    assert_eq!(a.packets, b.packets, "{what}: packet totals differ");
    assert_eq!(
        a.calendar.enqueues, b.calendar.enqueues,
        "{what}: enqueue counts differ"
    );
    for (x, y) in [
        (&a.dslam_wait, &b.dslam_wait),
        (&a.core_wait, &b.core_wait),
        (&a.end_to_end, &b.end_to_end),
    ] {
        assert_eq!(x.count, y.count, "{what}: probe counts differ");
        assert_eq!(
            x.mean_s.to_bits(),
            y.mean_s.to_bits(),
            "{what}: probe means differ"
        );
        assert_eq!(
            x.std_dev_s.to_bits(),
            y.std_dev_s.to_bits(),
            "{what}: probe std devs differ"
        );
        for ((pa, qa), (pb, qb)) in x.quantiles.iter().zip(&y.quantiles) {
            assert_eq!(pa, pb, "{what}: quantile levels differ");
            assert_eq!(qa.to_bits(), qb.to_bits(), "{what}: p{pa} quantiles differ");
        }
    }
    assert_eq!(
        a.core_utilization.to_bits(),
        b.core_utilization.to_bits(),
        "{what}: core utilization differs"
    );
}

/// Bit-identity across `--shards` values and across calendar backends,
/// on a 3-DSLAM workload where the partition boundaries matter. Runs
/// before the timing loop so the timed numbers describe a verified
/// event sequence.
fn verify_determinism(n: usize, dur_s: f64) -> (ScaleReport, &'static str, &'static str) {
    let base = {
        let mut cfg = scenario(n, dur_s, 0.25);
        cfg.shards = 1;
        ScaleEngine::new(cfg).run()
    };
    for shards in [2usize, 4] {
        let mut cfg = scenario(n, dur_s, 0.25);
        cfg.shards = shards;
        let rep = ScaleEngine::new(cfg).run();
        assert_reports_identical(&base, &rep, "shards 1 vs N");
    }
    let heap = {
        let mut cfg = scenario(n, dur_s, 0.25);
        cfg.shards = 1;
        cfg.calendar = Calendar::Heap;
        ScaleEngine::new(cfg).run()
    };
    assert_reports_identical(&base, &heap, "bucket vs heap");
    (
        base,
        "bit-identical across --shards 1/2/4 (asserted before timing)",
        "bucket == heap event-for-event (asserted before timing)",
    )
}

/// Median wall time (ms) of `samples` runs of `f`.
fn median_time_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Cumulative peak RSS (MiB) from `/proc/self/status` `VmHWM`, or 0.0
/// where procfs is unavailable.
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest.split_whitespace().next() {
                return kb.parse::<f64>().unwrap_or(0.0) / 1024.0;
            }
        }
    }
    0.0
}

struct CurvePoint {
    n: usize,
    dslams: usize,
    sim_seconds: f64,
    events: u64,
    packets: u64,
    wall_ms: f64,
    events_per_sec: f64,
    peak_rss_mib: f64,
    core_utilization: f64,
    poisson_ratio: f64,
}

/// One recorded calendar operation from a DSLAM event loop.
#[derive(Clone, Copy)]
enum Op {
    Push { t_ns: u64, seq: u64 },
    Pop,
}

/// Captures the exact calendar push/pop trace of one DSLAM subtree of
/// the given scale scenario by mirroring `ScaleEngine`'s per-DSLAM
/// event loop (same links, same RNG stream, same scheduling offsets).
/// The trace isolates the calendar: replaying it times the pending-set
/// data structure alone, with the probe/link/packet work — identical
/// across backends — stripped away.
fn capture_dslam_trace(cfg: &ScaleConfig, dslam: usize) -> (Vec<Op>, usize, SimTime) {
    #[derive(Debug)]
    enum Ev {
        Emit(u32),
        UplinkComplete(u32),
        DslamComplete,
    }
    let lo = dslam * cfg.players_per_dslam;
    let n_d = cfg.players_per_dslam.min(cfg.n_players - lo);
    let mut rng = BatchRng::seed_from_u64(fpsping_sim::engine::replication_seed(
        cfg.seed,
        dslam as u64,
    ));
    let dslam_bps = n_d as f64 * cfg.per_client_bps() / cfg.dslam_load;
    let mut uplinks: Vec<Link> = (0..n_d)
        .map(|_| Link::new(cfg.r_up_bps, SimTime::ZERO, Discipline::Fifo))
        .collect();
    let mut dslam_link = Link::new(dslam_bps, SimTime::ZERO, Discipline::Fifo);
    let horizon = SimTime::from_millis(4.0 * cfg.interval_ms);
    let mut calendar: CalendarKind<Ev> = Calendar::Heap.build(2 * n_d + 16, horizon);
    let mut ops = Vec::new();
    let mut seq: u64 = 0;
    let push = |calendar: &mut CalendarKind<Ev>, ops: &mut Vec<Op>, s: Scheduled<Ev>| {
        ops.push(Op::Push {
            t_ns: s.time.as_nanos(),
            seq: s.seq,
        });
        calendar.push(s);
    };
    for i in 0..n_d {
        let phase = fpsping_dist::uniform01(&mut rng) * cfg.interval_ms;
        seq += 1;
        push(
            &mut calendar,
            &mut ops,
            Scheduled {
                time: SimTime::from_millis(phase),
                seq,
                ev: Ev::Emit(i as u32),
            },
        );
    }
    let interval = SimTime::from_millis(cfg.interval_ms);
    loop {
        ops.push(Op::Pop);
        let Some(s) = calendar.pop() else { break };
        if s.time > cfg.duration {
            break;
        }
        let now = s.time;
        match s.ev {
            Ev::Emit(i) => {
                let p = Packet::game(cfg.client_packet_bytes, (lo + i as usize) as u32, now);
                if let LinkAction::ScheduleCompletion(t) = uplinks[i as usize].offer(p, now) {
                    seq += 1;
                    push(
                        &mut calendar,
                        &mut ops,
                        Scheduled {
                            time: t,
                            seq,
                            ev: Ev::UplinkComplete(i),
                        },
                    );
                }
                seq += 1;
                push(
                    &mut calendar,
                    &mut ops,
                    Scheduled {
                        time: now + interval,
                        seq,
                        ev: Ev::Emit(i),
                    },
                );
            }
            Ev::UplinkComplete(i) => {
                let (mut p, action) = uplinks[i as usize].complete(now);
                if let LinkAction::ScheduleCompletion(t) = action {
                    seq += 1;
                    push(
                        &mut calendar,
                        &mut ops,
                        Scheduled {
                            time: t,
                            seq,
                            ev: Ev::UplinkComplete(i),
                        },
                    );
                }
                p.enqueued = now;
                if let LinkAction::ScheduleCompletion(t) = dslam_link.offer(p, now) {
                    seq += 1;
                    push(
                        &mut calendar,
                        &mut ops,
                        Scheduled {
                            time: t,
                            seq,
                            ev: Ev::DslamComplete,
                        },
                    );
                }
            }
            Ev::DslamComplete => {
                let (_, action) = dslam_link.complete(now);
                if let LinkAction::ScheduleCompletion(t) = action {
                    seq += 1;
                    push(
                        &mut calendar,
                        &mut ops,
                        Scheduled {
                            time: t,
                            seq,
                            ev: Ev::DslamComplete,
                        },
                    );
                }
            }
        }
    }
    (ops, n_d, horizon)
}

/// Replays a captured op trace through one calendar backend, returning
/// the XOR-fold of every popped `(time, seq)` — a checksum asserted
/// equal across backends, so the replay re-verifies pop-order parity
/// while it times.
fn replay(ops: &[Op], backend: Calendar, n_d: usize, horizon: SimTime) -> u64 {
    let mut calendar: CalendarKind<()> = backend.build(2 * n_d + 16, horizon);
    let mut digest = 0u64;
    for op in ops {
        match *op {
            Op::Push { t_ns, seq } => calendar.push(Scheduled {
                time: SimTime::from_nanos(t_ns),
                seq,
                ev: (),
            }),
            Op::Pop => {
                if let Some(s) = calendar.pop() {
                    digest ^= s.time.as_nanos().rotate_left(17) ^ s.seq;
                }
            }
        }
    }
    digest
}

/// Measured core wait over the exact M/D/1 mean wait at the report's
/// measured arrival rate — the paper's §3.1 Poisson-limit claim says
/// this ratio approaches 1 as the number of superposed streams grows.
fn poisson_ratio(rep: &ScaleReport) -> f64 {
    let q = fpsping_queue::mg1::mdd1(rep.core_arrival_rate_hz, rep.core_service_s)
        .expect("stable M/D/1 operating point");
    rep.core_wait.mean_s / q.mean_wait()
}

/// One curve point: run once for the report, then time it.
fn curve_point(n: usize, dur_s: f64, warmup_s: f64, timing_samples: usize) -> CurvePoint {
    let cfg = scenario(n, dur_s, warmup_s);
    let engine = ScaleEngine::new(cfg);
    let rep = engine.run();
    let wall_ms = median_time_ms(timing_samples, || {
        std::hint::black_box(engine.run());
    });
    CurvePoint {
        n,
        dslams: rep.dslams,
        sim_seconds: dur_s,
        events: rep.events,
        packets: rep.packets,
        wall_ms,
        events_per_sec: rep.events as f64 / (wall_ms / 1e3),
        peak_rss_mib: peak_rss_mib(),
        core_utilization: rep.core_utilization,
        poisson_ratio: poisson_ratio(&rep),
    }
}

/// The whole bench: determinism gates, the ascending-N curve, the
/// heap-vs-bucket comparison, and the JSON emission.
fn run(quick: bool) {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("verifying shard and calendar determinism (N=10 000, 3 DSLAMs)...");
    let (_, shard_note, parity_note) = verify_determinism(10_000, if quick { 0.5 } else { 1.0 });
    println!("  {shard_note}");
    println!("  {parity_note}");

    // Ascending N so the cumulative VmHWM at each point is "peak so
    // far" and the N=10⁶ entry carries the acceptance bound. Simulated
    // durations shrink with N to keep wall time bounded while event
    // totals still grow monotonically (N·duration is increasing).
    let plan: &[(usize, f64, f64, usize)] = if quick {
        &[(1_000, 1.0, 0.25, 1), (10_000, 0.5, 0.25, 1)]
    } else {
        &[
            (1_000, 8.0, 0.5, 3),
            (10_000, 4.0, 0.5, 3),
            (100_000, 2.0, 0.5, 3),
            (1_000_000, 1.0, 0.5, 1),
        ]
    };
    let mut curve = Vec::new();
    for &(n, dur, warm, samples) in plan {
        println!("N={n}: {dur} s simulated...");
        let p = curve_point(n, dur, warm, samples);
        println!(
            "  {} events in {:.0} ms -> {:.2} M events/s, peak RSS {:.0} MiB, M/D/1 ratio {:.3}",
            p.events,
            p.wall_ms,
            p.events_per_sec / 1e6,
            p.peak_rss_mib,
            p.poisson_ratio
        );
        curve.push(p);
    }
    for w in curve.windows(2) {
        assert!(
            w[1].events > w[0].events,
            "event totals not monotone vs N: {} then {}",
            w[0].events,
            w[1].events
        );
    }
    let peak_rss_mib_max = curve.iter().fold(0.0f64, |m, p| m.max(p.peak_rss_mib));

    // Calendar-vs-heap on the N=10⁵ workload, single job (1 shard).
    //
    // Two numbers, deliberately separate:
    // * `calendar_speedup` — the captured calendar op trace of a DSLAM
    //   event loop from this workload, replayed through each backend.
    //   This times the pending-event structure itself; the probe, link
    //   and packet work of a full run is identical across backends and
    //   would only dilute the comparison.
    // * `engine_speedup` — full `ScaleEngine` wall time, reported so
    //   the end-to-end payoff (calendar cost relative to everything
    //   else) is on record too.
    let speedup_n = if quick { 10_000 } else { 100_000 };
    let speedup_dur = if quick { 0.5 } else { 2.0 };
    println!("replaying the N={speedup_n} calendar op trace through both backends...");
    let trace_cfg = {
        let mut cfg = scenario(speedup_n, speedup_dur, 0.25);
        cfg.shards = 1;
        cfg
    };
    let (ops, n_d, horizon) = capture_dslam_trace(&trace_cfg, 0);
    let pushes = ops.iter().filter(|o| matches!(o, Op::Push { .. })).count();
    let bucket_digest = replay(&ops, Calendar::Bucket, n_d, horizon);
    let heap_digest = replay(&ops, Calendar::Heap, n_d, horizon);
    assert_eq!(
        bucket_digest, heap_digest,
        "replay pop sequences diverged between backends"
    );
    let replay_samples = if quick { 1 } else { 7 };
    let calendar_bucket_ms = median_time_ms(replay_samples, || {
        std::hint::black_box(replay(&ops, Calendar::Bucket, n_d, horizon));
    });
    let calendar_heap_ms = median_time_ms(replay_samples, || {
        std::hint::black_box(replay(&ops, Calendar::Heap, n_d, horizon));
    });
    let calendar_speedup = calendar_heap_ms / calendar_bucket_ms;
    println!(
        "  {} ops ({} pushes): bucket {calendar_bucket_ms:.0} ms vs heap {calendar_heap_ms:.0} ms \
         -> {calendar_speedup:.2}x",
        ops.len(),
        pushes
    );

    println!("timing the full engine at N={speedup_n}, --shards 1...");
    let time_backend = |calendar: Calendar| {
        let mut cfg = scenario(speedup_n, speedup_dur, 0.25);
        cfg.shards = 1;
        cfg.calendar = calendar;
        let engine = ScaleEngine::new(cfg);
        median_time_ms(if quick { 1 } else { 3 }, || {
            std::hint::black_box(engine.run());
        })
    };
    let engine_bucket_ms = time_backend(Calendar::Bucket);
    let engine_heap_ms = time_backend(Calendar::Heap);
    let engine_speedup = engine_heap_ms / engine_bucket_ms;
    println!(
        "  bucket {engine_bucket_ms:.0} ms vs heap {engine_heap_ms:.0} ms -> {engine_speedup:.2}x"
    );

    let last = curve.last().expect("non-empty curve");
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"ScaleEngine curve, N={}..{}, DSLAM load 0.5 / core load 0.8, 4096 players/DSLAM, seed {:#x}\",",
        curve[0].n, last.n, MASTER_SEED
    );
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"shard_merge_deterministic\": \"{shard_note}\",");
    let _ = writeln!(json, "  \"calendar_parity\": \"{parity_note}\",");
    let _ = writeln!(json, "  \"curve\": [");
    for (i, p) in curve.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"dslams\": {}, \"sim_seconds\": {}, \"events\": {}, \
             \"packets\": {}, \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}, \
             \"peak_rss_mib\": {:.1}, \"core_utilization\": {:.4}, \
             \"poisson_mdd1_wait_ratio\": {:.4}}}{}",
            p.n,
            p.dslams,
            p.sim_seconds,
            p.events,
            p.packets,
            p.wall_ms,
            p.events_per_sec,
            p.peak_rss_mib,
            p.core_utilization,
            p.poisson_ratio,
            if i + 1 < curve.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"events_monotone_vs_n\": true,");
    let _ = writeln!(json, "  \"peak_rss_mib_max\": {peak_rss_mib_max:.1},");
    let _ = writeln!(json, "  \"speedup_workload_n\": {speedup_n},");
    let _ = writeln!(json, "  \"calendar_trace_ops\": {},", ops.len());
    let _ = writeln!(
        json,
        "  \"calendar_speedup_vs_heap\": {calendar_speedup:.2},"
    );
    let _ = writeln!(json, "  \"calendar_bucket_ms\": {calendar_bucket_ms:.1},");
    let _ = writeln!(json, "  \"calendar_heap_ms\": {calendar_heap_ms:.1},");
    let _ = writeln!(
        json,
        "  \"calendar_note\": \"captured calendar op trace of one DSLAM event loop from the \
         N={speedup_n} single-job workload, replayed through each backend; pop-order parity \
         re-asserted via digest before timing\","
    );
    let _ = writeln!(
        json,
        "  \"engine_speedup_vs_heap_job1\": {engine_speedup:.2},"
    );
    let _ = writeln!(json, "  \"engine_bucket_ms_job1\": {engine_bucket_ms:.1},");
    let _ = writeln!(json, "  \"engine_heap_ms_job1\": {engine_heap_ms:.1},");
    let _ = writeln!(
        json,
        "  \"poisson_note\": \"poisson_mdd1_wait_ratio = measured core wait / exact M/D/1 mean \
         wait at the measured arrival rate; the paper's Poisson-limit claim says it approaches 1 \
         as DSLAM count grows. The approach is not monotone: mid-size superpositions of \
         link-regularized DSLAM output streams under-disperse hardest on the core's service \
         timescale (dip analysis: scale_warmup bin + EXPERIMENTS.md)\""
    );
    json.push_str("}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json");
    std::fs::write(&out, &json).expect("write BENCH_scale.json");
    println!("wrote {}", out.display());

    if !quick {
        assert!(
            peak_rss_mib_max < 2048.0,
            "peak RSS {peak_rss_mib_max:.0} MiB exceeds the ~2 GiB acceptance bound"
        );
        assert!(
            calendar_speedup >= 2.0,
            "bucket calendar only {calendar_speedup:.2}x vs heap on the N={speedup_n} \
             trace (need >= 2x)"
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    run(quick);
}
