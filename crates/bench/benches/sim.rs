//! Simulation-engine benchmark: event-loop throughput and the
//! serial-vs-parallel replication speedup. Emits `BENCH_sim.json` at the
//! repository root, and — before timing anything — verifies that a
//! single replication through `SimEngine` is bit-identical to a direct
//! `NetworkConfig::run()` with the derived seed (the engine adds
//! orchestration, never arithmetic).
//!
//! On a single-core host the parallel batch cannot beat the serial one;
//! the JSON then records `host_cores = 1` and the measured ~1× ratio as
//! the documented fallback instead of a multi-core speedup claim.
//!
//! Run with:
//! ```text
//! cargo bench -p fpsping-bench --bench sim
//! ```

use criterion::{criterion_group, Criterion};
use fpsping_dist::Deterministic;
use fpsping_sim::engine::replication_seed;
use fpsping_sim::{BurstSizing, NetworkConfig, SimEngine, SimEngineConfig, SimTime};
use std::io::Write as _;
use std::time::{Duration, Instant};

const MASTER_SEED: u64 = 0xBE0C;
const REPS: usize = 4;

fn scenario(duration_s: f64) -> NetworkConfig {
    let mut cfg = NetworkConfig::paper_scenario(30, Box::new(Deterministic::new(125.0)), 40.0, 0);
    cfg.burst_sizing = BurstSizing::ErlangBurst { k: 9 };
    cfg.duration = SimTime::from_secs(duration_s);
    cfg.warmup = SimTime::from_secs(1.0);
    cfg
}

/// Asserts that one engine replication reproduces a direct run bit for
/// bit: same events, same packet counts, same probe summaries.
fn verify_single_rep_parity(duration_s: f64) {
    let engine = SimEngine::new(SimEngineConfig::with_reps(1).master_seed(MASTER_SEED));
    let merged = engine.run(|_| scenario(duration_s));
    let mut direct_cfg = scenario(duration_s);
    direct_cfg.seed = replication_seed(MASTER_SEED, 0);
    let direct = direct_cfg.run();

    assert_eq!(merged.per_rep.len(), 1);
    let rep = &merged.per_rep[0];
    assert_eq!(rep.events, direct.events, "event count");
    assert_eq!(rep.packets_upstream, direct.packets_upstream);
    assert_eq!(rep.packets_downstream, direct.packets_downstream);
    for (name, a, b) in [
        ("upstream", &rep.upstream_delay, &direct.upstream_delay),
        (
            "downstream",
            &rep.downstream_delay,
            &direct.downstream_delay,
        ),
        ("agg", &rep.agg_wait, &direct.agg_wait),
        ("burst", &rep.burst_wait, &direct.burst_wait),
        ("ping", &rep.ping_rtt, &direct.ping_rtt),
    ] {
        assert_eq!(a.count, b.count, "{name} count");
        assert_eq!(a.mean_s.to_bits(), b.mean_s.to_bits(), "{name} mean");
        assert_eq!(a.std_dev_s.to_bits(), b.std_dev_s.to_bits(), "{name} std");
        assert_eq!(a.max_s.to_bits(), b.max_s.to_bits(), "{name} max");
        assert_eq!(a.quantiles, b.quantiles, "{name} quantiles");
        assert_eq!(a.tails, b.tails, "{name} tails");
    }
    // The pooled merge of a single replication is that replication.
    assert_eq!(
        merged.ping_rtt.mean_s.to_bits(),
        direct.ping_rtt.mean_s.to_bits()
    );
}

/// Median wall time of `samples` runs of `f`.
fn median_time(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn emit_bench_json(samples: usize, duration_s: f64) {
    verify_single_rep_parity(duration_s.min(10.0));

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let run_batch = |jobs: usize| {
        SimEngine::new(
            SimEngineConfig::with_reps(REPS)
                .master_seed(MASTER_SEED)
                .jobs(jobs),
        )
        .run(|_| scenario(duration_s))
    };
    // Event/packet totals are jobs-invariant; take them from one batch.
    let report = run_batch(1);
    let total_events = report.events;
    let total_packets = report.packets_upstream + report.packets_downstream;

    let serial = median_time(samples, || {
        std::hint::black_box(run_batch(1));
    });
    let parallel = median_time(samples, || {
        std::hint::black_box(run_batch(4));
    });
    let streaming = median_time(samples, || {
        let engine = SimEngine::new(
            SimEngineConfig::with_reps(REPS)
                .master_seed(MASTER_SEED)
                .stream_quantiles(true),
        );
        std::hint::black_box(engine.run(|_| scenario(duration_s)));
    });

    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    // Streaming cost over the sort-once baseline: the `#[inline]`d
    // `P2Quantile::record` hot path (see crates/num/src/p2.rs) is what
    // keeps this margin small; earlier it sat at +39%.
    let streaming_overhead_pct = (streaming.as_secs_f64() / serial.as_secs_f64() - 1.0) * 100.0;
    let speedup_note = if cores >= 4 {
        "4 worker threads on a multi-core host"
    } else {
        "host_cores < 4: parallel batch is concurrency-limited, ~1x expected \
         (documented single-core fallback; rerun on a multi-core host for the >=2x figure)"
    };
    let json = format!(
        "{{\n  \"workload\": \"{reps} replications x {dur} s, N=30, T=40 ms, K=9\",\n  \
         \"host_cores\": {cores},\n  \
         \"single_rep_parity\": \"bit-identical (asserted before timing)\",\n  \
         \"total_events\": {total_events},\n  \
         \"total_packets\": {total_packets},\n  \
         \"serial_jobs1_ms\": {serial_ms:.3},\n  \
         \"parallel_jobs4_ms\": {parallel_ms:.3},\n  \
         \"streaming_jobs1_ms\": {streaming_ms:.3},\n  \
         \"streaming_overhead_pct\": {streaming_overhead_pct:.1},\n  \
         \"events_per_sec_serial\": {eps_serial:.0},\n  \
         \"events_per_sec_parallel\": {eps_parallel:.0},\n  \
         \"packets_per_sec_serial\": {pps_serial:.0},\n  \
         \"parallel_speedup_vs_serial\": {speedup:.2},\n  \
         \"speedup_note\": \"{speedup_note}\"\n}}\n",
        reps = REPS,
        dur = duration_s,
        cores = cores,
        total_events = total_events,
        total_packets = total_packets,
        serial_ms = serial.as_secs_f64() * 1e3,
        parallel_ms = parallel.as_secs_f64() * 1e3,
        streaming_ms = streaming.as_secs_f64() * 1e3,
        streaming_overhead_pct = streaming_overhead_pct,
        eps_serial = total_events as f64 / serial.as_secs_f64(),
        eps_parallel = total_events as f64 / parallel.as_secs_f64(),
        pps_serial = total_packets as f64 / serial.as_secs_f64(),
        speedup = speedup,
        speedup_note = speedup_note,
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_sim.json");
    f.write_all(json.as_bytes()).expect("write BENCH_sim.json");
    println!("→ wrote {}", path.display());
    print!("{json}");
}

fn bench_event_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_event_loop");
    group.sample_size(10);
    group.bench_function("single_run_10s", |b| {
        b.iter(|| std::hint::black_box(scenario(10.0).run()));
    });
    group.bench_function("batch4_jobs1_10s", |b| {
        b.iter(|| {
            let engine = SimEngine::new(
                SimEngineConfig::with_reps(4)
                    .master_seed(MASTER_SEED)
                    .jobs(1),
            );
            std::hint::black_box(engine.run(|_| scenario(10.0)));
        });
    });
    group.bench_function("batch4_jobs4_10s", |b| {
        b.iter(|| {
            let engine = SimEngine::new(
                SimEngineConfig::with_reps(4)
                    .master_seed(MASTER_SEED)
                    .jobs(4),
            );
            std::hint::black_box(engine.run(|_| scenario(10.0)));
        });
    });
    group.bench_function("single_run_streaming_10s", |b| {
        b.iter(|| {
            let mut cfg = scenario(10.0);
            cfg.stream_quantiles = true;
            std::hint::black_box(cfg.run());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_event_loop);

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        emit_bench_json(3, 5.0);
    } else {
        emit_bench_json(7, 30.0);
        let mut c = Criterion::default().configure_from_args();
        benches(&mut c);
    }
}
