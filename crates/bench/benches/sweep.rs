//! Sweep-engine benchmark: the 18-load × K ∈ {2, 9, 20} RTT surface,
//! serial seed path vs the parallel cached engine (cold and cached),
//! plus the §4 dimensioning bisection. Emits `BENCH_sweep.json` at the
//! repository root with cells/sec for each variant and the cold-path
//! batch-solver counters (`queue.dek1.zeta.*` deltas captured around the
//! serial and batch runs), and verifies the engine against the serial
//! path cell for cell before timing anything:
//!
//! * `bit_exact` config — must match the serial reference bit for bit;
//! * default (batch) config — must match within the engine's documented
//!   [`BATCH_RTT_TOLERANCE_MS`] (continuation-warm-started root solves
//!   trade bit-parity for the cold-sweep speedup).
//!
//! Run with:
//! ```text
//! cargo bench -p fpsping-bench --bench sweep
//! ```

use criterion::{criterion_group, Criterion};
use fpsping::engine::{Engine, EngineConfig, BATCH_RTT_TOLERANCE_MS};
use fpsping::{sweep, Scenario};
use std::io::Write as _;
use std::time::{Duration, Instant};

fn ks() -> [u32; 3] {
    [2, 9, 20]
}

fn loads() -> Vec<f64> {
    sweep::paper_load_grid()
}

/// Asserts engine output under `config` is within `tol` of the serial
/// reference cell for cell (cold pass and cached pass) and returns the
/// largest absolute difference (bit-identity ⇒ 0.0).
fn verify_parity(config: EngineConfig, tol: f64, label: &str) -> f64 {
    let base = Scenario::paper_default();
    let (ks, loads) = (ks(), loads());
    let serial = sweep::rtt_surface(&base, &ks, &loads);
    let engine = Engine::new(config);
    let mut max_delta = 0.0f64;
    // Cold pass and cached pass must both agree.
    for pass in 0..2 {
        let fast = engine.rtt_surface(&base, &ks, &loads);
        for (srow, frow) in serial.iter().zip(&fast) {
            for (s, f) in srow.iter().zip(frow) {
                match (s, f) {
                    (Some(s), Some(f)) => {
                        let d = (s - f).abs();
                        assert!(
                            d <= tol,
                            "{label} pass {pass}: cell delta {d} (serial {s}, engine {f})"
                        );
                        max_delta = max_delta.max(d);
                    }
                    (None, None) => {}
                    _ => panic!("{label} pass {pass}: feasibility mismatch: {s:?} vs {f:?}"),
                }
            }
        }
    }
    max_delta
}

/// Median wall time of `samples` runs of `f`.
fn median_time(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Counter value by exact name (0 when absent, e.g. under `obs-off`).
fn counter(snap: &fpsping_obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// `queue.dek1.zeta.*` counter deltas across one closure run.
struct ZetaWindow {
    cold_solves: u64,
    warm_solves: u64,
    warm_fallbacks: u64,
    polish_steps: u64,
    warm_steps: u64,
}

fn zeta_window(f: impl FnOnce()) -> ZetaWindow {
    let before = fpsping_obs::snapshot();
    f();
    let after = fpsping_obs::snapshot();
    let d = |name: &str| counter(&after, name).saturating_sub(counter(&before, name));
    ZetaWindow {
        cold_solves: d("queue.dek1.zeta.cold_solves"),
        warm_solves: d("queue.dek1.zeta.warm_solves"),
        warm_fallbacks: d("queue.dek1.zeta.warm_fallbacks"),
        polish_steps: d("queue.dek1.zeta.newton_polish_steps"),
        warm_steps: d("queue.dek1.zeta.warm_newton_steps"),
    }
}

fn emit_bench_json(samples: usize) {
    let base = Scenario::paper_default();
    let (ks, loads) = (ks(), loads());
    let cells = ks.len() * loads.len();
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The bit-exact config must reproduce the serial path exactly; the
    // default (batch) config is held to the documented tolerance.
    let delta_bit_exact = verify_parity(EngineConfig::bit_exact(), 0.0, "bit_exact");
    let max_delta = verify_parity(
        EngineConfig::with_jobs(jobs),
        BATCH_RTT_TOLERANCE_MS,
        "batch",
    );

    // Cold-path solver-counter windows: one serial surface vs one
    // single-job batch surface, so the per-cell Newton-polish ratio is a
    // like-for-like cold-sweep comparison.
    let serial_zeta = zeta_window(|| {
        std::hint::black_box(sweep::rtt_surface(&base, &ks, &loads));
    });
    let batch_zeta = zeta_window(|| {
        let engine = Engine::new(EngineConfig::with_jobs(1));
        std::hint::black_box(engine.rtt_surface(&base, &ks, &loads));
    });

    let serial = median_time(samples, || {
        std::hint::black_box(sweep::rtt_surface(&base, &ks, &loads));
    });
    let engine_cold = median_time(samples, || {
        let engine = Engine::new(EngineConfig::with_jobs(jobs));
        std::hint::black_box(engine.rtt_surface(&base, &ks, &loads));
    });
    let engine_cold_1job = median_time(samples, || {
        let engine = Engine::new(EngineConfig::with_jobs(1));
        std::hint::black_box(engine.rtt_surface(&base, &ks, &loads));
    });
    let warm = Engine::new(EngineConfig::with_jobs(jobs));
    std::hint::black_box(warm.rtt_surface(&base, &ks, &loads));
    let engine_cached = median_time(samples, || {
        std::hint::black_box(warm.rtt_surface(&base, &ks, &loads));
    });

    let per_sec = |d: Duration| cells as f64 / d.as_secs_f64();
    let per_cell = |steps: u64| steps as f64 / cells as f64;
    let json = format!(
        "{{\n  \"surface\": \"18 loads x K in [2,9,20] = {cells} cells\",\n  \
         \"host_cores\": {cores},\n  \"jobs\": {jobs},\n  \
         \"batch_rtt_tolerance_ms\": {tol:e},\n  \
         \"max_abs_delta_bit_exact\": {delta_bit_exact:e},\n  \
         \"max_abs_delta_vs_serial\": {max_delta:e},\n  \
         \"serial_cold_ms\": {serial:.3},\n  \
         \"engine_cold_ms\": {cold:.3},\n  \
         \"engine_cold_1job_ms\": {cold1:.3},\n  \
         \"engine_cached_ms\": {cached:.3},\n  \
         \"serial_cold_cells_per_sec\": {sps:.1},\n  \
         \"engine_cold_cells_per_sec\": {cps:.1},\n  \
         \"engine_cold_1job_cells_per_sec\": {cps1:.1},\n  \
         \"engine_cached_cells_per_sec\": {hps:.1},\n  \
         \"cold_speedup_vs_serial_1job\": {cold_speedup:.1},\n  \
         \"cached_speedup_vs_serial\": {speedup:.1},\n  \
         \"zeta_serial_cold_solves\": {szc},\n  \
         \"zeta_serial_polish_steps\": {szp},\n  \
         \"zeta_serial_polish_steps_per_cell\": {szpc:.3},\n  \
         \"zeta_batch_cold_solves\": {bzc},\n  \
         \"zeta_batch_warm_solves\": {bzw},\n  \
         \"zeta_batch_warm_fallbacks\": {bzf},\n  \
         \"zeta_batch_polish_steps\": {bzp},\n  \
         \"zeta_batch_warm_steps\": {bzs},\n  \
         \"zeta_batch_polish_steps_per_cell\": {bzpc:.3}\n}}\n",
        cells = cells,
        cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        jobs = jobs,
        tol = BATCH_RTT_TOLERANCE_MS,
        delta_bit_exact = delta_bit_exact,
        max_delta = max_delta,
        serial = serial.as_secs_f64() * 1e3,
        cold = engine_cold.as_secs_f64() * 1e3,
        cold1 = engine_cold_1job.as_secs_f64() * 1e3,
        cached = engine_cached.as_secs_f64() * 1e3,
        sps = per_sec(serial),
        cps = per_sec(engine_cold),
        cps1 = per_sec(engine_cold_1job),
        hps = per_sec(engine_cached),
        cold_speedup = serial.as_secs_f64() / engine_cold_1job.as_secs_f64(),
        speedup = serial.as_secs_f64() / engine_cached.as_secs_f64(),
        szc = serial_zeta.cold_solves,
        szp = serial_zeta.polish_steps,
        szpc = per_cell(serial_zeta.polish_steps),
        bzc = batch_zeta.cold_solves,
        bzw = batch_zeta.warm_solves,
        bzf = batch_zeta.warm_fallbacks,
        bzp = batch_zeta.polish_steps,
        bzs = batch_zeta.warm_steps,
        bzpc = per_cell(batch_zeta.polish_steps),
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_sweep.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_sweep.json");
    println!("→ wrote {}", path.display());
    print!("{json}");
}

fn bench_surface(c: &mut Criterion) {
    let base = Scenario::paper_default();
    let (ks, loads) = (ks(), loads());
    let mut group = c.benchmark_group("surface_18x3");
    group.sample_size(10);
    group.bench_function("serial_cold", |b| {
        b.iter(|| std::hint::black_box(sweep::rtt_surface(&base, &ks, &loads)));
    });
    group.bench_function("engine_cold", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            std::hint::black_box(engine.rtt_surface(&base, &ks, &loads));
        });
    });
    let warm = Engine::new(EngineConfig::default());
    std::hint::black_box(warm.rtt_surface(&base, &ks, &loads));
    group.bench_function("engine_cached", |b| {
        b.iter(|| std::hint::black_box(warm.rtt_surface(&base, &ks, &loads)));
    });
    group.finish();
}

fn bench_dimensioning(c: &mut Criterion) {
    let base = Scenario::paper_default();
    let mut group = c.benchmark_group("dimensioning_k9_50ms");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(Engine::serial().max_load(&base, 50.0).unwrap()));
    });
    group.bench_function("engine_cold", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            std::hint::black_box(engine.max_load(&base, 50.0).unwrap());
        });
    });
    let warm = Engine::new(EngineConfig::default());
    let _ = warm.max_load(&base, 50.0).unwrap();
    group.bench_function("engine_cached", |b| {
        b.iter(|| std::hint::black_box(warm.max_load(&base, 50.0).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_surface, bench_dimensioning);

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    emit_bench_json(if test_mode { 3 } else { 15 });
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
}
