//! Sweep-engine benchmark: the 18-load × K ∈ {2, 9, 20} RTT surface,
//! serial seed path vs the parallel cached engine (cold and cached),
//! plus the §4 dimensioning bisection. Emits `BENCH_sweep.json` at the
//! repository root with cells/sec for each variant, and verifies the
//! engine agrees with the serial path cell for cell before timing
//! anything.
//!
//! Run with:
//! ```text
//! cargo bench -p fpsping-bench --bench sweep
//! ```

use criterion::{criterion_group, Criterion};
use fpsping::engine::{Engine, EngineConfig};
use fpsping::{sweep, Scenario};
use std::io::Write as _;
use std::time::{Duration, Instant};

fn ks() -> [u32; 3] {
    [2, 9, 20]
}

fn loads() -> Vec<f64> {
    sweep::paper_load_grid()
}

/// Asserts engine output equals the serial reference cell for cell and
/// returns the largest absolute difference (bit-identity ⇒ 0.0).
fn verify_parity(jobs: usize) -> f64 {
    let base = Scenario::paper_default();
    let (ks, loads) = (ks(), loads());
    let serial = sweep::rtt_surface(&base, &ks, &loads);
    let engine = Engine::new(EngineConfig::with_jobs(jobs));
    let mut max_delta = 0.0f64;
    // Cold pass and cached pass must both agree.
    for pass in 0..2 {
        let fast = engine.rtt_surface(&base, &ks, &loads);
        for (srow, frow) in serial.iter().zip(&fast) {
            for (s, f) in srow.iter().zip(frow) {
                match (s, f) {
                    (Some(s), Some(f)) => {
                        let d = (s - f).abs();
                        assert!(
                            d < 1e-12,
                            "pass {pass}: cell delta {d} (serial {s}, engine {f})"
                        );
                        max_delta = max_delta.max(d);
                    }
                    (None, None) => {}
                    _ => panic!("pass {pass}: feasibility mismatch: {s:?} vs {f:?}"),
                }
            }
        }
    }
    max_delta
}

/// Median wall time of `samples` runs of `f`.
fn median_time(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn emit_bench_json(samples: usize) {
    let base = Scenario::paper_default();
    let (ks, loads) = (ks(), loads());
    let cells = ks.len() * loads.len();
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_delta = verify_parity(jobs);

    let serial = median_time(samples, || {
        std::hint::black_box(sweep::rtt_surface(&base, &ks, &loads));
    });
    let engine_cold = median_time(samples, || {
        let engine = Engine::new(EngineConfig::with_jobs(jobs));
        std::hint::black_box(engine.rtt_surface(&base, &ks, &loads));
    });
    let warm = Engine::new(EngineConfig::with_jobs(jobs));
    std::hint::black_box(warm.rtt_surface(&base, &ks, &loads));
    let engine_cached = median_time(samples, || {
        std::hint::black_box(warm.rtt_surface(&base, &ks, &loads));
    });

    let per_sec = |d: Duration| cells as f64 / d.as_secs_f64();
    let json = format!(
        "{{\n  \"surface\": \"18 loads x K in [2,9,20] = {cells} cells\",\n  \
         \"host_cores\": {cores},\n  \"jobs\": {jobs},\n  \
         \"max_abs_delta_vs_serial\": {max_delta:e},\n  \
         \"serial_cold_ms\": {serial:.3},\n  \
         \"engine_cold_ms\": {cold:.3},\n  \
         \"engine_cached_ms\": {cached:.3},\n  \
         \"serial_cold_cells_per_sec\": {sps:.1},\n  \
         \"engine_cold_cells_per_sec\": {cps:.1},\n  \
         \"engine_cached_cells_per_sec\": {hps:.1},\n  \
         \"cached_speedup_vs_serial\": {speedup:.1}\n}}\n",
        cells = cells,
        cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        jobs = jobs,
        max_delta = max_delta,
        serial = serial.as_secs_f64() * 1e3,
        cold = engine_cold.as_secs_f64() * 1e3,
        cached = engine_cached.as_secs_f64() * 1e3,
        sps = per_sec(serial),
        cps = per_sec(engine_cold),
        hps = per_sec(engine_cached),
        speedup = serial.as_secs_f64() / engine_cached.as_secs_f64(),
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_sweep.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_sweep.json");
    println!("→ wrote {}", path.display());
    print!("{json}");
}

fn bench_surface(c: &mut Criterion) {
    let base = Scenario::paper_default();
    let (ks, loads) = (ks(), loads());
    let mut group = c.benchmark_group("surface_18x3");
    group.sample_size(10);
    group.bench_function("serial_cold", |b| {
        b.iter(|| std::hint::black_box(sweep::rtt_surface(&base, &ks, &loads)));
    });
    group.bench_function("engine_cold", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            std::hint::black_box(engine.rtt_surface(&base, &ks, &loads));
        });
    });
    let warm = Engine::new(EngineConfig::default());
    std::hint::black_box(warm.rtt_surface(&base, &ks, &loads));
    group.bench_function("engine_cached", |b| {
        b.iter(|| std::hint::black_box(warm.rtt_surface(&base, &ks, &loads)));
    });
    group.finish();
}

fn bench_dimensioning(c: &mut Criterion) {
    let base = Scenario::paper_default();
    let mut group = c.benchmark_group("dimensioning_k9_50ms");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(Engine::serial().max_load(&base, 50.0).unwrap()));
    });
    group.bench_function("engine_cold", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            std::hint::black_box(engine.max_load(&base, 50.0).unwrap());
        });
    });
    let warm = Engine::new(EngineConfig::default());
    let _ = warm.max_load(&base, 50.0).unwrap();
    group.bench_function("engine_cached", |b| {
        b.iter(|| std::hint::black_box(warm.max_load(&base, 50.0).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_surface, bench_dimensioning);

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    emit_bench_json(if test_mode { 3 } else { 15 });
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
}
