//! Shared plumbing for the reproduction binaries: locating the `results/`
//! directory and writing CSV series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// The repository-level `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file into `results/` and echoes its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    println!("→ wrote {}", path.display());
    path
}

/// Formats an `(x, y)` series as CSV rows with fixed precision.
pub fn series_rows(series: &[(f64, f64)]) -> Vec<String> {
    series
        .iter()
        .map(|(x, y)| format!("{x:.6},{y:.6e}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn csv_round_trip() {
        let p = write_csv("unit_test_tmp.csv", "a,b", &["1,2".into(), "3,4".into()]);
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content.lines().count(), 3);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn series_formatting() {
        let rows = series_rows(&[(0.5, 1e-5)]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].starts_with("0.500000,"));
    }
}
