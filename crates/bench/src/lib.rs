//! Shared plumbing for the reproduction binaries: locating the `results/`
//! directory and writing CSV series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator_study;

use fpsping_sim::SimEngineConfig;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Replication flags shared by every simulation-backed reproduction
/// binary: `--reps R --jobs J --stream-quantiles`, plus the
/// observability flags `--metrics-out PATH` and `--trace`.
///
/// Defaults (`reps = 1`, `jobs = 0` = all cores, exact quantiles, no
/// metrics export) keep the binaries' single-run behaviour; raising
/// `--reps` switches them to the replicated engine with 95% confidence
/// half-widths.
#[derive(Debug, Clone, PartialEq)]
pub struct SimArgs {
    /// Independent replications R.
    pub reps: usize,
    /// Worker threads (0 = all cores).
    pub jobs: usize,
    /// O(1)-memory streaming (P²) quantiles instead of raw samples.
    pub stream_quantiles: bool,
    /// Write the solver/sim metrics registry as JSON here on
    /// [`SimArgs::finish`].
    pub metrics_out: Option<PathBuf>,
    /// Print the recorded span tree on [`SimArgs::finish`].
    pub trace: bool,
}

impl Default for SimArgs {
    fn default() -> Self {
        Self {
            reps: 1,
            jobs: 0,
            stream_quantiles: false,
            metrics_out: None,
            trace: false,
        }
    }
}

impl SimArgs {
    /// Parses the flags from an argument list; unknown flags error.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let args: Vec<String> = args.into_iter().collect();
        let mut out = Self::default();
        let mut i = 0usize;
        while i < args.len() {
            match args[i].as_str() {
                "--reps" | "--jobs" => {
                    let flag = args[i].clone();
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("flag {flag} needs a value"))?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("flag {flag}: `{v}` is not a non-negative integer"))?;
                    if flag == "--reps" {
                        if n == 0 {
                            return Err("--reps must be at least 1".into());
                        }
                        out.reps = n;
                    } else {
                        out.jobs = n;
                    }
                    i += 2;
                }
                "--stream-quantiles" => {
                    out.stream_quantiles = true;
                    i += 1;
                }
                "--metrics-out" => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| "flag --metrics-out needs a path".to_string())?;
                    out.metrics_out = Some(PathBuf::from(v));
                    i += 2;
                }
                "--trace" => {
                    out.trace = true;
                    i += 1;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with a usage message on
    /// error — the standard front door for the reproduction binaries.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                eprintln!(
                    "usage: [--reps R] [--jobs J] [--stream-quantiles] [--metrics-out PATH] [--trace]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Honors the observability flags at the end of a binary's run:
    /// prints the span tree when `--trace` was given and writes the
    /// metrics registry as JSON to `--metrics-out`. Call last, after all
    /// model/simulation work. Exits with an error when the metrics path
    /// is unwritable — a reproduction run that silently loses its
    /// requested metrics would defeat the flag's purpose.
    pub fn finish(&self) {
        if self.trace {
            print!("{}", fpsping_obs::snapshot().render_trace());
        }
        if let Some(path) = &self.metrics_out {
            if let Err(e) = fpsping_obs::write_json(path) {
                eprintln!("--metrics-out {}: {e}", path.display());
                // lint:allow(process_exit): finish() runs as the last statement of a bin's main
                std::process::exit(1);
            }
            println!("→ wrote {}", path.display());
        }
    }

    /// The replicated-engine configuration these flags describe, under
    /// the given master seed.
    pub fn engine_config(&self, master_seed: u64) -> SimEngineConfig {
        SimEngineConfig {
            reps: self.reps,
            jobs: self.jobs,
            master_seed,
            stream_quantiles: self.stream_quantiles,
        }
    }
}

/// Formats `value ± half-width` in milliseconds, omitting the half-width
/// when no confidence interval exists (single replication).
pub fn ms_with_ci(value_s: f64, ci_s: Option<f64>) -> String {
    match ci_s {
        Some(hw) => format!("{:.3} ± {:.3} ms", value_s * 1e3, hw * 1e3),
        None => format!("{:.3} ms", value_s * 1e3),
    }
}

/// The repository-level `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file into `results/` and echoes its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    println!("→ wrote {}", path.display());
    path
}

/// Formats an `(x, y)` series as CSV rows with fixed precision.
pub fn series_rows(series: &[(f64, f64)]) -> Vec<String> {
    series
        .iter()
        .map(|(x, y)| format!("{x:.6},{y:.6e}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn csv_round_trip() {
        let p = write_csv("unit_test_tmp.csv", "a,b", &["1,2".into(), "3,4".into()]);
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content.lines().count(), 3);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn series_formatting() {
        let rows = series_rows(&[(0.5, 1e-5)]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].starts_with("0.500000,"));
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn sim_args_defaults_and_flags() {
        assert_eq!(SimArgs::parse(argv("")).unwrap(), SimArgs::default());
        let a = SimArgs::parse(argv("--reps 8 --jobs 2 --stream-quantiles")).unwrap();
        assert_eq!(
            a,
            SimArgs {
                reps: 8,
                jobs: 2,
                stream_quantiles: true,
                ..SimArgs::default()
            }
        );
        let ec = a.engine_config(42);
        assert_eq!(ec.reps, 8);
        assert_eq!(ec.jobs, 2);
        assert_eq!(ec.master_seed, 42);
        assert!(ec.stream_quantiles);
    }

    #[test]
    fn sim_args_rejects_bad_input() {
        assert!(SimArgs::parse(argv("--reps")).is_err());
        assert!(SimArgs::parse(argv("--reps 0")).is_err());
        assert!(SimArgs::parse(argv("--reps x")).is_err());
        assert!(SimArgs::parse(argv("--frobnicate")).is_err());
        assert!(SimArgs::parse(argv("--metrics-out")).is_err());
    }

    #[test]
    fn sim_args_parses_obs_flags() {
        let a = SimArgs::parse(argv("--trace --metrics-out out/m.json")).unwrap();
        assert!(a.trace);
        assert_eq!(
            a.metrics_out.as_deref(),
            Some(std::path::Path::new("out/m.json"))
        );
        assert_eq!(a.reps, 1, "obs flags leave the replication defaults alone");
    }

    #[test]
    fn ci_formatting() {
        assert_eq!(ms_with_ci(0.0125, None), "12.500 ms");
        assert_eq!(ms_with_ci(0.0125, Some(0.0005)), "12.500 ± 0.500 ms");
    }
}
