//! Shared logic for the estimator-convergence study: run a simulated
//! scenario with the per-player RTT estimator enabled, compare the
//! per-player p99 snapshots at each ping-count checkpoint against the
//! analytic [`fpsping::RttModel`] quantile, and answer the operational
//! question "how many pings before a client's estimate is trustworthy?"
//!
//! Used by both the `estimator_convergence` reproduction binary (CSV +
//! table output) and the `estimator` bench (JSON acceptance figures), so
//! the two always describe the same computation.

use fpsping::{RttModel, Scenario};
use fpsping_sim::{BurstSizing, NetworkConfig, SimEngine, SimEngineConfig, SimTime};
use fpsping_traffic::EstimatorSummary;

/// Parameters of one convergence study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Gamer count N (the paper's C = 5 Mb/s bottleneck: N = 100 puts
    /// the downlink at ρ_d = 0.5).
    pub players: usize,
    /// Simulated seconds — at the default 40 ms client interval, 25
    /// pings per player per second.
    pub sim_seconds: f64,
    /// Master seed.
    pub seed: u64,
}

impl StudyConfig {
    /// The default study: 100 players at ρ_d = 0.5 for 220 simulated
    /// seconds — ~5 400 pings per player after warmup, covering every
    /// checkpoint of
    /// [`fpsping_traffic::estimator::DEFAULT_CHECKPOINTS`].
    pub fn default_study() -> Self {
        Self {
            players: 100,
            sim_seconds: 220.0,
            seed: 0xE57,
        }
    }

    /// A fast variant for `--test` smoke runs: fewer players, enough
    /// simulated time to cross the first two checkpoints only.
    pub fn quick() -> Self {
        Self {
            players: 20,
            sim_seconds: 10.0,
            seed: 0xE57,
        }
    }

    /// The scenario this study simulates (paper defaults with the study's
    /// gamer count).
    pub fn scenario(&self) -> Scenario {
        Scenario::paper_default().with_gamers(self.players as u32)
    }
}

/// Median and 90th-percentile relative error across players at one
/// ping-count checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointErr {
    /// Ping count at which the per-player p99 snapshots were taken.
    pub pings: u64,
    /// Players that reached this checkpoint before the run ended.
    pub players_reached: usize,
    /// Median over players of |p99_est − p99_analytic| / p99_analytic.
    pub median_rel_err: f64,
    /// 90th percentile of the same per-player relative errors.
    pub p90_rel_err: f64,
}

/// Everything a study run produces.
#[derive(Debug)]
pub struct Study {
    /// The scenario simulated.
    pub scenario: Scenario,
    /// Analytic 99% quantile of the network RTT (upstream + downstream,
    /// no tick-alignment wait) in ms — what the estimator converges to.
    pub analytic_p99_ms: f64,
    /// Analytic 99.9% counterpart.
    pub analytic_p999_ms: f64,
    /// The merged estimator summary of the run.
    pub summary: EstimatorSummary,
    /// Per-checkpoint error statistics, checkpoint-ascending.
    pub errors: Vec<CheckpointErr>,
}

/// The analytic quantile the estimator's hold-corrected samples estimate:
/// upstream + downstream delay at level `p`, in ms.
pub fn analytic_rtt_ms(scenario: &Scenario, p: f64) -> f64 {
    let mut s = scenario.clone();
    s.quantile = p;
    RttModel::build(&s)
        // lint:allow(unwrap): the paper-default study scenario has a feasible load — `build` cannot fail on it, and a study bin should abort loudly if that ever breaks
        .expect("stable study scenario")
        .rtt_quantile_ms()
}

/// Runs the study: one simulation replication with the estimator on,
/// then the per-checkpoint error reduction against the analytic p99.
pub fn run_study(cfg: &StudyConfig) -> Study {
    let scenario = cfg.scenario();
    let analytic_p99_ms = analytic_rtt_ms(&scenario, 0.99);
    let analytic_p999_ms = analytic_rtt_ms(&scenario, 0.999);
    let engine = SimEngine::new(SimEngineConfig {
        reps: 1,
        jobs: 1,
        master_seed: cfg.seed,
        stream_quantiles: false,
    });
    let s = scenario.clone();
    let rep = engine.run(move |_| {
        let mut net = NetworkConfig::paper_scenario(
            s.gamer_count().round() as usize,
            Box::new(fpsping_dist::Deterministic::new(s.server_packet_bytes)),
            s.t_ms,
            0,
        );
        net.client_packet_bytes = Box::new(fpsping_dist::Deterministic::new(s.client_packet_bytes));
        net.client_interval_ms = Box::new(fpsping_dist::Deterministic::new(
            s.effective_client_interval_ms(),
        ));
        net.r_up_bps = s.r_up_bps;
        net.r_down_bps = s.r_down_bps;
        net.c_bps = s.c_bps;
        net.burst_sizing = BurstSizing::ErlangBurst { k: s.erlang_order };
        net.duration = SimTime::from_secs(cfg.sim_seconds);
        net.estimate = true;
        net
    });
    // lint:allow(unwrap): `net.estimate = true` above guarantees the report carries an estimator summary
    let summary = rep.estimator.expect("study ran with the estimator enabled");
    let errors = checkpoint_errors(&summary, analytic_p99_ms);
    Study {
        scenario,
        analytic_p99_ms,
        analytic_p999_ms,
        summary,
        errors,
    }
}

/// Reduces the summary's per-player p99 checkpoint snapshots to error
/// statistics against the analytic value.
pub fn checkpoint_errors(summary: &EstimatorSummary, analytic_p99_ms: f64) -> Vec<CheckpointErr> {
    summary
        .checkpoints
        .iter()
        .filter(|(_, snaps)| !snaps.is_empty())
        .map(|(pings, snaps)| {
            let mut errs: Vec<f64> = snaps
                .iter()
                .map(|&p99| (p99 - analytic_p99_ms).abs() / analytic_p99_ms)
                .collect();
            errs.sort_by(f64::total_cmp);
            CheckpointErr {
                pings: *pings,
                players_reached: errs.len(),
                median_rel_err: fpsping_num::stats::quantile(&errs, 0.5),
                p90_rel_err: fpsping_num::stats::quantile(&errs, 0.9),
            }
        })
        .collect()
}

/// The first checkpoint at which the median per-player relative error
/// drops under `threshold` *and stays under it* for every later
/// checkpoint — a one-time dip below the bar doesn't make an estimate
/// trustworthy.
pub fn pings_to_trustworthy(errors: &[CheckpointErr], threshold: f64) -> Option<u64> {
    let mut answer = None;
    for e in errors {
        if e.median_rel_err <= threshold {
            answer = answer.or(Some(e.pings));
        } else {
            answer = None;
        }
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trustworthy_requires_staying_under_threshold() {
        let mk = |pings, err| CheckpointErr {
            pings,
            players_reached: 10,
            median_rel_err: err,
            p90_rel_err: err,
        };
        // Dips at 100, bounces back over at 200, settles from 500.
        let errs = [mk(50, 0.4), mk(100, 0.09), mk(200, 0.2), mk(500, 0.05)];
        assert_eq!(pings_to_trustworthy(&errs, 0.1), Some(500));
        assert_eq!(pings_to_trustworthy(&errs, 0.01), None);
        assert_eq!(pings_to_trustworthy(&[mk(50, 0.01)], 0.1), Some(50));
        assert_eq!(pings_to_trustworthy(&[], 0.1), None);
    }

    #[test]
    fn quick_study_converges_toward_analytic() {
        let study = run_study(&StudyConfig::quick());
        assert!(study.analytic_p99_ms > 0.0);
        assert!(study.summary.players_with_samples > 0);
        assert!(!study.errors.is_empty(), "no checkpoint reached");
        // ~250 pings/player: the 50- and 100-ping checkpoints must exist
        // and every player must have reached the first one.
        assert_eq!(study.errors[0].pings, 50);
        assert_eq!(study.errors[0].players_reached, 20);
        for e in &study.errors {
            assert!(e.median_rel_err.is_finite() && e.median_rel_err >= 0.0);
            assert!(e.p90_rel_err >= e.median_rel_err);
        }
    }
}
