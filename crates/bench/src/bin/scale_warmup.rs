//! Reproduces and dissects the non-monotone `poisson_mdd1_wait_ratio`
//! dip at N = 100 000 in `BENCH_scale.json` (0.67 between 0.88 at
//! N = 10⁴ and 0.91 at N = 10⁶).
//!
//! The paper's §3.1 Poisson-limit claim is asymptotic in the number of
//! superposed streams: as the DSLAM count D grows, the core link's
//! arrival process approaches Poisson and the measured mean wait
//! approaches the exact M/D/1 value. The bench curve samples D = 1, 3,
//! 25, 245 — and the D = 25 point dips. Two candidate explanations:
//!
//! 1. **Measurement artifact** — the warmup discard is too short or the
//!    measured span too small, so the reported mean still carries the
//!    transient. If so, the ratio must move as warmup/duration/seed
//!    vary.
//! 2. **Structural finite-D effect** — each DSLAM's output stream is
//!    *regularized* by its bottleneck link (back-to-back departures are
//!    spaced by the 80 B serialization time, ≈ 4.9 µs at the 4 096
//!    player DSLAM rate), so a small superposition is *smoother* than
//!    Poisson on the core's service timescale τ. The dip location then
//!    tracks where τ crosses that spacing, and the ratio is a function
//!    of D alone: robust to seed, warmup and duration.
//!
//! Output: four CSV sweeps (warmup, duration, seed, DSLAM count) to
//! stdout. The verdict — documented in `EXPERIMENTS.md` — comes from
//! which knobs move the ratio and which don't.
//!
//! Run: `cargo run --release -p fpsping-bench --bin scale_warmup`
//! (add `--test` for a single-point smoke).

use fpsping_sim::{ScaleConfig, ScaleEngine, SimTime};

/// The bench's master seed — sweep baselines match `BENCH_scale.json`.
const MASTER_SEED: u64 = 0x5CA1E;

/// The dipping curve point.
const N_DIP: usize = 100_000;

/// One measured point: the Poisson ratio plus its ingredients.
struct Point {
    ratio: f64,
    mean_wait_us: f64,
    mdd1_wait_us: f64,
    packets: u64,
    dslams: usize,
}

fn measure(n: usize, dur_s: f64, warmup_s: f64, seed: u64) -> Point {
    let mut cfg = ScaleConfig::new(n);
    cfg.duration = SimTime::from_secs(dur_s);
    cfg.warmup = SimTime::from_secs(warmup_s);
    cfg.seed = seed;
    let rep = ScaleEngine::new(cfg).run();
    let q = fpsping_queue::mg1::mdd1(rep.core_arrival_rate_hz, rep.core_service_s)
        .expect("stable M/D/1 operating point");
    Point {
        ratio: rep.core_wait.mean_s / q.mean_wait(),
        mean_wait_us: rep.core_wait.mean_s * 1e6,
        mdd1_wait_us: q.mean_wait() * 1e6,
        packets: rep.packets,
        dslams: rep.dslams,
    }
}

fn emit(sweep: &str, knob: &str, value: f64, p: &Point) {
    println!(
        "{sweep},{knob},{value},{},{},{:.4},{:.3},{:.3}",
        p.dslams, p.packets, p.ratio, p.mean_wait_us, p.mdd1_wait_us
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    println!("sweep,knob,value,dslams,packets,poisson_mdd1_wait_ratio,mean_wait_us,mdd1_wait_us");

    if quick {
        // Smoke: one cheap point, schema only.
        let p = measure(10_000, 0.5, 0.25, MASTER_SEED);
        emit("smoke", "duration_s", 0.5, &p);
        return;
    }

    // Sweep 1 — warmup at the dipping point (duration fixed at the
    // bench's 2 s). If the dip is transient leakage, longer warmups
    // must pull the ratio up toward the large-D values.
    for warmup_s in [0.1, 0.25, 0.5, 1.0, 1.5] {
        let p = measure(N_DIP, 2.0, warmup_s, MASTER_SEED);
        emit("warmup", "warmup_s", warmup_s, &p);
    }

    // Sweep 2 — measured span (warmup fixed at the bench's 0.5 s). A
    // transient's weight shrinks as 1/span; a structural ratio holds.
    for dur_s in [1.0, 2.0, 4.0, 6.0] {
        let p = measure(N_DIP, dur_s, 0.5, MASTER_SEED);
        emit("duration", "duration_s", dur_s, &p);
    }

    // Sweep 3 — seed (the bench's operating point exactly). Spread here
    // bounds the statistical error bar on the committed 0.67.
    for (i, seed) in [MASTER_SEED, 1, 2, 3, 4].into_iter().enumerate() {
        let p = measure(N_DIP, 2.0, 0.5, seed);
        emit("seed", "seed_index", i as f64, &p);
    }

    // Sweep 4 — DSLAM count D at fixed per-DSLAM population: the
    // Poisson-limit abscissa itself, on a finer grid than the bench's
    // decade curve (sim time scaled so each point costs about the same).
    for d in [1usize, 3, 6, 12, 25, 50, 98] {
        let n = d * 4_096;
        let dur_s = (2.0 * N_DIP as f64 / n as f64).clamp(0.75, 8.0);
        let p = measure(n, dur_s, 0.5, MASTER_SEED);
        emit("dslams", "dslams", d as f64, &p);
    }
}
