//! Burst-model sensitivity (the paper's concluding remark): *"this
//! conclusion depends to some extent on the details of the downstream
//! traffic characteristics and ... measurements reported in literature do
//! not give conclusive evidence on the exact value of all parameters."*
//!
//! We hold the mean burst size fixed and swap the burst-size law:
//! Erlang(2/9/20/28), lognormal and Weibull moment-matched to the
//! Table-3 CoV, and a heavy-tailed Pareto — measuring the downstream
//! delay quantiles in the packet-level simulator (which, unlike the
//! transform analysis, accepts any law).

use fpsping_bench::write_csv;
use fpsping_dist::{Distribution, Erlang, LogNormal, Pareto, Weibull};
use fpsping_sim::{BurstSizing, NetworkConfig, SimTime};

fn main() {
    let n = 100usize; // ρ_d = 0.5 at P_S = 125 B, T = 40 ms, C = 5 Mbps
    let mean_total = n as f64 * 125.0;
    println!("Burst-size model sensitivity — ρ_d = 0.5, mean burst {mean_total} B");
    println!();
    println!(
        "{:<28} {:>8} | {:>10} {:>10} {:>11} {:>11}",
        "burst law", "CoV", "mean [ms]", "p99 [ms]", "p99.9 [ms]", "p99.99 [ms]"
    );

    // Weibull matched to CoV 0.19: shape from CoV numerically.
    let weibull_shape = {
        // CoV² = Γ(1+2/k)/Γ(1+1/k)² - 1; solve for k by bisection.
        let cov_of = |k: f64| {
            let g1 = fpsping_num::special::ln_gamma(1.0 + 1.0 / k);
            let g2 = fpsping_num::special::ln_gamma(1.0 + 2.0 / k);
            ((g2 - 2.0 * g1).exp() - 1.0).sqrt()
        };
        fpsping_num::roots::brent(|k| cov_of(k) - 0.19, 1.0, 50.0, 1e-10, 200)
            .unwrap()
            .root
    };
    let weibull_scale =
        mean_total / (fpsping_num::special::ln_gamma(1.0 + 1.0 / weibull_shape)).exp();

    let models: Vec<(String, Box<dyn Distribution>)> = vec![
        (
            "Erlang K=2".into(),
            Box::new(Erlang::with_mean(2, mean_total)),
        ),
        (
            "Erlang K=9".into(),
            Box::new(Erlang::with_mean(9, mean_total)),
        ),
        (
            "Erlang K=20".into(),
            Box::new(Erlang::with_mean(20, mean_total)),
        ),
        (
            "Erlang K=28 (CoV fit)".into(),
            Box::new(Erlang::with_mean(28, mean_total)),
        ),
        (
            "LogNormal (CoV 0.19)".into(),
            Box::new(LogNormal::from_mean_cov(mean_total, 0.19)),
        ),
        (
            format!("Weibull (k={weibull_shape:.1})"),
            Box::new(Weibull::new(weibull_shape, weibull_scale)),
        ),
        (
            "Pareto α=2.2 (heavy)".into(),
            Box::new(Pareto::with_mean(mean_total, 2.2)),
        ),
    ];

    let mut csv = Vec::new();
    for (name, law) in models {
        let cov = law.cov();
        let mut cfg = NetworkConfig::paper_scenario(
            n,
            Box::new(fpsping_dist::Deterministic::new(125.0)),
            40.0,
            0x5E45,
        );
        cfg.burst_sizing = BurstSizing::BurstFromDistribution(law);
        cfg.duration = SimTime::from_secs(600.0);
        cfg.warmup = SimTime::from_secs(5.0);
        let rep = cfg.run();
        let q = |p: f64| {
            rep.downstream_delay
                .quantiles
                .iter()
                .find(|(x, _)| (*x - p).abs() < 1e-9)
                .map(|(_, v)| v * 1e3)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{name:<28} {cov:>8.3} | {:>10.2} {:>10.2} {:>11.2} {:>11.2}",
            rep.downstream_delay.mean_s * 1e3,
            q(0.99),
            q(0.999),
            q(0.9999)
        );
        csv.push(format!(
            "{name},{cov:.4},{:.4},{:.4},{:.4},{:.4}",
            rep.downstream_delay.mean_s * 1e3,
            q(0.99),
            q(0.999),
            q(0.9999)
        ));
    }
    write_csv(
        "burst_model_sensitivity.csv",
        "burst_law,cov,mean_ms,p99_ms,p999_ms,p9999_ms",
        &csv,
    );
    println!();
    println!("Same mean everywhere: light-tailed laws with the same CoV (Erlang 28,");
    println!("lognormal, Weibull) land close together — the paper's qualitative");
    println!("conclusions are robust within that family. The heavy-tailed Pareto");
    println!("breaks the pattern, confirming why §5 calls for larger-scale traces");
    println!("before trusting the exact quantitative dimensioning numbers.");
}
