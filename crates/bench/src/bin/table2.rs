//! Reproduces **Table 2**: the Half-Life traffic model of Lang et al. —
//! deterministic burst clock Det(60), deterministic client clock Det(41),
//! lognormal (map-dependent) server packet sizes, (log-)normal client
//! sizes in 60–90 B.

use fpsping_bench::write_csv;
use fpsping_num::stats::{cov, mean};
use fpsping_traffic::games::half_life;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let g = half_life();
    let mut rng = StdRng::seed_from_u64(0x7AB1E2);
    let n = 400_000;

    println!("Table 2 — Half-Life traffic model (Lang et al.)");
    println!(
        "{:<26} {:>12} | {:>10} {:>8} | model",
        "quantity", "paper", "model mean", "CoV"
    );

    let server_sizes = g.server.packet_size.sample_n(&mut rng, n);
    let burst_iat = g.server.burst_inter_arrival_ms.sample_n(&mut rng, n);
    let client_sizes = g.client.packet_size.sample_n(&mut rng, n);
    let client_iat = g.client.inter_arrival_ms.sample_n(&mut rng, n);

    let rows = [
        (
            "server packet size [B]",
            "map-dep. lognormal",
            mean(&server_sizes),
            cov(&server_sizes),
            "LogNormal(120, 0.4)",
        ),
        (
            "burst inter-arrival [ms]",
            "Det(60)",
            mean(&burst_iat),
            cov(&burst_iat),
            "Det(60)",
        ),
        (
            "client packet size [B]",
            "60-90 B (log)normal",
            mean(&client_sizes),
            cov(&client_sizes),
            "Normal(75, 7.5)",
        ),
        (
            "client inter-arrival [ms]",
            "Det(41)",
            mean(&client_iat),
            cov(&client_iat),
            "Det(41)",
        ),
    ];
    let mut csv = Vec::new();
    for (name, paper, m, c, model) in rows {
        println!("{name:<26} {paper:>12} | {m:>10.1} {c:>8.3} | {model}");
        csv.push(format!("{name},{paper},{m:.3},{c:.4},{model}"));
    }
    // Range check the client sizes against the reported 60–90 B span.
    let in_range = client_sizes
        .iter()
        .filter(|&&s| (60.0..=90.0).contains(&s))
        .count();
    println!(
        "client sizes within the reported 60–90 B band: {:.1}%",
        100.0 * in_range as f64 / client_sizes.len() as f64
    );
    write_csv(
        "table2_half_life.csv",
        "quantity,paper_value,model_mean,model_cov,model",
        &csv,
    );
}
