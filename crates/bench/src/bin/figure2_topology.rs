//! **Figure 2** is the architecture diagram; it has no data series. This
//! binary prints the topology, instantiates it in the simulator, and runs
//! a smoke-test session so the figure's architecture is demonstrably the
//! one every other experiment uses.
//!
//! Flags: `--reps R` replicates the smoke run with independent seeds and
//! reports 95% confidence half-widths; `--jobs J` spreads replications
//! over threads; `--stream-quantiles` bounds probe memory.

use fpsping_bench::{ms_with_ci, SimArgs};
use fpsping_dist::Deterministic;
use fpsping_sim::{NetworkConfig, SimEngine, SimTime};

fn main() {
    let args = SimArgs::from_env();
    println!("Figure 2 — client-server architecture for interactive gaming");
    println!();
    println!("  client 1 ──128kbps──┐                              ┌──1024kbps── client 1");
    println!("  client 2 ──128kbps──┤                              ├──1024kbps── client 2");
    println!("     ⋮                ├─[agg node]══5Mbps══[server]══┤                ⋮");
    println!("  client N ──128kbps──┘        (bottleneck C)        └──1024kbps── client N");
    println!();
    let n = 12;
    let engine = SimEngine::new(args.engine_config(0xF1_62));
    let rep = engine.run(|_| {
        let mut cfg =
            NetworkConfig::paper_scenario(n, Box::new(Deterministic::new(125.0)), 40.0, 0);
        cfg.duration = SimTime::from_secs(30.0);
        cfg
    });
    println!(
        "smoke run: N = {n}, T = 40 ms, P_S = 125 B, 30 simulated seconds × {} replication(s)",
        rep.reps
    );
    println!("  events processed      : {}", rep.events);
    println!("  upstream packets      : {}", rep.packets_upstream);
    println!("  downstream packets    : {}", rep.packets_downstream);
    println!(
        "  bottleneck util ↑/↓   : {:.3} / {:.3}",
        rep.up_utilization, rep.down_utilization
    );
    println!(
        "  mean upstream delay   : {}",
        ms_with_ci(rep.upstream_delay.mean_s, rep.upstream_delay.mean_ci95_s)
    );
    println!(
        "  mean downstream delay : {}",
        ms_with_ci(
            rep.downstream_delay.mean_s,
            rep.downstream_delay.mean_ci95_s
        )
    );
    println!(
        "  mean application ping : {}",
        ms_with_ci(rep.ping_rtt.mean_s, rep.ping_rtt.mean_ci95_s)
    );
    args.finish();
}
