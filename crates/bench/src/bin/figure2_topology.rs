//! **Figure 2** is the architecture diagram; it has no data series. This
//! binary prints the topology, instantiates it in the simulator, and runs
//! a smoke-test session so the figure's architecture is demonstrably the
//! one every other experiment uses.

use fpsping_dist::Deterministic;
use fpsping_sim::{NetworkConfig, SimTime};

fn main() {
    println!("Figure 2 — client-server architecture for interactive gaming");
    println!();
    println!("  client 1 ──128kbps──┐                              ┌──1024kbps── client 1");
    println!("  client 2 ──128kbps──┤                              ├──1024kbps── client 2");
    println!("     ⋮                ├─[agg node]══5Mbps══[server]══┤                ⋮");
    println!("  client N ──128kbps──┘        (bottleneck C)        └──1024kbps── client N");
    println!();
    let n = 12;
    let mut cfg =
        NetworkConfig::paper_scenario(n, Box::new(Deterministic::new(125.0)), 40.0, 0xF1_62);
    cfg.duration = SimTime::from_secs(30.0);
    let rep = cfg.run();
    println!("smoke run: N = {n}, T = 40 ms, P_S = 125 B, 30 simulated seconds");
    println!("  events processed      : {}", rep.events);
    println!("  upstream packets      : {}", rep.packets_upstream);
    println!("  downstream packets    : {}", rep.packets_downstream);
    println!(
        "  bottleneck util ↑/↓   : {:.3} / {:.3}",
        rep.up_utilization, rep.down_utilization
    );
    println!(
        "  mean upstream delay   : {:.3} ms",
        rep.upstream_delay.mean_s * 1e3
    );
    println!(
        "  mean downstream delay : {:.3} ms",
        rep.downstream_delay.mean_s * 1e3
    );
    println!(
        "  mean application ping : {:.3} ms",
        rep.ping_rtt.mean_s * 1e3
    );
}
