//! Scheduler study (Section 1 of the paper): can the gaming queue really
//! be "studied in isolation"? Simulates the same gaming population under
//! FIFO, non-preemptive priority and WFQ while elastic background traffic
//! loads the bottleneck, and compares against two isolated baselines.

use fpsping_bench::write_csv;
use fpsping_dist::Deterministic;
use fpsping_sim::network::BackgroundConfig;
use fpsping_sim::scheduler::Discipline;
use fpsping_sim::{NetworkConfig, SimTime};

fn run(disc: Discipline, bg_load: f64, c_bps: f64, seed: u64) -> fpsping_sim::SimReport {
    let mut cfg =
        NetworkConfig::paper_scenario(50, Box::new(Deterministic::new(125.0)), 40.0, seed);
    cfg.c_bps = c_bps;
    cfg.discipline = disc;
    if bg_load > 0.0 {
        cfg.background = Some(BackgroundConfig {
            load: bg_load,
            packet_bytes: 1500.0,
        });
    }
    cfg.duration = SimTime::from_secs(120.0);
    cfg.run()
}

fn main() {
    println!("Scheduler isolation study — N = 50 gamers (ρ_game = 0.25 on 5 Mbps),");
    println!("elastic background at various loads, 1500 B elastic packets.");
    println!();
    println!(
        "{:<26} {:>8} | {:>10} {:>10} {:>10}",
        "configuration", "bg load", "mean [ms]", "p99 [ms]", "p99.9 [ms]"
    );
    let q = |rep: &fpsping_sim::SimReport, p: f64| {
        rep.downstream_delay
            .quantiles
            .iter()
            .find(|(x, _)| (*x - p).abs() < 1e-9)
            .map(|(_, v)| v * 1e3)
            .unwrap_or(f64::NAN)
    };
    let mut csv = Vec::new();
    let mut emit = |name: &str, bg: f64, rep: &fpsping_sim::SimReport| {
        println!(
            "{name:<26} {bg:>8.2} | {:>10.3} {:>10.3} {:>10.3}",
            rep.downstream_delay.mean_s * 1e3,
            q(rep, 0.99),
            q(rep, 0.999)
        );
        csv.push(format!(
            "{name},{bg},{:.5},{:.5},{:.5}",
            rep.downstream_delay.mean_s * 1e3,
            q(rep, 0.99),
            q(rep, 0.999)
        ));
    };

    let iso_full = run(Discipline::Fifo, 0.0, 5_000_000.0, 1);
    emit("isolated (full C)", 0.0, &iso_full);
    let iso_reserved = run(Discipline::Fifo, 0.0, 2_000_000.0, 1);
    emit("isolated (0.4·C)", 0.0, &iso_reserved);
    for &bg in &[0.3, 0.5, 0.7] {
        let fifo = run(Discipline::Fifo, bg, 5_000_000.0, 2);
        emit("FIFO + elastic", bg, &fifo);
        let prio = run(Discipline::Priority, bg, 5_000_000.0, 2);
        emit("HoL priority + elastic", bg, &prio);
        let wfq = run(Discipline::Wfq { game_weight: 0.4 }, bg, 5_000_000.0, 2);
        emit("WFQ(0.4) + elastic", bg, &wfq);
        println!();
    }
    write_csv(
        "wfq_isolation.csv",
        "configuration,bg_load,mean_ms,p99_ms,p999_ms",
        &csv,
    );
    println!("Reading guide (Section 1 of the paper):");
    println!("  • FIFO degrades with elastic load — gaming cannot be isolated;");
    println!("  • HoL priority tracks the isolated-full-C baseline (residual 1500 B");
    println!("    service ≈ 2.4 ms worst case, 'negligible on moderate-rate links');");
    println!("  • WFQ tracks the isolated baseline at its *reserved* rate once the");
    println!("    elastic class saturates its own share — i.e. analyze the gaming");
    println!("    queue in isolation with C ← w·C, exactly the paper's modeling move.");
}
