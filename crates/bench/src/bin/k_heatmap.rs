//! The full (K × load) design surface behind Figures 3/4 and the §4
//! dimensioning rule: the 99.999 % RTT quantile over a grid of Erlang
//! orders and downlink loads, including the K = 1 exponential-burst
//! extension handled through eq. (33).

use fpsping::{Engine, EngineConfig, Scenario};
use fpsping_bench::write_csv;

fn main() {
    let ks: Vec<u32> = vec![1, 2, 3, 5, 9, 14, 20, 28];
    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    println!("RTT quantile surface [ms] — P_S = 125 B, T = 40 ms, 99.999%");
    print!("{:>6}", "load");
    for &k in &ks {
        print!(" {:>8}", format!("K={k}"));
    }
    println!();
    // The 8 K-columns at each load share one upstream pole solve, and the
    // columns are evaluated in parallel with warm-started brackets.
    let engine = Engine::new(EngineConfig::default());
    let base = Scenario::paper_default().with_tick_ms(40.0);
    let surface = engine.rtt_surface(&base, &ks, &loads);
    let mut csv = Vec::new();
    for (ri, &rho) in loads.iter().enumerate() {
        print!("{:>5.0}%", rho * 100.0);
        let mut row = format!("{rho:.2}");
        for v in &surface[ri] {
            match v {
                Some(v) => {
                    print!(" {v:>8.1}");
                    row.push_str(&format!(",{v:.3}"));
                }
                None => {
                    print!(" {:>8}", "-");
                    row.push(',');
                }
            }
        }
        println!();
        csv.push(row);
    }
    let header = std::iter::once("load".to_string())
        .chain(ks.iter().map(|k| format!("rtt_k{k}_ms")))
        .collect::<Vec<_>>()
        .join(",");
    write_csv("k_heatmap.csv", &header, &csv);
    let stats = engine.cache_stats();
    println!(
        "engine: {} pole solves served {} cells ({} jobs)",
        stats.pole_misses,
        stats.pole_hits + stats.pole_misses,
        engine.config().jobs
    );
    println!();
    println!("Every row decreases monotonically in K (more regular bursts → lower");
    println!("ping); the K = 1 column is this reproduction's extension beyond the");
    println!("paper's K ≥ 2 analysis (logarithmic position transform, eq. 33).");
}
