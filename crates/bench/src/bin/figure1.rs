//! Reproduces **Figure 1**: the tail distribution function of the
//! measured burst sizes against Erlang tails of order 15, 20 and 25 (the
//! legend's E(15, 0.008), E(20, 0.011), E(25, 0.013) — each with the mean
//! pre-fit to 1852 bytes), on the paper's 0–4000 B semilog axes.
//!
//! Also reports the two Erlang-order fits of §2.3.2: CoV → K = 28,
//! tail → K between 15 and 20.

use fpsping_bench::write_csv;
use fpsping_dist::fit::{erlang_order_from_cov, fit_erlang_tail};
use fpsping_dist::{Distribution, Erlang};
use fpsping_num::stats::Ecdf;
use fpsping_traffic::LanPartyConfig;

fn main() {
    let lan = LanPartyConfig::default().generate(0xF1_61);
    let ecdf = Ecdf::new(lan.true_burst_sizes.clone());
    let mean_burst = fpsping_num::stats::mean(&lan.true_burst_sizes);

    let erlangs: Vec<(u32, Erlang)> = [15u32, 20, 25]
        .iter()
        .map(|&k| (k, Erlang::with_mean(k, mean_burst)))
        .collect();

    println!("Figure 1 — burst-size tail distribution function (semilog y)");
    println!("experimental mean burst size: {mean_burst:.0} B (paper: 1852 B)");
    println!();
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12}",
        "size[B]", "experimental", "E(15)", "E(20)", "E(25)"
    );
    let mut csv = Vec::new();
    for i in 0..=40 {
        let x = i as f64 * 100.0;
        let emp = ecdf.tdf(x);
        let tails: Vec<f64> = erlangs.iter().map(|(_, e)| e.tdf(x)).collect();
        if i % 4 == 0 {
            println!(
                "{x:>8.0} {emp:>14.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
                tails[0], tails[1], tails[2]
            );
        }
        csv.push(format!(
            "{x},{emp:.6e},{:.6e},{:.6e},{:.6e}",
            tails[0], tails[1], tails[2]
        ));
    }
    write_csv(
        "figure1_burst_size_tdf.csv",
        "burst_size_bytes,experimental_tdf,erlang15_tdf,erlang20_tdf,erlang25_tdf",
        &csv,
    );

    // §2.3.2's two fitting routes.
    let cov = fpsping_num::stats::cov(&lan.true_burst_sizes);
    let k_cov = erlang_order_from_cov(cov);
    let tail = fit_erlang_tail(&lan.true_burst_sizes, 5..=40, 1e-3, 48);
    println!();
    println!("Erlang-order fits (paper §2.3.2):");
    println!("  CoV fit : CoV = {cov:.3} → K = {k_cov}   (paper: 0.19 → 28)");
    println!(
        "  tail fit: K = {} (log-TDF LSQ; paper reads 15–20 off Figure 1)",
        tail.k
    );
    println!();
    println!("Legend check: E(15,0.008), E(20,0.011), E(25,0.013) all have mean ≈ 1852 B:");
    for &(k, lam) in &[(15u32, 0.008f64), (20, 0.011), (25, 0.013)] {
        println!("  E({k},{lam}): mean = {:.0} B", k as f64 / lam);
    }
}
