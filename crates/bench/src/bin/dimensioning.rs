//! Reproduces the **§4 dimensioning example**: for P_S = 125 B,
//! T = 40 ms, C = 5000 kbps and a 50 ms RTT budget (Färber's 'excellent
//! game play' bound), the maximum allowable downlink load is ≈20 %, 40 %
//! and 60 % for K = 2, 9 and 20, giving N_max = 40, 80 and 120 gamers
//! via eq. (37).

use fpsping::{Engine, EngineConfig, Scenario};
use fpsping_bench::{write_csv, SimArgs};

fn main() {
    let args = SimArgs::from_env();
    println!("§4 dimensioning — P_S = 125 B, T = 40 ms, C = 5 Mbps, RTT ≤ 50 ms");
    println!();
    println!(
        "{:>4} {:>12} {:>10} | {:>12} {:>10}",
        "K", "rho_max", "N_max", "paper rho", "paper N"
    );
    let paper = [(2u32, 0.20, 40u32), (9, 0.40, 80), (20, 0.60, 120)];
    let mut csv = Vec::new();
    // One engine across the three K-columns: the bisection probes share
    // the upstream pole cache (λ depends on load, not K) and warm-start
    // their quantile brackets probe to probe.
    let engine = Engine::new(EngineConfig::default());
    for (k, p_rho, p_n) in paper {
        let base = Scenario::paper_default()
            .with_erlang_order(k)
            .with_tick_ms(40.0);
        let r = engine.max_load(&base, 50.0).expect("dimensioning solvable");
        println!(
            "{k:>4} {:>11.1}% {:>10} | {:>11.0}% {:>10}",
            100.0 * r.rho_max,
            r.n_max,
            100.0 * p_rho,
            p_n
        );
        csv.push(format!("{k},{:.4},{},{p_rho},{p_n}", r.rho_max, r.n_max));
    }
    write_csv(
        "dimensioning_50ms.csv",
        "k,rho_max,n_max,paper_rho_max,paper_n_max",
        &csv,
    );
    println!();
    println!("Headline conclusion reproduced: the tolerable load is 'surprisingly");
    println!("low in most circumstances', and strongly driven by the Erlang order.");
    args.finish();
}
