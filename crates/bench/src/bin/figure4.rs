//! Reproduces **Figure 4**: 99.999 % RTT quantile vs downlink load for
//! P_S = 125 B, K = 9, comparing server tick intervals T = 40 ms and
//! T = 60 ms — and verifies the paper's observation that the RTT is
//! virtually proportional to T (ratio ≈ 3/2) when the downlink dominates.

//!
//! Flags: `--jobs J` parallelizes the analytic sweep; `--reps R` (R > 1)
//! cross-checks the T-proportionality at ρ_d = 0.5 with R simulated
//! replications; `--stream-quantiles` bounds the cross-check's memory.

use fpsping::{Engine, EngineConfig, Scenario};
use fpsping_bench::{ms_with_ci, write_csv, SimArgs};
use fpsping_dist::Deterministic;
use fpsping_sim::{NetworkConfig, SimEngine, SimTime};

fn main() {
    let args = SimArgs::from_env();
    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    let s40 = Scenario::paper_default()
        .with_tick_ms(40.0)
        .with_erlang_order(9);
    let s60 = Scenario::paper_default()
        .with_tick_ms(60.0)
        .with_erlang_order(9);
    // The (K, ρ_d) solver cache is T-invariant: the T = 60 ms series
    // rebuilds every D/E_K/1 from the T = 40 ms solves.
    let engine = Engine::new(EngineConfig::with_jobs(args.jobs));
    let p40 = engine.rtt_vs_load(&s40, &loads);
    let p60 = engine.rtt_vs_load(&s60, &loads);

    println!("Figure 4 — P_S = 125 B, K = 9: impact of the tick interval T");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "load", "IAT=40ms", "IAT=60ms", "ratio"
    );
    let det40 = s40.deterministic_delay_s() * 1e3;
    let det60 = s60.deterministic_delay_s() * 1e3;
    let mut csv = Vec::new();
    for i in 0..loads.len() {
        let (a, b) = (p40[i].rtt_ms.unwrap(), p60[i].rtt_ms.unwrap());
        // The proportionality claim concerns the stochastic part.
        let ratio = (b - det60) / (a - det40);
        println!(
            "{:>7.0}% {a:>14.1} {b:>14.1} {ratio:>10.3}",
            100.0 * loads[i]
        );
        csv.push(format!("{:.2},{a:.3},{b:.3},{ratio:.4}", loads[i]));
    }
    write_csv(
        "figure4_rtt_vs_load_iat.csv",
        "load,rtt_iat40_ms,rtt_iat60_ms,stochastic_ratio",
        &csv,
    );
    println!();
    println!("Paper: 'the RTT for T = 60 ms is about 3/2 times as high as the RTT");
    println!("for T = 40 ms' — the stochastic ratio column should sit near 1.5.");
    if args.reps > 1 {
        println!();
        println!(
            "Simulation cross-check (ρ_d = 0.5, K = 9, {} replications):",
            args.reps
        );
        let mut means = Vec::new();
        for (t_ms, scenario) in [(40.0, &s40), (60.0, &s60)] {
            let n = scenario.clone().with_load(0.5).gamer_count().round() as usize;
            let sim = SimEngine::new(args.engine_config(0xF164 ^ t_ms as u64));
            let rep = sim.run(|_| {
                let mut cfg =
                    NetworkConfig::paper_scenario(n, Box::new(Deterministic::new(125.0)), t_ms, 0);
                cfg.duration = SimTime::from_secs(120.0);
                cfg.warmup = SimTime::from_secs(5.0);
                cfg
            });
            println!(
                "  T = {t_ms} ms, N = {n:>3}: sim mean ping {}",
                ms_with_ci(rep.ping_rtt.mean_s, rep.ping_rtt.mean_ci95_s)
            );
            means.push(rep.ping_rtt.mean_s);
        }
        println!(
            "  simulated mean-ping ratio T=60/T=40: {:.3}",
            means[1] / means[0]
        );
    }
    args.finish();
}
