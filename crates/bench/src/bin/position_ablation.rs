//! Ablation of the §3.2.2 packet-position law: the paper carries the
//! uniform-position case through §4, noting that the fixed-spot law with
//! θ = 1 (the last packet of every burst) is the worst case. This binary
//! quantifies the spread between the position assumptions.

use fpsping_bench::write_csv;
use fpsping_queue::{DEk1, ErlangMix, Position, PositionDelay, TotalDelay};

fn main() {
    let t = 0.040;
    let k = 9u32;
    println!("Position-law ablation — K = {k}, T = 40 ms, 99.999% stochastic quantile [ms]");
    println!();
    println!(
        "{:>6} | {:>10} {:>12} {:>12} {:>12}",
        "rho", "uniform", "spot θ=0.5", "spot θ=1.0", "first (θ→0)"
    );
    let mut csv = Vec::new();
    for &rho in &[0.2, 0.4, 0.6, 0.8] {
        let dek1 = DEk1::new(k, rho * t, t).unwrap();
        let beta = k as f64 / (rho * t);
        let q_for = |position: Position| -> f64 {
            let pos = PositionDelay::new(k, beta, position).unwrap();
            let td =
                TotalDelay::from_mixes(ErlangMix::unit(), dek1.to_mix(), pos.to_mix().unwrap());
            td.quantile(0.99999) * 1e3
        };
        let uniform = {
            let pos = PositionDelay::uniform(k, beta).unwrap();
            let td = TotalDelay::new(None, &dek1, &pos).unwrap();
            td.quantile(0.99999) * 1e3
        };
        let mid = q_for(Position::Spot(0.5));
        let last = q_for(Position::Spot(1.0));
        let first = q_for(Position::Spot(1e-6));
        println!("{rho:>6.2} | {uniform:>10.2} {mid:>12.2} {last:>12.2} {first:>12.2}");
        csv.push(format!("{rho},{uniform:.4},{mid:.4},{last:.4},{first:.4}"));
    }
    write_csv(
        "position_ablation.csv",
        "rho,uniform_ms,spot_half_ms,spot_last_ms,spot_first_ms",
        &csv,
    );
    println!();
    println!("θ = 1 (always last in the burst) upper-bounds the uniform case — the");
    println!("paper's remark that 'even in this worst case, the dominant pole of");
    println!("W(s) dominates this pole'. θ → 0 isolates the pure burst wait.");
}
