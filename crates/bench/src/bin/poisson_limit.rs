//! Demonstrates eq. (11) — the Poisson limit of superposed periodic
//! streams: as N grows with the load fixed, the N·D/D/1 tail estimates
//! converge to the M/D/1 expressions, and the simulated aggregation-node
//! wait approaches the M/D/1 prediction.

//!
//! Flags: `--reps R --jobs J --stream-quantiles` control the simulation
//! cross-check (replications, threads, probe memory).

use fpsping_bench::{ms_with_ci, write_csv, SimArgs};
use fpsping_dist::Deterministic;
use fpsping_queue::mg1::mdd1;
use fpsping_queue::nddd1::NDdd1;
use fpsping_sim::{NetworkConfig, SimEngine, SimTime};

fn main() {
    let args = SimArgs::from_env();
    let tau = 0.000_128; // 80 B on 5 Mbps
    let rho = 0.5;
    let w = 0.001; // 1 ms
    println!(
        "Poisson limit (eq. 11): P(W > {} ms) at fixed load ρ = {rho}",
        w * 1e3
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "N", "binom-sup", "chernoff", "M/D/1-LD", "M/D/1 exact"
    );
    let md1 = mdd1(rho / tau, tau).unwrap();
    let exact = md1.wait_tail_exact(w);
    let mut csv = Vec::new();
    for &n in &[8u64, 16, 32, 64, 128, 256] {
        let d = n as f64 * tau / rho;
        let q = NDdd1::new(n, d, tau).unwrap();
        let b = q.tail_binomial_sup(w);
        let c = q.tail_chernoff(w);
        let m = q.tail_mdd1_limit(w);
        println!("{n:>6} {b:>14.4e} {c:>14.4e} {m:>14.4e} {exact:>14.4e}");
        csv.push(format!("{n},{b:.6e},{c:.6e},{m:.6e},{exact:.6e}"));
    }
    write_csv(
        "poisson_limit.csv",
        "n,binomial_sup,chernoff,mdd1_ld,mdd1_exact",
        &csv,
    );

    // Simulation cross-check at one population size.
    println!();
    println!(
        "Simulated aggregation wait vs M/D/1 (N = 100 gamers, {} replication(s)):",
        args.reps
    );
    let n = 100usize;
    let t_ms = n as f64 * tau * 1e3 / rho;
    let engine = SimEngine::new(args.engine_config(0x90155));
    let rep = engine.run(|_| {
        let mut cfg =
            NetworkConfig::paper_scenario(n, Box::new(Deterministic::new(125.0)), t_ms, 0);
        cfg.duration = SimTime::from_secs(120.0);
        cfg
    });
    println!(
        "  sim mean wait  : {} | M/D/1 mean: {:.4} ms",
        ms_with_ci(rep.agg_wait.mean_s, rep.agg_wait.mean_ci95_s),
        md1.mean_wait() * 1e3
    );
    println!("  (the simulated N·D/D/1 wait sits below its Poisson limit at finite N,");
    println!("   and the per-user access links stagger arrivals further — eq. 11 is an");
    println!("   upper envelope approached from below)");
    args.finish();
}
