//! Ablation of the §3.3 quantile methods: full Erlang expansion (the
//! paper's choice), dominant pole, Chernoff bound (eq. 36), and
//! sum-of-quantiles — across load and K.

use fpsping::{RttModel, Scenario};
use fpsping_bench::write_csv;

fn main() {
    println!("Quantile-method ablation (99.999% stochastic quantile, ms)");
    println!(
        "{:>4} {:>6} | {:>10} {:>10} {:>10} {:>10} {:>6}",
        "K", "rho", "full", "dominant", "chernoff", "sum-of-q", "cond"
    );
    let mut csv = Vec::new();
    for &k in &[2u32, 9, 20] {
        for &rho in &[0.2, 0.4, 0.6, 0.8] {
            let s = Scenario::paper_default()
                .with_erlang_order(k)
                .with_load(rho);
            let m = RttModel::build(&s).expect("stable");
            let p = 0.99999;
            let full = m.total().quantile(p) * 1e3;
            let dom = m.total().quantile_dominant_pole(p) * 1e3;
            let chern = m.total().quantile_chernoff(p) * 1e3;
            let soq = m.total().quantile_sum_of_quantiles(p) * 1e3;
            let cond = m.total().expansion_well_conditioned();
            println!(
                "{k:>4} {rho:>6.2} | {full:>10.2} {dom:>10.2} {chern:>10.2} {soq:>10.2} {:>6}",
                if cond { "ok" } else { "num" }
            );
            csv.push(format!(
                "{k},{rho},{full:.4},{dom:.4},{chern:.4},{soq:.4},{cond}"
            ));
        }
    }
    write_csv(
        "quantile_methods_ablation.csv",
        "k,rho,full_ms,dominant_pole_ms,chernoff_ms,sum_of_quantiles_ms,expansion_well_conditioned",
        &csv,
    );
    println!();
    println!("'cond = num' rows fall back to numerical inversion of the unexpanded");
    println!("product — the regime where eq. (35)'s partial fractions cancel");
    println!("catastrophically (clustered poles at low load / high K). The");
    println!("dominant-pole column is only meaningful on well-conditioned rows.");
}
