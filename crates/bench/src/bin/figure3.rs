//! Reproduces **Figure 3**: 99.999 % RTT quantile vs downlink load for
//! P_S = 125 B, IAT = 60 ms and Erlang orders K = 2, 9, 20 — the strong
//! K-sensitivity that drives the paper's dimensioning conclusion.
//!
//! Also runs the robustness variants mentioned in §4 (P_S = 100 B and
//! 75 B), writing one CSV per packet size.

//!
//! Flags: `--jobs J` parallelizes the analytic sweep; `--reps R` (R > 1)
//! additionally cross-checks three loads against the packet-level
//! simulator with R replications and 95% CIs; `--stream-quantiles`
//! bounds the cross-check's probe memory.

use fpsping::{Engine, EngineConfig, Scenario};
use fpsping_bench::{ms_with_ci, write_csv, SimArgs};
use fpsping_dist::Deterministic;
use fpsping_sim::{BurstSizing, NetworkConfig, SimEngine, SimTime};

fn main() {
    let args = SimArgs::from_env();
    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    // One engine across all nine series: the D/E_K/1 solutions depend
    // only on (K, ρ_d), so the P_S = 100/75 B variants rebuild them from
    // the cache instead of re-solving.
    let engine = Engine::new(EngineConfig::with_jobs(args.jobs));
    for &ps in &[125.0, 100.0, 75.0] {
        println!("Figure 3 — P_S = {ps} B, IAT = 60 ms, 99.999% RTT quantile [ms]");
        println!("{:>8} {:>12} {:>12} {:>12}", "load", "K=2", "K=9", "K=20");
        let mut by_k = Vec::new();
        for &k in &[2u32, 9, 20] {
            let base = Scenario::paper_default()
                .with_tick_ms(60.0)
                .with_server_packet(ps)
                .with_erlang_order(k);
            by_k.push(engine.rtt_vs_load(&base, &loads));
        }
        let mut csv = Vec::new();
        for (i, &rho) in loads.iter().enumerate() {
            let fmt = |p: &fpsping::LoadPoint| match p.rtt_ms {
                Some(v) => format!("{v:>12.1}"),
                None => format!("{:>12}", "uplink-sat"),
            };
            println!(
                "{:>7.0}% {} {} {}",
                100.0 * rho,
                fmt(&by_k[0][i]),
                fmt(&by_k[1][i]),
                fmt(&by_k[2][i])
            );
            let val = |p: &fpsping::LoadPoint| {
                p.rtt_ms
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "".into())
            };
            csv.push(format!(
                "{rho:.2},{},{},{}",
                val(&by_k[0][i]),
                val(&by_k[1][i]),
                val(&by_k[2][i])
            ));
        }
        write_csv(
            &format!("figure3_rtt_vs_load_ps{}.csv", ps as u32),
            "load,rtt_k2_ms,rtt_k9_ms,rtt_k20_ms",
            &csv,
        );
        println!();
    }
    let stats = engine.cache_stats();
    println!(
        "engine: {} D/E_K/1 solves reused {} times, {} pole solves reused {} times",
        stats.dek_misses, stats.dek_hits, stats.pole_misses, stats.pole_hits
    );
    if args.reps > 1 {
        println!();
        println!(
            "Simulation cross-check (K = 9, P_S = 125 B, IAT = 60 ms, {} replications):",
            args.reps
        );
        for &rho in &[0.2, 0.5, 0.8] {
            let scenario = Scenario::paper_default()
                .with_tick_ms(60.0)
                .with_erlang_order(9)
                .with_load(rho);
            let n = scenario.gamer_count().round() as usize;
            let sim = SimEngine::new(args.engine_config(0xF1_63 ^ (rho * 100.0) as u64));
            let rep = sim.run(|_| {
                let mut cfg =
                    NetworkConfig::paper_scenario(n, Box::new(Deterministic::new(125.0)), 60.0, 0);
                cfg.burst_sizing = BurstSizing::ErlangBurst { k: 9 };
                cfg.duration = SimTime::from_secs(120.0);
                cfg.warmup = SimTime::from_secs(5.0);
                cfg
            });
            let p999 = rep
                .ping_rtt
                .quantiles
                .iter()
                .find(|q| (q.p - 0.999).abs() < 1e-9)
                .expect("standard level");
            println!(
                "  ρ_d = {rho:.1}, N = {n:>3}: sim mean ping {}, p99.9 {}",
                ms_with_ci(rep.ping_rtt.mean_s, rep.ping_rtt.mean_ci95_s),
                ms_with_ci(p999.value_s, p999.ci95_s)
            );
        }
        println!("  (finite-run sim tails sit below the analytic 99.999% asymptote;");
        println!("   the K-ordering and load blow-up must match the table above)");
    }
    println!("Shape checks vs the paper:");
    println!("  • linear in load at low load (position delay ∝ ρ·T),");
    println!("  • blow-up toward ρ_d → 1,");
    println!("  • K = 2 ≫ K = 9 ≫ K = 20 at every load,");
    println!("  • behaviour robust across P_S = 125/100/75 B (uplink saturates");
    println!("    first for 75 B once ρ_d > 0.9375).");
    args.finish();
}
