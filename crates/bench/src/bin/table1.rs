//! Reproduces **Table 1**: Counter-Strike traffic characteristics (mean,
//! CoV) and Färber's fitted approximations.
//!
//! Method: sample each fitted model (Ext(120,36), Ext(55,6), Ext(80,5.7),
//! Det(40)), re-estimate mean and CoV, and print them beside the paper's
//! measured values. The fits were least-squares on the pdf — not moment
//! fits — so fitted moments differ somewhat from the measured ones; the
//! table shows how far.

use fpsping_bench::write_csv;
use fpsping_num::stats::{cov, mean};
use fpsping_traffic::games::{counter_strike, counter_strike_measured as meas};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let g = counter_strike();
    let mut rng = StdRng::seed_from_u64(0x7AB1E1);
    let n = 400_000;

    let rows = [
        (
            "server packet size [B]",
            g.server.packet_size.sample_n(&mut rng, n),
            meas::SERVER_PACKET,
            "Ext(120, 36)",
        ),
        (
            "burst inter-arrival [ms]",
            g.server.burst_inter_arrival_ms.sample_n(&mut rng, n),
            meas::BURST_IAT,
            "Ext(55, 6)",
        ),
        (
            "client packet size [B]",
            g.client.packet_size.sample_n(&mut rng, n),
            meas::CLIENT_PACKET,
            "Ext(80, 5.7)",
        ),
        (
            "client inter-arrival [ms]",
            g.client.inter_arrival_ms.sample_n(&mut rng, n),
            meas::CLIENT_IAT,
            "Det(40)",
        ),
    ];

    println!("Table 1 — Counter-Strike traffic characteristics (Färber)");
    println!(
        "{:<26} {:>12} {:>8} | {:>10} {:>8} | model",
        "quantity", "paper mean", "CoV", "model mean", "CoV"
    );
    let mut csv = Vec::new();
    for (name, sample, (pm, pc), model) in rows {
        let (m, c) = (mean(&sample), cov(&sample));
        println!("{name:<26} {pm:>12.1} {pc:>8.2} | {m:>10.1} {c:>8.3} | {model}");
        csv.push(format!("{name},{pm},{pc},{m:.3},{c:.4},{model}"));
    }
    write_csv(
        "table1_counter_strike.csv",
        "quantity,paper_mean,paper_cov,model_mean,model_cov,model",
        &csv,
    );
}
