//! Reproduces **Table 3**: the Unreal Tournament 2003 LAN-party
//! statistics, recomputed by running the §2.2 analysis pipeline (burst
//! detection + mean/CoV estimation) on the synthetic trace that
//! substitutes for the proprietary capture.

use fpsping_bench::write_csv;
use fpsping_traffic::{LanPartyConfig, TraceStats};

fn main() {
    let lan = LanPartyConfig::default().generate(0x7AB1E3);
    let st = TraceStats::compute(&lan.trace, 5.0);

    println!("Table 3 — Unreal Tournament 2003 LAN trace statistics");
    println!(
        "(synthetic trace, 12 players, 6 minutes, {} packets)",
        lan.trace.len()
    );
    println!();
    println!(
        "{:<28} {:>10} {:>8} | {:>8} {:>6}",
        "quantity", "measured", "CoV", "paper", "CoV"
    );
    let rows = [
        ("server→client packet [B]", st.server_packet, (154.0, 0.28)),
        ("burst inter-arrival [ms]", st.burst_iat, (47.0, 0.07)),
        ("burst size [B]", st.burst_size, (1852.0, 0.19)),
        ("client→server packet [B]", st.client_packet, (73.0, 0.06)),
        ("client inter-arrival [ms]", st.client_iat, (30.0, 0.65)),
    ];
    let mut csv = Vec::new();
    for (name, (m, c), (pm, pc)) in rows {
        println!("{name:<28} {m:>10.1} {c:>8.3} | {pm:>8} {pc:>6}");
        csv.push(format!("{name},{m:.3},{c:.4},{pm},{pc}"));
    }
    println!();
    println!(
        "§2.2 anomalies: {:.2}% bursts short one packet (paper ~0.5%); {} delayed bursts (paper 6); within-burst size CoV {:.2}–{:.2} (paper 0.05–0.11; inconsistent with its own packet/burst CoV pair — see DESIGN.md)",
        100.0 * st.short_burst_fraction,
        lan.delayed_bursts,
        st.within_burst_cov_range.0,
        st.within_burst_cov_range.1,
    );
    write_csv(
        "table3_unreal_tournament.csv",
        "quantity,measured_mean,measured_cov,paper_mean,paper_cov",
        &csv,
    );
}
