//! Validation sweep (beyond the paper): the analytic ping model against
//! the packet-level simulator across loads and Erlang orders. The paper
//! had no public testbed; this is the reproduction's ground truth.

use fpsping::{RttModel, Scenario};
use fpsping_bench::write_csv;
use fpsping_dist::Deterministic;
use fpsping_queue::PositionDelay;
use fpsping_sim::{BurstSizing, NetworkConfig, SimTime};

fn main() {
    let t_ms = 40.0;
    println!("Model vs simulation: downstream delay (tick → client arrival)");
    println!(
        "{:>4} {:>6} {:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
        "K", "rho", "N", "mean[ms]", "sim", "p99[ms]", "sim", "p99.9[ms]", "sim"
    );
    let mut csv = Vec::new();
    for &k in &[2u32, 9, 20] {
        for &rho in &[0.2, 0.5, 0.8] {
            let scenario = Scenario::paper_default()
                .with_load(rho)
                .with_erlang_order(k)
                .with_tick_ms(t_ms);
            let n = scenario.gamer_count().round() as usize;
            let model = RttModel::build(&scenario).expect("stable");
            let det_down = 8.0
                * scenario.server_packet_bytes
                * (1.0 / scenario.c_bps + 1.0 / scenario.r_down_bps);
            let beta = k as f64 / scenario.mean_burst_service_s();
            let pos = PositionDelay::uniform(k, beta).unwrap();
            // TotalDelay handles the low-load/high-K regime where the
            // eq.-(35) expansion is ill-conditioned (numeric fallback).
            let down = fpsping_queue::TotalDelay::new(None, model.downstream(), &pos).unwrap();
            let a_mean = (down.mean() + det_down) * 1e3;
            let a_p99 = (down.quantile(0.99) + det_down) * 1e3;
            let a_p999 = (down.quantile(0.999) + det_down) * 1e3;

            let mut cfg = NetworkConfig::paper_scenario(
                n,
                Box::new(Deterministic::new(scenario.server_packet_bytes)),
                t_ms,
                0x5EED ^ ((k as u64) << 8) ^ (rho * 100.0) as u64,
            );
            cfg.burst_sizing = BurstSizing::ErlangBurst { k };
            cfg.duration = SimTime::from_secs(240.0);
            cfg.warmup = SimTime::from_secs(5.0);
            let rep = cfg.run();
            let q = |p: f64| {
                rep.downstream_delay
                    .quantiles
                    .iter()
                    .find(|(x, _)| (*x - p).abs() < 1e-9)
                    .map(|(_, v)| v * 1e3)
                    .unwrap_or(f64::NAN)
            };
            let (s_mean, s_p99, s_p999) = (rep.downstream_delay.mean_s * 1e3, q(0.99), q(0.999));
            println!(
                "{k:>4} {rho:>6.2} {n:>6} | {a_mean:>11.2} {s_mean:>11.2} | {a_p99:>11.2} {s_p99:>11.2} | {a_p999:>11.2} {s_p999:>11.2}",
            );
            csv.push(format!(
                "{k},{rho},{n},{a_mean:.4},{s_mean:.4},{a_p99:.4},{s_p99:.4},{a_p999:.4},{s_p999:.4}"
            ));
        }
    }
    write_csv(
        "model_vs_sim_downstream.csv",
        "k,rho,n,analytic_mean_ms,sim_mean_ms,analytic_p99_ms,sim_p99_ms,analytic_p999_ms,sim_p999_ms",
        &csv,
    );
    println!();
    println!("Expected: means within a few %, p99/p99.9 within ~10–15%");
    println!("(finite 4-minute runs; deep tails are noisier).");
}
