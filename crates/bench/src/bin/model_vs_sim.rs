//! Validation sweep (beyond the paper): the analytic ping model against
//! the packet-level simulator across loads and Erlang orders. The paper
//! had no public testbed; this is the reproduction's ground truth.

//!
//! Flags: `--reps R` runs R independent replications per cell (the sim
//! columns become across-replication means and the CSV gains 95% CI
//! half-widths); `--jobs J` parallelizes them; `--stream-quantiles`
//! bounds probe memory for long runs.

use fpsping::{RttModel, Scenario};
use fpsping_bench::{write_csv, SimArgs};
use fpsping_dist::Deterministic;
use fpsping_queue::PositionDelay;
use fpsping_sim::{BurstSizing, NetworkConfig, SimEngine, SimTime};

fn main() {
    let args = SimArgs::from_env();
    let t_ms = 40.0;
    println!(
        "Model vs simulation: downstream delay (tick → client arrival), {} replication(s)/cell",
        args.reps
    );
    println!(
        "{:>4} {:>6} {:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
        "K", "rho", "N", "mean[ms]", "sim", "p99[ms]", "sim", "p99.9[ms]", "sim"
    );
    let mut csv = Vec::new();
    for &k in &[2u32, 9, 20] {
        for &rho in &[0.2, 0.5, 0.8] {
            let scenario = Scenario::paper_default()
                .with_load(rho)
                .with_erlang_order(k)
                .with_tick_ms(t_ms);
            let n = scenario.gamer_count().round() as usize;
            let model = RttModel::build(&scenario).expect("stable");
            let det_down = 8.0
                * scenario.server_packet_bytes
                * (1.0 / scenario.c_bps + 1.0 / scenario.r_down_bps);
            let beta = k as f64 / scenario.mean_burst_service_s();
            let pos = PositionDelay::uniform(k, beta).unwrap();
            // TotalDelay handles the low-load/high-K regime where the
            // eq.-(35) expansion is ill-conditioned (numeric fallback).
            let down = fpsping_queue::TotalDelay::new(None, model.downstream(), &pos).unwrap();
            let a_mean = (down.mean() + det_down) * 1e3;
            let a_p99 = (down.quantile(0.99) + det_down) * 1e3;
            let a_p999 = (down.quantile(0.999) + det_down) * 1e3;

            let master = 0x5EED ^ ((k as u64) << 8) ^ (rho * 100.0) as u64;
            let engine = SimEngine::new(args.engine_config(master));
            let rep = engine.run(|_| {
                let mut cfg = NetworkConfig::paper_scenario(
                    n,
                    Box::new(Deterministic::new(scenario.server_packet_bytes)),
                    t_ms,
                    0,
                );
                cfg.burst_sizing = BurstSizing::ErlangBurst { k };
                cfg.duration = SimTime::from_secs(240.0);
                cfg.warmup = SimTime::from_secs(5.0);
                cfg
            });
            let down = &rep.downstream_delay;
            let q = |p: f64| {
                down.quantiles
                    .iter()
                    .find(|e| (e.p - p).abs() < 1e-9)
                    .map(|e| (e.value_s * 1e3, e.ci95_s.map(|c| c * 1e3)))
                    .unwrap_or((f64::NAN, None))
            };
            let s_mean = down.mean_s * 1e3;
            let s_mean_ci = down.mean_ci95_s.map(|c| c * 1e3);
            let ((s_p99, s_p99_ci), (s_p999, s_p999_ci)) = (q(0.99), q(0.999));
            println!(
                "{k:>4} {rho:>6.2} {n:>6} | {a_mean:>11.2} {s_mean:>11.2} | {a_p99:>11.2} {s_p99:>11.2} | {a_p999:>11.2} {s_p999:>11.2}",
            );
            let ci = |c: Option<f64>| c.map(|v| format!("{v:.4}")).unwrap_or_default();
            csv.push(format!(
                "{k},{rho},{n},{a_mean:.4},{s_mean:.4},{},{a_p99:.4},{s_p99:.4},{},{a_p999:.4},{s_p999:.4},{}",
                ci(s_mean_ci),
                ci(s_p99_ci),
                ci(s_p999_ci)
            ));
        }
    }
    write_csv(
        "model_vs_sim_downstream.csv",
        "k,rho,n,analytic_mean_ms,sim_mean_ms,sim_mean_ci_ms,analytic_p99_ms,sim_p99_ms,sim_p99_ci_ms,analytic_p999_ms,sim_p999_ms,sim_p999_ci_ms",
        &csv,
    );
    println!();
    println!("Expected: means within a few %, p99/p99.9 within ~10–15%");
    println!("(finite 4-minute runs; deep tails are noisier).");
    args.finish();
}
