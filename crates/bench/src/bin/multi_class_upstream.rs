//! Validation of eq. (13): heterogeneous gamer classes on the upstream
//! bottleneck collapse into one M/G/1 whose service law is the λ-weighted
//! mixture.
//!
//! Two client populations (fast senders with small packets, slow senders
//! with large packets) share the aggregation link in the packet-level
//! simulator; the measured aggregation wait is compared with the
//! multi-class M/G/1 of `Mg1::multi_class`.

use fpsping_bench::write_csv;
use fpsping_dist::{Deterministic, Distribution};
use fpsping_queue::Mg1;
use fpsping_sim::{NetworkConfig, SimTime};

fn main() {
    let c_bps = 5_000_000.0;
    // Class A: 60 clients, 80 B every 40 ms. Class B: 20 clients, 200 B
    // every 25 ms.
    let (n_a, size_a, int_a) = (60usize, 80.0, 40.0);
    let (n_b, size_b, int_b) = (20usize, 200.0, 25.0);
    let tau = |bytes: f64| bytes * 8.0 / c_bps;
    let lambda_a = n_a as f64 / (int_a / 1e3);
    let lambda_b = n_b as f64 / (int_b / 1e3);
    let analytic = Mg1::multi_class(vec![
        (
            lambda_a,
            Box::new(Deterministic::new(tau(size_a))) as Box<dyn Distribution>,
        ),
        (lambda_b, Box::new(Deterministic::new(tau(size_b)))),
    ])
    .expect("stable multi-class");
    println!("Eq. (13) — two gamer classes on the upstream bottleneck (C = 5 Mbps)");
    println!("class A: {n_a} × {size_a} B / {int_a} ms; class B: {n_b} × {size_b} B / {int_b} ms");
    println!("aggregate load ρ_u = {:.3}", analytic.load());
    println!();

    // Simulate with per-client overrides; average several phase draws.
    let mut overrides: Vec<(f64, f64)> = Vec::new();
    overrides.extend(std::iter::repeat_n((int_a, size_a), n_a));
    overrides.extend(std::iter::repeat_n((int_b, size_b), n_b));
    let mut mean_acc = 0.0;
    let mut tails_acc: Vec<(f64, f64)> = Vec::new();
    let seeds = [1u64, 2, 3, 4, 5, 6];
    for &seed in &seeds {
        let mut cfg = NetworkConfig::paper_scenario(
            n_a + n_b,
            Box::new(Deterministic::new(125.0)),
            40.0,
            seed,
        );
        cfg.client_overrides = Some(overrides.clone());
        cfg.tail_thresholds_s = vec![0.0005, 0.001, 0.002];
        cfg.duration = SimTime::from_secs(90.0);
        let rep = cfg.run();
        mean_acc += rep.agg_wait.mean_s;
        if tails_acc.is_empty() {
            tails_acc = rep.agg_wait.tails.clone();
        } else {
            for (acc, t) in tails_acc.iter_mut().zip(&rep.agg_wait.tails) {
                acc.1 += t.1;
            }
        }
    }
    let sim_mean = mean_acc / seeds.len() as f64;
    println!(
        "mean aggregation wait : sim {:.4} ms | M/G/1 (eq. 13) {:.4} ms",
        sim_mean * 1e3,
        analytic.mean_wait() * 1e3
    );
    let mut csv = vec![format!(
        "mean,{:.6},{:.6}",
        sim_mean * 1e3,
        analytic.mean_wait() * 1e3
    )];
    for (thr, acc) in &tails_acc {
        let sim_p = acc / seeds.len() as f64;
        let a_p = analytic.wait_tail_exact(*thr);
        println!(
            "P(W > {:>4.1} ms)       : sim {:.4e} | M/G/1 exact {:.4e} | eq.-14 approx {:.4e}",
            thr * 1e3,
            sim_p,
            a_p,
            analytic.wait_tail_approx(*thr).unwrap()
        );
        csv.push(format!("tail_{},{sim_p:.6e},{a_p:.6e}", thr * 1e3));
    }
    write_csv("multi_class_upstream.csv", "quantity,sim,analytic", &csv);
    println!();
    println!("The mixture M/G/1 of eq. (13) tracks the heterogeneous simulation —");
    println!("'at any arrival one could flip a coin to decide from which class");
    println!("the arrival is.' (Finite-N periodic streams sit slightly below the");
    println!("Poisson-limit prediction, as in the single-class case.)");
}
