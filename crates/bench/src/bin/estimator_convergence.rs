//! Estimator convergence study (beyond the paper): how many pings does a
//! client need before its streaming p99 estimate matches the analytic
//! [`fpsping::RttModel`] quantile?
//!
//! Runs the §4 scenario at N = 100 (ρ_d = 0.5) with the per-player
//! estimator enabled, snapshots every player's P² p99 at the ping-count
//! checkpoints, and prints the median / p90 relative error against the
//! analytic 99% network-RTT quantile at each checkpoint. The first
//! checkpoint where the median error drops under 10% *and stays there*
//! is reported as "pings to trustworthy". CSV lands in
//! `results/estimator_convergence.csv`.

use fpsping_bench::estimator_study::{pings_to_trustworthy, run_study, StudyConfig};
use fpsping_bench::{write_csv, SimArgs};

/// Median relative error under which a client-side p99 estimate is
/// called trustworthy (see EXPERIMENTS.md for the measured curve).
const TRUST_THRESHOLD: f64 = 0.10;

fn main() {
    let args = SimArgs::from_env();
    let cfg = StudyConfig::default_study();
    let scenario = cfg.scenario();
    println!(
        "Estimator convergence: N={} ρ_d={:.2} T={} ms — {} s simulated (~{:.0} pings/player)",
        cfg.players,
        scenario.downlink_load(),
        scenario.t_ms,
        cfg.sim_seconds,
        cfg.sim_seconds * 1e3 / scenario.effective_client_interval_ms(),
    );
    let study = run_study(&cfg);
    let est = &study.summary;
    println!(
        "analytic network RTT: p99 {:.3} ms, p99.9 {:.3} ms",
        study.analytic_p99_ms, study.analytic_p999_ms
    );
    println!(
        "estimator: {} players, {} matches, {} losses, {} reorders, {} late, {} invalid",
        est.players_with_samples,
        est.counters.matches,
        est.counters.losses,
        est.counters.reorders,
        est.counters.late_replies,
        est.counters.invalid_samples
    );
    let rel = |measured: f64, analytic: f64| 100.0 * (measured - analytic) / analytic;
    if let (Some(p99), Some(p999)) = (&est.pooled_p99, &est.pooled_p999) {
        println!(
            "pooled tails at end of run: p99 {:.3} ms ({:+.2}%), p99.9 {:.3} ms ({:+.2}%)",
            p99.estimate(),
            rel(p99.estimate(), study.analytic_p99_ms),
            p999.estimate(),
            rel(p999.estimate(), study.analytic_p999_ms),
        );
    }

    println!(
        "\n{:>8} {:>8} {:>16} {:>16}",
        "pings", "players", "median |err| [%]", "p90 |err| [%]"
    );
    let mut rows = Vec::new();
    for e in &study.errors {
        println!(
            "{:>8} {:>8} {:>16.2} {:>16.2}",
            e.pings,
            e.players_reached,
            e.median_rel_err * 100.0,
            e.p90_rel_err * 100.0
        );
        rows.push(format!(
            "{},{},{:.6},{:.6}",
            e.pings, e.players_reached, e.median_rel_err, e.p90_rel_err
        ));
    }
    match pings_to_trustworthy(&study.errors, TRUST_THRESHOLD) {
        Some(p) => println!(
            "\npings to trustworthy (median |err| stays <= {:.0}%): {p}",
            TRUST_THRESHOLD * 100.0
        ),
        None => println!(
            "\nmedian |err| never settled under {:.0}% — extend the run",
            TRUST_THRESHOLD * 100.0
        ),
    }
    write_csv(
        "estimator_convergence.csv",
        "pings,players_reached,median_rel_err,p90_rel_err",
        &rows,
    );
    args.finish();
}
