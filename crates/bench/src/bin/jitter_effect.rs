//! Jitter and the §2.2 measurement caveat.
//!
//! The paper's UT2003 trace came from the jitter-injection experiments of
//! reference [23], and §2.2 warns: *"Because jitter was artificially
//! introduced in this experiment we have to be careful in interpreting
//! the inter-arrival time measurements."* This experiment quantifies the
//! caution: the same simulated gaming session is captured under
//! increasing downlink jitter and pushed through the burst-detection
//! pipeline — showing how measured burst statistics (and hence any
//! Erlang-order fit!) degrade even though the server's true behaviour
//! never changes.

//!
//! Flags: `--reps R` averages the measured statistics over R independent
//! sessions (the fitted K then comes from the averaged CoV); `--jobs J`
//! runs replications in parallel.

use fpsping_bench::{write_csv, SimArgs};
use fpsping_dist::fit::erlang_order_from_cov;
use fpsping_dist::{Distribution, Exponential, Uniform};
use fpsping_sim::{BurstSizing, NetworkConfig, SimEngine, SimTime};
use fpsping_traffic::TraceStats;

fn main() {
    let args = SimArgs::from_env();
    println!("Jitter vs measured traffic statistics (true: 12 players, T = 40 ms,");
    println!(
        "burst sizes Erlang K = 9 — every row measures the SAME server; {} session(s)/row)",
        args.reps
    );
    println!();
    println!(
        "{:<22} | {:>8} {:>10} {:>10} {:>11} {:>8}",
        "downlink jitter", "bursts", "IAT mean", "IAT CoV", "size CoV", "K(CoV)"
    );
    let engine = SimEngine::new(args.engine_config(0x11778));
    // Jitter laws are built inside the per-replication factory (each
    // replication needs its own boxed distribution), so the cases are
    // constructors, not values.
    type JitterMaker = fn() -> Option<Box<dyn Distribution>>;
    let cases: Vec<(&str, JitterMaker)> = vec![
        ("none", || None),
        ("U(0, 2 ms)", || Some(Box::new(Uniform::new(0.0, 2.0)))),
        ("U(0, 4 ms)", || Some(Box::new(Uniform::new(0.0, 4.0)))),
        ("Exp(mean 3 ms)", || {
            Some(Box::new(Exponential::with_mean(3.0)))
        }),
        ("Exp(mean 8 ms)", || {
            Some(Box::new(Exponential::with_mean(8.0)))
        }),
    ];
    let mut csv = Vec::new();
    for (name, make_jitter) in cases {
        let rep = engine.run(|_| {
            let mut cfg = NetworkConfig::paper_scenario(
                12,
                Box::new(fpsping_dist::Deterministic::new(150.0)),
                40.0,
                0,
            );
            cfg.burst_sizing = BurstSizing::ErlangBurst { k: 9 };
            cfg.capture_trace = true;
            cfg.downlink_jitter_ms = make_jitter();
            cfg.duration = SimTime::from_secs(240.0);
            cfg
        });
        // Average the measured statistics over the replications.
        let stats: Vec<TraceStats> = rep
            .per_rep
            .iter()
            .map(|r| TraceStats::compute(r.trace.as_ref().unwrap(), 5.0))
            .collect();
        let r = stats.len() as f64;
        let n_bursts = stats.iter().map(|s| s.n_bursts as f64).sum::<f64>() / r;
        let iat_mean = stats.iter().map(|s| s.burst_iat.0).sum::<f64>() / r;
        let iat_cov = stats.iter().map(|s| s.burst_iat.1).sum::<f64>() / r;
        let size_cov = stats.iter().map(|s| s.burst_size.1).sum::<f64>() / r;
        let k_fit = erlang_order_from_cov(size_cov.max(1e-6));
        println!(
            "{name:<22} | {n_bursts:>8.0} {iat_mean:>10.2} {iat_cov:>10.4} {size_cov:>11.4} {k_fit:>8}",
        );
        csv.push(format!(
            "{name},{n_bursts:.1},{iat_mean:.4},{iat_cov:.5},{size_cov:.5},{k_fit}"
        ));
    }
    write_csv(
        "jitter_effect.csv",
        "jitter,bursts,burst_iat_mean_ms,burst_iat_cov,burst_size_cov,erlang_k_from_cov",
        &csv,
    );
    println!();
    println!("True values at the server: IAT CoV = 0, burst-size CoV = 1/3 (K = 9).");
    println!("Bounded jitter inflates the IAT CoV; heavy unbounded jitter splits");
    println!("bursts at the detection gap, corrupting every downstream statistic —");
    println!("including the fitted Erlang order that drives the §4 dimensioning.");
    args.finish();
}
