//! Jitter and the §2.2 measurement caveat.
//!
//! The paper's UT2003 trace came from the jitter-injection experiments of
//! reference [23], and §2.2 warns: *"Because jitter was artificially
//! introduced in this experiment we have to be careful in interpreting
//! the inter-arrival time measurements."* This experiment quantifies the
//! caution: the same simulated gaming session is captured under
//! increasing downlink jitter and pushed through the burst-detection
//! pipeline — showing how measured burst statistics (and hence any
//! Erlang-order fit!) degrade even though the server's true behaviour
//! never changes.

use fpsping_bench::write_csv;
use fpsping_dist::fit::erlang_order_from_cov;
use fpsping_dist::{Distribution, Exponential, Uniform};
use fpsping_sim::{BurstSizing, NetworkConfig, SimTime};
use fpsping_traffic::TraceStats;

fn main() {
    println!("Jitter vs measured traffic statistics (true: 12 players, T = 40 ms,");
    println!("burst sizes Erlang K = 9 — every row measures the SAME server)");
    println!();
    println!(
        "{:<22} | {:>8} {:>10} {:>10} {:>11} {:>8}",
        "downlink jitter", "bursts", "IAT mean", "IAT CoV", "size CoV", "K(CoV)"
    );
    let run = |jitter: Option<Box<dyn Distribution>>| {
        let mut cfg = NetworkConfig::paper_scenario(
            12,
            Box::new(fpsping_dist::Deterministic::new(150.0)),
            40.0,
            0x11778,
        );
        cfg.burst_sizing = BurstSizing::ErlangBurst { k: 9 };
        cfg.capture_trace = true;
        cfg.downlink_jitter_ms = jitter;
        cfg.duration = SimTime::from_secs(240.0);
        let rep = cfg.run();
        TraceStats::compute(&rep.trace.unwrap(), 5.0)
    };
    let cases: Vec<(String, Option<Box<dyn Distribution>>)> = vec![
        ("none".into(), None),
        ("U(0, 2 ms)".into(), Some(Box::new(Uniform::new(0.0, 2.0)))),
        ("U(0, 4 ms)".into(), Some(Box::new(Uniform::new(0.0, 4.0)))),
        (
            "Exp(mean 3 ms)".into(),
            Some(Box::new(Exponential::with_mean(3.0))),
        ),
        (
            "Exp(mean 8 ms)".into(),
            Some(Box::new(Exponential::with_mean(8.0))),
        ),
    ];
    let mut csv = Vec::new();
    for (name, jitter) in cases {
        let st = run(jitter);
        let k_fit = erlang_order_from_cov(st.burst_size.1.max(1e-6));
        println!(
            "{name:<22} | {:>8} {:>10.2} {:>10.4} {:>11.4} {:>8}",
            st.n_bursts, st.burst_iat.0, st.burst_iat.1, st.burst_size.1, k_fit
        );
        csv.push(format!(
            "{name},{},{:.4},{:.5},{:.5},{k_fit}",
            st.n_bursts, st.burst_iat.0, st.burst_iat.1, st.burst_size.1
        ));
    }
    write_csv(
        "jitter_effect.csv",
        "jitter,bursts,burst_iat_mean_ms,burst_iat_cov,burst_size_cov,erlang_k_from_cov",
        &csv,
    );
    println!();
    println!("True values at the server: IAT CoV = 0, burst-size CoV = 1/3 (K = 9).");
    println!("Bounded jitter inflates the IAT CoV; heavy unbounded jitter splits");
    println!("bursts at the detection gap, corrupting every downstream statistic —");
    println!("including the fitted Erlang order that drives the §4 dimensioning.");
}
