//! The evaluation engine: parallel, cached, warm-started grid workloads.
//!
//! Every figure and dimensioning run in this repository is a grid of RTT
//! quantile evaluations — (load × K) surfaces, load sweeps per scenario
//! family, bisection probes along the load axis. Each cell repeats three
//! expensive solves:
//!
//! 1. the D/E_K/1 branch roots (Appendix C fixed point + Newton), which
//!    depend only on `(K, ρ_d)` — not on the time scale `T`;
//! 2. the upstream M/D/1 dominant pole (Brent), which depends only on
//!    `(λ, τ)` — shared by every K at the same load;
//! 3. the quantile bracket search, whose answer moves smoothly along any
//!    monotone axis of the grid.
//!
//! The [`Engine`] exploits all three: a [`SolverCache`] memoizes (1) and
//! (2) across cells, a scoped-thread [`par_map`] fans independent cells
//! across cores with deterministic result order, and each contiguous run
//! of cells warm-starts its quantile bracket from its neighbor. Cached
//! component rebuilds use bit-identical floating-point operations, and
//! bracket warm starts only accelerate finding the same canonical bracket
//! the cold search would use — neither changes a single output bit.
//!
//! On top of that, [`EngineConfig::batch`] (default on) adds *continuation
//! warm-starting of the root solves themselves*: along each contiguous
//! run of loads, a cell's K branch roots are Newton-polished from the
//! neighboring cell's converged roots ([`DekSolution::solve_warm`])
//! instead of re-running the Appendix C fixed point from `z = 0`. This is
//! the one knob that trades bit-parity for speed: warm-started roots
//! agree with cold ones to ~1e-15 relative but not to the last ulp, and
//! the Appendix A partial-fraction re-expansion (condition number up to
//! 1e6 by construction) amplifies those last-ulp differences into RTT
//! quantile deviations of order 1e-5 ms. The documented tolerance is
//! [`BATCH_RTT_TOLERANCE_MS`] = **1e-4 ms** (observed max ~8e-6 ms on
//! the paper surface; see `engine_parity`).
//! Continuation runs are fixed-size blocks of the load axis — independent
//! of `jobs` — so results never depend on the worker count, and setting
//! `batch: false` restores exact bit-parity with the serial seed path.

use crate::cache::SharedCache;
use crate::dimensioning::DimensioningResult;
use crate::rtt::RttModel;
use crate::scenario::Scenario;
use crate::sweep::LoadPoint;
use fpsping_dist::Deterministic;
use fpsping_obs::{Counter, Gauge};
use fpsping_queue::{DEk1, DekSolution, Mg1, PositionDelay, QueueError};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DEK_HITS: Counter = Counter::new("engine.cache.dek.hits");
static DEK_MISSES: Counter = Counter::new("engine.cache.dek.misses");
static DEK_ENTRIES: Gauge = Gauge::new("engine.cache.dek.entries");
static DEK_EVICTIONS: Counter = Counter::new("engine.cache.dek.evictions");
static POLE_HITS: Counter = Counter::new("engine.cache.pole.hits");
static POLE_MISSES: Counter = Counter::new("engine.cache.pole.misses");
static POLE_ENTRIES: Gauge = Gauge::new("engine.cache.pole.entries");
static POLE_EVICTIONS: Counter = Counter::new("engine.cache.pole.evictions");
static RTT_HITS: Counter = Counter::new("engine.cache.rtt.hits");
static RTT_MISSES: Counter = Counter::new("engine.cache.rtt.misses");
static RTT_ENTRIES: Gauge = Gauge::new("engine.cache.rtt.entries");
static RTT_EVICTIONS: Counter = Counter::new("engine.cache.rtt.evictions");

/// Documented accuracy bound for batch (continuation-warm-started) sweeps
/// versus the serial seed path, in milliseconds of RTT quantile.
///
/// Warm-started ζ roots agree with cold ones to ~1e-15 relative; the
/// partial-fraction re-expansion of eq. (35) (condition number allowed up
/// to 1e6) amplifies that to quantile deviations observed up to ~8e-6 ms
/// on the paper surface. This constant is the acceptance bound used by
/// the parity tests and the sweep benchmark — an order of magnitude of
/// headroom over the observed maximum, and six orders below the paper's
/// reporting precision.
pub const BATCH_RTT_TOLERANCE_MS: f64 = 1e-4;

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for grid fan-out (1 = run on the caller's thread).
    pub jobs: usize,
    /// Memoize D/E_K/1 solutions and M/D/1 dominant poles across cells.
    pub cache: bool,
    /// Seed each cell's quantile bracket from its neighbor along the
    /// grid's monotone axis.
    pub warm_start: bool,
    /// Continuation warm-starting of the D/E_K/1 root solves: along each
    /// contiguous run of loads, seed a cell's K roots from the previous
    /// cell's converged roots and polish with Newton only. ~1e-15
    /// relative agreement with cold roots, RTT quantiles within
    /// [`BATCH_RTT_TOLERANCE_MS`] of the serial path (documented
    /// tolerance) — set `false` for exact bit-parity.
    pub batch: bool,
    /// Entry budget for **each** of the three solver caches (D/E_K/1
    /// solutions, M/D/1 poles, whole-cell RTT memos); `0` (the default)
    /// leaves them unbounded, which is right for grid sweeps over a
    /// bounded key set. Long-running query services set a budget so an
    /// adversarial stream of fresh `(K, ρ)` cells cannot grow memory
    /// without limit; see [`crate::cache::SharedCache`] for the eviction
    /// policy and why eviction never changes a single output bit.
    pub cache_entries: usize,
}

impl EngineConfig {
    /// Everything off: single-threaded, solve every cell from scratch.
    /// This is exactly the seed code path, kept as the reference for
    /// parity tests and benchmarks.
    pub fn serial() -> Self {
        Self {
            jobs: 1,
            cache: false,
            warm_start: false,
            batch: false,
            cache_entries: 0,
        }
    }

    /// The default configuration with continuation warm-starts disabled:
    /// parallel, cached, bracket-warm-started — and bit-identical to the
    /// serial seed path, cell for cell.
    pub fn bit_exact() -> Self {
        Self {
            batch: false,
            ..Self::default()
        }
    }

    /// Default config with an explicit thread count (`0` = all cores).
    pub fn with_jobs(jobs: usize) -> Self {
        let jobs = if jobs == 0 { default_jobs() } else { jobs };
        Self {
            jobs,
            ..Self::default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            jobs: default_jobs(),
            cache: true,
            warm_start: true,
            batch: true,
            cache_entries: 0,
        }
    }
}

fn default_jobs() -> usize {
    match std::thread::available_parallelism() {
        Ok(n) => n.get(),
        Err(e) => {
            fpsping_obs::warn_once(
                "engine.jobs.autodetect",
                &format!("could not detect available parallelism ({e}); running single-threaded"),
            );
            1
        }
    }
}

/// Hit/miss counters of a [`SolverCache`] (monotone since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// D/E_K/1 solutions served from the cache.
    pub dek_hits: u64,
    /// D/E_K/1 solutions solved fresh.
    pub dek_misses: u64,
    /// M/D/1 dominant poles served from the cache.
    pub pole_hits: u64,
    /// M/D/1 dominant poles solved fresh.
    pub pole_misses: u64,
    /// Whole-cell RTT quantiles served from the cache.
    pub rtt_hits: u64,
    /// Whole-cell RTT quantiles computed fresh.
    pub rtt_misses: u64,
    /// D/E_K/1 entries evicted under the cache budget (0 if unbounded).
    pub dek_evictions: u64,
    /// M/D/1 pole entries evicted under the cache budget.
    pub pole_evictions: u64,
    /// Whole-cell RTT entries evicted under the cache budget.
    pub rtt_evictions: u64,
}

impl CacheStats {
    /// Total hits across all three caches.
    pub fn hits(&self) -> u64 {
        self.dek_hits + self.pole_hits + self.rtt_hits
    }

    /// Total misses across all three caches.
    pub fn misses(&self) -> u64 {
        self.dek_misses + self.pole_misses + self.rtt_misses
    }

    /// Total evictions across all three caches.
    pub fn evictions(&self) -> u64 {
        self.dek_evictions + self.pole_evictions + self.rtt_evictions
    }
}

/// Exact-bit identity of a scenario cell: every parameter that enters
/// the RTT computation, as raw bit patterns. Two scenarios share a key
/// iff the whole evaluation pipeline is mathematically identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ScenarioKey {
    gamers: (bool, u64),
    t_ms: u64,
    server_packet_bytes: u64,
    client_packet_bytes: u64,
    erlang_order: u32,
    r_up_bps: u64,
    r_down_bps: u64,
    c_bps: u64,
    client_interval_ms: Option<u64>,
    quantile: u64,
    include_upstream: bool,
    extra_fixed_ms: u64,
}

impl ScenarioKey {
    fn of(s: &Scenario) -> Self {
        Self {
            gamers: match s.gamers {
                crate::scenario::Gamers::Count(n) => (true, n as u64),
                crate::scenario::Gamers::DownlinkLoad(r) => (false, r.to_bits()),
            },
            t_ms: s.t_ms.to_bits(),
            server_packet_bytes: s.server_packet_bytes.to_bits(),
            client_packet_bytes: s.client_packet_bytes.to_bits(),
            erlang_order: s.erlang_order,
            r_up_bps: s.r_up_bps.to_bits(),
            r_down_bps: s.r_down_bps.to_bits(),
            c_bps: s.c_bps.to_bits(),
            client_interval_ms: s.client_interval_ms.map(f64::to_bits),
            quantile: s.quantile.to_bits(),
            include_upstream: s.include_upstream,
            extra_fixed_ms: s.extra_fixed_ms.to_bits(),
        }
    }
}

/// Thread-safe memo of the two root solves behind every RTT cell.
///
/// Keys are exact bit patterns of the defining parameters, so a hit can
/// only occur for a mathematically identical solve — there is no
/// tolerance-based key collision. Solutions are handed out as cheap
/// [`Arc`] clones. Each constituent cache is a [`SharedCache`]: sharded
/// (concurrent workers rarely contend) and optionally capacity-bounded
/// (see [`SolverCache::with_budget`]).
#[derive(Debug)]
pub struct SolverCache {
    dek: SharedCache<(u32, u64), Arc<DekSolution>>,
    pole: SharedCache<(u64, u64), f64>,
    rtt: SharedCache<ScenarioKey, f64>,
    dek_hits: AtomicU64,
    dek_misses: AtomicU64,
    pole_hits: AtomicU64,
    pole_misses: AtomicU64,
    rtt_hits: AtomicU64,
    rtt_misses: AtomicU64,
    /// How much of each mirrored counter (six hit/miss atomics above,
    /// then the three caches' eviction counts, same order as in
    /// [`SolverCache::flush_obs`]) has already been pushed into the
    /// global `engine.cache.*` registry counters. Deltas are flushed by
    /// [`SolverCache::flush_obs`] so the memo-hit fast path never touches
    /// the registry statics.
    obs_flushed: [AtomicU64; 9],
}

impl Default for SolverCache {
    fn default() -> Self {
        Self::with_budget(0)
    }
}

impl SolverCache {
    /// A cache bounding each of the three memo maps at `entries` entries
    /// (`0` = unbounded, the [`Default`]). The budget is per map, not
    /// shared: the three key spaces have very different sizes (poles are
    /// shared across every K at one load; RTT memos are one per grid
    /// cell), so a common pool would let the largest starve the others.
    pub fn with_budget(entries: usize) -> Self {
        Self {
            dek: SharedCache::new(crate::cache::DEFAULT_SHARDS, entries),
            pole: SharedCache::new(crate::cache::DEFAULT_SHARDS, entries),
            rtt: SharedCache::new(crate::cache::DEFAULT_SHARDS, entries),
            dek_hits: AtomicU64::new(0),
            dek_misses: AtomicU64::new(0),
            pole_hits: AtomicU64::new(0),
            pole_misses: AtomicU64::new(0),
            rtt_hits: AtomicU64::new(0),
            rtt_misses: AtomicU64::new(0),
            obs_flushed: Default::default(),
        }
    }

    /// The dimensionless D/E_K/1 solution for `(k, rho)`, cached by
    /// `(K, ρ bits)`.
    pub fn dek_solution(&self, k: u32, rho: f64) -> Result<Arc<DekSolution>, QueueError> {
        let key = (k, rho.to_bits());
        if let Some(sol) = self.dek.get(&key) {
            self.dek_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(sol);
        }
        self.dek_misses.fetch_add(1, Ordering::Relaxed);
        let sol = Arc::new(DekSolution::solve(k, rho)?);
        // A racing thread may have inserted meanwhile; both solved the
        // same roots, so either value is fine (first insert wins).
        Ok(self.dek.get_or_insert(key, sol))
    }

    /// Like [`SolverCache::dek_solution`], but on a miss the solve is
    /// continuation warm-started from `seed` — a solution for the same
    /// Erlang order at a neighboring load — via
    /// [`DekSolution::solve_warm`] (which falls back to the cold path when
    /// the seed is absent, mismatched, or fails validation).
    ///
    /// Warm-solved entries are within ~1e-15 relative of their cold
    /// counterparts, not bit-identical; callers that need the exact
    /// serial bits use [`SolverCache::dek_solution`]. If two threads race
    /// the same key with different seeds, the first insert wins — the
    /// engine's sweep sharding gives each worker a disjoint set of keys,
    /// so within one sweep the cache content is deterministic.
    pub fn dek_solution_warm(
        &self,
        k: u32,
        rho: f64,
        seed: Option<&Arc<DekSolution>>,
    ) -> Result<Arc<DekSolution>, QueueError> {
        let key = (k, rho.to_bits());
        if let Some(sol) = self.dek.get(&key) {
            self.dek_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(sol);
        }
        self.dek_misses.fetch_add(1, Ordering::Relaxed);
        let sol = Arc::new(DekSolution::solve_warm(k, rho, seed.map(Arc::as_ref))?);
        Ok(self.dek.get_or_insert(key, sol))
    }

    /// The M/D/1 dominant pole γ for arrival rate `lambda` and packet
    /// serialization time `tau`, cached by `(λ bits, τ bits)`.
    pub fn mdd1_pole(&self, lambda: f64, tau: f64) -> Result<f64, QueueError> {
        let key = (lambda.to_bits(), tau.to_bits());
        if let Some(gamma) = self.pole.get(&key) {
            self.pole_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(gamma);
        }
        self.pole_misses.fetch_add(1, Ordering::Relaxed);
        let q = Mg1::new(lambda, Box::new(Deterministic::new(tau)))?;
        let gamma = q.dominant_pole()?;
        Ok(self.pole.get_or_insert(key, gamma))
    }

    /// Mirrors the internal hit/miss totals into the global
    /// `engine.cache.*` observability counters, adding only the delta
    /// since the previous flush. Called at the end of the public engine
    /// entry points (and on drop), which keeps the per-cell fast paths
    /// down to the one internal `fetch_add` they always had. Safe to call
    /// concurrently: the swap telescopes, so every increment is mirrored
    /// exactly once.
    pub fn flush_obs(&self) {
        let totals: [(u64, &'static Counter); 9] = [
            (self.dek_hits.load(Ordering::Relaxed), &DEK_HITS),
            (self.dek_misses.load(Ordering::Relaxed), &DEK_MISSES),
            (self.pole_hits.load(Ordering::Relaxed), &POLE_HITS),
            (self.pole_misses.load(Ordering::Relaxed), &POLE_MISSES),
            (self.rtt_hits.load(Ordering::Relaxed), &RTT_HITS),
            (self.rtt_misses.load(Ordering::Relaxed), &RTT_MISSES),
            (self.dek.evictions(), &DEK_EVICTIONS),
            (self.pole.evictions(), &POLE_EVICTIONS),
            (self.rtt.evictions(), &RTT_EVICTIONS),
        ];
        for (i, (t, counter)) in totals.into_iter().enumerate() {
            let f = self.obs_flushed[i].swap(t, Ordering::Relaxed);
            counter.add(t.saturating_sub(f));
        }
        // Occupancy gauges, moved off the insert path: `len()` sweeps
        // every shard lock, which is fine once per entry point but not
        // once per memoized solve.
        DEK_ENTRIES.set_max(self.dek.len() as u64);
        POLE_ENTRIES.set_max(self.pole.len() as u64);
        RTT_ENTRIES.set_max(self.rtt.len() as u64);
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            dek_hits: self.dek_hits.load(Ordering::Relaxed),
            dek_misses: self.dek_misses.load(Ordering::Relaxed),
            pole_hits: self.pole_hits.load(Ordering::Relaxed),
            pole_misses: self.pole_misses.load(Ordering::Relaxed),
            rtt_hits: self.rtt_hits.load(Ordering::Relaxed),
            rtt_misses: self.rtt_misses.load(Ordering::Relaxed),
            dek_evictions: self.dek.evictions(),
            pole_evictions: self.pole.evictions(),
            rtt_evictions: self.rtt.evictions(),
        }
    }
}

/// Mirrors a cache's counters into the registry when the enclosing scope
/// exits (every return path of an engine entry point, including `?`).
struct FlushOnDrop<'a>(&'a SolverCache);

impl Drop for FlushOnDrop<'_> {
    fn drop(&mut self) {
        self.0.flush_obs();
    }
}

/// Maps `f` over `items` on up to `jobs` scoped threads, preserving input
/// order in the result. Items are split into contiguous chunks (one per
/// worker), so ordering is deterministic by construction — no work
/// stealing, no result reshuffling. `jobs <= 1` (or a single item) runs
/// inline on the caller's thread.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(jobs);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        // lint:allow(unwrap): scope() joins every worker before we get here, and each worker writes its whole chunk
        .map(|r| r.expect("every chunk slot is written by its worker"))
        .collect()
}

/// Splits `0..len` into at most `parts` contiguous ranges of near-equal
/// size (used to hand warm-start runs to workers).
fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(parts.max(1));
    (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect()
}

/// Continuation block length along the load axis. Each block pays one
/// cold fixed-point solve and warm-starts the rest, so larger blocks
/// amortize better; 16 keeps the paper's 18-point grid at two blocks
/// (still parallelizable) while making the warm fraction ≥ 15/16 on
/// longer axes.
const CONTINUATION_BLOCK: usize = 16;

/// Splits `0..len` into fixed [`CONTINUATION_BLOCK`]-sized contiguous
/// runs. Unlike [`chunk_ranges`] this is *independent of the worker
/// count*: a run is both the unit of work handed to `par_map` and the
/// continuation chain along which D/E_K/1 roots warm-start, so tying it
/// to `jobs` would make sweep results depend on the machine's core count.
/// With fixed blocks, adjacent-ρ cells always land on the same shard and
/// a sweep's bits are a function of its inputs only.
fn continuation_runs(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    (0..len)
        .step_by(CONTINUATION_BLOCK)
        .map(|start| start..(start + CONTINUATION_BLOCK).min(len))
        .collect()
}

/// The parallel cached evaluation engine — see the module docs.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    cache: SolverCache,
}

impl Engine {
    /// An engine with the given configuration (the cache honors
    /// [`EngineConfig::cache_entries`]).
    pub fn new(config: EngineConfig) -> Self {
        let cache = SolverCache::with_budget(config.cache_entries);
        Self { config, cache }
    }

    /// The reference engine: single-threaded, uncached, cold-bracketed —
    /// byte-for-byte the seed evaluation path.
    pub fn serial() -> Self {
        Self::new(EngineConfig::serial())
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Builds the RTT model for one scenario, sourcing the D/E_K/1
    /// solution and the upstream pole from the cache when enabled. The
    /// result is bit-identical to [`RttModel::build`] — this entry point
    /// never continuation-warm-starts the root solve (that happens only
    /// inside sweep runs, where a neighboring solution exists).
    pub fn build_model(&self, scenario: &Scenario) -> Result<RttModel, QueueError> {
        if !self.config.cache {
            return RttModel::build(scenario);
        }
        // Cold path (a model assembly dwarfs the flush), and the only
        // cache-touching entry point single-cell callers go through.
        let _flush = FlushOnDrop(&self.cache);
        self.assemble(scenario, None).map(|(model, _)| model)
    }

    /// Model assembly with an optional continuation seed: the D/E_K/1
    /// roots warm-start from `seed` (the previous cell of the sweep run)
    /// when batch mode is on. Returns the model together with the
    /// solution it used, so sweep runs can chain it into the next cell.
    /// With `seed: None` (or `batch: false`) the solve is cold and the
    /// model is bit-identical to [`RttModel::build`].
    fn assemble(
        &self,
        scenario: &Scenario,
        seed: Option<&Arc<DekSolution>>,
    ) -> Result<(RttModel, Arc<DekSolution>), QueueError> {
        scenario.validate()?;
        let t_s = scenario.t_ms / 1e3;
        let mean_service = scenario.mean_burst_service_s();
        // Same guards as DEk1::new so infeasible cells error identically.
        if !(mean_service.is_finite() && mean_service > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "mean_service",
                value: mean_service,
            });
        }
        let rho = mean_service / t_s;
        let k = scenario.erlang_order;
        let seed = if self.config.batch { seed } else { None };
        let solution = if self.config.cache {
            match seed {
                Some(_) => self.cache.dek_solution_warm(k, rho, seed)?,
                None => self.cache.dek_solution(k, rho)?,
            }
        } else {
            Arc::new(match seed {
                Some(s) => DekSolution::solve_warm(k, rho, Some(s.as_ref()))?,
                None => DekSolution::solve(k, rho)?,
            })
        };
        let downstream = DEk1::from_solution(&solution, mean_service, t_s)?;
        let beta = scenario.erlang_order as f64 / mean_service;
        let position = PositionDelay::uniform(scenario.erlang_order, beta)?;
        let upstream = if scenario.include_upstream {
            let lambda = scenario.gamer_count() / (scenario.effective_client_interval_ms() / 1e3);
            let tau = 8.0 * scenario.client_packet_bytes / scenario.c_bps;
            let gamma = if self.config.cache {
                self.cache.mdd1_pole(lambda, tau)?
            } else {
                let q = Mg1::new(lambda, Box::new(Deterministic::new(tau)))?;
                q.dominant_pole()?
            };
            Some(Mg1::with_dominant_pole(
                lambda,
                Box::new(Deterministic::new(tau)),
                gamma,
            )?)
        } else {
            None
        };
        let model = if self.config.batch {
            RttModel::from_parts_batch(scenario.clone(), downstream, position, upstream)?
        } else {
            RttModel::from_parts(scenario.clone(), downstream, position, upstream)?
        };
        Ok((model, solution))
    }

    /// The cell quantile through the regime-appropriate root-finder:
    /// the tolerance-relaxed fast path in batch mode, the bit-exact
    /// bracketed path otherwise.
    fn quantile_ms(&self, m: &RttModel, hint: Option<f64>) -> f64 {
        if self.config.batch {
            m.rtt_quantile_ms_fast(hint)
        } else {
            m.rtt_quantile_ms_with_hint(hint)
        }
    }

    /// One cell: the RTT quantile (ms), warm-started from `hint` when the
    /// engine is configured for it. `None` for infeasible scenarios.
    ///
    /// A cell already evaluated by this engine is served from the
    /// whole-cell memo without re-assembling the model or re-inverting
    /// the quantile — the exact stored bits come back, so repeated grids
    /// (the common shape of bisection paths and re-plotted figures) cost
    /// a hash lookup per cell.
    /// `chain` is the continuation state of the enclosing sweep run: the
    /// D/E_K/1 solution of the nearest previously solved cell, used to
    /// warm-start this cell's roots (batch mode only) and replaced by
    /// this cell's solution on success. Memo hits leave it untouched —
    /// the next miss then seeds from a slightly more distant neighbor,
    /// which the warm solver's validation gates absorb.
    fn cell(
        &self,
        scenario: &Scenario,
        hint: Option<f64>,
        chain: &mut Option<Arc<DekSolution>>,
    ) -> Option<f64> {
        let hint = if self.config.warm_start { hint } else { None };
        if !self.config.batch {
            *chain = None;
        }
        if !self.config.cache {
            if self.config.batch {
                return self
                    .assemble(scenario, chain.as_ref())
                    .ok()
                    .map(|(m, sol)| {
                        *chain = Some(sol);
                        self.quantile_ms(&m, hint)
                    });
            }
            return self
                .build_model(scenario)
                .ok()
                .map(|m| self.quantile_ms(&m, hint));
        }
        let key = ScenarioKey::of(scenario);
        if let Some(v) = self.cache.rtt.get(&key) {
            self.cache.rtt_hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        let v = match self.assemble(scenario, chain.as_ref()) {
            Ok((m, sol)) => {
                if self.config.batch {
                    *chain = Some(sol);
                }
                Some(self.quantile_ms(&m, hint))
            }
            Err(_) => None,
        };
        if let Some(v) = v {
            self.cache.rtt_misses.fetch_add(1, Ordering::Relaxed);
            self.cache.rtt.get_or_insert(key, v);
        }
        v
    }

    /// How a sweep's load axis is cut into contiguous runs. Batch mode
    /// uses fixed-size continuation blocks (worker-count independent, so
    /// warm-started results are a function of the grid alone); otherwise
    /// one run per worker, as the bit-exact configurations always did.
    fn sweep_runs(&self, len: usize, parts: usize) -> Vec<Range<usize>> {
        if self.config.batch {
            continuation_runs(len)
        } else {
            chunk_ranges(len, parts)
        }
    }

    /// Engine-powered [`crate::sweep::rtt_vs_load`]: the load axis is cut
    /// into contiguous runs; each run warm-starts its quantile brackets
    /// *and* (batch mode) its D/E_K/1 root solves along its cells. Equal
    /// to the serial function cell for cell with `batch: false`; within
    /// the documented [`BATCH_RTT_TOLERANCE_MS`] tolerance otherwise.
    pub fn rtt_vs_load(&self, base: &Scenario, loads: &[f64]) -> Vec<LoadPoint> {
        let _span = fpsping_obs::span("engine.rtt_vs_load");
        let _flush = FlushOnDrop(&self.cache);
        let runs = self.sweep_runs(loads.len(), self.config.jobs);
        par_map(self.config.jobs, &runs, |run| {
            let mut hint = None;
            let mut chain = None;
            run.clone()
                .map(|i| {
                    let rho = loads[i];
                    let s = base.clone().with_load(rho);
                    let rtt_ms = self.cell(&s, hint, &mut chain);
                    hint = rtt_ms.or(hint);
                    LoadPoint {
                        rho_d: rho,
                        rho_u: s.uplink_load(),
                        n_gamers: s.gamer_count(),
                        rtt_ms,
                    }
                })
                .collect::<Vec<_>>()
        })
        .concat()
    }

    /// Evaluates an arbitrary batch of scenarios, returning one RTT
    /// quantile (ms) per input in input order (`None` = infeasible).
    ///
    /// This is the serving entry point: a read burst of independent
    /// queries coalesces into one engine pass. Internally the batch is
    /// *sorted* by `(K, T, ρ_d)` so that cells sharing an Erlang order
    /// run consecutively in load order — the exact shape the sweep
    /// machinery exploits: quantile brackets warm-start from the
    /// neighboring cell, and (batch mode) the D/E_K/1 root solves
    /// continuation-chain along each run ([`DekSolution::solve_warm`]
    /// falls back cold whenever a chain crosses a K boundary). Results
    /// are scattered back to input order, so callers never see the
    /// permutation. Values match [`Engine::build_model`] +
    /// `rtt_quantile_ms` bit for bit under a bit-exact config, and stay
    /// within [`BATCH_RTT_TOLERANCE_MS`] under the default batch config.
    pub fn rtt_batch(&self, scenarios: &[Scenario]) -> Vec<Option<f64>> {
        let _span = fpsping_obs::span("engine.rtt_batch");
        let _flush = FlushOnDrop(&self.cache);
        let mut order: Vec<usize> = (0..scenarios.len()).collect();
        order.sort_by_key(|&i| {
            let s = &scenarios[i];
            (
                s.erlang_order,
                s.t_ms.to_bits(),
                s.downlink_load().to_bits(),
            )
        });
        let runs = self.sweep_runs(order.len(), self.config.jobs);
        let results = par_map(self.config.jobs, &runs, |run| {
            let mut hint = None;
            let mut chain = None;
            run.clone()
                .map(|oi| {
                    let s = &scenarios[order[oi]];
                    let v = self.cell(s, hint, &mut chain);
                    hint = v.or(hint);
                    v
                })
                .collect::<Vec<_>>()
        });
        let mut out = vec![None; scenarios.len()];
        for (run, values) in runs.iter().zip(results) {
            for (oi, v) in run.clone().zip(values) {
                out[order[oi]] = v;
            }
        }
        out
    }

    /// Engine-powered [`crate::sweep::rtt_surface`]: rows are loads,
    /// columns are Erlang orders. Work is fanned out as (K column ×
    /// load run) tasks; each task walks its loads in order, warm-starting
    /// the quantile bracket and (batch mode) the root solves from the
    /// previous cell — continuation never crosses K columns, since roots
    /// continue only within a fixed Erlang order. Equal to the serial
    /// function cell for cell with `batch: false`; within the documented
    /// documented [`BATCH_RTT_TOLERANCE_MS`] tolerance otherwise.
    pub fn rtt_surface(&self, base: &Scenario, ks: &[u32], loads: &[f64]) -> Vec<Vec<Option<f64>>> {
        let _span = fpsping_obs::span("engine.rtt_surface");
        let _flush = FlushOnDrop(&self.cache);
        // Split the load axis only as far as needed to keep all workers
        // busy across the K columns (batch mode: fixed continuation
        // blocks instead, so shard shape never depends on `jobs`).
        let load_runs = self.sweep_runs(loads.len(), self.config.jobs.div_ceil(ks.len().max(1)));
        let tasks: Vec<(usize, Range<usize>)> = (0..ks.len())
            .flat_map(|ki| load_runs.iter().map(move |r| (ki, r.clone())))
            .collect();
        let results = par_map(self.config.jobs, &tasks, |(ki, run)| {
            let k = ks[*ki];
            let mut hint = None;
            let mut chain = None;
            run.clone()
                .map(|li| {
                    let s = base.clone().with_load(loads[li]).with_erlang_order(k);
                    let v = self.cell(&s, hint, &mut chain);
                    hint = v.or(hint);
                    v
                })
                .collect::<Vec<_>>()
        });
        let mut surface = vec![vec![None; ks.len()]; loads.len()];
        for ((ki, run), values) in tasks.iter().zip(results) {
            for (li, v) in run.clone().zip(values) {
                surface[li][*ki] = v;
            }
        }
        surface
    }

    /// Engine-powered [`crate::dimensioning::max_load`]: the bisection
    /// probes share this engine's cache and warm-start each probe's
    /// quantile bracket from the previous one. Values equal the serial
    /// path exactly.
    ///
    /// Unlike the seed implementation, pathological terminations are
    /// explicit errors instead of silent NaNs: exhausting the stability
    /// search or converging onto an infeasible load both report
    /// [`QueueError::SolveFailure`].
    pub fn max_load(
        &self,
        base: &Scenario,
        rtt_budget_ms: f64,
    ) -> Result<DimensioningResult, QueueError> {
        if !(rtt_budget_ms.is_finite() && rtt_budget_ms > 0.0) {
            return Err(QueueError::InvalidParameter {
                name: "rtt_budget_ms",
                value: rtt_budget_ms,
            });
        }
        let _span = fpsping_obs::span("engine.max_load");
        let _flush = FlushOnDrop(&self.cache);
        let mut last_rtt = None;
        let mut rtt_at = |rho: f64| -> Result<Option<f64>, QueueError> {
            let s = base.clone().with_load(rho);
            if self.config.cache {
                let key = ScenarioKey::of(&s);
                if let Some(v) = self.cache.rtt.get(&key) {
                    self.cache.rtt_hits.fetch_add(1, Ordering::Relaxed);
                    last_rtt = Some(v);
                    return Ok(Some(v));
                }
            }
            match self.build_model(&s) {
                Ok(m) => {
                    let hint = if self.config.warm_start {
                        last_rtt
                    } else {
                        None
                    };
                    let v = m.rtt_quantile_ms_with_hint(hint);
                    last_rtt = Some(v);
                    if self.config.cache {
                        self.cache.rtt_misses.fetch_add(1, Ordering::Relaxed);
                        self.cache.rtt.get_or_insert(ScenarioKey::of(&s), v);
                    }
                    Ok(Some(v))
                }
                Err(QueueError::UnstableLoad { .. }) => Ok(None),
                Err(e) => Err(e),
            }
        };
        let lo_probe = 1e-4;
        match rtt_at(lo_probe)? {
            Some(r) if r <= rtt_budget_ms => {}
            _ => {
                // Even a vanishing load breaks the budget (e.g. a budget
                // below the deterministic floor): the zero result, with
                // no realized RTT to report.
                return Ok(DimensioningResult {
                    rho_max: 0.0,
                    n_max: 0,
                    rtt_at_max_ms: None,
                });
            }
        }
        // Find the largest feasible probe (the uplink may saturate before
        // the downlink for P_S < P_C).
        let mut lo = lo_probe;
        let mut hi = 0.999;
        let mut hi_val = rtt_at(hi)?;
        let mut guard = 0;
        while hi_val.is_none() && guard < 200 {
            hi = lo + 0.95 * (hi - lo);
            hi_val = rtt_at(hi)?;
            guard += 1;
        }
        let Some(hi_rtt) = hi_val else {
            // 200 shrinks of the probe never produced a stable scenario
            // even though lo_probe is feasible — numerically impossible
            // for a monotone feasibility region; report it rather than
            // bisecting against an unusable bracket.
            return Err(QueueError::SolveFailure {
                what: "dimensioning: stability search exhausted without a feasible upper probe",
            });
        };
        if hi_rtt <= rtt_budget_ms {
            // Budget never binds below saturation.
            let s = base.clone().with_load(hi);
            return Ok(DimensioningResult {
                rho_max: hi,
                n_max: s.gamer_count().floor() as u32,
                rtt_at_max_ms: Some(hi_rtt),
            });
        }
        // Bisect on feasibility of the budget.
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            match rtt_at(mid)? {
                Some(r) if r <= rtt_budget_ms => lo = mid,
                _ => hi = mid,
            }
        }
        let s = base.clone().with_load(lo);
        let rtt = rtt_at(lo)?.ok_or(QueueError::SolveFailure {
            what: "dimensioning: bisection converged onto an infeasible load",
        })?;
        Ok(DimensioningResult {
            rho_max: lo,
            n_max: s.gamer_count().floor() as u32,
            rtt_at_max_ms: Some(rtt),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep;

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..103).collect();
        for jobs in [1usize, 2, 3, 7, 200] {
            let out = par_map(jobs, &items, |&x| x * x);
            assert_eq!(out.len(), items.len(), "jobs={jobs}");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as u64) * (i as u64), "jobs={jobs} index {i}");
            }
        }
        assert!(par_map(4, &Vec::<u64>::new(), |&x| x).is_empty());
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (len, parts) in [(18usize, 4usize), (18, 1), (18, 40), (1, 3), (0, 2)] {
            let runs = chunk_ranges(len, parts);
            let flattened: Vec<usize> = runs.iter().flat_map(|r| r.clone()).collect();
            assert_eq!(
                flattened,
                (0..len).collect::<Vec<_>>(),
                "len={len} parts={parts}"
            );
        }
    }

    #[test]
    fn cached_model_equals_fresh_model() {
        let engine = Engine::new(EngineConfig::default());
        for &(k, rho) in &[(2u32, 0.15), (9, 0.4), (20, 0.85)] {
            let s = Scenario::paper_default()
                .with_load(rho)
                .with_erlang_order(k);
            // Twice through the engine (second pass hits the cache) and
            // once cold.
            let a = engine.build_model(&s).unwrap().rtt_quantile_ms();
            let b = engine.build_model(&s).unwrap().rtt_quantile_ms();
            let cold = RttModel::build(&s).unwrap().rtt_quantile_ms();
            assert_eq!(
                a.to_bits(),
                cold.to_bits(),
                "K={k} rho={rho} cached != cold"
            );
            assert_eq!(a.to_bits(), b.to_bits(), "K={k} rho={rho} re-read != first");
        }
        let stats = engine.cache_stats();
        assert!(stats.dek_hits >= 3, "second passes must hit: {stats:?}");
        assert!(stats.pole_hits >= 3, "second passes must hit: {stats:?}");
    }

    #[test]
    fn engine_sweep_matches_serial_sweep_bitwise() {
        // `bit_exact()` turns continuation off; everything else (cache,
        // bracket warm starts, threads) must still be bit-transparent.
        let base = Scenario::paper_default();
        let loads = sweep::paper_load_grid();
        let serial = sweep::rtt_vs_load(&base, &loads);
        for jobs in [1usize, 4] {
            let engine = Engine::new(EngineConfig {
                jobs,
                ..EngineConfig::bit_exact()
            });
            let fast = engine.rtt_vs_load(&base, &loads);
            assert_eq!(fast.len(), serial.len());
            for (f, s) in fast.iter().zip(&serial) {
                assert_eq!(
                    f.rtt_ms.map(f64::to_bits),
                    s.rtt_ms.map(f64::to_bits),
                    "rho={}",
                    s.rho_d
                );
            }
        }
    }

    #[test]
    fn batch_sweep_matches_serial_within_documented_tolerance() {
        // The default (batch) config trades bit-parity for the documented
        // BATCH_RTT_TOLERANCE_MS bound — and must actually warm-start
        // (more dek solves than continuation blocks would be a regression
        // the counters catch in the bench; here we check values only).
        let base = Scenario::paper_default();
        let loads = sweep::paper_load_grid();
        let serial = sweep::rtt_vs_load(&base, &loads);
        for jobs in [1usize, 4] {
            let engine = Engine::new(EngineConfig::with_jobs(jobs));
            let fast = engine.rtt_vs_load(&base, &loads);
            assert_eq!(fast.len(), serial.len());
            for (f, s) in fast.iter().zip(&serial) {
                let (f, s) = (f.rtt_ms.unwrap(), s.rtt_ms.unwrap());
                assert!(
                    (f - s).abs() <= BATCH_RTT_TOLERANCE_MS,
                    "jobs={jobs}: batch {f} vs serial {s}"
                );
            }
        }
    }

    #[test]
    fn batch_sweep_is_independent_of_worker_count() {
        // Continuation runs are fixed blocks of the load axis, so the
        // exact bits of a batch sweep must not depend on `jobs`.
        let base = Scenario::paper_default();
        let loads = sweep::paper_load_grid();
        let reference = Engine::new(EngineConfig::with_jobs(1)).rtt_vs_load(&base, &loads);
        for jobs in [2usize, 3, 8] {
            let other = Engine::new(EngineConfig::with_jobs(jobs)).rtt_vs_load(&base, &loads);
            for (a, b) in reference.iter().zip(&other) {
                assert_eq!(
                    a.rtt_ms.map(f64::to_bits),
                    b.rtt_ms.map(f64::to_bits),
                    "jobs={jobs} rho={}",
                    a.rho_d
                );
            }
        }
    }

    #[test]
    fn engine_surface_handles_infeasible_cells_like_serial() {
        // P_S = 75 < P_C: high loads saturate the uplink → None cells.
        let base = Scenario::paper_default().with_server_packet(75.0);
        let ks = [2u32, 9];
        let loads = [0.5, 0.9, 0.95];
        let serial = sweep::rtt_surface(&base, &ks, &loads);
        // Bit-exact config: cell-for-cell identity, including None cells.
        let engine = Engine::new(EngineConfig {
            jobs: 3,
            ..EngineConfig::bit_exact()
        });
        let fast = engine.rtt_surface(&base, &ks, &loads);
        assert_eq!(fast.len(), serial.len());
        for (fr, sr) in fast.iter().zip(&serial) {
            for (f, s) in fr.iter().zip(sr) {
                assert_eq!(f.map(f64::to_bits), s.map(f64::to_bits));
            }
        }
        assert!(fast[2][0].is_none(), "rho=0.95 saturates the P_S=75 uplink");
        assert!(fast[0][0].is_some());
        // Batch config: the same feasibility pattern (continuation must
        // not turn an infeasible cell feasible or vice versa), values
        // within the documented tolerance.
        let batch = Engine::new(EngineConfig::with_jobs(3)).rtt_surface(&base, &ks, &loads);
        for (br, sr) in batch.iter().zip(&serial) {
            for (b, s) in br.iter().zip(sr) {
                match (b, s) {
                    (Some(b), Some(s)) => {
                        assert!((b - s).abs() <= BATCH_RTT_TOLERANCE_MS, "{b} vs {s}")
                    }
                    (None, None) => {}
                    other => panic!("feasibility mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn engine_max_load_matches_paper_example() {
        let engine = Engine::new(EngineConfig::default());
        let r = engine.max_load(&Scenario::paper_default(), 50.0).unwrap();
        assert!((0.30..0.55).contains(&r.rho_max), "rho_max {}", r.rho_max);
        let rtt = r.rtt_at_max_ms.expect("feasible optimum reports its RTT");
        assert!(rtt <= 50.0 + 0.1);
    }

    #[test]
    fn engine_max_load_rejects_bad_budget() {
        let engine = Engine::serial();
        assert!(matches!(
            engine.max_load(&Scenario::paper_default(), 0.0),
            Err(QueueError::InvalidParameter { .. })
        ));
        assert!(matches!(
            engine.max_load(&Scenario::paper_default(), f64::NAN),
            Err(QueueError::InvalidParameter { .. })
        ));
    }
}
