//! Scenario description: the network and traffic parameters of §4.

use fpsping_queue::QueueError;

/// How the gamer population is specified: directly, or through the
/// downlink load it induces (the paper sweeps load and converts to `N`
/// via eq. 37).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gamers {
    /// An explicit number of simultaneously active gamers.
    Count(u32),
    /// The downlink load `ρ_d = 8·N·P_S/(T·C)`; `N` is derived (and may be
    /// fractional for analytic sweeps).
    DownlinkLoad(f64),
}

/// A complete evaluation scenario (defaults = the paper's §4 setting).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Gamer population (count or downlink load).
    pub gamers: Gamers,
    /// Server tick interval / client send interval `T` in ms (40 or 60 in
    /// the paper).
    pub t_ms: f64,
    /// Server per-gamer packet size `P_S` in bytes (75/100/125 in §4).
    pub server_packet_bytes: f64,
    /// Client packet size `P_C` in bytes (80 in §4).
    pub client_packet_bytes: f64,
    /// Erlang order `K` of the burst-size distribution (2/9/20 in §4).
    pub erlang_order: u32,
    /// Access uplink rate (bit/s) — 128 kbps in §4.
    pub r_up_bps: f64,
    /// Access downlink rate (bit/s) — 1024 kbps in §4.
    pub r_down_bps: f64,
    /// Aggregation (bottleneck) link rate (bit/s) — 5000 kbps in §4.
    pub c_bps: f64,
    /// Client send interval in ms when it differs from the server tick
    /// `T` (the paper's §4 assumes they are equal, but the measured games
    /// of §2 mostly disagree — e.g. UT2003 clients send every 30 ms
    /// against a 47 ms server tick). `None` means "equal to `t_ms`".
    pub client_interval_ms: Option<f64>,
    /// The RTT quantile to report — 0.99999 in the paper.
    pub quantile: f64,
    /// Include the upstream M/G/1 contribution (the paper notes it is
    /// negligible when `ρ_u ≪ ρ_d` but never drops it from the method).
    pub include_upstream: bool,
    /// Extra fixed delay (ms) for propagation + server processing, which
    /// the paper folds into the deterministic part (0 in §4's numbers).
    pub extra_fixed_ms: f64,
}

impl Scenario {
    /// The paper's §4 reference parameters: `P_S = 125 B`, `P_C = 80 B`,
    /// `T = 40 ms`, `K = 9`, `R_up = 128 kbps`, `R_down = 1024 kbps`,
    /// `C = 5000 kbps`, 99.999 % quantile, at 40 % downlink load.
    pub fn paper_default() -> Self {
        Self {
            gamers: Gamers::DownlinkLoad(0.40),
            t_ms: 40.0,
            server_packet_bytes: 125.0,
            client_packet_bytes: 80.0,
            erlang_order: 9,
            r_up_bps: 128_000.0,
            r_down_bps: 1_024_000.0,
            c_bps: 5_000_000.0,
            client_interval_ms: None,
            quantile: 0.99999,
            include_upstream: true,
            extra_fixed_ms: 0.0,
        }
    }

    /// Builder-style: set the downlink load.
    pub fn with_load(mut self, rho_d: f64) -> Self {
        self.gamers = Gamers::DownlinkLoad(rho_d);
        self
    }

    /// Builder-style: set the gamer count.
    pub fn with_gamers(mut self, n: u32) -> Self {
        self.gamers = Gamers::Count(n);
        self
    }

    /// Builder-style: set the Erlang order K.
    pub fn with_erlang_order(mut self, k: u32) -> Self {
        self.erlang_order = k;
        self
    }

    /// Builder-style: set the tick interval T (ms).
    pub fn with_tick_ms(mut self, t_ms: f64) -> Self {
        self.t_ms = t_ms;
        self
    }

    /// Builder-style: set the server packet size P_S (bytes).
    pub fn with_server_packet(mut self, bytes: f64) -> Self {
        self.server_packet_bytes = bytes;
        self
    }

    /// Builder-style: set a client send interval different from the
    /// server tick.
    pub fn with_client_interval_ms(mut self, t_c_ms: f64) -> Self {
        self.client_interval_ms = Some(t_c_ms);
        self
    }

    /// The effective client send interval (ms): `client_interval_ms` or
    /// the server tick.
    pub fn effective_client_interval_ms(&self) -> f64 {
        self.client_interval_ms.unwrap_or(self.t_ms)
    }

    /// Downlink load `ρ_d` (eq. 37). For `Gamers::Count` this is
    /// `8·N·P_S/(T·C)` with T in seconds.
    pub fn downlink_load(&self) -> f64 {
        match self.gamers {
            Gamers::DownlinkLoad(r) => r,
            Gamers::Count(n) => {
                8.0 * n as f64 * self.server_packet_bytes / (self.t_ms / 1e3 * self.c_bps)
            }
        }
    }

    /// The (possibly fractional) gamer count `N = ρ_d·T·C/(8·P_S)`.
    pub fn gamer_count(&self) -> f64 {
        match self.gamers {
            Gamers::Count(n) => n as f64,
            Gamers::DownlinkLoad(r) => {
                r * (self.t_ms / 1e3) * self.c_bps / (8.0 * self.server_packet_bytes)
            }
        }
    }

    /// Uplink load `ρ_u = 8·N·P_C/(T_c·C)`; equals `ρ_d·P_C/P_S` when the
    /// client interval matches the tick (the paper's §4 assumption).
    pub fn uplink_load(&self) -> f64 {
        8.0 * self.gamer_count() * self.client_packet_bytes
            / (self.effective_client_interval_ms() / 1e3 * self.c_bps)
    }

    /// Mean burst service time `b̄ = 8·N·P_S/C = ρ_d·T` (seconds).
    pub fn mean_burst_service_s(&self) -> f64 {
        self.downlink_load() * self.t_ms / 1e3
    }

    /// Deterministic (serialization) part of the RTT in seconds:
    /// client packet on the access uplink and on the bottleneck, server
    /// packet on the bottleneck and on the access downlink (§4), plus any
    /// configured fixed extra.
    pub fn deterministic_delay_s(&self) -> f64 {
        let up = 8.0 * self.client_packet_bytes * (1.0 / self.r_up_bps + 1.0 / self.c_bps);
        let down = 8.0 * self.server_packet_bytes * (1.0 / self.c_bps + 1.0 / self.r_down_bps);
        up + down + self.extra_fixed_ms / 1e3
    }

    /// Validates parameter sanity and stability of both directions.
    pub fn validate(&self) -> Result<(), QueueError> {
        for (name, v) in [
            ("t_ms", self.t_ms),
            ("server_packet_bytes", self.server_packet_bytes),
            ("client_packet_bytes", self.client_packet_bytes),
            ("r_up_bps", self.r_up_bps),
            ("r_down_bps", self.r_down_bps),
            ("c_bps", self.c_bps),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(QueueError::InvalidParameter { name, value: v });
            }
        }
        if self.erlang_order < 1 {
            return Err(QueueError::InvalidParameter {
                name: "erlang_order",
                value: self.erlang_order as f64,
            });
        }
        if !(self.quantile > 0.0 && self.quantile < 1.0) {
            return Err(QueueError::InvalidParameter {
                name: "quantile",
                value: self.quantile,
            });
        }
        let rho_d = self.downlink_load();
        if !(0.0 < rho_d && rho_d < 1.0) {
            return Err(QueueError::UnstableLoad { rho: rho_d });
        }
        let rho_u = self.uplink_load();
        if self.include_upstream && rho_u >= 1.0 {
            return Err(QueueError::UnstableLoad { rho: rho_u });
        }
        if let Some(tc) = self.client_interval_ms {
            if !(tc.is_finite() && tc > 0.0) {
                return Err(QueueError::InvalidParameter {
                    name: "client_interval_ms",
                    value: tc,
                });
            }
        }
        // Each access link must at least carry its own flow.
        let up_access = 8.0 * self.client_packet_bytes
            / (self.effective_client_interval_ms() / 1e3)
            / self.r_up_bps;
        if up_access >= 1.0 {
            return Err(QueueError::UnstableLoad { rho: up_access });
        }
        let down_access = 8.0 * self.server_packet_bytes / (self.t_ms / 1e3) / self.r_down_bps;
        if down_access >= 1.0 {
            return Err(QueueError::UnstableLoad { rho: down_access });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq37_round_trip() {
        // §4 example: ρ = 0.4, P_S = 125, T = 40 ms, C = 5 Mbps → N = 80.
        let s = Scenario::paper_default().with_load(0.40);
        assert!((s.gamer_count() - 80.0).abs() < 1e-9);
        let s2 = Scenario::paper_default().with_gamers(80);
        assert!((s2.downlink_load() - 0.40).abs() < 1e-12);
    }

    #[test]
    fn uplink_load_ratio() {
        // ρ_u = ρ_d·P_C/P_S = 0.4·80/125 = 0.256.
        let s = Scenario::paper_default().with_load(0.40);
        assert!((s.uplink_load() - 0.256).abs() < 1e-12);
    }

    #[test]
    fn ps75_saturates_uplink_before_downlink() {
        // §4: for P_S = 75 B a downlink load of 75/80 gives uplink load 1.
        let s = Scenario::paper_default()
            .with_server_packet(75.0)
            .with_load(75.0 / 80.0);
        assert!((s.uplink_load() - 1.0).abs() < 1e-12);
        assert!(s.validate().is_err());
        let ok = Scenario::paper_default()
            .with_server_packet(75.0)
            .with_load(0.9);
        assert!((ok.uplink_load() - 0.96).abs() < 1e-12);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn deterministic_delay_value() {
        // 80·8/128k + 80·8/5M + 125·8/5M + 125·8/1.024M
        // = 5 ms + 0.128 ms + 0.2 ms + 0.9766 ms ≈ 6.30 ms.
        let s = Scenario::paper_default();
        let d = s.deterministic_delay_s() * 1e3;
        assert!((d - 6.3046).abs() < 0.01, "deterministic {d} ms");
    }

    #[test]
    fn burst_service_is_rho_t() {
        let s = Scenario::paper_default().with_load(0.5).with_tick_ms(60.0);
        assert!((s.mean_burst_service_s() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(Scenario::paper_default().with_load(1.2).validate().is_err());
        assert!(Scenario::paper_default().with_load(0.0).validate().is_err());
        let mut s = Scenario::paper_default();
        s.t_ms = -1.0;
        assert!(s.validate().is_err());
        let mut s = Scenario::paper_default();
        s.erlang_order = 0;
        assert!(s.validate().is_err());
        let mut s = Scenario::paper_default();
        s.quantile = 1.0;
        assert!(s.validate().is_err());
        // Access uplink overloaded: huge client packets.
        let mut s = Scenario::paper_default();
        s.client_packet_bytes = 2_000.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn distinct_client_interval_changes_uplink_only() {
        // UT2003-like: 47 ms tick, clients sending every 30 ms.
        let s = Scenario::paper_default()
            .with_tick_ms(47.0)
            .with_load(0.4)
            .with_client_interval_ms(30.0);
        assert_eq!(s.effective_client_interval_ms(), 30.0);
        // Faster clients → more upstream packets → higher ρ_u than the
        // equal-interval case.
        let equal = Scenario::paper_default().with_tick_ms(47.0).with_load(0.4);
        assert!(s.uplink_load() > equal.uplink_load());
        // Downlink load is untouched.
        assert!((s.downlink_load() - equal.downlink_load()).abs() < 1e-15);
        assert!(s.validate().is_ok());
        let mut bad = s.clone();
        bad.client_interval_ms = Some(-3.0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let s = Scenario::paper_default()
            .with_tick_ms(60.0)
            .with_erlang_order(20)
            .with_server_packet(100.0)
            .with_load(0.3);
        assert_eq!(s.t_ms, 60.0);
        assert_eq!(s.erlang_order, 20);
        assert_eq!(s.server_packet_bytes, 100.0);
        assert!((s.downlink_load() - 0.3).abs() < 1e-15);
    }
}
