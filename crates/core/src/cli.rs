//! Command-line front-end plumbing for the `fpsping-cli` binary.
//!
//! Kept in the library (rather than the binary) so the argument parsing
//! and command execution are unit-testable. Hand-rolled parsing — the
//! surface is four subcommands with numeric flags; a dependency would be
//! heavier than the code.

use crate::engine::{Engine, EngineConfig};
use crate::{max_load, RttModel, Scenario};
use fpsping_num::cmp::exact_zero;
use std::fmt::Write as _;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `quantile` — report the RTT quantile (and breakdown) for a scenario.
    Quantile(Scenario),
    /// `dimension --budget-ms B` — maximum load / gamers under a budget.
    Dimension {
        /// The base scenario.
        scenario: Scenario,
        /// RTT budget in ms.
        budget_ms: f64,
    },
    /// `sweep` — RTT across the paper's load grid.
    Sweep {
        /// The base scenario.
        scenario: Scenario,
        /// Worker threads for the sweep engine (0 = all cores).
        jobs: usize,
    },
    /// `sim` — replicated packet-level simulation of the scenario.
    Sim {
        /// The base scenario.
        scenario: Scenario,
        /// Independent replications R.
        reps: usize,
        /// Worker threads (0 = all cores).
        jobs: usize,
        /// O(1)-memory streaming quantiles instead of raw samples.
        stream_quantiles: bool,
        /// Run the per-player streaming RTT estimator and report its
        /// pooled tails against the analytic quantiles.
        estimate: bool,
        /// Simulated seconds per replication.
        sim_seconds: f64,
        /// Master seed for the replication seed derivation.
        seed: u64,
        /// `--scale-n N` — run the sharded DSLAM-tree scale engine with
        /// N players instead of the single-bottleneck scenario (0 = off).
        scale_n: usize,
        /// Scale-engine worker shards (0 = all cores). Parallelism only:
        /// the report is bit-identical for every value.
        shards: usize,
        /// Event-calendar backend.
        calendar: fpsping_sim::Calendar,
    },
    /// `help` — usage text.
    Help,
}

/// Observability options shared by every subcommand; parsed by
/// [`parse_with_obs`] and honored by [`run_with_obs`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsOptions {
    /// Write the metrics registry (counters, gauges, histograms, spans)
    /// as JSON to this path after the command finishes.
    pub metrics_out: Option<std::path::PathBuf>,
    /// Append the recorded span tree to the command's output.
    pub trace: bool,
}

/// Parse errors with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "fpsping-cli — FPS ping-time modeling (Degrande et al., 2006)

USAGE:
    fpsping-cli <COMMAND> [FLAGS]

COMMANDS:
    quantile     RTT quantile + per-component breakdown for one scenario
    dimension    maximum load / gamers under a ping budget (needs --budget-ms)
    sweep        RTT quantile across the 5%..90% load grid
    sim          replicated packet-level simulation (95% CIs with --reps > 1)
    help         this text

FLAGS (all optional; defaults are the paper's §4 scenario):
    --load <0..1>            downlink load ρ_d              [default 0.4]
    --gamers <N>             gamer count (overrides --load)
    --k <K>                  Erlang order of burst sizes    [default 9]
    --tick-ms <T>            server tick interval            [default 40]
    --server-packet <B>      P_S in bytes                    [default 125]
    --client-packet <B>      P_C in bytes                    [default 80]
    --client-interval-ms <T> client send interval            [default = tick]
    --c-kbps <C>             bottleneck rate in kbit/s       [default 5000]
    --rup-kbps <R>           access uplink rate in kbit/s    [default 128]
    --rdown-kbps <R>         access downlink rate in kbit/s  [default 1024]
    --quantile <p>           quantile level                  [default 0.99999]
    --budget-ms <B>          RTT budget (dimension only)
    --jobs <N>               sweep/sim worker threads; 0 = all cores [default 0]
    --no-upstream            drop the upstream M/G/1 term
    --reps <R>               sim: independent replications      [default 1]
    --stream-quantiles       sim: O(1)-memory P-squared quantiles
    --estimate               sim: per-player streaming RTT estimator
                             (EWMA + P² tails, compared to the analytic model)
    --sim-seconds <S>        sim: simulated seconds per replication [default 60]
    --seed <S>               sim: master seed                   [default 24301]
    --scale-n <N>            sim: sharded DSLAM-tree scale run with N players
    --shards <S>             sim: scale worker shards; 0 = all cores [default 0]
                             (parallelism only — the report never depends on it)
    --calendar <heap|bucket> sim: event-calendar backend     [default bucket]

OBSERVABILITY (any command):
    --metrics-out <PATH>     write solver/sim metrics as JSON after the run
    --trace                  append the recorded span tree to the output
";

fn parse_f64(flag: &str, value: Option<&String>) -> Result<f64, ParseError> {
    let v = value.ok_or_else(|| ParseError(format!("flag {flag} needs a value")))?;
    v.parse::<f64>()
        .map_err(|_| ParseError(format!("flag {flag}: `{v}` is not a number")))
}

/// Parses the argument vector (without argv[0]) including the
/// observability flags `--metrics-out <path>` and `--trace`, which may
/// appear anywhere and apply to any command. The remaining arguments go
/// through [`parse`] unchanged.
pub fn parse_with_obs(args: &[String]) -> Result<(Command, ObsOptions), ParseError> {
    let mut obs = ObsOptions::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| ParseError("flag --metrics-out needs a path".into()))?;
                obs.metrics_out = Some(std::path::PathBuf::from(v));
                i += 2;
            }
            "--trace" => {
                obs.trace = true;
                i += 1;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    Ok((parse(&rest)?, obs))
}

/// Executes a command and then honors the observability options: the
/// span tree is appended to the output when `--trace` was given, and the
/// metrics registry is written as JSON to `--metrics-out` (a write
/// failure is a command failure, not a silent skip).
pub fn run_with_obs(cmd: &Command, obs: &ObsOptions) -> Result<String, String> {
    let mut out = run(cmd)?;
    if obs.trace {
        out.push('\n');
        out.push_str(&fpsping_obs::snapshot().render_trace());
    }
    if let Some(path) = &obs.metrics_out {
        fpsping_obs::write_json(path)
            .map_err(|e| format!("--metrics-out {}: {e}", path.display()))?;
    }
    Ok(out)
}

/// Parses the argument vector (without argv[0]).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        return Ok(Command::Help);
    }
    let mut scenario = Scenario::paper_default();
    let mut budget_ms: Option<f64> = None;
    let mut jobs = 0usize;
    let mut reps = 1usize;
    let mut stream_quantiles = false;
    let mut estimate = false;
    let mut sim_seconds = 60.0f64;
    let mut seed = 0x5EEDu64;
    let mut scale_n = 0usize;
    let mut shards = 0usize;
    let mut calendar = fpsping_sim::Calendar::Bucket;
    let mut i = 1usize;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        let mut consumed = 2;
        match flag {
            "--load" => scenario = scenario.with_load(parse_f64(flag, value)?),
            "--gamers" => {
                let n = parse_f64(flag, value)?;
                if n < 1.0 || !exact_zero(n.fract()) {
                    return Err(ParseError(format!(
                        "--gamers must be a positive integer, got {n}"
                    )));
                }
                scenario = scenario.with_gamers(n as u32);
            }
            "--k" => {
                let k = parse_f64(flag, value)?;
                if k < 1.0 || !exact_zero(k.fract()) {
                    return Err(ParseError(format!(
                        "--k must be a positive integer, got {k}"
                    )));
                }
                scenario = scenario.with_erlang_order(k as u32);
            }
            "--tick-ms" => scenario = scenario.with_tick_ms(parse_f64(flag, value)?),
            "--server-packet" => scenario = scenario.with_server_packet(parse_f64(flag, value)?),
            "--client-packet" => scenario.client_packet_bytes = parse_f64(flag, value)?,
            "--client-interval-ms" => {
                scenario = scenario.with_client_interval_ms(parse_f64(flag, value)?)
            }
            "--c-kbps" => scenario.c_bps = parse_f64(flag, value)? * 1e3,
            "--rup-kbps" => scenario.r_up_bps = parse_f64(flag, value)? * 1e3,
            "--rdown-kbps" => scenario.r_down_bps = parse_f64(flag, value)? * 1e3,
            "--quantile" => scenario.quantile = parse_f64(flag, value)?,
            "--budget-ms" => budget_ms = Some(parse_f64(flag, value)?),
            "--jobs" => {
                let n = parse_f64(flag, value)?;
                if n < 0.0 || !exact_zero(n.fract()) {
                    return Err(ParseError(format!(
                        "--jobs must be a non-negative integer, got {n}"
                    )));
                }
                jobs = n as usize;
            }
            "--no-upstream" => {
                scenario.include_upstream = false;
                consumed = 1;
            }
            "--reps" => {
                let n = parse_f64(flag, value)?;
                if n < 1.0 || !exact_zero(n.fract()) {
                    return Err(ParseError(format!(
                        "--reps must be a positive integer, got {n}"
                    )));
                }
                reps = n as usize;
            }
            "--stream-quantiles" => {
                stream_quantiles = true;
                consumed = 1;
            }
            "--estimate" => {
                estimate = true;
                consumed = 1;
            }
            "--sim-seconds" => {
                let s = parse_f64(flag, value)?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(ParseError(format!(
                        "--sim-seconds must be positive, got {s}"
                    )));
                }
                sim_seconds = s;
            }
            "--seed" => {
                let v = value.ok_or_else(|| ParseError("flag --seed needs a value".into()))?;
                seed = v
                    .parse::<u64>()
                    .map_err(|_| ParseError(format!("flag --seed: `{v}` is not a u64")))?;
            }
            "--scale-n" => {
                let n = parse_f64(flag, value)?;
                if n < 1.0 || !exact_zero(n.fract()) {
                    return Err(ParseError(format!(
                        "--scale-n must be a positive integer, got {n}"
                    )));
                }
                scale_n = n as usize;
            }
            "--shards" => {
                let n = parse_f64(flag, value)?;
                if n < 0.0 || !exact_zero(n.fract()) {
                    return Err(ParseError(format!(
                        "--shards must be a non-negative integer, got {n}"
                    )));
                }
                shards = n as usize;
            }
            "--calendar" => {
                let v = value.ok_or_else(|| ParseError("flag --calendar needs a value".into()))?;
                calendar = match v.as_str() {
                    "heap" => fpsping_sim::Calendar::Heap,
                    "bucket" => fpsping_sim::Calendar::Bucket,
                    other => {
                        return Err(ParseError(format!(
                            "flag --calendar: `{other}` is not `heap` or `bucket`"
                        )))
                    }
                };
            }
            other => return Err(ParseError(format!("unknown flag `{other}` (try `help`)"))),
        }
        i += consumed;
    }
    match cmd.as_str() {
        "quantile" => Ok(Command::Quantile(scenario)),
        "dimension" => {
            let budget_ms =
                budget_ms.ok_or_else(|| ParseError("dimension needs --budget-ms".to_string()))?;
            Ok(Command::Dimension {
                scenario,
                budget_ms,
            })
        }
        "sweep" => Ok(Command::Sweep { scenario, jobs }),
        "sim" => Ok(Command::Sim {
            scenario,
            reps,
            jobs,
            stream_quantiles,
            estimate,
            sim_seconds,
            seed,
            scale_n,
            shards,
            calendar,
        }),
        other => Err(ParseError(format!(
            "unknown command `{other}` (try `help`)"
        ))),
    }
}

/// Executes a `sim --scale-n N` run: the sharded DSLAM-tree scale
/// engine. The output is a function of the scenario only — it never
/// mentions the shard count, so outputs can be `diff`ed across
/// `--shards` values to check the bit-identical-merge guarantee.
fn run_scale(
    n: usize,
    shards: usize,
    calendar: fpsping_sim::Calendar,
    sim_seconds: f64,
    seed: u64,
) -> Result<String, String> {
    use fpsping_sim::{ScaleConfig, ScaleEngine, SimTime};
    let mut cfg = ScaleConfig::new(n);
    cfg.shards = shards;
    cfg.calendar = calendar;
    cfg.duration = SimTime::from_secs(sim_seconds);
    cfg.warmup = SimTime::from_secs((sim_seconds * 0.1).min(1.0));
    cfg.seed = seed;
    let rep = ScaleEngine::new(cfg.clone()).run();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scale: N={} dslams={} calendar={} — {sim_seconds} s ({} s warmup)",
        rep.n_players,
        rep.dslams,
        match calendar {
            fpsping_sim::Calendar::Heap => "heap",
            fpsping_sim::Calendar::Bucket => "bucket",
        },
        cfg.warmup.as_secs(),
    );
    let _ = writeln!(
        out,
        "  events {} | core packets {} | util dslam/core {:.3}/{:.3}",
        rep.events, rep.packets, rep.dslam_utilization, rep.core_utilization
    );
    let _ = writeln!(
        out,
        "  calendar ops: {} enqueues, {} spills",
        rep.calendar.enqueues, rep.calendar.spills
    );
    for (name, probe) in [
        ("dslam wait", &rep.dslam_wait),
        ("core wait", &rep.core_wait),
        ("end-to-end", &rep.end_to_end),
    ] {
        let _ = writeln!(
            out,
            "  {name:<10}: mean {:.4} ms, p99 {:.4} ms, max {:.4} ms",
            probe.mean_s * 1e3,
            probe
                .quantiles
                .iter()
                // lint:allow(float_eq): looked up by the exact level constant the report was built with
                .find(|(p, _)| *p == 0.99)
                .map_or(f64::NAN, |(_, v)| *v)
                * 1e3,
            probe.max_s * 1e3
        );
    }
    Ok(out)
}

/// Executes a command, returning the text to print.
pub fn run(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Quantile(s) => {
            let model = RttModel::build(s).map_err(|e| e.to_string())?;
            let b = model.breakdown().map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "scenario: ρ_d={:.3} ρ_u={:.3} N={:.1} K={} T={} ms P_S={} B",
                s.downlink_load(),
                s.uplink_load(),
                s.gamer_count(),
                s.erlang_order,
                s.t_ms,
                s.server_packet_bytes
            );
            let _ = writeln!(
                out,
                "{:.3}% RTT quantile: {:.2} ms",
                s.quantile * 100.0,
                b.rtt_ms
            );
            let _ = writeln!(out, "  deterministic : {:.3} ms", b.deterministic_ms);
            let _ = writeln!(out, "  stochastic    : {:.3} ms", b.stochastic_ms);
            let _ = writeln!(out, "    upstream    : {:.3} ms (alone)", b.upstream_ms);
            let _ = writeln!(out, "    burst wait  : {:.3} ms (alone)", b.burst_wait_ms);
            let _ = writeln!(out, "    position    : {:.3} ms (alone)", b.position_ms);
        }
        Command::Dimension {
            scenario,
            budget_ms,
        } => {
            let r = max_load(scenario, *budget_ms).map_err(|e| e.to_string())?;
            let rtt_at_max = match r.rtt_at_max_ms {
                Some(v) => format!("{v:.1} ms"),
                None => "n/a (budget infeasible)".to_string(),
            };
            let _ = writeln!(
                out,
                "budget {budget_ms} ms @ {:.3}%: rho_max = {:.1}%, N_max = {}, RTT@max = {}",
                scenario.quantile * 100.0,
                100.0 * r.rho_max,
                r.n_max,
                rtt_at_max
            );
        }
        Command::Sim {
            scenario: s,
            reps,
            jobs,
            stream_quantiles,
            estimate,
            sim_seconds,
            seed,
            scale_n,
            shards,
            calendar,
        } => {
            use fpsping_sim::{BurstSizing, NetworkConfig, SimEngine, SimEngineConfig, SimTime};
            if *scale_n > 0 {
                return run_scale(*scale_n, *shards, *calendar, *sim_seconds, *seed);
            }
            s.validate().map_err(|e| e.to_string())?;
            let n = s.gamer_count().round().max(1.0) as usize;
            let engine = SimEngine::new(SimEngineConfig {
                reps: *reps,
                jobs: *jobs,
                master_seed: *seed,
                stream_quantiles: *stream_quantiles,
            });
            let rep = engine.run(|_| {
                let mut cfg = NetworkConfig::paper_scenario(
                    n,
                    Box::new(fpsping_dist::Deterministic::new(s.server_packet_bytes)),
                    s.t_ms,
                    0,
                );
                cfg.client_packet_bytes =
                    Box::new(fpsping_dist::Deterministic::new(s.client_packet_bytes));
                cfg.client_interval_ms = Box::new(fpsping_dist::Deterministic::new(
                    s.effective_client_interval_ms(),
                ));
                cfg.r_up_bps = s.r_up_bps;
                cfg.r_down_bps = s.r_down_bps;
                cfg.c_bps = s.c_bps;
                cfg.burst_sizing = BurstSizing::ErlangBurst { k: s.erlang_order };
                cfg.duration = SimTime::from_secs(*sim_seconds);
                cfg.calendar = *calendar;
                cfg.estimate = *estimate;
                cfg
            });
            let _ = writeln!(
                out,
                "simulated: N={n} K={} T={} ms P_S={} B — {} × {sim_seconds} s (jobs={}, {} quantiles)",
                s.erlang_order,
                s.t_ms,
                s.server_packet_bytes,
                rep.reps,
                engine.effective_jobs(),
                if *stream_quantiles { "streaming" } else { "exact" }
            );
            let _ = writeln!(
                out,
                "  events {} | packets up/down {}/{} | util up/down {:.3}/{:.3}",
                rep.events,
                rep.packets_upstream,
                rep.packets_downstream,
                rep.up_utilization,
                rep.down_utilization
            );
            let ci = |v: Option<f64>| match v {
                Some(hw) => format!(" ± {:.3}", hw * 1e3),
                None => String::new(),
            };
            for (name, probe) in [
                ("upstream delay", &rep.upstream_delay),
                ("downstream delay", &rep.downstream_delay),
                ("application ping", &rep.ping_rtt),
            ] {
                let _ = writeln!(
                    out,
                    "  {name:<17}: mean {:.3}{} ms",
                    probe.mean_s * 1e3,
                    ci(probe.mean_ci95_s)
                );
            }
            for q in &rep.ping_rtt.quantiles {
                // Clean percent label: 0.99999 → "99.999", 0.5 → "50".
                let label = format!("{:.3}", q.p * 100.0);
                let label = label.trim_end_matches('0').trim_end_matches('.');
                let _ = writeln!(
                    out,
                    "    ping p{label:<7}: {:.3}{} ms",
                    q.value_s * 1e3,
                    ci(q.ci95_s)
                );
            }
            if let Some(est) = &rep.estimator {
                let c = est.counters;
                let _ = writeln!(
                    out,
                    "  estimator: {} players ({} with samples), srtt mean {:.3} ms, rttvar mean {:.3} ms",
                    est.players, est.players_with_samples, est.srtt_mean_ms, est.rttvar_mean_ms
                );
                let _ = writeln!(
                    out,
                    "    matches {} | losses {} | reorders {} | late {} | invalid {}",
                    c.matches, c.losses, c.reorders, c.late_replies, c.invalid_samples
                );
                // The estimator observes hold-corrected RTTs — exactly the
                // upstream + downstream network delay the analytic model's
                // quantile describes — so the two are directly comparable.
                let measured_p99 = est.pooled_p99.as_ref().map(|q| q.estimate());
                let measured_p999 = est.pooled_p999.as_ref().map(|q| q.estimate());
                for (label, level, measured) in [
                    ("p99  ", 0.99, measured_p99),
                    ("p99.9", 0.999, measured_p999),
                ] {
                    let mut at = s.clone();
                    at.quantile = level;
                    let analytic = RttModel::build(&at)
                        .map_err(|e| e.to_string())?
                        .rtt_quantile_ms();
                    match measured {
                        Some(m) => {
                            let err = 100.0 * (m - analytic) / analytic;
                            let _ = writeln!(
                                out,
                                "    est {label}: {m:.3} ms (analytic {analytic:.3} ms, err {err:+.2}%)"
                            );
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "    est {label}: n/a (analytic {analytic:.3} ms) — too few samples"
                            );
                        }
                    }
                }
            }
            if *reps < 2 {
                let _ = writeln!(
                    out,
                    "  (single replication — pass --reps R for 95% confidence intervals)"
                );
            }
        }
        Command::Sweep { scenario: s, jobs } => {
            let engine = Engine::new(EngineConfig::with_jobs(*jobs));
            let _ = writeln!(out, "{:>6} {:>8} {:>12}", "load", "gamers", "RTT [ms]");
            for p in engine.rtt_vs_load(s, &crate::sweep::paper_load_grid()) {
                match p.rtt_ms {
                    Some(v) => {
                        let _ = writeln!(
                            out,
                            "{:>5.0}% {:>8.0} {:>12.2}",
                            p.rho_d * 100.0,
                            p.n_gamers,
                            v
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{:>5.0}% {:>8.0} {:>12}",
                            p.rho_d * 100.0,
                            p.n_gamers,
                            "infeasible"
                        );
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert!(run(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn quantile_with_flags() {
        let cmd = parse(&argv("quantile --load 0.5 --k 20 --tick-ms 60")).unwrap();
        match cmd {
            Command::Quantile(s) => {
                assert!((s.downlink_load() - 0.5).abs() < 1e-12);
                assert_eq!(s.erlang_order, 20);
                assert_eq!(s.t_ms, 60.0);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn gamers_overrides_load() {
        let cmd = parse(&argv("quantile --gamers 80")).unwrap();
        match cmd {
            Command::Quantile(s) => assert!((s.gamer_count() - 80.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dimension_requires_budget() {
        assert!(parse(&argv("dimension")).is_err());
        let cmd = parse(&argv("dimension --budget-ms 50 --k 2")).unwrap();
        match cmd {
            Command::Dimension {
                budget_ms,
                scenario,
            } => {
                assert_eq!(budget_ms, 50.0);
                assert_eq!(scenario.erlang_order, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sweep_takes_jobs_flag() {
        match parse(&argv("sweep --jobs 3")).unwrap() {
            Command::Sweep { jobs, .. } => assert_eq!(jobs, 3),
            other => panic!("{other:?}"),
        }
        match parse(&argv("sweep")).unwrap() {
            Command::Sweep { jobs, .. } => assert_eq!(jobs, 0, "default = all cores"),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("sweep --jobs -1")).is_err());
        assert!(parse(&argv("sweep --jobs 1.5")).is_err());
    }

    #[test]
    fn sim_takes_replication_flags() {
        match parse(&argv(
            "sim --reps 8 --jobs 2 --stream-quantiles --sim-seconds 10 --seed 7",
        ))
        .unwrap()
        {
            Command::Sim {
                reps,
                jobs,
                stream_quantiles,
                sim_seconds,
                seed,
                ..
            } => {
                assert_eq!(reps, 8);
                assert_eq!(jobs, 2);
                assert!(stream_quantiles);
                assert_eq!(sim_seconds, 10.0);
                assert_eq!(seed, 7);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("sim")).unwrap() {
            Command::Sim {
                reps,
                jobs,
                stream_quantiles,
                estimate,
                ..
            } => {
                assert_eq!(reps, 1, "default single replication");
                assert_eq!(jobs, 0, "default all cores");
                assert!(!stream_quantiles);
                assert!(!estimate, "estimator off by default");
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("sim --estimate")).unwrap() {
            Command::Sim { estimate, .. } => assert!(estimate),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("sim --reps 0")).is_err());
        assert!(parse(&argv("sim --reps 1.5")).is_err());
        assert!(parse(&argv("sim --sim-seconds -3")).is_err());
        assert!(parse(&argv("sim --seed -1")).is_err());
    }

    #[test]
    fn sim_takes_scale_flags() {
        match parse(&argv("sim --scale-n 5000 --shards 2 --calendar heap")).unwrap() {
            Command::Sim {
                scale_n,
                shards,
                calendar,
                ..
            } => {
                assert_eq!(scale_n, 5000);
                assert_eq!(shards, 2);
                assert_eq!(calendar, fpsping_sim::Calendar::Heap);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("sim")).unwrap() {
            Command::Sim {
                scale_n, calendar, ..
            } => {
                assert_eq!(scale_n, 0, "scale off by default");
                assert_eq!(calendar, fpsping_sim::Calendar::Bucket);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("sim --scale-n 0")).is_err());
        assert!(parse(&argv("sim --scale-n 1.5")).is_err());
        assert!(parse(&argv("sim --shards -1")).is_err());
        assert!(parse(&argv("sim --calendar fibonacci")).is_err());
    }

    #[test]
    fn run_scale_output_is_shard_invariant() {
        // 10 000 players span three DSLAMs at the default 4096/DSLAM, so
        // the two runs genuinely partition work differently.
        let one =
            run(&parse(&argv("sim --scale-n 10000 --shards 1 --sim-seconds 1")).unwrap()).unwrap();
        let two =
            run(&parse(&argv("sim --scale-n 10000 --shards 2 --sim-seconds 1")).unwrap()).unwrap();
        assert_eq!(one, two, "report must not depend on --shards");
        assert!(one.contains("scale: N=10000 dslams=3"), "{one}");
        assert!(one.contains("calendar ops"), "{one}");
    }

    #[test]
    fn run_sim_reports_confidence_intervals() {
        let cmd = parse(&argv(
            "sim --gamers 6 --reps 3 --jobs 2 --sim-seconds 5 --seed 11",
        ))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("application ping"), "{out}");
        assert!(out.contains("±"), "R=3 must print CIs: {out}");
        assert!(out.contains("p99.999"), "{out}");
    }

    #[test]
    fn run_sim_estimate_reports_tails_vs_analytic() {
        let cmd = parse(&argv(
            "sim --estimate --gamers 10 --c-kbps 500 --sim-seconds 20 --seed 5",
        ))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("estimator:"), "{out}");
        assert!(out.contains("matches "), "{out}");
        assert!(out.contains("est p99  "), "{out}");
        assert!(out.contains("est p99.9"), "{out}");
        assert!(out.contains("analytic "), "{out}");
        // Without the flag the block is absent.
        let plain =
            run(&parse(&argv("sim --gamers 10 --c-kbps 500 --sim-seconds 5")).unwrap()).unwrap();
        assert!(!plain.contains("estimator:"), "{plain}");
    }

    #[test]
    fn run_sim_is_deterministic_across_jobs() {
        let a = run(&parse(&argv("sim --gamers 6 --reps 3 --jobs 1 --sim-seconds 5")).unwrap())
            .unwrap();
        let b = run(&parse(&argv("sim --gamers 6 --reps 3 --jobs 3 --sim-seconds 5")).unwrap())
            .unwrap();
        // Everything but the printed jobs count is identical.
        let strip = |s: &str| s.replace("jobs=1", "jobs=N").replace("jobs=3", "jobs=N");
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn obs_flags_strip_anywhere_and_default_off() {
        let (cmd, obs) =
            parse_with_obs(&argv("sweep --trace --jobs 2 --metrics-out m.json")).unwrap();
        assert_eq!(cmd, parse(&argv("sweep --jobs 2")).unwrap());
        assert!(obs.trace);
        assert_eq!(
            obs.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );

        let (_, obs) = parse_with_obs(&argv("quantile")).unwrap();
        assert_eq!(obs, ObsOptions::default());

        assert!(parse_with_obs(&argv("sweep --metrics-out")).is_err());
    }

    #[test]
    fn run_with_obs_writes_metrics_json_and_trace() {
        let path =
            std::env::temp_dir().join(format!("fpsping-cli-obs-{}.json", std::process::id()));
        let obs = ObsOptions {
            metrics_out: Some(path.clone()),
            trace: true,
        };
        let (cmd, _) = parse_with_obs(&argv("quantile --load 0.4")).unwrap();
        let out = run_with_obs(&cmd, &obs).unwrap();
        assert!(out.contains("RTT quantile"), "{out}");
        assert!(
            out.contains("spans"),
            "--trace must append the span tree: {out}"
        );
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(json.contains("\"schema\": \"fpsping-obs/1\""), "{json}");
        #[cfg(not(feature = "obs-off"))]
        assert!(
            json.contains("num.roots"),
            "a quantile run exercises the root solvers: {json}"
        );
    }

    #[test]
    fn run_with_obs_surfaces_unwritable_metrics_path() {
        let obs = ObsOptions {
            metrics_out: Some(std::path::PathBuf::from("/nonexistent-dir/metrics.json")),
            trace: false,
        };
        let err = run_with_obs(&Command::Help, &obs).unwrap_err();
        assert!(err.contains("--metrics-out"), "{err}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("fly")).is_err());
        assert!(parse(&argv("quantile --load")).is_err());
        assert!(parse(&argv("quantile --load abc")).is_err());
        assert!(parse(&argv("quantile --k 2.5")).is_err());
        assert!(parse(&argv("quantile --warp 9")).is_err());
    }

    #[test]
    fn run_quantile_produces_report() {
        let cmd = parse(&argv("quantile --load 0.4")).unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("RTT quantile"), "{out}");
        assert!(out.contains("burst wait"), "{out}");
    }

    #[test]
    fn run_dimension_matches_library() {
        let cmd = parse(&argv("dimension --budget-ms 50")).unwrap();
        let out = run(&cmd).unwrap();
        // K = 9 default → ~41% (paper: ≈40%).
        assert!(
            out.contains("rho_max = 41") || out.contains("rho_max = 40"),
            "{out}"
        );
    }

    #[test]
    fn run_sweep_covers_grid() {
        let cmd = parse(&argv("sweep --k 9 --no-upstream")).unwrap();
        let out = run(&cmd).unwrap();
        assert_eq!(out.lines().count(), 19, "{out}"); // header + 18 loads
        assert!(out.contains("90%"));
    }

    #[test]
    fn run_sweep_output_is_independent_of_jobs() {
        let serial = run(&parse(&argv("sweep --jobs 1")).unwrap()).unwrap();
        let parallel = run(&parse(&argv("sweep --jobs 4")).unwrap()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_dimension_reports_infeasible_budget_without_nan() {
        let cmd = parse(&argv("dimension --budget-ms 5")).unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("rho_max = 0.0%"), "{out}");
        assert!(out.contains("n/a"), "{out}");
        assert!(!out.contains("NaN"), "{out}");
    }

    #[test]
    fn unstable_scenario_surfaces_error() {
        let cmd = parse(&argv("quantile --load 1.5")).unwrap();
        assert!(run(&cmd).is_err());
    }
}
