//! Load sweeps — the x-axes of Figures 3 and 4.
//!
//! The free functions here are the *serial reference path*: one cold
//! solve per cell, no threads, no cache. They define the ground truth
//! that [`crate::engine::Engine::rtt_vs_load`] and
//! [`crate::engine::Engine::rtt_surface`] must (and do) reproduce bit
//! for bit; production callers should prefer the engine.

use crate::rtt::RttModel;
use crate::scenario::Scenario;

/// One point of an RTT-vs-load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Downlink load ρ_d.
    pub rho_d: f64,
    /// Uplink load ρ_u.
    pub rho_u: f64,
    /// Gamer count N (eq. 37; may be fractional on an analytic sweep).
    pub n_gamers: f64,
    /// The RTT quantile in ms, or `None` where the scenario is infeasible
    /// (e.g. the uplink saturates before the downlink for P_S < P_C).
    pub rtt_ms: Option<f64>,
}

/// Evaluates the scenario's RTT quantile across the given downlink loads
/// — the series of Figures 3 and 4.
pub fn rtt_vs_load(base: &Scenario, loads: &[f64]) -> Vec<LoadPoint> {
    loads
        .iter()
        .map(|&rho| {
            let s = base.clone().with_load(rho);
            let rtt_ms = RttModel::build(&s).ok().map(|m| m.rtt_quantile_ms());
            LoadPoint {
                rho_d: rho,
                rho_u: s.uplink_load(),
                n_gamers: s.gamer_count(),
                rtt_ms,
            }
        })
        .collect()
}

/// The paper's sweep grid: 5 % to 90 % in 5 % steps.
pub fn paper_load_grid() -> Vec<f64> {
    (1..=18).map(|i| i as f64 * 0.05).collect()
}

/// The full (K × load) RTT surface: one row per load, one entry per
/// Erlang order. Infeasible cells are `None`.
pub fn rtt_surface(base: &Scenario, ks: &[u32], loads: &[f64]) -> Vec<Vec<Option<f64>>> {
    loads
        .iter()
        .map(|&rho| {
            ks.iter()
                .map(|&k| {
                    let s = base.clone().with_load(rho).with_erlang_order(k);
                    RttModel::build(&s).ok().map(|m| m.rtt_quantile_ms())
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_complete() {
        let pts = rtt_vs_load(&Scenario::paper_default(), &paper_load_grid());
        assert_eq!(pts.len(), 18);
        let mut prev = 0.0;
        for p in &pts {
            let rtt = p.rtt_ms.expect("feasible across the grid for P_S=125");
            assert!(rtt > prev, "rho={}: {rtt} ≤ {prev}", p.rho_d);
            prev = rtt;
        }
    }

    #[test]
    fn sweep_reports_infeasible_points_as_none() {
        // P_S = 75 < P_C = 80: uplink saturates at ρ_d = 75/80 = 0.9375.
        let s = Scenario::paper_default().with_server_packet(75.0);
        let pts = rtt_vs_load(&s, &[0.5, 0.95]);
        assert!(pts[0].rtt_ms.is_some());
        assert!(pts[1].rtt_ms.is_none());
        assert!(pts[1].rho_u > 1.0);
    }

    #[test]
    fn linear_regime_at_low_load() {
        // §4: at low load the quantile (minus the deterministic part) is
        // ≈ proportional to the load (position delay dominates and scales
        // with burst size = ρ·T).
        let s = Scenario::paper_default().with_tick_ms(60.0);
        let det_ms = s.deterministic_delay_s() * 1e3;
        let pts = rtt_vs_load(&s, &[0.05, 0.10, 0.20]);
        let q: Vec<f64> = pts.iter().map(|p| p.rtt_ms.unwrap() - det_ms).collect();
        let r1 = q[1] / q[0];
        let r2 = q[2] / q[1];
        assert!((1.7..2.3).contains(&r1), "5→10% ratio {r1}");
        assert!((1.7..2.3).contains(&r2), "10→20% ratio {r2}");
    }

    #[test]
    fn surface_is_monotone_in_both_axes() {
        let ks = [2u32, 9, 20];
        let loads = [0.2, 0.5, 0.8];
        let surf = rtt_surface(&Scenario::paper_default(), &ks, &loads);
        assert_eq!(surf.len(), 3);
        for row in &surf {
            // Decreasing in K.
            for w in row.windows(2) {
                assert!(w[0].unwrap() > w[1].unwrap());
            }
        }
        for (rows, next_rows) in surf.windows(2).map(|w| (&w[0], &w[1])) {
            // Increasing in load, column by column.
            for (a, b) in rows.iter().zip(next_rows) {
                assert!(a.unwrap() < b.unwrap());
            }
        }
    }

    #[test]
    fn gamer_counts_follow_eq37() {
        let pts = rtt_vs_load(&Scenario::paper_default(), &[0.2, 0.4, 0.6]);
        assert!((pts[0].n_gamers - 40.0).abs() < 1e-9);
        assert!((pts[1].n_gamers - 80.0).abs() < 1e-9);
        assert!((pts[2].n_gamers - 120.0).abs() < 1e-9);
    }
}
