//! # fpsping
//!
//! A library implementation of *"Modeling Ping times in First Person
//! Shooter games"* (N. Degrande, D. De Vleeschauwer, R.E. Kooij,
//! M.R.H. Mandjes; CWI report PNA-R0608 / CoNEXT 2006).
//!
//! Given a DSL-style access network — per-gamer access links into an
//! aggregation node, a bottleneck link of capacity `C` to the game server
//! — and an FPS traffic model (client packets of `P_C` bytes every `T` ms
//! upstream; server bursts of one `P_S`-byte packet per gamer every `T` ms
//! downstream, burst sizes Erlang of order `K`), the library answers:
//!
//! * **What ping will gamers see?** [`RttModel`] computes any quantile of
//!   the round-trip time: upstream M/G/1 queueing (§3.1), downstream
//!   D/E_K/1 burst queueing plus within-burst position delay (§3.2),
//!   combined through the Erlang-mix product of eq. (35), plus the
//!   deterministic serialization delays.
//! * **How many gamers fit?** [`dimensioning`] inverts the model under an
//!   RTT budget: the maximum tolerable load `ρ_max` and the corresponding
//!   gamer count `N_max = ρ_max·T·C/(8·P_S)` (eq. 37) — reproducing the
//!   paper's headline finding that tolerable loads are "surprisingly low"
//!   (≈20 % for K = 2, ≈40 % for K = 9, ≈60 % for K = 20 at a 50 ms
//!   budget).
//! * **How fast?** [`engine::Engine`] evaluates grid workloads (load
//!   sweeps, K × load surfaces, dimensioning bisections) in parallel
//!   with memoized solver state and warm-started quantile brackets —
//!   bit-identical to the serial reference path, several times faster.
//!
//! # Quickstart
//!
//! ```
//! use fpsping::{Scenario, RttModel};
//!
//! // The paper's reference scenario: P_S = 125 B, T = 40 ms, K = 9,
//! // C = 5 Mbps, at 40% downlink load.
//! let scenario = Scenario::paper_default()
//!     .with_load(0.40)
//!     .with_erlang_order(9);
//! let model = RttModel::build(&scenario).unwrap();
//! let rtt_ms = model.rtt_quantile_ms();
//! assert!(rtt_ms > 20.0 && rtt_ms < 80.0); // ≈50 ms in the paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod dimensioning;
pub mod engine;
pub mod rtt;
pub mod scenario;
pub mod sweep;

pub use cache::SharedCache;
pub use dimensioning::{max_gamers, max_load, DimensioningResult};
pub use engine::{CacheStats, Engine, EngineConfig, SolverCache};
pub use rtt::{RttBreakdown, RttModel};
pub use scenario::{Gamers, Scenario};
pub use sweep::{rtt_vs_load, LoadPoint};

/// Errors from model construction.
pub use fpsping_queue::QueueError;
