//! `SharedCache`: an N-way sharded, capacity-bounded concurrent map.
//!
//! The engine's solver caches started life as three global
//! `Mutex<HashMap>`s — correct, but with two scaling problems once the
//! solver became a long-running query service (`fpsping-serve`):
//!
//! 1. **One lock per cache.** Every cell evaluated by every worker
//!    serialized on the same mutex. Sharding by key hash (power-of-two
//!    shard count, shard picked from the hash's high bits) keeps the
//!    per-lookup cost identical while letting concurrent workers touch
//!    disjoint shards without contention.
//! 2. **Unbounded memory.** A grid sweep visits a bounded key set, but a
//!    network-facing query stream does not — an adversarial client
//!    cycling through fresh `(K, ρ)` cells would grow the maps without
//!    limit. Each shard therefore holds at most `capacity / shards`
//!    entries and evicts with CLOCK (second chance): a circular hand
//!    sweeps the shard's slots, clearing reference bits until it finds an
//!    unreferenced victim. Hits set the reference bit, so repeatedly-used
//!    entries survive scans of one-shot keys — the behavior that matters
//!    under a hot-spot-plus-scan mix, at a fraction of LRU's bookkeeping.
//!
//! Eviction is **transparent to correctness**: these caches memoize pure
//! functions of their keys, so an evicted entry that gets re-solved
//! reproduces the identical bits (asserted by `tests/cache_eviction.rs`
//! across random interleavings and by `tests/engine_parity.rs` end to
//! end). Bounding the cache trades only *time* (re-solves) for *memory*.
//!
//! Accounting invariant, asserted by the multi-thread hammer test: every
//! insert either lands in a free slot, replaces an existing key in
//! place, or evicts exactly one victim — so at all times
//! `first_inserts − evictions == occupancy ≤ capacity` (no lost
//! updates, bounded memory).

use fpsping_obs::{lock_class, LockClass};
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Deterministic multiply–mix hasher for the cache's bit-pattern keys.
///
/// Two reasons not to use `std`'s `DefaultHasher` (SipHash) here:
///
/// * **The lookup is the product.** The cached engine answers a repeat
///   cell in ~100 ns, and a sharded cache needs the key's hash *twice*
///   per operation (shard pick + bucket placement, both from one
///   [`finish`]). SipHashing a multi-word `ScenarioKey` twice is a
///   measurable fraction of that budget; this mixer is a few cycles per
///   word plus a SplitMix64-style finalizer for full avalanche (the top
///   bits select the shard, so they must be as good as the bottom ones).
/// * **Determinism is a feature.** Keys are already bit patterns of
///   trusted numeric inputs — there is no hash-flooding adversary inside
///   the process — and a fixed initial state makes cache layout, and
///   therefore eviction order, reproducible run to run.
#[derive(Default)]
struct MixHasher(u64);

impl Hasher for MixHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.write_u64(u64::from_le_bytes(w));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(w) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(23);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn finish(&self) -> u64 {
        // SplitMix64 finalizer: avalanche the accumulated state so both
        // the high (shard) and low (bucket) bits are well distributed.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The deterministic build-hasher used for both shard selection and the
/// per-shard maps.
type FixedState = BuildHasherDefault<MixHasher>;

/// One cache slot: a key/value pair plus its CLOCK reference bit.
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// One shard: a key → slot-index map over a circular slot arena.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, usize, FixedState>,
    slots: Vec<Slot<K, V>>,
    /// CLOCK hand: index of the next eviction candidate.
    hand: usize,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Self {
            map: HashMap::default(),
            slots: Vec::new(),
            hand: 0,
        }
    }
}

/// A sharded, optionally capacity-bounded concurrent memo map.
///
/// `get` clones the stored value (the engine stores `f64`s and
/// `Arc`s, so clones are trivially cheap). See the module docs for the
/// sharding and eviction design.
#[derive(Debug)]
pub struct SharedCache<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    /// Max entries per shard; `usize::MAX` when unbounded.
    per_shard_cap: usize,
    hasher: FixedState,
    first_inserts: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count: enough that a handful of worker threads rarely
/// collide, small enough that an empty cache is a few hundred bytes.
pub const DEFAULT_SHARDS: usize = 16;

/// All shards of every `SharedCache` share one lockdep class: they play
/// one ordering role (leaf memo locks, never held across another
/// acquisition), and shard choice is data-dependent so per-instance
/// classes would never converge to a checkable order.
static SHARD_CLASS: LockClass = LockClass::new("core::SharedCache::shards");

impl<K: Eq + Hash, V: Clone> SharedCache<K, V> {
    /// A cache with `shards` shards (rounded up to a power of two) and a
    /// total entry budget of `capacity` (`0` = unbounded). The budget is
    /// split evenly across shards (rounding up), so worst-case occupancy
    /// is `capacity + shards - 1` entries.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard_cap = if capacity == 0 {
            usize::MAX
        } else {
            capacity.div_ceil(shards)
        };
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            mask: (shards - 1) as u64,
            per_shard_cap,
            hasher: FixedState::default(),
            first_inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An unbounded cache with [`DEFAULT_SHARDS`] shards — the drop-in
    /// replacement for the old global `Mutex<HashMap>`.
    pub fn unbounded() -> Self {
        Self::new(DEFAULT_SHARDS, 0)
    }

    /// The shard holding `key`: the *high* bits of the key's hash, so the
    /// shard index and the `HashMap`'s internal bucket choice (low bits)
    /// stay decorrelated.
    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = self.hasher.hash_one(key);
        let i = ((h >> 32) ^ h) & self.mask;
        &self.shards[i as usize]
    }

    /// Looks up `key`, marking the entry recently-used on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = lock_class(&SHARD_CLASS, self.shard_of(key));
        let &i = shard.map.get(key)?;
        let slot = &mut shard.slots[i];
        slot.referenced = true;
        Some(slot.value.clone())
    }

    /// Inserts `value` for `key` unless the key is already present, and
    /// returns the winning value — callers racing to memoize the same
    /// solve all observe the first inserter's result, exactly like the
    /// old `entry().or_insert_with()` idiom. May evict one victim (CLOCK
    /// second chance) when the shard is at capacity.
    pub fn get_or_insert(&self, key: K, value: V) -> V
    where
        K: Clone,
    {
        let mut shard = lock_class(&SHARD_CLASS, self.shard_of(&key));
        if let Some(&i) = shard.map.get(&key) {
            let slot = &mut shard.slots[i];
            slot.referenced = true;
            return slot.value.clone();
        }
        self.first_inserts.fetch_add(1, Ordering::Relaxed);
        if shard.slots.len() < self.per_shard_cap {
            let i = shard.slots.len();
            shard.slots.push(Slot {
                key: key.clone(),
                value: value.clone(),
                referenced: false,
            });
            shard.map.insert(key, i);
            return value;
        }
        // At capacity: sweep the CLOCK hand. Terminates within two laps —
        // the first lap clears every reference bit it passes.
        let len = shard.slots.len();
        let mut hand = shard.hand;
        loop {
            if shard.slots[hand].referenced {
                shard.slots[hand].referenced = false;
                hand = (hand + 1) % len;
                continue;
            }
            break;
        }
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let victim = std::mem::replace(
            &mut shard.slots[hand],
            Slot {
                key: key.clone(),
                value: value.clone(),
                referenced: false,
            },
        );
        shard.map.remove(&victim.key);
        shard.map.insert(key, hand);
        shard.hand = (hand + 1) % len;
        value
    }

    /// Current total occupancy across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_class(&SHARD_CLASS, s).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry budget (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        if self.per_shard_cap == usize::MAX {
            usize::MAX
        } else {
            self.per_shard_cap * self.shards.len()
        }
    }

    /// Entries evicted since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Inserts of previously-absent keys since construction. At all
    /// times `first_inserts() - evictions() == len()`.
    pub fn first_inserts(&self) -> u64 {
        self.first_inserts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_insert_first_writer_wins() {
        let c: SharedCache<u32, u64> = SharedCache::unbounded();
        assert_eq!(c.get(&7), None);
        assert_eq!(c.get_or_insert(7, 70), 70);
        assert_eq!(c.get_or_insert(7, 71), 70, "existing entry must win");
        assert_eq!(c.get(&7), Some(70));
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.first_inserts(), 1);
    }

    #[test]
    fn capacity_bounds_occupancy_and_counts_evictions() {
        // 1 shard so the bound is exact.
        let c: SharedCache<u64, u64> = SharedCache::new(1, 8);
        for k in 0..100u64 {
            c.get_or_insert(k, k * 3);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.evictions(), 92);
        assert_eq!(c.first_inserts(), 100);
        // Whatever survived is bit-correct.
        for k in 0..100u64 {
            if let Some(v) = c.get(&k) {
                assert_eq!(v, k * 3, "key {k}");
            }
        }
    }

    #[test]
    fn clock_second_chance_protects_hot_entries() {
        let c: SharedCache<u64, u64> = SharedCache::new(1, 4);
        for k in 0..4u64 {
            c.get_or_insert(k, k);
        }
        // Make key 0 hot, then scan 64 one-shot keys through the shard.
        for scan in 100..164u64 {
            assert_eq!(c.get(&0), Some(0), "hot key evicted during scan {scan}");
            c.get_or_insert(scan, scan);
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (req, got) in [(1usize, 1usize), (2, 2), (3, 4), (5, 8), (16, 16)] {
            let c: SharedCache<u64, u64> = SharedCache::new(req, 0);
            assert_eq!(c.shards.len(), got, "requested {req}");
        }
    }

    #[test]
    fn unbounded_never_evicts() {
        let c: SharedCache<u64, u64> = SharedCache::unbounded();
        for k in 0..10_000u64 {
            c.get_or_insert(k, !k);
        }
        assert_eq!(c.len(), 10_000);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.capacity(), usize::MAX);
        assert_eq!(c.get(&9_999), Some(!9_999u64));
    }

    #[test]
    fn bounded_capacity_reports_shard_rounding() {
        let c: SharedCache<u64, u64> = SharedCache::new(4, 10);
        // 10 over 4 shards → 3 per shard → 12 total worst case.
        assert_eq!(c.capacity(), 12);
        for k in 0..1000u64 {
            c.get_or_insert(k, k);
        }
        assert!(c.len() <= 12, "occupancy {} over bound", c.len());
        assert_eq!(c.first_inserts() - c.evictions(), c.len() as u64);
    }
}
