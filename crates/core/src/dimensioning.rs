//! Dimensioning: invert the RTT model under a ping budget (§4's
//! "dimensioning rule").
//!
//! Given a target such as "the 99.999 % RTT quantile must stay below
//! 50 ms" (the paper cites Färber's 'excellent game play' bound), find
//! the maximum tolerable downlink load `ρ_max` and convert it to gamers
//! via eq. (37): `N_max = ρ_max·T·C/(8·P_S)`.

use crate::rtt::RttModel;
use crate::scenario::Scenario;
use fpsping_queue::QueueError;

/// Result of a dimensioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensioningResult {
    /// Maximum tolerable downlink load.
    pub rho_max: f64,
    /// Maximum number of simultaneous gamers (floor of eq. 37).
    pub n_max: u32,
    /// RTT quantile (ms) realized exactly at `rho_max`.
    pub rtt_at_max_ms: f64,
}

/// Finds the largest downlink load whose RTT quantile stays within
/// `rtt_budget_ms`, by bisection over `ρ_d ∈ (lo_load, hi_load)`.
///
/// Returns `rho_max = 0` (with `n_max = 0`) when even a vanishing load
/// breaks the budget — e.g. a budget below the deterministic floor.
pub fn max_load(base: &Scenario, rtt_budget_ms: f64) -> Result<DimensioningResult, QueueError> {
    assert!(rtt_budget_ms > 0.0, "budget must be positive");
    let rtt_at = |rho: f64| -> Result<Option<f64>, QueueError> {
        let s = base.clone().with_load(rho);
        match RttModel::build(&s) {
            Ok(m) => Ok(Some(m.rtt_quantile_ms())),
            Err(QueueError::UnstableLoad { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    };
    let lo_probe = 1e-4;
    match rtt_at(lo_probe)? {
        Some(r) if r <= rtt_budget_ms => {}
        _ => {
            return Ok(DimensioningResult { rho_max: 0.0, n_max: 0, rtt_at_max_ms: f64::NAN });
        }
    }
    // Find the largest feasible probe (uplink may saturate first).
    let mut lo = lo_probe;
    let mut hi = 0.999;
    // Shrink hi until the scenario is at least buildable.
    let mut hi_val = rtt_at(hi)?;
    let mut guard = 0;
    while hi_val.is_none() && guard < 200 {
        hi = lo + 0.95 * (hi - lo);
        hi_val = rtt_at(hi)?;
        guard += 1;
    }
    if let Some(r) = hi_val {
        if r <= rtt_budget_ms {
            // Budget never binds below saturation.
            let s = base.clone().with_load(hi);
            return Ok(DimensioningResult {
                rho_max: hi,
                n_max: s.gamer_count().floor() as u32,
                rtt_at_max_ms: r,
            });
        }
    }
    // Bisect on feasibility of the budget.
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        match rtt_at(mid)? {
            Some(r) if r <= rtt_budget_ms => lo = mid,
            _ => hi = mid,
        }
    }
    let s = base.clone().with_load(lo);
    let rtt = rtt_at(lo)?.unwrap_or(f64::NAN);
    Ok(DimensioningResult {
        rho_max: lo,
        n_max: s.gamer_count().floor() as u32,
        rtt_at_max_ms: rtt,
    })
}

/// Convenience: just the gamer count.
pub fn max_gamers(base: &Scenario, rtt_budget_ms: f64) -> Result<u32, QueueError> {
    Ok(max_load(base, rtt_budget_ms)?.n_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §4's worked example: P_S = 125 B, T = 40 ms, C = 5 Mbps, 50 ms
    /// budget → ρ_max ≈ 20 % / 40 % / 60 % and N_max ≈ 40 / 80 / 120 for
    /// K = 2 / 9 / 20.
    #[test]
    fn paper_dimensioning_example_k9() {
        let base = Scenario::paper_default(); // K = 9, T = 40
        let r = max_load(&base, 50.0).unwrap();
        assert!(
            (0.30..0.55).contains(&r.rho_max),
            "paper: ≈40% for K=9; got {}",
            r.rho_max
        );
        assert!((60..110).contains(&r.n_max), "paper: ≈80 gamers; got {}", r.n_max);
        assert!(r.rtt_at_max_ms <= 50.0 + 0.1);
    }

    #[test]
    fn paper_dimensioning_example_k2_and_k20() {
        let k2 = max_load(&Scenario::paper_default().with_erlang_order(2), 50.0).unwrap();
        let k20 = max_load(&Scenario::paper_default().with_erlang_order(20), 50.0).unwrap();
        assert!(
            (0.12..0.32).contains(&k2.rho_max),
            "paper: ≈20% for K=2; got {}",
            k2.rho_max
        );
        assert!(
            (0.48..0.75).contains(&k20.rho_max),
            "paper: ≈60% for K=20; got {}",
            k20.rho_max
        );
        assert!(k2.n_max < k20.n_max);
    }

    #[test]
    fn tighter_budget_means_fewer_gamers() {
        let base = Scenario::paper_default();
        let strict = max_load(&base, 30.0).unwrap();
        let loose = max_load(&base, 100.0).unwrap();
        assert!(strict.rho_max < loose.rho_max);
        assert!(strict.n_max <= loose.n_max);
    }

    #[test]
    fn impossible_budget_yields_zero() {
        // Budget below the 6.3 ms deterministic floor.
        let r = max_load(&Scenario::paper_default(), 5.0).unwrap();
        assert_eq!(r.rho_max, 0.0);
        assert_eq!(r.n_max, 0);
    }

    #[test]
    fn generous_budget_saturates_at_stability_not_budget() {
        let r = max_load(&Scenario::paper_default(), 100_000.0).unwrap();
        assert!(r.rho_max > 0.95);
    }

    #[test]
    fn uplink_saturation_caps_ps75() {
        // P_S = 75: the uplink saturates at ρ_d = 0.9375; a huge budget
        // must cap there, not at 0.999.
        let s = Scenario::paper_default().with_server_packet(75.0);
        let r = max_load(&s, 100_000.0).unwrap();
        assert!(r.rho_max < 0.9375 + 1e-6, "rho_max {}", r.rho_max);
        assert!(r.rho_max > 0.85);
    }
}
