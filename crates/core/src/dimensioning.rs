//! Dimensioning: invert the RTT model under a ping budget (§4's
//! "dimensioning rule").
//!
//! Given a target such as "the 99.999 % RTT quantile must stay below
//! 50 ms" (the paper cites Färber's 'excellent game play' bound), find
//! the maximum tolerable downlink load `ρ_max` and convert it to gamers
//! via eq. (37): `N_max = ρ_max·T·C/(8·P_S)`.
//!
//! The bisection itself lives in [`crate::engine::Engine::max_load`];
//! the free functions here are thin wrappers over a default engine so
//! every probe shares the solver cache and warm-starts its quantile
//! bracket from the previous probe.

use crate::engine::{Engine, EngineConfig};
use crate::scenario::Scenario;
use fpsping_queue::QueueError;

/// Result of a dimensioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensioningResult {
    /// Maximum tolerable downlink load.
    pub rho_max: f64,
    /// Maximum number of simultaneous gamers (floor of eq. 37).
    pub n_max: u32,
    /// RTT quantile (ms) realized exactly at `rho_max`; `None` only for
    /// the zero result (a budget no load can meet), which has no
    /// realized RTT — previously this leaked as a silent NaN.
    pub rtt_at_max_ms: Option<f64>,
}

/// Finds the largest downlink load whose RTT quantile stays within
/// `rtt_budget_ms`, by bisection over `ρ_d ∈ (lo_load, hi_load)`.
///
/// Returns `rho_max = 0` (with `n_max = 0` and no realized RTT) when
/// even a vanishing load breaks the budget — e.g. a budget below the
/// deterministic floor. A non-positive or non-finite budget, an
/// exhausted stability search, and a bisection that converges onto an
/// infeasible load are all explicit [`QueueError`]s.
pub fn max_load(base: &Scenario, rtt_budget_ms: f64) -> Result<DimensioningResult, QueueError> {
    Engine::new(EngineConfig::with_jobs(1)).max_load(base, rtt_budget_ms)
}

/// Convenience: just the gamer count.
pub fn max_gamers(base: &Scenario, rtt_budget_ms: f64) -> Result<u32, QueueError> {
    Ok(max_load(base, rtt_budget_ms)?.n_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §4's worked example: P_S = 125 B, T = 40 ms, C = 5 Mbps, 50 ms
    /// budget → ρ_max ≈ 20 % / 40 % / 60 % and N_max ≈ 40 / 80 / 120 for
    /// K = 2 / 9 / 20.
    #[test]
    fn paper_dimensioning_example_k9() {
        let base = Scenario::paper_default(); // K = 9, T = 40
        let r = max_load(&base, 50.0).unwrap();
        assert!(
            (0.30..0.55).contains(&r.rho_max),
            "paper: ≈40% for K=9; got {}",
            r.rho_max
        );
        assert!(
            (60..110).contains(&r.n_max),
            "paper: ≈80 gamers; got {}",
            r.n_max
        );
        assert!(r.rtt_at_max_ms.unwrap() <= 50.0 + 0.1);
    }

    #[test]
    fn paper_dimensioning_example_k2_and_k20() {
        let k2 = max_load(&Scenario::paper_default().with_erlang_order(2), 50.0).unwrap();
        let k20 = max_load(&Scenario::paper_default().with_erlang_order(20), 50.0).unwrap();
        assert!(
            (0.12..0.32).contains(&k2.rho_max),
            "paper: ≈20% for K=2; got {}",
            k2.rho_max
        );
        assert!(
            (0.48..0.75).contains(&k20.rho_max),
            "paper: ≈60% for K=20; got {}",
            k20.rho_max
        );
        assert!(k2.n_max < k20.n_max);
    }

    #[test]
    fn tighter_budget_means_fewer_gamers() {
        let base = Scenario::paper_default();
        let strict = max_load(&base, 30.0).unwrap();
        let loose = max_load(&base, 100.0).unwrap();
        assert!(strict.rho_max < loose.rho_max);
        assert!(strict.n_max <= loose.n_max);
    }

    #[test]
    fn impossible_budget_yields_zero() {
        // Budget below the 6.3 ms deterministic floor.
        let r = max_load(&Scenario::paper_default(), 5.0).unwrap();
        assert_eq!(r.rho_max, 0.0);
        assert_eq!(r.n_max, 0);
        assert_eq!(r.rtt_at_max_ms, None, "zero result must not fake an RTT");
    }

    #[test]
    fn absurdly_small_budget_is_zero_not_nan() {
        // Far below any deterministic delay — the old code reported
        // rtt_at_max_ms = NaN here.
        let r = max_load(&Scenario::paper_default(), 1e-9).unwrap();
        assert_eq!(r.rho_max, 0.0);
        assert_eq!(r.n_max, 0);
        assert!(r.rtt_at_max_ms.is_none());
    }

    #[test]
    fn invalid_budget_is_an_error_not_a_panic_or_nan() {
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    max_load(&Scenario::paper_default(), bad),
                    Err(QueueError::InvalidParameter {
                        name: "rtt_budget_ms",
                        ..
                    })
                ),
                "budget {bad} must be rejected"
            );
        }
    }

    #[test]
    fn generous_budget_saturates_at_stability_not_budget() {
        let r = max_load(&Scenario::paper_default(), 100_000.0).unwrap();
        assert!(r.rho_max > 0.95);
        assert!(r.rtt_at_max_ms.unwrap().is_finite());
    }

    #[test]
    fn uplink_saturation_caps_ps75() {
        // P_S = 75 < P_C: the uplink saturates at ρ_d = 0.9375; a huge
        // budget must cap there, not at 0.999 — and the result must carry
        // a real (finite) RTT, never a NaN from an infeasible final probe.
        let s = Scenario::paper_default().with_server_packet(75.0);
        let r = max_load(&s, 100_000.0).unwrap();
        assert!(r.rho_max < 0.9375 + 1e-6, "rho_max {}", r.rho_max);
        assert!(r.rho_max > 0.85);
        assert!(r.rtt_at_max_ms.unwrap().is_finite());
    }

    #[test]
    fn uplink_saturation_with_binding_budget_ps75() {
        // Same saturating uplink, but now the budget binds below the
        // saturation point: the bisection path must also end on a
        // feasible load with a real RTT at most the budget.
        let s = Scenario::paper_default().with_server_packet(75.0);
        let r = max_load(&s, 60.0).unwrap();
        assert!(r.rho_max > 0.0 && r.rho_max < 0.9375);
        assert!(r.rtt_at_max_ms.unwrap() <= 60.0 + 0.1);
    }
}
