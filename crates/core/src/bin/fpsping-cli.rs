//! `fpsping-cli` — the command-line front-end to the ping-time model.
//!
//! ```text
//! fpsping-cli quantile  --load 0.4 --k 9
//! fpsping-cli dimension --budget-ms 50 --k 20
//! fpsping-cli sweep     --tick-ms 60 --metrics-out metrics.json --trace
//! ```

use fpsping::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse_with_obs(&args) {
        Ok((cmd, obs)) => match cli::run_with_obs(&cmd, &obs) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    }
}
