//! The RTT model: assembling §3's queueing components into the ping-time
//! quantile of §4.

use crate::scenario::Scenario;
use fpsping_dist::Deterministic;
use fpsping_queue::{DEk1, Mg1, PositionDelay, QueueError, TotalDelay};

/// Per-component view of the RTT at the scenario's quantile.
#[derive(Debug, Clone, PartialEq)]
pub struct RttBreakdown {
    /// Deterministic serialization (+ configured fixed) delay, ms.
    pub deterministic_ms: f64,
    /// Quantile of the upstream M/G/1 waiting time alone, ms.
    pub upstream_ms: f64,
    /// Quantile of the downstream burst waiting time alone, ms.
    pub burst_wait_ms: f64,
    /// Quantile of the within-burst position delay alone, ms.
    pub position_ms: f64,
    /// Quantile of the combined stochastic delay (eq. 35), ms — note this
    /// is *not* the sum of the component quantiles.
    pub stochastic_ms: f64,
    /// The headline number: deterministic + stochastic quantile, ms.
    pub rtt_ms: f64,
}

/// The assembled model for one scenario.
#[derive(Debug)]
pub struct RttModel {
    scenario: Scenario,
    downstream: DEk1,
    position: PositionDelay,
    upstream: Option<Mg1>,
    total: TotalDelay,
}

impl RttModel {
    /// Builds the model; fails on invalid parameters or unstable loads.
    pub fn build(scenario: &Scenario) -> Result<Self, QueueError> {
        scenario.validate()?;
        let t_s = scenario.t_ms / 1e3;
        // Downstream D/E_K/1: burst service time Erlang(K, β) with mean
        // ρ_d·T (§3.2.1).
        let downstream = DEk1::new(scenario.erlang_order, scenario.mean_burst_service_s(), t_s)?;
        // Position delay: uniform position in the burst (§3.2.2); shares β.
        let beta = scenario.erlang_order as f64 / scenario.mean_burst_service_s();
        let position = PositionDelay::uniform(scenario.erlang_order, beta)?;
        // Upstream: Poisson-limit M/D/1 — N/T packet arrivals per second,
        // P_C-byte packets serialized on C (§3.1).
        let upstream = if scenario.include_upstream {
            let lambda = scenario.gamer_count() / (scenario.effective_client_interval_ms() / 1e3);
            let tau = 8.0 * scenario.client_packet_bytes / scenario.c_bps;
            Some(Mg1::new(lambda, Box::new(Deterministic::new(tau)))?)
        } else {
            None
        };
        Self::from_parts(scenario.clone(), downstream, position, upstream)
    }

    /// Assembles a model from pre-built components (used by the
    /// [`crate::engine::Engine`], whose [`crate::engine::SolverCache`]
    /// constructs the components from memoized solutions). The caller
    /// guarantees the components match the scenario; the combined eq.-35
    /// product is formed here exactly as in [`RttModel::build`].
    pub fn from_parts(
        scenario: Scenario,
        downstream: DEk1,
        position: PositionDelay,
        upstream: Option<Mg1>,
    ) -> Result<Self, QueueError> {
        let total = TotalDelay::new(upstream.as_ref(), &downstream, &position)?;
        Ok(Self {
            scenario,
            downstream,
            position,
            upstream,
            total,
        })
    }

    /// [`RttModel::from_parts`] for the batch engine's sweep path: the
    /// eq.-35 product skips its re-expansion on cells a cheap bound
    /// already proves ill-conditioned (see
    /// [`TotalDelay::new_deferring_ill_conditioned`]). Every RTT-facing
    /// method behaves identically; only the diagnostic expansion
    /// accessors differ on skipped cells.
    pub fn from_parts_batch(
        scenario: Scenario,
        downstream: DEk1,
        position: PositionDelay,
        upstream: Option<Mg1>,
    ) -> Result<Self, QueueError> {
        let total =
            TotalDelay::new_deferring_ill_conditioned(upstream.as_ref(), &downstream, &position)?;
        Ok(Self {
            scenario,
            downstream,
            position,
            upstream,
            total,
        })
    }

    /// The scenario this model was built from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The downstream D/E_K/1 component.
    pub fn downstream(&self) -> &DEk1 {
        &self.downstream
    }

    /// The upstream M/G/1 component (None when excluded).
    pub fn upstream(&self) -> Option<&Mg1> {
        self.upstream.as_ref()
    }

    /// The within-burst position-delay component.
    pub fn position_delay(&self) -> &PositionDelay {
        &self.position
    }

    /// The combined stochastic delay model (eq. 35).
    pub fn total(&self) -> &TotalDelay {
        &self.total
    }

    /// Quantile of the *stochastic* delay only (seconds).
    pub fn stochastic_quantile_s(&self) -> f64 {
        self.total.quantile(self.scenario.quantile)
    }

    /// The headline ping number: `quantile(stochastic) + deterministic`,
    /// in milliseconds — what Figures 3 and 4 plot on the y-axis.
    pub fn rtt_quantile_ms(&self) -> f64 {
        self.rtt_quantile_ms_with_hint(None)
    }

    /// [`RttModel::rtt_quantile_ms`] with a warm-start hint: a nearby
    /// cell's RTT (ms), typically the neighbor along a sweep's monotone
    /// axis. The hint only seeds the canonical bracket search, so the
    /// returned value is bit-identical to the unhinted call.
    pub fn rtt_quantile_ms_with_hint(&self, hint_ms: Option<f64>) -> f64 {
        let det = self.scenario.deterministic_delay_s();
        let hint_s = hint_ms.map(|h| h / 1e3 - det).filter(|h| *h > 0.0);
        (self
            .total
            .quantile_with_hint(self.scenario.quantile, hint_s)
            + det)
            * 1e3
    }

    /// [`RttModel::rtt_quantile_ms_with_hint`] through the batch engine's
    /// tolerance-relaxed root-finder ([`TotalDelay::quantile_fast`]):
    /// identical on well-conditioned cells, within the engine's documented
    /// batch tolerance (and several times cheaper) on the
    /// numerical-inversion regime. NaN only if even the exact fallback
    /// fails to converge.
    pub fn rtt_quantile_ms_fast(&self, hint_ms: Option<f64>) -> f64 {
        let det = self.scenario.deterministic_delay_s();
        let hint_s = hint_ms.map(|h| h / 1e3 - det).filter(|h| *h > 0.0);
        (self.total.quantile_fast(self.scenario.quantile, hint_s) + det) * 1e3
    }

    /// Tail of the full RTT: `P(RTT > rtt_ms)`.
    pub fn rtt_tail(&self, rtt_ms: f64) -> f64 {
        let x = rtt_ms / 1e3 - self.scenario.deterministic_delay_s();
        if x <= 0.0 {
            1.0
        } else {
            self.total.tail(x)
        }
    }

    /// Per-component quantile breakdown.
    ///
    /// An ill-conditioned upstream mix (eq.-14 re-expansion failure) is a
    /// real error, not a NaN to leak into tables and CSVs — it propagates
    /// as the underlying [`QueueError`].
    pub fn breakdown(&self) -> Result<RttBreakdown, QueueError> {
        let p = self.scenario.quantile;
        let upstream_ms = match &self.upstream {
            Some(q) => q.paper_mix()?.quantile(p) * 1e3,
            None => 0.0,
        };
        let stochastic_ms = self.stochastic_quantile_s() * 1e3;
        let deterministic_ms = self.scenario.deterministic_delay_s() * 1e3;
        Ok(RttBreakdown {
            deterministic_ms,
            upstream_ms,
            burst_wait_ms: self.downstream.wait_quantile(p) * 1e3,
            position_ms: self.total.position().quantile(p) * 1e3,
            stochastic_ms,
            rtt_ms: stochastic_ms + deterministic_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn reference_scenario_near_paper_value() {
        // §4: P_S = 125, K = 9, T = 40 ms, RTT ≤ 50 ms at ρ_d ≈ 40 %.
        let m = RttModel::build(&Scenario::paper_default().with_load(0.40)).unwrap();
        let rtt = m.rtt_quantile_ms();
        assert!(
            (30.0..70.0).contains(&rtt),
            "paper reads ≈50 ms at 40% load for K=9/T=40; got {rtt}"
        );
    }

    #[test]
    fn rtt_grows_with_load() {
        let mut prev = 0.0;
        for &rho in &[0.1, 0.3, 0.5, 0.7, 0.85] {
            let m = RttModel::build(&Scenario::paper_default().with_load(rho)).unwrap();
            let rtt = m.rtt_quantile_ms();
            assert!(rtt > prev, "rho={rho}: {rtt} ≤ {prev}");
            prev = rtt;
        }
    }

    #[test]
    fn smaller_k_means_larger_rtt() {
        // Figure 3's headline: low K (burstier) → much larger quantiles.
        let at_k = |k| {
            RttModel::build(
                &Scenario::paper_default()
                    .with_load(0.5)
                    .with_erlang_order(k),
            )
            .unwrap()
            .rtt_quantile_ms()
        };
        let (k2, k9, k20) = (at_k(2), at_k(9), at_k(20));
        assert!(k2 > k9 && k9 > k20, "K ordering: {k2} > {k9} > {k20}");
        assert!(k2 > 1.5 * k20, "K=2 should be far worse than K=20");
    }

    #[test]
    fn rtt_roughly_proportional_to_t_when_downlink_dominates() {
        // Figure 4: RTT(T=60) ≈ 1.5·RTT(T=40) once the (small)
        // deterministic part is removed.
        for &rho in &[0.3, 0.5, 0.7] {
            let s40 = Scenario::paper_default().with_load(rho).with_tick_ms(40.0);
            let s60 = Scenario::paper_default().with_load(rho).with_tick_ms(60.0);
            let q40 = RttModel::build(&s40).unwrap().stochastic_quantile_s();
            let q60 = RttModel::build(&s60).unwrap().stochastic_quantile_s();
            let ratio = q60 / q40;
            assert!(
                (1.35..1.65).contains(&ratio),
                "rho={rho}: T-scaling ratio {ratio}"
            );
        }
    }

    #[test]
    fn tail_at_quantile_matches_level() {
        let s = Scenario::paper_default().with_load(0.5);
        let m = RttModel::build(&s).unwrap();
        let rtt = m.rtt_quantile_ms();
        let tail = m.rtt_tail(rtt);
        assert!(
            (tail - (1.0 - s.quantile)).abs() < 0.2 * (1.0 - s.quantile),
            "tail at quantile: {tail:e}"
        );
    }

    #[test]
    fn breakdown_components_are_coherent() {
        let m = RttModel::build(&Scenario::paper_default().with_load(0.5)).unwrap();
        let b = m.breakdown().unwrap();
        assert!(b.deterministic_ms > 6.0 && b.deterministic_ms < 7.0);
        assert!(b.upstream_ms >= 0.0);
        assert!(b.burst_wait_ms > 0.0);
        assert!(b.position_ms > 0.0);
        // Combined stochastic quantile is below the sum of component
        // quantiles (independence) but above the largest single component.
        let max_comp = b.upstream_ms.max(b.burst_wait_ms).max(b.position_ms);
        let sum_comp = b.upstream_ms + b.burst_wait_ms + b.position_ms;
        assert!(b.stochastic_ms >= max_comp - 1e-9);
        assert!(b.stochastic_ms <= sum_comp + 1e-9);
        assert!((b.rtt_ms - (b.stochastic_ms + b.deterministic_ms)).abs() < 1e-9);
    }

    #[test]
    fn upstream_negligible_when_ps_exceeds_pc() {
        // §4: for P_S = 125 > P_C = 80 the upstream hardly matters.
        let with_up = RttModel::build(&Scenario::paper_default().with_load(0.5)).unwrap();
        let mut s = Scenario::paper_default().with_load(0.5);
        s.include_upstream = false;
        let without = RttModel::build(&s).unwrap();
        let a = with_up.rtt_quantile_ms();
        let b = without.rtt_quantile_ms();
        assert!(a >= b);
        assert!(
            (a - b) / b < 0.1,
            "upstream contribution should be small: {a} vs {b}"
        );
    }

    #[test]
    fn capacity_invariance_of_the_quantile_shape() {
        // §4: changing C (with load fixed) only moves the serialization
        // part; the stochastic quantile in units of T is invariant.
        let mut base = Scenario::paper_default().with_load(0.5);
        base.include_upstream = false; // isolate the downstream shape
        let mut big = base.clone();
        big.c_bps *= 10.0;
        let q1 = RttModel::build(&base).unwrap().stochastic_quantile_s();
        let q2 = RttModel::build(&big).unwrap().stochastic_quantile_s();
        assert!(
            (q1 - q2).abs() < 0.05 * q1,
            "stochastic quantile should be ~capacity-invariant: {q1} vs {q2}"
        );
    }

    #[test]
    fn build_rejects_invalid() {
        assert!(RttModel::build(&Scenario::paper_default().with_load(1.1)).is_err());
        let mut s = Scenario::paper_default();
        s.erlang_order = 0;
        assert!(RttModel::build(&s).is_err());
    }

    #[test]
    fn k1_exponential_bursts_are_supported_and_worst() {
        // The paper restricts §3.2.2 to K > 1; we carry K = 1 numerically
        // through the eq.-(33) logarithmic transform. Exponential bursts
        // are the most variable Erlang, so K = 1 must dominate every
        // other K at the same load.
        let at_k = |k| {
            RttModel::build(
                &Scenario::paper_default()
                    .with_load(0.5)
                    .with_erlang_order(k),
            )
            .unwrap()
            .rtt_quantile_ms()
        };
        let (k1, k2, k9) = (at_k(1), at_k(2), at_k(9));
        assert!(
            k1 > k2 && k2 > k9,
            "K ordering with K=1: {k1} > {k2} > {k9}"
        );
        let m = RttModel::build(
            &Scenario::paper_default()
                .with_load(0.5)
                .with_erlang_order(1),
        )
        .unwrap();
        let b = m.breakdown().unwrap();
        assert!(b.position_ms.is_finite() && b.position_ms > 0.0);
        assert!(b.rtt_ms.is_finite());
    }
}
