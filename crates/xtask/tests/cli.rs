//! End-to-end tests of the `cargo xtask lint` binary: each seeded fixture
//! must produce its rule's finding (and a non-zero exit), and the real
//! workspace with the checked-in `lint.toml` must come back clean.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// Lints one fixture under a pretend path and returns the finished output.
fn lint_fixture(name: &str, pretend: &str) -> Output {
    xtask()
        .args(["lint", "--file"])
        .arg(fixture(name))
        .args(["--as", pretend])
        .output()
        .expect("spawn xtask")
}

/// Asserts the fixture run failed (exit 1) and flagged `rule` at
/// `pretend:line` in its human output.
fn assert_finding(out: &Output, rule: &str, pretend: &str, line: usize) {
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected lint failure for {rule}; stdout:\n{stdout}"
    );
    let needle = format!("{pretend}:{line}: {rule} ");
    assert!(
        stdout.contains(&needle),
        "missing `{needle}` in output:\n{stdout}"
    );
}

#[test]
fn l01_fixture_flags_exact_float_eq() {
    let out = lint_fixture("l01_float_eq.rs", "crates/num/src/fixture.rs");
    assert_finding(&out, "L01", "crates/num/src/fixture.rs", 4);
}

#[test]
fn l02_fixture_flags_unwrap() {
    let out = lint_fixture("l02_unwrap.rs", "crates/sim/src/fixture.rs");
    assert_finding(&out, "L02", "crates/sim/src/fixture.rs", 4);
}

#[test]
fn l03_fixture_flags_panic() {
    let out = lint_fixture("l03_panic.rs", "crates/sim/src/fixture.rs");
    assert_finding(&out, "L03", "crates/sim/src/fixture.rs", 5);
}

#[test]
fn l04_fixture_flags_println() {
    let out = lint_fixture("l04_println.rs", "crates/sim/src/fixture.rs");
    assert_finding(&out, "L04", "crates/sim/src/fixture.rs", 4);
}

#[test]
fn l04_fixture_is_clean_under_bench() {
    // The same println! is policy-allowed in the bench harness crate.
    let out = lint_fixture("l04_println.rs", "crates/bench/src/fixture.rs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn l05_fixture_flags_missing_doc_contract() {
    let out = lint_fixture("l05_missing_contract.rs", "crates/queue/src/fixture.rs");
    assert_finding(&out, "L05", "crates/queue/src/fixture.rs", 4);
}

#[test]
fn l05_fixture_is_clean_outside_kernel_crates() {
    // The doc-contract rule is scoped to fpsping-num / fpsping-queue.
    let out = lint_fixture("l05_missing_contract.rs", "crates/traffic/src/fixture.rs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn l06_fixture_flags_missing_forbid() {
    let out = lint_fixture("l06_missing_forbid.rs", "crates/num/src/lib.rs");
    // L06 is a whole-file finding reported at line 0.
    assert_finding(&out, "L06", "crates/num/src/lib.rs", 0);
}

#[test]
fn l07_fixture_flags_process_exit() {
    let out = lint_fixture("l07_process_exit.rs", "crates/sim/src/fixture.rs");
    assert_finding(&out, "L07", "crates/sim/src/fixture.rs", 4);
}

#[test]
fn l08_fixture_flags_instant_in_library_code() {
    let out = lint_fixture("l08_instant.rs", "crates/sim/src/fixture.rs");
    assert_finding(&out, "L08", "crates/sim/src/fixture.rs", 4);
}

#[test]
fn l08_fixture_is_clean_in_obs_and_bins() {
    // `crates/obs` owns the clock; bins may time themselves directly.
    let out = lint_fixture("l08_instant.rs", "crates/obs/src/fixture.rs");
    assert_eq!(out.status.code(), Some(0));
    let out = lint_fixture("l08_instant.rs", "crates/sim/src/bin/fixture.rs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn l09_fixture_flags_buffer_push_in_sim_only() {
    let out = lint_fixture("l09_unbounded_push.rs", "crates/sim/src/fixture.rs");
    assert_finding(&out, "L09", "crates/sim/src/fixture.rs", 4);
    // The rule is scoped to the simulator crate's library code.
    let out = lint_fixture("l09_unbounded_push.rs", "crates/queue/src/fixture.rs");
    assert_eq!(out.status.code(), Some(0));
    let out = lint_fixture("l09_unbounded_push.rs", "crates/sim/src/bin/fixture.rs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn l10_fixture_flags_unordered_nesting() {
    let out = lint_fixture("l10_lock_order.rs", "crates/serve/src/fixture.rs");
    assert_finding(&out, "L10", "crates/serve/src/fixture.rs", 10);
}

#[test]
fn l10_fixture_is_clean_under_blessed_order() {
    // The same nesting passes once lockorder.toml blesses a-before-b.
    let out = xtask()
        .args(["lint", "--file"])
        .arg(fixture("l10_lock_order.rs"))
        .args(["--as", "crates/serve/src/fixture.rs", "--lockorder"])
        .arg(fixture("lockorder_pair.toml"))
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
}

#[test]
fn l10_fixture_flags_inverted_order() {
    // Same fixture, order file reversed by pretending the crate differs:
    // feed the blessed file but lint under a path whose class names miss
    // it entirely — the pair is then "absent", still L10.
    let out = xtask()
        .args(["lint", "--file"])
        .arg(fixture("l10_lock_order.rs"))
        .args(["--as", "crates/sim/src/fixture.rs", "--lockorder"])
        .arg(fixture("lockorder_pair.toml"))
        .output()
        .expect("spawn xtask");
    assert_finding(&out, "L10", "crates/sim/src/fixture.rs", 10);
}

#[test]
fn l11_fixture_flags_guard_held_across_io_and_solver() {
    let out = lint_fixture("l11_lock_held.rs", "crates/serve/src/fixture.rs");
    assert_finding(&out, "L11", "crates/serve/src/fixture.rs", 9);
    assert_finding(&out, "L11", "crates/serve/src/fixture.rs", 10);
}

#[test]
fn l12_fixture_flags_raw_lock_outside_obs_only() {
    let out = lint_fixture("l12_raw_lock.rs", "crates/serve/src/fixture.rs");
    assert_finding(&out, "L12", "crates/serve/src/fixture.rs", 4);
    // `crates/obs` hosts the audited helpers themselves.
    let out = lint_fixture("l12_raw_lock.rs", "crates/obs/src/fixture.rs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn temporaries_fixture_is_clean() {
    // The guard-span blind spot: statement-scoped guards must not
    // produce L10/L11 false positives.
    let out = lint_fixture("lock_temporaries.rs", "crates/obs/src/fixture.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
}

#[test]
fn fixture_findings_survive_into_json() {
    let out = xtask()
        .args(["lint", "--file"])
        .arg(fixture("l02_unwrap.rs"))
        .args(["--as", "crates/sim/src/fixture.rs", "--format", "json"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\": \"L02\""), "json:\n{stdout}");
    assert!(stdout.contains("\"ok\": false"), "json:\n{stdout}");
}

#[test]
fn workspace_is_clean_with_checked_in_baseline() {
    let root = workspace_root();
    let out = xtask()
        .args(["lint", "--root"])
        .arg(&root)
        .args(["--format", "summary"])
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint not clean:\n{stdout}\n{stderr}"
    );
    assert!(stdout.contains("0 finding(s)"), "summary:\n{stdout}");
    assert!(
        !stdout.contains("stale lockorder"),
        "checked-in lockorder.toml has stale entries:\n{stdout}"
    );
}

#[test]
fn usage_errors_exit_2() {
    let out = xtask().args(["frobnicate"]).output().expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2));
    let out = xtask()
        .args(["lint", "--format", "xml"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2));
}
