//! Seeded L10: nested lock acquisition absent from the lock order.

pub struct Pair {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

pub fn nest(p: &Pair) -> u32 {
    let ga = fpsping_obs::lock(&p.a);
    let gb = fpsping_obs::lock(&p.b);
    *ga + *gb
}
