//! Fixture: `pub fn -> f64` in a kernel crate without a doc contract (L05).

/// Mean of the thing.
pub fn mean() -> f64 {
    0.5
}
