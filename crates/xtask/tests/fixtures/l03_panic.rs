//! Fixture: `panic!` in library code (L03).

pub fn check(ok: bool) {
    if !ok {
        panic!("invariant violated");
    }
}
