//! Seeded L11: a lock guard held across blocking I/O and a solver call.

pub struct S {
    stats: std::sync::Mutex<u64>,
}

pub fn held(s: &S, stream: &mut std::net::TcpStream, buf: &mut [u8]) -> u64 {
    let g = fpsping_obs::lock(&s.stats);
    let _ = stream.read(buf);
    let _v = fpsping_num::roots::bisect(0.0, 1.0);
    *g
}
