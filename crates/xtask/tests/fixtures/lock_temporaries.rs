//! The guard-span blind spot: statement-scoped guards must NOT count as
//! held sections. `lock(&m).len()` and `m.lock()?.len()` drop their
//! guards at the end of the statement, so the I/O on the next line and
//! the second bound guard below are not "under the lock" — this fixture
//! must lint clean (no L10/L11 false positives).

pub struct S {
    a: std::sync::Mutex<Vec<u8>>,
    b: std::sync::Mutex<u64>,
}

pub fn temporaries(s: &S, stream: &mut std::net::TcpStream, buf: &mut [u8]) -> std::io::Result<u64> {
    let n = crate::lock(&s.a).len() as u64;
    let m = s.a.lock()?.len() as u64;
    let _ = stream.read(buf);
    let gb = crate::lock(&s.b);
    Ok(n + m + *gb)
}
