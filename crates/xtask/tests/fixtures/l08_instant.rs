//! Fixture: direct `std::time::Instant` in library code (L08).

pub fn time_it() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_micros()
}
