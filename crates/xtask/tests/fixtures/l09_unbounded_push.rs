//! Fixture for L09: per-packet buffer growth in simulator library code.

pub fn record(samples: &mut Vec<f64>, delay_s: f64) {
    samples.push(delay_s);
}

pub fn schedule(calendar: &mut PendingEvents, ev: Scheduled) {
    calendar.push(ev); // pending-event set — exempt, not flagged
}
