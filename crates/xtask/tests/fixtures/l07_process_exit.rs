//! Fixture: `std::process::exit` outside `src/bin` (L07).

pub fn bail() {
    std::process::exit(3);
}
