//! Fixture: a first-party `lib.rs` that dropped `#![forbid(unsafe_code)]` (L06).

pub mod something;
