//! Fixture: unwaived `unwrap()` in library code (L02).

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
