//! Seeded L12: raw mutex access outside the audited obs helpers.

pub fn raw(m: &std::sync::Mutex<u32>) -> u32 {
    let v = *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    v
}
