//! Fixture: `println!` outside the bench/CLI surface (L04).

pub fn report(n: u64) {
    println!("saw {n} packets");
}
