//! A comment/string-aware line lexer for Rust source.
//!
//! The lint rules operate on *code text only*: comment bodies and the
//! contents of string/char literals are blanked to spaces (delimiters are
//! kept so tokens never merge), while comment text is preserved
//! separately per line for waiver detection (`// lint:allow(…)`) and the
//! L05 doc-contract check.
//!
//! This is deliberately not a full Rust parser — it handles exactly the
//! constructs that matter for line classification: line and (nested)
//! block comments, plain / raw / byte strings, char literals vs.
//! lifetimes, and escapes.

/// One source line after lexing.
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// The line with comments and literal contents blanked to spaces.
    pub code: String,
    /// Concatenated comment text on the line (including `//`/`///`
    /// markers), empty if none.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lexes `source` into per-line code/comment views.
pub fn lex(source: &str) -> Vec<LexedLine> {
    let mut lines: Vec<LexedLine> = Vec::new();
    let mut cur = LexedLine::default();
    let mut mode = Mode::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            // An unterminated plain string or char literal cannot span a
            // raw newline in valid Rust (other than via a trailing `\`,
            // where staying in `Str` is correct anyway).
            if mode == Mode::Char {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        cur.comment.push_str("//");
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        cur.comment.push_str("/*");
                        cur.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        mode = Mode::Str;
                        cur.code.push('"');
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string start: r", r#", br", b".
                        if let Some((hashes, consumed)) = raw_string_open(&chars, i) {
                            mode = Mode::RawStr(hashes);
                            for _ in 0..consumed {
                                cur.code.push(' ');
                            }
                            cur.code.pop();
                            cur.code.push('"');
                            i += consumed;
                            continue;
                        }
                        if c == 'b' && next == Some('"') {
                            cur.code.push('b');
                            cur.code.push('"');
                            mode = Mode::Str;
                            i += 2;
                            continue;
                        }
                        cur.code.push(c);
                    }
                    '\'' => {
                        // Char literal vs. lifetime: '\x' or 'x' followed
                        // by a closing quote is a literal; anything else
                        // ('a, 'static) is a lifetime.
                        if next == Some('\\') || chars.get(i + 2).copied() == Some('\'') {
                            mode = Mode::Char;
                            cur.code.push('\'');
                        } else {
                            cur.code.push('\'');
                        }
                    }
                    c => cur.code.push(c),
                }
                i += 1;
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    cur.comment.push_str("*/");
                    if depth == 1 {
                        mode = Mode::Code;
                        cur.code.push_str("  ");
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        cur.code.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                } else {
                    cur.code.push(' ');
                }
                i += 1;
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Mode::Char => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        cur.code.push(' ');
                        i += 1;
                    }
                } else if c == '\'' {
                    cur.code.push('\'');
                    mode = Mode::Code;
                } else {
                    cur.code.push(' ');
                }
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Detects `r"`, `r#…#"`, `br"`, `br#…#"` at position `i`; returns the
/// hash count and total chars consumed through the opening quote.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j).copied() != Some('r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j).copied() == Some('"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// Marks lines that belong to `#[cfg(test)]` regions (the attribute line,
/// the gated item, and everything inside its braces). Expects lexed code
/// text (strings/comments already blanked).
pub fn test_regions(lines: &[LexedLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depth at which an active #[cfg(test)] region was entered.
    let mut region_depth: Option<i64> = None;
    // A #[cfg(test)] attribute has been seen and its item not yet opened.
    let mut pending = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let started_inside = region_depth.is_some();
        // `#[cfg(test)]` and conjunctions that include it, e.g.
        // `#[cfg(all(test, debug_assertions, …))]`.
        let mut attr_positions: Vec<usize> = find_all(code, "#[cfg(test)]");
        attr_positions.extend(find_all(code, "#[cfg(all(test,"));
        attr_positions.sort_unstable();
        let mut attr_iter = attr_positions.iter().peekable();
        for (pos, c) in code.char_indices() {
            while attr_iter.peek().is_some_and(|&&p| p <= pos) {
                pending = true;
                attr_iter.next();
            }
            match c {
                '{' => {
                    if pending && region_depth.is_none() {
                        region_depth = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_depth == Some(depth) {
                        region_depth = None;
                    }
                }
                // `#[cfg(test)] use …;` / `mod tests;` — the gated
                // item ends without braces.
                ';' if pending && region_depth.is_none() => {
                    pending = false;
                    in_test[idx] = true;
                }
                _ => {}
            }
        }
        while attr_iter.next().is_some() {
            pending = true;
        }
        in_test[idx] = in_test[idx]
            || started_inside
            || region_depth.is_some()
            || pending
            || !attr_positions.is_empty();
    }
    in_test
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = haystack[start..].find(needle) {
        out.push(start + p);
        start += p + needle.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_comments_but_keeps_them_separately() {
        let lines = lex("let x = 1; // trailing == 0.0\n");
        assert!(!lines[0].code.contains("=="));
        assert!(lines[0].comment.contains("== 0.0"));
    }

    #[test]
    fn blanks_string_contents() {
        let c = code_of("let s = \"a == b.unwrap()\";\n");
        assert!(!c[0].contains("unwrap"));
        assert!(!c[0].contains("=="));
        assert!(c[0].contains('"'));
    }

    #[test]
    fn handles_nested_block_comments() {
        let c = code_of("a /* x /* y */ z */ b\n");
        assert!(c[0].contains('a') && c[0].contains('b'));
        assert!(!c[0].contains('x') && !c[0].contains('z'));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let c = code_of("let s = r#\"panic!(\"no\")\"#; let t = \"\\\"==\\\"\";\n");
        assert!(!c[0].contains("panic"));
        assert!(!c[0].contains("=="));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = code_of("fn f<'a>(x: &'a str) -> &'a str { x == x; x }\n");
        assert!(
            c[0].contains("=="),
            "lifetime must not open a char literal: {}",
            c[0]
        );
    }

    #[test]
    fn char_literal_contents_blanked() {
        let c = code_of("let c = '\"'; let d = x == 1.0;\n");
        assert!(c[0].contains("=="));
        assert!(c[0].matches('"').count() == 0);
    }

    #[test]
    fn test_region_covers_mod_and_attribute() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines = lex(src);
        let t = test_regions(&lines);
        assert_eq!(t, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_use_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() { x == 1.0; }\n";
        let t = test_regions(&lex(src));
        assert_eq!(t, vec![true, true, false]);
    }
}
