//! The domain lint rules (L01–L12) and the inline-waiver mechanism.
//! L10–L12 delegate to [`crate::locks`], which needs the cross-file
//! class index; the other rules are pure per-line checks.

use crate::classify::FileClass;
use crate::lexer::{lex, test_regions, LexedLine};
use crate::locks::{check_locks, LockIndex, LockOrder};
use crate::{Finding, Rule};

/// Runs every rule against one file, building the lock index from the
/// file itself against an empty lock order (single-file convenience —
/// the workspace walk uses [`check_file_with`]).
pub fn check_file(rel_path: &str, source: &str, class: &FileClass) -> (Vec<Finding>, usize) {
    let mut index = LockIndex::default();
    index.index_file(rel_path, source, &lex(source));
    check_file_with(rel_path, source, class, &index, &LockOrder::default())
}

/// Runs every rule against one file. Returns the surviving findings and
/// the number of findings silenced by valid inline waivers.
pub fn check_file_with(
    rel_path: &str,
    source: &str,
    class: &FileClass,
    index: &LockIndex,
    order: &LockOrder,
) -> (Vec<Finding>, usize) {
    let lines = lex(source);
    let in_test = test_regions(&lines);
    let mut raw: Vec<Finding> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if !in_test[idx] {
            check_l01(rel_path, lineno, code, &mut raw);
            if !class.is_bin {
                check_l02(rel_path, lineno, code, &mut raw);
                check_l03(rel_path, lineno, code, &mut raw);
            }
            if !class.println_allowed {
                check_l04(rel_path, lineno, code, &mut raw);
            }
            if !class.is_bin && code.contains("process::exit") {
                raw.push(Finding {
                    file: rel_path.into(),
                    line: lineno,
                    rule: Rule::L07,
                    message: "`std::process::exit` outside `src/bin` — return an error instead"
                        .into(),
                });
            }
            if class.crate_dir == "sim" && !class.is_bin {
                check_l09(rel_path, lineno, code, &mut raw);
            }
            if !class.is_bin
                && class.crate_dir != "obs"
                && (code.contains("std::time::Instant") || code.contains("Instant::now"))
            {
                raw.push(Finding {
                    file: rel_path.into(),
                    line: lineno,
                    rule: Rule::L08,
                    message: "direct `std::time::Instant` in library code — time scopes with \
                              `fpsping_obs::Histogram::start_timer` so the measurement lands \
                              in the metrics registry (or waive with \
                              `// lint:allow(instant): <reason>`)"
                        .into(),
                });
            }
        }
    }

    if class.l05_applies {
        check_l05(rel_path, &lines, &in_test, &mut raw);
    }

    check_locks(rel_path, &lines, &in_test, class, index, order, &mut raw);

    if class.is_lib_rs
        && !lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"))
    {
        raw.push(Finding {
            file: rel_path.into(),
            line: 0,
            rule: Rule::L06,
            message: "first-party `lib.rs` must retain `#![forbid(unsafe_code)]`".into(),
        });
    }

    apply_inline_waivers(raw, &lines, rel_path)
}

/// Scans the finding list against `// lint:allow(<slug>): <reason>`
/// comments on the finding's own line or the comment-only line above it.
/// A matching waiver with an empty reason does not silence anything and
/// raises W01 instead.
fn apply_inline_waivers(
    raw: Vec<Finding>,
    lines: &[LexedLine],
    rel_path: &str,
) -> (Vec<Finding>, usize) {
    let mut kept = Vec::new();
    let mut waived = 0usize;
    let mut bad_waivers: Vec<Finding> = Vec::new();
    for f in raw {
        let mut silenced = false;
        if f.line > 0 {
            let idx = f.line - 1;
            let mut candidates = vec![idx];
            if idx > 0 && lines[idx - 1].code.trim().is_empty() {
                candidates.push(idx - 1);
            }
            for c in candidates {
                match parse_waiver(&lines[c].comment) {
                    Some((slug, reason)) if slug == f.rule.slug() => {
                        if reason.is_empty() {
                            let finding = Finding {
                                file: rel_path.into(),
                                line: c + 1,
                                rule: Rule::W01,
                                message: format!(
                                    "inline waiver for `{}` has an empty justification",
                                    slug
                                ),
                            };
                            if !bad_waivers.contains(&finding) {
                                bad_waivers.push(finding);
                            }
                        } else {
                            silenced = true;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        if silenced {
            waived += 1;
        } else {
            kept.push(f);
        }
    }
    kept.extend(bad_waivers);
    (kept, waived)
}

/// Parses `lint:allow(<slug>): <reason>` out of a comment, returning the
/// slug and the trimmed reason.
fn parse_waiver(comment: &str) -> Option<(&str, &str)> {
    let start = comment.find("lint:allow(")?;
    let rest = &comment[start + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let slug = &rest[..close];
    let after = rest[close + 1..].strip_prefix(':')?;
    Some((slug, after.trim()))
}

// ---------------------------------------------------------------- L01 --

fn check_l01(file: &str, lineno: usize, code: &str, out: &mut Vec<Finding>) {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &code[i..i + 2];
        let is_eq = two == "==";
        let is_ne = two == "!=";
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Exclude `<=`, `>=`, `=>`, `===`-like runs and `..=`.
        let prev = if i > 0 { bytes[i - 1] as char } else { ' ' };
        let next = if i + 2 < bytes.len() {
            bytes[i + 2] as char
        } else {
            ' '
        };
        if is_eq && (prev == '=' || prev == '<' || prev == '>' || prev == '!' || next == '=') {
            i += 2;
            continue;
        }
        if is_ne && next == '=' {
            i += 2;
            continue;
        }
        let left = trailing_token(&code[..i]);
        let right = leading_token(&code[i + 2..]);
        if is_floaty(left) || is_floaty(right) {
            out.push(Finding {
                file: file.into(),
                line: lineno,
                rule: Rule::L01,
                message: format!(
                    "exact float `{}` against `{}` — use `fpsping_num::cmp::approx_eq` \
                     (or waive with `// lint:allow(float_eq): <reason>`)",
                    two,
                    if is_floaty(left) { left } else { right }
                ),
            });
        }
        i += 2;
    }
}

fn token_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':')
}

fn trailing_token(s: &str) -> &str {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|&(_, c)| token_char(c))
        .last()
        .map(|(i, _)| i)
        .unwrap_or(end);
    &s[start..]
}

fn leading_token(s: &str) -> &str {
    let s = s.trim_start();
    let end = s
        .char_indices()
        .find(|&(_, c)| !token_char(c))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    &s[..end]
}

/// A token "looks float" when it is a float literal (`0.0`, `1e-9`,
/// `2.5f64`) or a float-typed constant path (`f64::NAN`,
/// `std::f64::consts::PI`). Plain integers and arbitrary identifiers do
/// not count — the rule is a high-precision heuristic, not a type checker.
fn is_floaty(token: &str) -> bool {
    if token.is_empty() {
        return false;
    }
    if token.contains("f64::") || token.contains("f32::") {
        return true;
    }
    let t = token.replace('_', "");
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .map(str::to_owned)
        .unwrap_or(t);
    if !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    t.parse::<f64>().is_ok() && (t.contains('.') || t.contains('e') || t.contains('E'))
}

// ---------------------------------------------------------------- L02 --

fn check_l02(file: &str, lineno: usize, code: &str, out: &mut Vec<Finding>) {
    for (what, needle) in [("unwrap()", ".unwrap()"), ("expect()", ".expect(")] {
        let mut n = 0;
        let mut rest = code;
        while let Some(p) = rest.find(needle) {
            n += 1;
            rest = &rest[p + needle.len()..];
        }
        for _ in 0..n {
            out.push(Finding {
                file: file.into(),
                line: lineno,
                rule: Rule::L02,
                message: format!(
                    "`{}` in library code — propagate a `Result` or waive with \
                     `// lint:allow(unwrap): <reason>`",
                    what
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L03 --

fn check_l03(file: &str, lineno: usize, code: &str, out: &mut Vec<Finding>) {
    for mac in ["panic!", "todo!", "unimplemented!"] {
        let mut start = 0;
        while let Some(p) = code[start..].find(mac) {
            let abs = start + p;
            let boundary = abs == 0
                || !code[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            if boundary {
                out.push(Finding {
                    file: file.into(),
                    line: lineno,
                    rule: Rule::L03,
                    message: format!(
                        "`{mac}` in library code — return an error (or waive with \
                         `// lint:allow(panic): <reason>`)"
                    ),
                });
            }
            start = abs + mac.len();
        }
    }
}

// ---------------------------------------------------------------- L04 --

fn check_l04(file: &str, lineno: usize, code: &str, out: &mut Vec<Finding>) {
    for mac in ["println!", "eprintln!"] {
        let mut start = 0;
        while let Some(p) = code[start..].find(mac) {
            let abs = start + p;
            let boundary = abs == 0
                || !code[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            if boundary {
                out.push(Finding {
                    file: file.into(),
                    line: lineno,
                    rule: Rule::L04,
                    message: format!(
                        "`{mac}` outside `crates/bench` / bins / the CLI — route output \
                         through the caller"
                    ),
                });
            }
            start = abs + mac.len();
        }
    }
}

// ---------------------------------------------------------------- L09 --

/// Receiver-name suffixes that denote pending-event / k-way-merge
/// queues, whose size is the pending-event set the simulator bounds by
/// construction — pushes there are not sample-buffer growth. Like L01,
/// a high-precision name heuristic, not a type checker.
const L09_BOUNDED_RECEIVERS: &[&str] = &["calendar", "heap", "bucket", "overflow", "heads"];

/// Per-packet `Vec` growth is how a 10⁶-player scale run OOMs: every
/// sample buffer in `crates/sim` must either stream (probes), recycle
/// (ring buckets), or carry a waiver documenting its size bound — the
/// eager-probe path and the core-stage hand-off buffer are the two
/// documented ones.
fn check_l09(file: &str, lineno: usize, code: &str, out: &mut Vec<Finding>) {
    let needle = ".push(";
    let mut start = 0;
    while let Some(p) = code[start..].find(needle) {
        let abs = start + p;
        let recv = trailing_token(&code[..abs]);
        let last = recv.rsplit(['.', ':']).next().unwrap_or(recv);
        if !L09_BOUNDED_RECEIVERS.contains(&last) {
            out.push(Finding {
                file: file.into(),
                line: lineno,
                rule: Rule::L09,
                message: format!(
                    "`{last}.push(…)` grows a buffer in simulator library code — per-packet \
                     growth is unbounded at scale; stream/bound it, or document the size bound \
                     with `// lint:allow(unbounded_push): <bound>`"
                ),
            });
        }
        start = abs + needle.len();
    }
}

// ---------------------------------------------------------------- L05 --

/// Doc-contract keywords: one of these (case-insensitive) in the doc
/// comment counts as stating the NaN/domain behavior.
const CONTRACT_KEYWORDS: &[&str] = &["nan", "finite", "inf", "domain", "panic"];

fn check_l05(file: &str, lines: &[LexedLine], in_test: &[bool], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let Some(fn_pos) = find_pub_fn(&line.code) else {
            continue;
        };
        // Join the signature until its body opens (or a `;`).
        let mut sig = String::new();
        let mut end = idx;
        for (j, l) in lines.iter().enumerate().skip(idx).take(16) {
            let frag = if j == idx { &l.code[fn_pos..] } else { &l.code };
            sig.push_str(frag);
            sig.push(' ');
            end = j;
            if frag.contains('{') || frag.contains(';') {
                break;
            }
        }
        let _ = end;
        if !returns_bare_f64(&sig) {
            continue;
        }
        if has_doc_contract(lines, idx) {
            continue;
        }
        out.push(Finding {
            file: file.into(),
            line: idx + 1,
            rule: Rule::L05,
            message: format!(
                "`{}` returns `f64` without a NaN/domain doc contract — document when the \
                 result is NaN/non-finite or what the inputs must satisfy \
                 (keywords: {})",
                fn_name(&sig).unwrap_or("pub fn"),
                CONTRACT_KEYWORDS.join("/")
            ),
        });
    }
}

fn find_pub_fn(code: &str) -> Option<usize> {
    let p = code.find("pub fn ")?;
    // `pub(crate) fn` does not match; make sure `pub fn` is not preceded
    // by an identifier character (e.g. inside a longer word).
    let ok = p == 0
        || !code[..p]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    ok.then_some(p)
}

fn fn_name(sig: &str) -> Option<&str> {
    let rest = sig.strip_prefix("pub fn ")?;
    let end = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

/// True when the signature's return type is a bare `f64` (not
/// `Result<f64, _>` / `Option<f64>` / a tuple / a generic).
fn returns_bare_f64(sig: &str) -> bool {
    let Some(arrow) = sig.rfind("->") else {
        return false;
    };
    let ret = sig[arrow + 2..].trim_start();
    let ret = ret.split(['{', ';']).next().unwrap_or("").trim();
    ret == "f64"
}

fn has_doc_contract(lines: &[LexedLine], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    while i > 0 {
        i -= 1;
        let code = lines[i].code.trim();
        let comment = lines[i].comment.trim();
        if comment.starts_with("///") {
            let lower = comment.to_lowercase();
            if CONTRACT_KEYWORDS.iter().any(|k| lower.contains(k)) {
                return true;
            }
            continue;
        }
        // Attributes (`#[inline]`, `#[must_use]`) sit between docs and fn.
        if code.starts_with("#[") || (code.is_empty() && comment.is_empty()) {
            continue;
        }
        break;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, src, &classify(path)).0
    }

    #[test]
    fn l01_fires_on_float_literal_compare_only() {
        let f = lint("crates/num/src/x.rs", "fn a(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::L01);
        assert!(lint("crates/num/src/x.rs", "fn a(n: u32) -> bool { n == 0 }\n").is_empty());
        assert!(lint("crates/num/src/x.rs", "fn a(n: u32) -> bool { n <= 1 }\n").is_empty());
        let f = lint(
            "crates/num/src/x.rs",
            "fn a(x: f64) -> bool { x != f64::NAN }\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn l01_ignores_tests_and_comments() {
        let src = "#[cfg(test)]\nmod tests {\n fn a(x: f64) -> bool { x == 0.0 }\n}\n";
        assert!(lint("crates/num/src/x.rs", src).is_empty());
        assert!(lint("crates/num/src/x.rs", "// x == 0.0\n").is_empty());
    }

    #[test]
    fn l02_waiver_with_reason_silences() {
        let src = "fn a() { b().unwrap(); } // lint:allow(unwrap): b is infallible here\n";
        let (f, waived) = check_file("crates/num/src/x.rs", src, &classify("crates/num/src/x.rs"));
        assert!(f.is_empty());
        assert_eq!(waived, 1);
    }

    #[test]
    fn l02_empty_waiver_reason_is_its_own_finding() {
        let src = "fn a() { b().unwrap(); } // lint:allow(unwrap):\n";
        let f = lint("crates/num/src/x.rs", src);
        assert!(f.iter().any(|f| f.rule == Rule::L02));
        assert!(f.iter().any(|f| f.rule == Rule::W01));
    }

    #[test]
    fn l02_preceding_line_waiver() {
        let src = "// lint:allow(unwrap): length checked above\nfn a() { xs.first().unwrap(); }\n";
        let (f, waived) = check_file("crates/num/src/x.rs", src, &classify("crates/num/src/x.rs"));
        assert!(f.is_empty());
        assert_eq!(waived, 1);
    }

    #[test]
    fn l02_skips_unwrap_or_variants() {
        let src = "fn a() -> f64 { b().unwrap_or(0.0) + c().unwrap_or_else(|| 1.0) }\n";
        assert!(lint("crates/dist/src/x.rs", src)
            .iter()
            .all(|f| f.rule != Rule::L02));
    }

    #[test]
    fn l03_and_l04_and_l07() {
        let f = lint(
            "crates/sim/src/x.rs",
            "fn a() { panic!(\"boom\"); println!(\"x\"); std::process::exit(1); }\n",
        );
        assert!(f.iter().any(|f| f.rule == Rule::L03));
        assert!(f.iter().any(|f| f.rule == Rule::L04));
        assert!(f.iter().any(|f| f.rule == Rule::L07));
        // All three are fine in a bin.
        let f = lint(
            "crates/sim/src/bin/x.rs",
            "fn main() { panic!(\"boom\"); println!(\"x\"); std::process::exit(1); }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn l08_fires_in_library_code_outside_obs_only() {
        let src = "fn a() { let t = std::time::Instant::now(); }\n";
        let f = lint("crates/sim/src/x.rs", src);
        assert!(f.iter().any(|f| f.rule == Rule::L08));
        // `crates/obs` owns the clock; bins may time themselves.
        assert!(lint("crates/obs/src/x.rs", src).is_empty());
        let bin = "fn main() { let t = std::time::Instant::now(); }\n";
        assert!(lint("crates/sim/src/bin/x.rs", bin).is_empty());
        // `use` of the type alone is enough to flag.
        let f = lint("crates/queue/src/x.rs", "use std::time::Instant;\n");
        assert!(f.iter().any(|f| f.rule == Rule::L08));
        // Prose like "Instantiates" must not trip the rule.
        let f = lint(
            "crates/sim/src/x.rs",
            "/// Instantiates the scheduler.\nfn a() { instantiate(); }\n",
        );
        assert!(f.iter().all(|f| f.rule != Rule::L08));
    }

    #[test]
    fn l08_waiver_with_reason_silences() {
        let src = "// lint:allow(instant): coarse one-shot timing, not a metric\n\
                   fn a() { let t = std::time::Instant::now(); }\n";
        let (f, waived) = check_file("crates/sim/src/x.rs", src, &classify("crates/sim/src/x.rs"));
        assert!(f.iter().all(|f| f.rule != Rule::L08));
        assert_eq!(waived, 1);
    }

    #[test]
    fn l09_flags_buffer_push_in_sim_library_code_only() {
        let src = "fn a(&mut self, x: f64) { self.samples.push(x); }\n";
        let f = lint("crates/sim/src/x.rs", src);
        assert!(f.iter().any(|f| f.rule == Rule::L09));
        // Other crates, bins, and tests are out of scope.
        assert!(lint("crates/queue/src/x.rs", src).is_empty());
        assert!(lint("crates/sim/src/bin/x.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n fn a(v: &mut Vec<f64>) { v.push(1.0); }\n}\n";
        assert!(lint("crates/sim/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn l09_exempts_pending_event_queues() {
        for src in [
            "fn a(&mut self) { self.calendar.push(s); }\n",
            "fn a(&mut self) { heap.push(Reverse(s)); }\n",
            "fn a(&mut self) { self.overflow.push(Reverse(s)); }\n",
            "fn a(&mut self) { heads.push(Reverse((t, i))); }\n",
            "fn a(&mut self) { bucket.push(s); }\n",
        ] {
            assert!(
                lint("crates/sim/src/x.rs", src).is_empty(),
                "false positive on {src}"
            );
        }
        // `push_str` and similar are not `.push(`.
        assert!(lint(
            "crates/sim/src/x.rs",
            "fn a(s: &mut String) { s.push_str(\"x\"); }\n"
        )
        .is_empty());
    }

    #[test]
    fn l09_waiver_with_bound_silences() {
        let src = "// lint:allow(unbounded_push): one entry per client, fixed at construction\n\
                   fn a(&mut self) { self.links.push(link); }\n";
        let (f, waived) = check_file("crates/sim/src/x.rs", src, &classify("crates/sim/src/x.rs"));
        assert!(f.iter().all(|f| f.rule != Rule::L09));
        assert_eq!(waived, 1);
    }

    #[test]
    fn l05_requires_contract_in_num_and_queue_only() {
        let undocumented = "/// Mean of the thing.\npub fn mean(&self) -> f64 { 0.0 }\n";
        assert!(lint("crates/num/src/x.rs", undocumented)
            .iter()
            .any(|f| f.rule == Rule::L05));
        assert!(lint("crates/dist/src/x.rs", undocumented)
            .iter()
            .all(|f| f.rule != Rule::L05));
        let documented =
            "/// Mean of the thing; always finite for valid input.\npub fn mean(&self) -> f64 { 0.0 }\n";
        assert!(lint("crates/num/src/x.rs", documented)
            .iter()
            .all(|f| f.rule != Rule::L05));
        let result = "pub fn mean(&self) -> Result<f64, E> { Ok(0.0) }\n";
        assert!(lint("crates/queue/src/x.rs", result)
            .iter()
            .all(|f| f.rule != Rule::L05));
    }

    #[test]
    fn l06_missing_forbid() {
        let f = lint("crates/num/src/lib.rs", "pub mod x;\n");
        assert!(f.iter().any(|f| f.rule == Rule::L06));
        let f = lint(
            "crates/num/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n",
        );
        assert!(f.iter().all(|f| f.rule != Rule::L06));
    }
}
