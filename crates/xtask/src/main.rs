//! `cargo xtask` — the workspace's first-party task runner.
//!
//! Subcommands:
//!
//! * `lint` — run the domain lint pass (see the library docs for the rule
//!   table). Exits 0 when clean (modulo `lint.toml`), 1 on findings, 2 on
//!   usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{baseline::Baseline, lint_source_with, lint_workspace, LockOrder, Report};

const USAGE: &str = "\
usage: cargo xtask lint [options]

options:
  --format <human|json|summary>   output format (default: human)
  --root <path>                   workspace root (default: autodetected)
  --baseline <path>               waiver file (default: <root>/lint.toml)
  --lockorder <path>              lock total order (default: <root>/lockorder.toml)
  --file <path> --as <rel-path>   lint one file as if at <rel-path>,
                                  skipping the walk and the baseline
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Summary,
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => {}
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
        None => return Err("missing subcommand".into()),
    }
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut lockorder_path: Option<PathBuf> = None;
    let mut single_file: Option<PathBuf> = None;
    let mut pretend: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("summary") => Format::Summary,
                    other => return Err(format!("bad --format {other:?}")),
                };
            }
            "--root" => root = Some(PathBuf::from(it.next().ok_or("missing --root value")?)),
            "--baseline" => {
                baseline_path = Some(PathBuf::from(it.next().ok_or("missing --baseline value")?));
            }
            "--lockorder" => {
                lockorder_path = Some(PathBuf::from(it.next().ok_or("missing --lockorder value")?));
            }
            "--file" => single_file = Some(PathBuf::from(it.next().ok_or("missing --file value")?)),
            "--as" => pretend = Some(it.next().ok_or("missing --as value")?.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    let report = if let Some(file) = single_file {
        let rel = pretend.ok_or("--file requires --as <rel-path>")?;
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        let order = match &lockorder_path {
            Some(p) => LockOrder::load(p).map_err(|e| e.to_string())?,
            None => LockOrder::default(),
        };
        let (findings, inline_waived) = lint_source_with(&rel, &source, &order);
        Report {
            active: findings,
            baseline_waived: Vec::new(),
            inline_waived,
            files_scanned: 1,
            stale_waivers: Vec::new(),
            stale_lock_order: Vec::new(),
        }
    } else {
        let root = root.unwrap_or_else(xtask::default_root);
        let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint.toml"));
        let baseline = Baseline::load(&baseline_path).map_err(|e| e.to_string())?;
        let lockorder_path = lockorder_path.unwrap_or_else(|| root.join("lockorder.toml"));
        let order = LockOrder::load(&lockorder_path).map_err(|e| e.to_string())?;
        lint_workspace(&root, &baseline, &order).map_err(|e| e.to_string())?
    };

    match format {
        Format::Human => {
            for f in &report.active {
                println!("{f}");
            }
            for s in &report.stale_waivers {
                println!("note: stale lint.toml waiver: {s}");
            }
            for s in &report.stale_lock_order {
                println!("note: stale lockorder.toml entry: {s}");
            }
            println!("{}", report.summary());
        }
        Format::Json => print!("{}", report.to_json()),
        Format::Summary => println!("{}", report.summary()),
    }
    Ok(if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
