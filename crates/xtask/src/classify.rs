//! File classification: which rule set applies to a given
//! workspace-relative path.

/// Everything the rules need to know about where a file sits.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Crate directory name under `crates/` (e.g. `"num"`).
    pub crate_dir: String,
    /// Binary context: `src/bin/**` or a `src/main.rs` entry point.
    pub is_bin: bool,
    /// The crate root `src/lib.rs`.
    pub is_lib_rs: bool,
    /// `println!`/`eprintln!` allowed here (bins, the bench harness crate,
    /// the CLI implementation module).
    pub println_allowed: bool,
    /// One of the numeric-kernel crates the L05 doc-contract rule covers.
    pub l05_applies: bool,
}

/// Classifies a workspace-relative, `/`-separated path like
/// `crates/num/src/roots.rs`.
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_dir = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        String::new()
    };
    let after_src: &[&str] = if parts.len() > 3 && parts[2] == "src" {
        &parts[3..]
    } else {
        &[]
    };
    let is_bin = after_src.first() == Some(&"bin") || after_src == ["main.rs"];
    let is_lib_rs = after_src == ["lib.rs"];
    // The CLI implementation lives in `crates/core/src/cli.rs` and is
    // driven by `src/bin/fpsping-cli.rs`; bench is an output-producing
    // harness crate end to end.
    let is_cli = crate_dir == "core" && after_src == ["cli.rs"];
    let println_allowed = is_bin || crate_dir == "bench" || is_cli;
    let l05_applies = crate_dir == "num" || crate_dir == "queue";
    FileClass {
        crate_dir,
        is_bin,
        is_lib_rs,
        println_allowed,
        l05_applies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_library_and_bin_paths() {
        let c = classify("crates/num/src/roots.rs");
        assert!(!c.is_bin && !c.is_lib_rs && c.l05_applies && !c.println_allowed);
        let c = classify("crates/core/src/bin/fpsping-cli.rs");
        assert!(c.is_bin && c.println_allowed);
        let c = classify("crates/xtask/src/main.rs");
        assert!(c.is_bin);
        let c = classify("crates/queue/src/lib.rs");
        assert!(c.is_lib_rs && c.l05_applies);
        let c = classify("crates/bench/src/lib.rs");
        assert!(c.println_allowed && !c.is_bin);
        let c = classify("crates/core/src/cli.rs");
        assert!(c.println_allowed && !c.is_bin);
    }
}
