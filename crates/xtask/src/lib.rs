//! # xtask — first-party static analysis for the fpsping workspace
//!
//! `cargo xtask lint` walks every first-party `crates/*/src` source file
//! with a comment/string-aware line lexer and enforces the domain rules
//! the tier-1 gate cannot delegate to clippy (which is conditionally
//! installed at best, and cannot express them anyway):
//!
//! | rule | what it rejects |
//! |------|-----------------|
//! | L01  | exact float `==` / `!=` outside `#[cfg(test)]` |
//! | L02  | `unwrap()` / `expect()` in library code without a waiver |
//! | L03  | `panic!` / `todo!` / `unimplemented!` in library code |
//! | L04  | `println!` / `eprintln!` outside bins, `crates/bench`, the CLI |
//! | L05  | `pub fn … -> f64` in `fpsping-num` / `fpsping-queue` without a NaN/domain doc contract |
//! | L06  | a first-party `lib.rs` missing `#![forbid(unsafe_code)]` |
//! | L07  | `std::process::exit` outside `src/bin` |
//! | L08  | direct `std::time::Instant` in library crates outside `crates/obs` |
//! | L09  | `.push(…)` onto a growable buffer in `crates/sim` library code without a documented size bound (pending-event queues exempt) |
//! | L10  | nested lock acquisition whose class pair is absent from (or inverts) the checked-in `lockorder.toml` total order |
//! | L11  | a lock guard held across a `fpsping_num`/`fpsping_queue` solver call or blocking I/O (`read`/`write`/`accept`) |
//! | L12  | raw `.lock()` / ad-hoc poison recovery outside the audited `fpsping_obs::lock` helpers |
//!
//! L10–L12 are **cross-file**: lock classes (`crate::Type::field`) are
//! indexed over the whole workspace first (see [`locks`]), then each file
//! is re-walked with a guard-section tracker. The blessed acquisition
//! order lives in `lockorder.toml` next to `lint.toml`.
//!
//! Individual findings are silenced inline with
//! `// lint:allow(<slug>): <non-empty reason>` on the same or preceding
//! line; pre-existing debt is carried by the checked-in `lint.toml`
//! baseline (per file+rule allowances with mandatory justifications), so
//! the gate fails only on *new* findings.
//!
//! Everything here is pure `std` — the registry is unreachable in the
//! build environment and the lint gate must run fully offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod classify;
pub mod lexer;
pub mod locks;
pub mod rules;

pub use baseline::{Baseline, Waiver};
pub use classify::FileClass;
pub use locks::{LockIndex, LockOrder};

/// The rule identifiers. `W*` rules police the waiver mechanism itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Exact float `==`/`!=` outside tests.
    L01,
    /// `unwrap()`/`expect()` in library code.
    L02,
    /// `panic!`/`todo!`/`unimplemented!` in library code.
    L03,
    /// `println!`/`eprintln!` outside bins / bench / CLI.
    L04,
    /// Undocumented `pub fn … -> f64` in the numeric kernels.
    L05,
    /// Missing `#![forbid(unsafe_code)]` in a first-party `lib.rs`.
    L06,
    /// `std::process::exit` outside `src/bin`.
    L07,
    /// Direct `std::time::Instant` in a library crate outside `crates/obs`.
    L08,
    /// Undocumented growable-buffer `.push(…)` in `crates/sim` library code.
    L09,
    /// Nested lock acquisition outside the `lockorder.toml` total order.
    L10,
    /// Lock guard held across a solver call or blocking I/O.
    L11,
    /// Raw `.lock()` / ad-hoc poison recovery outside `fpsping_obs::lock`.
    L12,
    /// A waiver (inline or baseline) with an empty justification.
    W01,
}

impl Rule {
    /// The slug accepted by `// lint:allow(<slug>): …` for this rule.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::L01 => "float_eq",
            Rule::L02 => "unwrap",
            Rule::L03 => "panic",
            Rule::L04 => "println",
            Rule::L05 => "doc_contract",
            Rule::L06 => "forbid_unsafe",
            Rule::L07 => "process_exit",
            Rule::L08 => "instant",
            Rule::L09 => "unbounded_push",
            Rule::L10 => "lock_order",
            Rule::L11 => "lock_held",
            Rule::L12 => "raw_lock",
            Rule::W01 => "waiver",
        }
    }

    /// Parses a rule ID (`"L02"`) or slug (`"unwrap"`).
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "L01" | "float_eq" => Some(Rule::L01),
            "L02" | "unwrap" => Some(Rule::L02),
            "L03" | "panic" => Some(Rule::L03),
            "L04" | "println" => Some(Rule::L04),
            "L05" | "doc_contract" => Some(Rule::L05),
            "L06" | "forbid_unsafe" => Some(Rule::L06),
            "L07" | "process_exit" => Some(Rule::L07),
            "L08" | "instant" => Some(Rule::L08),
            "L09" | "unbounded_push" => Some(Rule::L09),
            "L10" | "lock_order" => Some(Rule::L10),
            "L11" | "lock_held" => Some(Rule::L11),
            "L12" | "raw_lock" => Some(Rule::L12),
            "W01" | "waiver" => Some(Rule::W01),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One lint finding, pinned to a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number (0 for whole-file findings such as L06).
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-oriented description of this specific occurrence.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Outcome of a lint run, split into gate-failing and waived findings.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that fail the gate.
    pub active: Vec<Finding>,
    /// Findings absorbed by the `lint.toml` baseline.
    pub baseline_waived: Vec<Finding>,
    /// Count of findings silenced by inline `lint:allow` comments.
    pub inline_waived: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Baseline entries that matched zero findings (stale — informational).
    pub stale_waivers: Vec<String>,
    /// `lockorder.toml` entries naming classes the index never saw
    /// (stale — informational, must shrink like stale waivers).
    pub stale_lock_order: Vec<String>,
}

impl Report {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.active.is_empty()
    }

    /// One-line status, the same line tier1.sh surfaces when clippy is
    /// absent.
    pub fn summary(&self) -> String {
        format!(
            "xtask lint: {} finding(s) ({} baseline-waived, {} inline-waived) across {} files{}{}",
            self.active.len(),
            self.baseline_waived.len(),
            self.inline_waived,
            self.files_scanned,
            if self.stale_waivers.is_empty() {
                String::new()
            } else {
                format!("; {} stale baseline waiver(s)", self.stale_waivers.len())
            },
            if self.stale_lock_order.is_empty() {
                String::new()
            } else {
                format!(
                    "; {} stale lockorder.toml entr(y/ies)",
                    self.stale_lock_order.len()
                )
            }
        )
    }

    /// Serializes the report as a small, dependency-free JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.active.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.rule.to_string()),
                json_str(&f.message)
            ));
        }
        if !self.active.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"baseline_waived\": {},\n  \"inline_waived\": {},\n  \"files_scanned\": {},\n  \"stale_waivers\": [",
            self.baseline_waived.len(),
            self.inline_waived,
            self.files_scanned
        ));
        for (i, s) in self.stale_waivers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(s));
        }
        out.push_str("],\n  \"stale_lock_order\": [");
        for (i, s) in self.stale_lock_order.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(s));
        }
        out.push_str(&format!("],\n  \"ok\": {}\n}}\n", self.ok()));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Errors from driving a lint run (I/O, malformed baseline, bad usage).
#[derive(Debug)]
pub enum LintError {
    /// Filesystem error while walking or reading sources.
    Io(String),
    /// `lint.toml` could not be parsed.
    Baseline(String),
    /// `lockorder.toml` could not be parsed.
    LockOrder(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(m) => write!(f, "io error: {m}"),
            LintError::Baseline(m) => write!(f, "lint.toml: {m}"),
            LintError::LockOrder(m) => write!(f, "lockorder.toml: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Lints a single source text as if it lived at `rel_path` (workspace
/// relative, `/`-separated). Inline waivers are honored; the baseline is
/// not consulted. The cross-file lock index is built from this one file
/// against an empty lock order. Returns `(findings, inline_waived_count)`.
pub fn lint_source(rel_path: &str, source: &str) -> (Vec<Finding>, usize) {
    lint_source_with(rel_path, source, &LockOrder::default())
}

/// [`lint_source`] against an explicit lock order (single-file CLI mode
/// with `--lockorder`).
pub fn lint_source_with(rel_path: &str, source: &str, order: &LockOrder) -> (Vec<Finding>, usize) {
    let class = classify::classify(rel_path);
    let mut index = LockIndex::default();
    let lines = lexer::lex(source);
    index.index_file(rel_path, source, &lines);
    rules::check_file_with(rel_path, source, &class, &index, order)
}

/// Walks `crates/*/src` under `root`, lints every `.rs` file, and applies
/// the baseline. Two passes: the first builds the workspace-wide lock
/// index (L10–L12 resolve classes across files), the second runs the
/// rules.
pub fn lint_workspace(
    root: &Path,
    baseline: &Baseline,
    order: &LockOrder,
) -> Result<Report, LintError> {
    let mut files = collect_sources(root)?;
    files.sort();
    let mut report = Report::default();
    // Pass 1: read everything and index lock classes.
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    let mut index = LockIndex::default();
    for rel in &files {
        let full = root.join(rel);
        let source = std::fs::read_to_string(&full)
            .map_err(|e| LintError::Io(format!("{}: {e}", full.display())))?;
        let lines = lexer::lex(&source);
        index.index_file(rel, &source, &lines);
        sources.push((rel.clone(), source));
    }
    report.stale_lock_order = order.stale_entries(&index);
    // Pass 2: run the rules with the full index in hand.
    // (file, rule) -> active findings, for baseline matching.
    let mut by_key: BTreeMap<(String, Rule), Vec<Finding>> = BTreeMap::new();
    for (rel, source) in &sources {
        let class = classify::classify(rel);
        let (findings, inline) = rules::check_file_with(rel, source, &class, &index, order);
        report.inline_waived += inline;
        report.files_scanned += 1;
        for f in findings {
            by_key.entry((f.file.clone(), f.rule)).or_default().push(f);
        }
    }
    // Baseline waivers with empty justifications are themselves findings.
    for w in &baseline.waivers {
        if w.justification.trim().is_empty() {
            report.active.push(Finding {
                file: "lint.toml".into(),
                line: w.line,
                rule: Rule::W01,
                message: format!(
                    "baseline waiver for {} / {} has an empty justification",
                    w.file, w.rule
                ),
            });
        }
    }
    let mut used = vec![false; baseline.waivers.len()];
    for ((file, rule), findings) in by_key {
        let allowance: usize = baseline
            .waivers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.file == file && w.rule == rule && !w.justification.trim().is_empty())
            .map(|(i, w)| {
                used[i] = true;
                w.max
            })
            .sum();
        if findings.len() <= allowance {
            report.baseline_waived.extend(findings);
        } else if allowance > 0 {
            let n = findings.len();
            for mut f in findings {
                f.message = format!(
                    "{} [{} finding(s) exceed the lint.toml allowance of {}]",
                    f.message, n, allowance
                );
                report.active.push(f);
            }
        } else {
            report.active.extend(findings);
        }
    }
    for (i, w) in baseline.waivers.iter().enumerate() {
        if !used[i] {
            report
                .stale_waivers
                .push(format!("{} / {} (max {})", w.file, w.rule, w.max));
        }
    }
    report.active.sort_by(|a, b| {
        (&a.file, a.line, a.rule)
            .partial_cmp(&(&b.file, b.line, b.rule))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(report)
}

/// Collects workspace-relative paths of every first-party source file:
/// `crates/<crate>/src/**/*.rs`. Vendored shims (`vendor/*`) are out of
/// scope by construction.
pub fn collect_sources(root: &Path) -> Result<Vec<String>, LintError> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| LintError::Io(format!("{}: {e}", crates_dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(e.to_string()))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut out)?;
        }
    }
    Ok(out)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(e.to_string()))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| LintError::Io(e.to_string()))?;
            out.push(rel_to_slash(rel));
        }
    }
    Ok(())
}

fn rel_to_slash(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The workspace root this binary was built in, falling back to the
/// current directory when the baked-in path no longer exists (e.g. a
/// relocated checkout).
pub fn default_root() -> PathBuf {
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if baked.join("Cargo.toml").is_file() {
        baked
    } else {
        PathBuf::from(".")
    }
}
