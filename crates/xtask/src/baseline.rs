//! The `lint.toml` waiver baseline.
//!
//! The baseline carries pre-existing, individually justified findings so
//! the gate fails only on *new* ones. It is a strict subset of TOML —
//! `[[waiver]]` table arrays with string / integer keys — parsed by hand
//! because the build environment has no reachable registry and the lint
//! gate must stay dependency-free.
//!
//! ```toml
//! [[waiver]]
//! file = "crates/bench/src/lib.rs"
//! rule = "L07"            # or the slug, "process_exit"
//! max = 1                 # findings allowed for this (file, rule)
//! justification = "usage-error exit in the shared bench arg parser"
//! ```

use crate::{LintError, Rule};
use std::path::Path;

/// One `[[waiver]]` entry.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Workspace-relative file the waiver applies to.
    pub file: String,
    /// The waived rule.
    pub rule: Rule,
    /// Number of findings of `rule` in `file` this entry absorbs.
    pub max: usize,
    /// Mandatory non-empty rationale.
    pub justification: String,
    /// Line in `lint.toml` where the entry starts (for diagnostics).
    pub line: usize,
}

/// The parsed baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All waiver entries, in file order.
    pub waivers: Vec<Waiver>,
}

impl Baseline {
    /// Loads `lint.toml` from `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, LintError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(LintError::Io(format!("{}: {e}", path.display()))),
        }
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, LintError> {
        let mut waivers = Vec::new();
        let mut cur: Option<PartialWaiver> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[waiver]]" {
                finish(&mut cur, &mut waivers)?;
                cur = Some(PartialWaiver {
                    file: None,
                    rule: None,
                    max: None,
                    justification: String::new(),
                    line: lineno,
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(LintError::Baseline(format!(
                    "line {lineno}: unsupported table `{line}` (only [[waiver]] is recognized)"
                )));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(LintError::Baseline(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                )));
            };
            let Some(entry) = cur.as_mut() else {
                return Err(LintError::Baseline(format!(
                    "line {lineno}: key outside a [[waiver]] table"
                )));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "file" => entry.file = Some(parse_toml_string(value, lineno)?),
                "rule" => {
                    let s = parse_toml_string(value, lineno)?;
                    entry.rule = Some(Rule::parse(&s).ok_or_else(|| {
                        LintError::Baseline(format!("line {lineno}: unknown rule `{s}`"))
                    })?);
                }
                "max" => {
                    entry.max = Some(value.parse::<usize>().map_err(|_| {
                        LintError::Baseline(format!("line {lineno}: `max` must be an integer"))
                    })?);
                }
                "justification" => entry.justification = parse_toml_string(value, lineno)?,
                other => {
                    return Err(LintError::Baseline(format!(
                        "line {lineno}: unknown key `{other}`"
                    )));
                }
            }
        }
        finish(&mut cur, &mut waivers)?;
        Ok(Self { waivers })
    }
}

/// A `[[waiver]]` table mid-parse: everything optional until `finish`
/// checks the required keys arrived.
struct PartialWaiver {
    file: Option<String>,
    rule: Option<Rule>,
    max: Option<usize>,
    justification: String,
    line: usize,
}

fn finish(cur: &mut Option<PartialWaiver>, waivers: &mut Vec<Waiver>) -> Result<(), LintError> {
    if let Some(p) = cur.take() {
        let line = p.line;
        let file = p
            .file
            .ok_or_else(|| LintError::Baseline(format!("waiver at line {line}: missing `file`")))?;
        let rule = p
            .rule
            .ok_or_else(|| LintError::Baseline(format!("waiver at line {line}: missing `rule`")))?;
        if p.justification.trim().is_empty() {
            return Err(LintError::Baseline(format!(
                "waiver at line {line}: missing or empty `justification` — every waiver must say why"
            )));
        }
        waivers.push(Waiver {
            file,
            rule,
            max: p.max.unwrap_or(1),
            justification: p.justification,
            line,
        });
    }
    Ok(())
}

fn strip_toml_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_string(value: &str, lineno: usize) -> Result<String, LintError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(LintError::Baseline(format!(
            "line {lineno}: expected a double-quoted string, got `{v}`"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_waiver_entries() {
        let b = Baseline::parse(
            "# comment\n[[waiver]]\nfile = \"crates/a/src/x.rs\"\nrule = \"L02\"\nmax = 3\n\
             justification = \"legacy\" # trailing\n\n[[waiver]]\nfile = \"y.rs\"\nrule = \"process_exit\"\n\
             justification = \"bin-like\"\n",
        )
        .unwrap();
        assert_eq!(b.waivers.len(), 2);
        assert_eq!(b.waivers[0].max, 3);
        assert_eq!(b.waivers[0].rule, Rule::L02);
        assert_eq!(b.waivers[1].rule, Rule::L07);
        assert_eq!(b.waivers[1].max, 1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Baseline::parse("[[waiver]]\nrule = \"L02\"\n").is_err());
        // A waiver without a justification is rejected, not defaulted.
        assert!(Baseline::parse("[[waiver]]\nfile = \"x\"\nrule = \"L02\"\n").is_err());
        assert!(Baseline::parse(
            "[[waiver]]\nfile = \"x\"\nrule = \"L02\"\njustification = \" \"\n"
        )
        .is_err());
        assert!(Baseline::parse("[[waiver]]\nfile = \"x\"\nrule = \"L99\"\n").is_err());
        assert!(Baseline::parse("[other]\n").is_err());
        assert!(Baseline::parse("file = \"x\"\n").is_err());
    }

    #[test]
    fn missing_file_is_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/lint.toml")).unwrap();
        assert!(b.waivers.is_empty());
    }
}
