//! Cross-file lock-discipline analysis: the class index, the
//! `lockorder.toml` total order, and the guard-section tracker behind
//! rules L10 / L11 / L12.
//!
//! Unlike L01–L09 (each a pure function of one file), these rules need a
//! **workspace-wide pass**: the lock acquired at one site is frequently a
//! field declared in another file (`lock(&registry().counters)` in
//! `metrics.rs` locks a field of `Registry`, declared in `lib.rs`). The
//! analysis therefore runs in two stages:
//!
//! 1. [`LockIndex::index_file`] scans every source file for **lock
//!    classes** — a class per `Mutex`/`RwLock` struct field
//!    (`crate::Type::field`), per mutex-typed `static` (`crate::NAME`),
//!    per accessor returning `&Mutex<…>`, and per
//!    `fpsping_obs::lockdep::LockClass` static (whose class *name* is
//!    read out of its string literal, so the static linter and the
//!    runtime witness agree on spelling).
//! 2. [`check_locks`] re-walks each file with a lightweight block
//!    tracker on top of the comment/string-aware lexer: a `let`-bound
//!    guard opens a **section** that stays open until its enclosing
//!    block closes (or an explicit `drop(guard)`); a guard that is a
//!    temporary (`lock(&m).field`, `m.lock()?.len()`) never opens a
//!    section — it is dropped at the end of its statement, which is
//!    exactly the blind spot a naive span tracker gets wrong.
//!
//! Inside an open section:
//!
//! * another acquisition forms an ordered class pair, checked against
//!   the `lockorder.toml` total order (**L10**);
//! * a call into the `fpsping_num`/`fpsping_queue` solver entry points
//!   or blocking I/O (`read`/`write`/`accept`/`flush`) is the
//!   lock-convoy smell that corrupts serve's tail latency (**L11**).
//!
//! **L12** is positional: a raw `.lock()` (or ad-hoc
//! `PoisonError::into_inner` recovery) anywhere outside `crates/obs` —
//! every mutex acquisition must route through the audited
//! `fpsping_obs::lock` / `lock_class` helpers so poison recovery and the
//! lockdep witness cover it.

use crate::classify::FileClass;
use crate::lexer::LexedLine;
use crate::{Finding, LintError, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// What kind of lock a class definition guards (affects which method
/// names count as acquisitions on resolved receivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
}

/// One lock-class definition site.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Canonical class name, `crate::Type::field` / `crate::STATIC`.
    pub class: String,
    /// Crate directory the definition lives in (`"serve"`, `"obs"`, …).
    pub crate_dir: String,
    /// Workspace-relative file of the definition.
    pub file: String,
    /// Mutex or RwLock.
    pub kind: LockKind,
}

/// The workspace-wide lock-class index (stage 1 of the cross-file pass).
#[derive(Debug, Default)]
pub struct LockIndex {
    /// Field / static / accessor name → candidate classes.
    by_name: BTreeMap<String, Vec<ClassDef>>,
    /// `LockClass` static identifier → the class name registered with the
    /// runtime witness (read from the `LockClass::new("…")` literal).
    class_statics: BTreeMap<String, String>,
    /// Every known class name (for `lockorder.toml` stale-entry checks).
    classes: BTreeSet<String>,
}

impl LockIndex {
    /// Indexes one file's lock-class definitions. `lines` must be the
    /// lexed view of `source` (the raw text is needed to read the string
    /// literal out of `LockClass::new("…")`, which the lexer blanks).
    pub fn index_file(&mut self, rel_path: &str, source: &str, lines: &[LexedLine]) {
        let crate_dir = crate_dir_of(rel_path);
        let raw_lines: Vec<&str> = source.lines().collect();
        let mut depth: i64 = 0;
        // Innermost named item context: (type name, depth at its `{`).
        let mut ctx: Vec<(String, i64)> = Vec::new();
        for (idx, line) in lines.iter().enumerate() {
            let code = line.code.as_str();
            let trimmed = code.trim();

            // `static NAME: … Mutex<…>` / `static NAME: LockClass = …`.
            if let Some(name) = static_decl_name(trimmed) {
                if let Some(kind) = lock_type_in(trimmed) {
                    self.push_def(
                        name.to_string(),
                        ClassDef {
                            class: format!("{crate_dir}::{name}"),
                            crate_dir: crate_dir.clone(),
                            file: rel_path.to_string(),
                            kind,
                        },
                    );
                } else if trimmed.contains("LockClass") {
                    // The class name lives in the (lexer-blanked) string
                    // literal; read it from the raw text, which may put
                    // the literal on the following line.
                    let lit = raw_lines
                        .get(idx)
                        .and_then(|l| quoted_literal_after(l, "LockClass::new"))
                        .or_else(|| raw_lines.get(idx + 1).and_then(|l| first_quoted_literal(l)));
                    if let Some(class) = lit {
                        self.class_statics.insert(name.to_string(), class.clone());
                        self.classes.insert(class);
                    }
                }
            }

            // Single-line struct declarations carry their fields on the
            // `{` line itself: `struct S { a: Mutex<u32>, b: Mutex<u32> }`.
            if let Some(pos) = find_kw(trimmed, "struct ").or_else(|| find_kw(trimmed, "union ")) {
                let after_kw = &trimmed[pos..];
                let name = leading_ident(after_kw.split_once(' ').map_or("", |(_, r)| r.trim()));
                if !name.is_empty() {
                    if let Some(body) = inline_brace_body(after_kw) {
                        for piece in split_top_level(&body) {
                            if let Some((field, kind)) = field_decl(piece.trim()) {
                                self.push_def(
                                    field.to_string(),
                                    ClassDef {
                                        class: format!("{crate_dir}::{name}::{field}"),
                                        crate_dir: crate_dir.clone(),
                                        file: rel_path.to_string(),
                                        kind,
                                    },
                                );
                            }
                        }
                    }
                }
            }

            // Struct fields: `name: … Mutex<…>` inside a named item, not a
            // `fn` signature, not a `&Mutex` reference parameter.
            if let Some((_, ctx_depth)) = ctx.last() {
                if depth == ctx_depth + 1
                    && !trimmed.starts_with("let ")
                    && !trimmed.contains("fn ")
                {
                    if let Some((field, kind)) = field_decl(trimmed) {
                        let owner = ctx.last().map(|(n, _)| n.clone()).unwrap_or_default();
                        self.push_def(
                            field.to_string(),
                            ClassDef {
                                class: format!("{crate_dir}::{owner}::{field}"),
                                crate_dir: crate_dir.clone(),
                                file: rel_path.to_string(),
                                kind,
                            },
                        );
                    }
                }
            }

            // Accessor methods returning a lock: `fn name(…) -> &Mutex<…>`.
            if let Some((name, kind)) = accessor_decl(trimmed) {
                let owner = ctx
                    .last()
                    .map(|(n, _)| format!("::{n}"))
                    .unwrap_or_default();
                self.push_def(
                    name.to_string(),
                    ClassDef {
                        class: format!("{crate_dir}{owner}::{name}"),
                        crate_dir: crate_dir.clone(),
                        file: rel_path.to_string(),
                        kind,
                    },
                );
            }

            // Track item context and brace depth.
            let item = item_decl_name(trimmed);
            for c in code.chars() {
                match c {
                    '{' => {
                        if let Some(name) = item.as_deref() {
                            if ctx.last().map(|(n, _)| n.as_str()) != Some(name)
                                || ctx.last().map(|(_, d)| *d) != Some(depth)
                            {
                                ctx.push((name.to_string(), depth));
                            }
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        while ctx.last().is_some_and(|(_, d)| *d >= depth) {
                            ctx.pop();
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn push_def(&mut self, name: String, def: ClassDef) {
        self.classes.insert(def.class.clone());
        let defs = self.by_name.entry(name).or_default();
        if !defs.iter().any(|d| d.class == def.class) {
            defs.push(def);
        }
    }

    /// Every class name the index knows about.
    pub fn classes(&self) -> &BTreeSet<String> {
        &self.classes
    }

    /// Resolves an acquisition's key token to a class name. Preference:
    /// definition in the same file, then the same crate, then a globally
    /// unique name; ambiguous or unknown names resolve to `?token`,
    /// which can never appear in `lockorder.toml` (so nested use gets
    /// flagged until the lock is given a registered class).
    fn resolve(&self, token: &str, rel_path: &str) -> String {
        if let Some(class) = self.class_statics.get(token) {
            return class.clone();
        }
        let Some(defs) = self.by_name.get(token) else {
            return format!("?{token}");
        };
        let same_file: Vec<&ClassDef> = defs.iter().filter(|d| d.file == rel_path).collect();
        if let [d] = same_file.as_slice() {
            return d.class.clone();
        }
        let crate_dir = crate_dir_of(rel_path);
        let same_crate: Vec<&ClassDef> = defs.iter().filter(|d| d.crate_dir == crate_dir).collect();
        if let [d] = same_crate.as_slice() {
            return d.class.clone();
        }
        if let [d] = defs.as_slice() {
            return d.class.clone();
        }
        format!("?{token}")
    }

    fn kind_of(&self, class: &str) -> Option<LockKind> {
        self.by_name
            .values()
            .flatten()
            .find(|d| d.class == class)
            .map(|d| d.kind)
    }
}

/// The crate directory of a workspace-relative path (`crates/serve/src/…`
/// → `serve`); empty for paths outside `crates/`.
fn crate_dir_of(rel_path: &str) -> String {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        String::new()
    }
}

/// `static NAME: …` / `pub static NAME: …` → `NAME`.
fn static_decl_name(trimmed: &str) -> Option<&str> {
    let rest = trimmed
        .strip_prefix("pub static ")
        .or_else(|| trimmed.strip_prefix("pub(crate) static "))
        .or_else(|| trimmed.strip_prefix("static "))?;
    let end = rest.find([':', ' '])?;
    let name = &rest[..end];
    is_ident(name).then_some(name)
}

/// `struct Name` / `enum Name` / `impl … Name` on an item-opening line.
fn item_decl_name(trimmed: &str) -> Option<String> {
    for kw in ["struct ", "enum ", "union "] {
        if let Some(pos) = find_kw(trimmed, kw) {
            let rest = &trimmed[pos + kw.len()..];
            return Some(leading_ident(rest).to_string());
        }
    }
    if let Some(pos) = find_kw(trimmed, "impl") {
        let mut rest = trimmed[pos + 4..].trim_start();
        // Skip the generic parameter list: `impl<K: Eq, V> Type<K, V>`.
        if rest.starts_with('<') {
            let mut depth = 0usize;
            let mut cut = rest.len();
            for (i, c) in rest.char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            rest = rest[cut..].trim_start();
        }
        // `impl Trait for Type` → take the type after `for`.
        if let Some(for_pos) = find_kw(rest, "for ") {
            rest = rest[for_pos + 4..].trim_start();
        }
        let name = leading_ident(rest);
        if !name.is_empty() {
            return Some(name.to_string());
        }
    }
    None
}

/// Finds `kw` at a word boundary (preceded by start/non-ident).
fn find_kw(s: &str, kw: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(p) = s[start..].find(kw) {
        let abs = start + p;
        let ok = abs == 0
            || !s[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if ok {
            return Some(abs);
        }
        start = abs + kw.len();
    }
    None
}

fn leading_ident(s: &str) -> &str {
    let end = s
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    &s[..end]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// `Mutex<` / `RwLock<` in type position on this line.
fn lock_type_in(s: &str) -> Option<LockKind> {
    if s.contains("Mutex<") {
        Some(LockKind::Mutex)
    } else if s.contains("RwLock<") {
        Some(LockKind::RwLock)
    } else {
        None
    }
}

/// A struct-field declaration `name: …Mutex<…>` with an owned (not `&`)
/// lock type; returns the field name and kind.
fn field_decl(trimmed: &str) -> Option<(&str, LockKind)> {
    let s = trimmed.strip_prefix("pub ").unwrap_or(trimmed);
    let s = s.strip_prefix("pub(crate) ").unwrap_or(s);
    let colon = s.find(':')?;
    let name = s[..colon].trim();
    if !is_ident(name) {
        return None;
    }
    let ty = &s[colon + 1..];
    let kind = lock_type_in(ty)?;
    // A `&Mutex` before the lock type is a reference (parameter/return),
    // not an owning field.
    let lock_pos = ty.find("Mutex<").or_else(|| ty.find("RwLock<"))?;
    if ty[..lock_pos].contains('&') {
        return None;
    }
    Some((name, kind))
}

/// `fn name(…) -> &Mutex<…>` — an accessor that hands out a lock.
fn accessor_decl(trimmed: &str) -> Option<(&str, LockKind)> {
    let fn_pos = find_kw(trimmed, "fn ")?;
    let arrow = trimmed.rfind("->")?;
    let ret = &trimmed[arrow + 2..];
    let kind = lock_type_in(ret)?;
    let lock_pos = ret.find("Mutex<").or_else(|| ret.find("RwLock<"))?;
    if !ret[..lock_pos].contains('&') {
        return None;
    }
    let name = leading_ident(&trimmed[fn_pos + 3..]);
    (!name.is_empty()).then_some((name, kind))
}

/// The text between the first `{` and its matching `}` when both sit on
/// this line (a one-line struct body); `None` for multi-line items.
fn inline_brace_body(s: &str) -> Option<String> {
    let open = s.find('{')?;
    let mut depth = 0usize;
    for (i, c) in s.char_indices().skip(open) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(s[open + 1..i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits on commas not nested inside `<>`/`()`/`[]`/`{}`.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '<' | '(' | '[' | '{' => depth += 1,
            '>' | ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Reads the first `"…"` literal after `needle` on a raw source line.
fn quoted_literal_after(raw: &str, needle: &str) -> Option<String> {
    let p = raw.find(needle)?;
    first_quoted_literal(&raw[p + needle.len()..])
}

fn first_quoted_literal(raw: &str) -> Option<String> {
    let open = raw.find('"')?;
    let rest = &raw[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

// ------------------------------------------------------------ lockorder --

/// One `[[class]]` entry of `lockorder.toml`.
#[derive(Debug, Clone)]
pub struct OrderEntry {
    /// The class name (matching the index / `LockClass::new` spelling).
    pub name: String,
    /// Mandatory non-empty rationale for the class's position.
    pub note: String,
    /// Line in `lockorder.toml` where the entry starts.
    pub line: usize,
}

/// The checked-in total lock order: entry *i* may be held while acquiring
/// entry *j* iff `i < j`. Parsed with the same hand-rolled TOML subset as
/// `lint.toml` (the gate must run fully offline and dependency-free).
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    /// Classes in blessed acquire-before order.
    pub entries: Vec<OrderEntry>,
}

impl LockOrder {
    /// Loads `lockorder.toml`; a missing file is an empty order (every
    /// nested pair then fails L10 until the order is written down).
    pub fn load(path: &Path) -> Result<Self, LintError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(LintError::Io(format!("{}: {e}", path.display()))),
        }
    }

    /// Parses the `[[class]]` table-array subset.
    pub fn parse(text: &str) -> Result<Self, LintError> {
        let mut entries: Vec<OrderEntry> = Vec::new();
        let mut cur: Option<OrderEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[class]]" {
                Self::finish(&mut cur, &mut entries)?;
                cur = Some(OrderEntry {
                    name: String::new(),
                    note: String::new(),
                    line: lineno,
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(LintError::LockOrder(format!(
                    "line {lineno}: unsupported table `{line}` (only [[class]] is recognized)"
                )));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(LintError::LockOrder(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                )));
            };
            let Some(entry) = cur.as_mut() else {
                return Err(LintError::LockOrder(format!(
                    "line {lineno}: key outside a [[class]] table"
                )));
            };
            let value = parse_string(value.trim(), lineno)?;
            match key.trim() {
                "name" => entry.name = value,
                "note" => entry.note = value,
                other => {
                    return Err(LintError::LockOrder(format!(
                        "line {lineno}: unknown key `{other}`"
                    )));
                }
            }
        }
        Self::finish(&mut cur, &mut entries)?;
        Ok(Self { entries })
    }

    fn finish(
        cur: &mut Option<OrderEntry>,
        entries: &mut Vec<OrderEntry>,
    ) -> Result<(), LintError> {
        if let Some(e) = cur.take() {
            if e.name.is_empty() {
                return Err(LintError::LockOrder(format!(
                    "class at line {}: missing `name`",
                    e.line
                )));
            }
            if e.note.trim().is_empty() {
                return Err(LintError::LockOrder(format!(
                    "class at line {}: missing or empty `note` — every entry must say why it \
                     sits where it does",
                    e.line
                )));
            }
            if entries.iter().any(|x| x.name == e.name) {
                return Err(LintError::LockOrder(format!(
                    "class at line {}: `{}` listed twice",
                    e.line, e.name
                )));
            }
            entries.push(e);
        }
        Ok(())
    }

    /// Position of `class` in the total order.
    pub fn position(&self, class: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == class)
    }

    /// Order entries naming classes the index has never seen — stale
    /// documentation that must shrink, exactly like stale `lint.toml`
    /// waivers.
    pub fn stale_entries(&self, index: &LockIndex) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !index.classes.contains(&e.name))
            .map(|e| format!("{} (line {})", e.name, e.line))
            .collect()
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, LintError> {
    if value.len() >= 2 && value.starts_with('"') && value.ends_with('"') {
        Ok(value[1..value.len() - 1].to_string())
    } else {
        Err(LintError::LockOrder(format!(
            "line {lineno}: expected a double-quoted string, got `{value}`"
        )))
    }
}

// ------------------------------------------------- per-file lock checks --

/// Calls that must never run under a held lock guard (L11): the solver
/// entry points whose latency is data-dependent and unbounded relative
/// to a lock hold budget…
const SOLVER_NEEDLES: &[&str] = &[
    "fpsping_num::",
    "fpsping_queue::",
    ".rtt_batch(",
    ".rtt_ms(",
    ".max_load(",
    ".breakdown(",
];

/// …and blocking I/O. `.read(`/`.write(` must be followed by an actual
/// argument so zero-arg `RwLock::read()`/`write()` guard acquisitions
/// are not mistaken for I/O.
const IO_NEEDLES: &[&str] = &[
    ".read(",
    ".write(",
    ".accept(",
    ".write_all(",
    ".read_exact(",
    ".read_to_end(",
    ".flush(",
];

/// One acquisition site on a line.
struct Acq {
    /// Byte column of the acquisition on the line's code text.
    col: usize,
    /// Resolved class (`?token` when unresolved).
    class: String,
    /// `let`-bound guard name, when the acquisition is the whole
    /// initializer (`let g = lock(&m);`). `None` ⇒ a temporary, dropped
    /// at the end of its statement — it pairs with *outer* guards but
    /// never opens a section of its own.
    bound: Option<String>,
    /// Raw `.lock()` method form (L12 outside `crates/obs`).
    raw: bool,
}

/// An open guard section.
struct Section {
    class: String,
    name: String,
    depth: i64,
    open_line: usize,
}

/// Runs the lock-discipline rules over one file, appending findings.
/// `in_test` gates out `#[cfg(test)]` regions (raw locks and ad-hoc
/// nesting in tests exercise the machinery rather than ship it).
pub fn check_locks(
    rel_path: &str,
    lines: &[LexedLine],
    in_test: &[bool],
    class: &FileClass,
    index: &LockIndex,
    order: &LockOrder,
    out: &mut Vec<Finding>,
) {
    let mut depth: i64 = 0;
    let mut sections: Vec<Section> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if in_test[idx] {
            // Keep the depth tracker honest through test regions.
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        sections.retain(|s| s.depth < depth + 1);
                    }
                    _ => {}
                }
            }
            continue;
        }

        let acqs = find_acquisitions(code, rel_path, index);
        // L12 is positional and independent of nesting.
        if class.crate_dir != "obs" {
            for a in acqs.iter().filter(|a| a.raw) {
                out.push(Finding {
                    file: rel_path.into(),
                    line: lineno,
                    rule: Rule::L12,
                    message: format!(
                        "raw `.lock()` on `{}` — route through the audited \
                         `fpsping_obs::lock`/`lock_class` helpers so poison recovery and the \
                         lockdep witness cover it (or waive with `// lint:allow(raw_lock): \
                         <reason>`)",
                        a.class.trim_start_matches('?')
                    ),
                });
            }
            if code.contains("PoisonError") && !code.contains("use ") {
                out.push(Finding {
                    file: rel_path.into(),
                    line: lineno,
                    rule: Rule::L12,
                    message: "ad-hoc mutex poison recovery — `fpsping_obs::lock`/`lock_class` \
                              are the one audited recovery site (or waive with \
                              `// lint:allow(raw_lock): <reason>`)"
                        .into(),
                });
            }
        }

        let needles = find_held_call_needles(code);
        let drops = find_drops(code);

        // Walk the line's events in column order so "held at this point"
        // is exact even when several events share a line.
        let mut acq_it = acqs.iter().peekable();
        let mut needle_it = needles.iter().peekable();
        let mut drop_it = drops.iter().peekable();
        for (col, c) in code.char_indices() {
            while let Some((_, name)) = drop_it.next_if(|&&(p, _)| p == col) {
                if let Some(pos) = sections.iter().rposition(|s| &s.name == name) {
                    sections.remove(pos);
                }
            }
            while let Some(a) = acq_it.next_if(|a| a.col == col) {
                for s in &sections {
                    check_pair(rel_path, lineno, s, a, order, out);
                }
                if let Some(name) = &a.bound {
                    sections.push(Section {
                        class: a.class.clone(),
                        name: name.clone(),
                        depth,
                        open_line: lineno,
                    });
                }
            }
            while let Some(&(_, needle)) = needle_it.next_if(|&&(p, _)| p == col) {
                if let Some(s) = sections.last() {
                    out.push(Finding {
                        file: rel_path.into(),
                        line: lineno,
                        rule: Rule::L11,
                        message: format!(
                            "`{needle}` while holding `{}` (guard `{}` since line {}) — a \
                             solver call or blocking I/O under a lock is the convoy that \
                             corrupts p99; drop the guard first (or waive with \
                             `// lint:allow(lock_held): <reason>`)",
                            s.class, s.name, s.open_line
                        ),
                    });
                }
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    // A section opened at depth d dies when its block
                    // (entered at d-1 → d) closes, i.e. when depth drops
                    // below d.
                    sections.retain(|s| s.depth <= depth);
                }
                _ => {}
            }
        }
    }
}

/// Emits the L10 verdict for acquiring `inner` while `outer` is held.
fn check_pair(
    rel_path: &str,
    lineno: usize,
    outer: &Section,
    inner: &Acq,
    order: &LockOrder,
    out: &mut Vec<Finding>,
) {
    let a = outer.class.as_str();
    let b = inner.class.as_str();
    let message = if a == b {
        format!(
            "lock class `{a}` acquired while already held (guard `{}` since line {}) — \
             same-class nesting self-deadlocks",
            outer.name, outer.open_line
        )
    } else {
        match (order.position(a), order.position(b)) {
            (Some(pa), Some(pb)) if pa < pb => return,
            (Some(_), Some(_)) => format!(
                "acquiring `{b}` while holding `{a}` inverts the lockorder.toml total order \
                 (guard `{}` since line {})",
                outer.name, outer.open_line
            ),
            _ => format!(
                "nested acquisition `{a}` → `{b}` (guard `{}` since line {}) has no entry in \
                 lockorder.toml — add both classes to the total order in the blessed direction \
                 (or waive with `// lint:allow(lock_order): <reason>`)",
                outer.name, outer.open_line
            ),
        }
    };
    out.push(Finding {
        file: rel_path.into(),
        line: lineno,
        rule: Rule::L10,
        message,
    });
}

/// Finds every lock acquisition on a (lexed) code line.
fn find_acquisitions(code: &str, rel_path: &str, index: &LockIndex) -> Vec<Acq> {
    let mut out = Vec::new();
    // Helper forms: `lock(&expr)` / `lock_class(&CLASS, &expr)`.
    for (needle, classed) in [("lock_class(", true), ("lock(", false)] {
        let mut start = 0;
        while let Some(p) = code[start..].find(needle) {
            let abs = start + p;
            start = abs + needle.len();
            let prev = code[..abs].chars().next_back();
            if prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.') {
                continue; // `.lock(` handled below; `try_lock(`/idents skipped
            }
            let args = balanced_paren_span(code, abs + needle.len() - 1);
            let Some((args_end, args_text)) = args else {
                continue;
            };
            let class = if classed {
                let first = args_text.split(',').next().unwrap_or("").trim();
                let token = first.trim_start_matches('&').trim();
                index
                    .class_statics
                    .get(token)
                    .cloned()
                    .unwrap_or_else(|| format!("?{token}"))
            } else {
                index.resolve(receiver_token(&args_text), rel_path)
            };
            out.push(Acq {
                col: abs,
                class,
                bound: binding_of(code, abs, args_end),
                raw: false,
            });
        }
    }
    // Raw method form: `expr.lock()`, plus `.read()`/`.write()` on
    // receivers that resolve to an RwLock class.
    for (needle, rw_only) in [(".lock()", false), (".read()", true), (".write()", true)] {
        let mut start = 0;
        while let Some(p) = code[start..].find(needle) {
            let abs = start + p;
            start = abs + needle.len();
            let token = receiver_token(&code[..abs]);
            let class = index.resolve(token, rel_path);
            if rw_only && index.kind_of(&class) != Some(LockKind::RwLock) {
                continue;
            }
            out.push(Acq {
                col: abs,
                class,
                bound: binding_of(code, abs, abs + needle.len() - 1),
                raw: !rw_only,
            });
        }
    }
    out.sort_by_key(|a| a.col);
    out
}

/// The span of a balanced `(...)` starting at `open` (which must index a
/// `(`); returns the index of the closing `)` and the interior text.
fn balanced_paren_span(code: &str, open: usize) -> Option<(usize, String)> {
    let bytes = code.as_bytes();
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some((i, code[open + 1..i].to_string()));
                }
            }
            _ => {}
        }
    }
    None
}

/// The key token of a receiver expression: the trailing field/static
/// name, or the method name when the expression ends in a call
/// (`self.shard_of(&key)` → `shard_of`, `&registry().counters` →
/// `counters`, `&self.q` → `q`, `FOO` → `FOO`).
fn receiver_token(expr: &str) -> &str {
    let mut s = expr.trim().trim_start_matches('&').trim();
    // Strip a trailing call's argument list.
    if s.ends_with(')') {
        let bytes = s.as_bytes();
        let mut depth = 0usize;
        let mut open = None;
        for i in (0..bytes.len()).rev() {
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(open) = open {
            s = &s[..open];
        }
    }
    let tail = s
        .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .next()
        .unwrap_or(s);
    tail
}

/// When the acquisition ending at byte `close` is the whole initializer
/// of a simple `let` binding (`let [mut] name = <acq>;`), returns the
/// bound guard name. Chained temporaries (`lock(&m).field`,
/// `m.lock()?.len()`) return `None`: the guard dies at the end of the
/// statement and must not open a held section.
fn binding_of(code: &str, acq_start: usize, close: usize) -> Option<String> {
    // Everything after the acquisition up to `;` must be empty.
    let after = code[close + 1..].trim_start();
    if !after.starts_with(';') {
        return None;
    }
    // Everything before must be `… let [mut] name = `, modulo the
    // call's own qualified-path prefix (`fpsping_obs::lock(…)`).
    let before = code[..acq_start]
        .trim_end_matches(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        .trim_end();
    let before = before.strip_suffix('=')?.trim_end();
    let let_pos = find_kw(before, "let ")?;
    let mut pat = before[let_pos + 4..].trim();
    pat = pat.strip_prefix("mut ").unwrap_or(pat).trim();
    // Only simple identifier patterns open sections; `let (a, b) = …`
    // and friends stay temporaries for this analysis.
    if let Some(colon) = pat.find(':') {
        pat = pat[..colon].trim_end();
    }
    is_ident(pat).then(|| pat.to_string())
}

/// `(column, needle)` for every held-call needle on the line.
fn find_held_call_needles(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for &needle in SOLVER_NEEDLES.iter().chain(IO_NEEDLES) {
        let arg_required = needle == ".read(" || needle == ".write(";
        let mut start = 0;
        while let Some(p) = code[start..].find(needle) {
            let abs = start + p;
            start = abs + needle.len();
            if arg_required {
                // `.read()` with no argument is a lock-guard acquisition,
                // not I/O; require a real argument.
                let next = code[abs + needle.len()..].trim_start().chars().next();
                if next == Some(')') || next.is_none() {
                    continue;
                }
            }
            // Longer needles subsume `.read(`/`.write(` (`.read_exact(`
            // contains neither, but `.write_all(` contains `.write(`?
            // No — `.write_all(` does not match `.write(` since `_` ≠
            // `(`). Needles are prefix-free by construction.
            out.push((abs, needle));
        }
    }
    out.sort_by_key(|&(c, _)| c);
    out
}

/// `(column, guard-name)` for every `drop(name)` on the line.
fn find_drops(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = code[start..].find("drop(") {
        let abs = start + p;
        start = abs + 5;
        let prev = code[..abs].chars().next_back();
        if prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') && prev != Some(':') {
            continue;
        }
        if let Some((_, inner)) = balanced_paren_span(code, abs + 4) {
            let name = inner.trim();
            if is_ident(name) {
                out.push((abs, name.to_string()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::lexer::{lex, test_regions};

    fn run(path: &str, src: &str, order_text: &str) -> Vec<Finding> {
        let mut index = LockIndex::default();
        let lines = lex(src);
        index.index_file(path, src, &lines);
        let order = LockOrder::parse(order_text).expect("order");
        let in_test = test_regions(&lines);
        let mut out = Vec::new();
        check_locks(
            path,
            &lines,
            &in_test,
            &classify(path),
            &index,
            &order,
            &mut out,
        );
        out
    }

    const TWO_LOCKS: &str = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                             impl S {\n\
                             fn f(&self) {\n\
                             let ga = lock(&self.a);\n\
                             let gb = lock(&self.b);\n\
                             drop(gb); drop(ga);\n\
                             }\n\
                             }\n";

    fn order_ab() -> String {
        "[[class]]\nname = \"serve::S::a\"\nnote = \"outer\"\n\
         [[class]]\nname = \"serve::S::b\"\nnote = \"inner\"\n"
            .to_string()
    }

    #[test]
    fn index_finds_fields_statics_and_class_statics() {
        let src = "static GLOBAL: Mutex<u8> = Mutex::new(0);\n\
                   static CLS: LockClass = LockClass::new(\"serve::Conn::q\");\n\
                   struct Conn { q: Mutex<u8>, r: RwLock<u8> }\n";
        let mut index = LockIndex::default();
        let lines = lex(src);
        index.index_file("crates/serve/src/x.rs", src, &lines);
        assert!(index.classes().contains("serve::GLOBAL"));
        assert!(index.classes().contains("serve::Conn::q"));
        assert!(index.classes().contains("serve::Conn::r"));
        assert_eq!(
            index.class_statics.get("CLS").map(String::as_str),
            Some("serve::Conn::q")
        );
        assert_eq!(
            index.resolve("q", "crates/serve/src/x.rs"),
            "serve::Conn::q"
        );
        assert_eq!(index.kind_of("serve::Conn::r"), Some(LockKind::RwLock));
    }

    #[test]
    fn index_skips_reference_params_and_initializers() {
        let src = "struct S { q: Mutex<u8> }\n\
                   impl S {\n\
                   fn new() -> Self { Self { q: Mutex::new(0) } }\n\
                   fn lockish(m: &Mutex<u8>) {}\n\
                   }\n";
        let mut index = LockIndex::default();
        let lines = lex(src);
        index.index_file("crates/serve/src/x.rs", src, &lines);
        assert_eq!(index.classes().len(), 1, "{:?}", index.classes());
    }

    #[test]
    fn l10_flags_pair_missing_from_order() {
        let f = run("crates/serve/src/x.rs", TWO_LOCKS, "");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::L10);
        assert!(f[0].message.contains("serve::S::a"), "{}", f[0].message);
    }

    #[test]
    fn l10_accepts_pair_in_blessed_direction() {
        let f = run("crates/serve/src/x.rs", TWO_LOCKS, &order_ab());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l10_flags_inverted_pair() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) {\n\
                   let gb = lock(&self.b);\n\
                   let ga = lock(&self.a);\n\
                   drop(ga); drop(gb);\n\
                   }\n\
                   }\n";
        let f = run("crates/serve/src/x.rs", src, &order_ab());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("inverts"), "{}", f[0].message);
    }

    #[test]
    fn l10_flags_reentrant_same_class() {
        let src = "struct S { a: Mutex<u32> }\n\
                   fn f(s: &S) {\n\
                   let g1 = lock(&s.a);\n\
                   let g2 = lock(&s.a);\n\
                   }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("self-deadlock"), "{}", f[0].message);
    }

    #[test]
    fn qualified_helper_calls_still_bind_guards() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn f(s: &S) {\n\
                   let ga = fpsping_obs::lock(&s.a);\n\
                   let gb = crate::lock(&s.b);\n\
                   }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::L10);
    }

    #[test]
    fn temporaries_do_not_open_sections() {
        // The satellite fixture case: a statement-scoped guard must not
        // count as held on the next line.
        let src = "struct S { a: Mutex<Vec<u32>>, b: Mutex<u32> }\n\
                   fn f(s: &S) -> usize {\n\
                   let n = lock(&s.a).len();\n\
                   let gb = lock(&s.b);\n\
                   n\n\
                   }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn drop_closes_a_section_early() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn f(s: &S) {\n\
                   let ga = lock(&s.a);\n\
                   drop(ga);\n\
                   let gb = lock(&s.b);\n\
                   }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn block_end_closes_sections() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn f(s: &S) {\n\
                   { let ga = lock(&s.a); }\n\
                   let gb = lock(&s.b);\n\
                   }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l11_flags_blocking_io_and_solver_calls_under_guard() {
        let src = "struct S { a: Mutex<u32> }\n\
                   fn f(s: &S, st: &mut TcpStream, buf: &mut [u8]) {\n\
                   let ga = lock(&s.a);\n\
                   st.read(buf);\n\
                   let x = fpsping_num::roots::brent(0.0);\n\
                   }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        let l11: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::L11).collect();
        assert_eq!(l11.len(), 2, "{f:?}");
    }

    #[test]
    fn l11_ignores_io_with_no_guard_and_rwlock_read() {
        let src = "struct S { r: RwLock<u32> }\n\
                   fn f(s: &S, st: &mut TcpStream, buf: &mut [u8]) {\n\
                   st.read(buf);\n\
                   let g = s.r.read();\n\
                   }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        assert!(f.iter().all(|f| f.rule != Rule::L11), "{f:?}");
    }

    #[test]
    fn l12_flags_raw_lock_outside_obs_only() {
        let src = "struct S { a: Mutex<u32> }\n\
                   fn f(s: &S) { let v = *s.a.lock().unwrap(); }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        assert!(f.iter().any(|f| f.rule == Rule::L12), "{f:?}");
        let f = run("crates/obs/src/x.rs", src, "");
        assert!(f.iter().all(|f| f.rule != Rule::L12), "{f:?}");
    }

    #[test]
    fn l12_flags_adhoc_poison_recovery() {
        let src = "struct S { a: Mutex<u32> }\n\
                   fn f(s: &S) { let g = s.a.lock().unwrap_or_else(PoisonError::into_inner); }\n";
        let f = run("crates/serve/src/x.rs", src, "");
        assert!(
            f.iter().filter(|f| f.rule == Rule::L12).count() >= 2,
            "{f:?}"
        );
    }

    #[test]
    fn lockorder_parse_and_stale() {
        let order = LockOrder::parse(&order_ab()).expect("parse");
        assert_eq!(order.entries.len(), 2);
        assert_eq!(order.position("serve::S::b"), Some(1));
        assert!(LockOrder::parse("[[class]]\nname = \"x\"\n").is_err());
        assert!(LockOrder::parse(
            "[[class]]\nname = \"x\"\nnote = \"a\"\n[[class]]\nname = \"x\"\nnote = \"b\"\n"
        )
        .is_err());
        let mut index = LockIndex::default();
        let lines = lex(TWO_LOCKS);
        index.index_file("crates/serve/src/x.rs", TWO_LOCKS, &lines);
        let stale = order.stale_entries(&index);
        assert!(stale.is_empty(), "{stale:?}");
        let order = LockOrder::parse("[[class]]\nname = \"gone::X::y\"\nnote = \"n\"\n").unwrap();
        assert_eq!(order.stale_entries(&index).len(), 1);
    }

    #[test]
    fn lock_class_acquisitions_resolve_via_the_static() {
        let src = "static CLS_A: LockClass = LockClass::new(\"core::Cache::shards\");\n\
                   struct C { shards: Mutex<u32>, other: Mutex<u32> }\n\
                   fn f(c: &C) {\n\
                   let g = lock_class(&CLS_A, &c.shards);\n\
                   let h = lock(&c.other);\n\
                   }\n";
        let f = run("crates/core/src/x.rs", src, "");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("core::Cache::shards"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("core::C::other"), "{}", f[0].message);
    }
}
