//! The exponential distribution.
//!
//! The Poisson-limit argument of §3.1 (eq. (11)) turns the superposition of
//! many periodic client streams into a Poisson process, whose inter-arrival
//! times are exponential — the arrival law of the upstream M/G/1 queue.

use crate::{uniform01, Distribution};
use fpsping_num::Complex64;
use rand::RngCore;

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with rate `λ > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "Exponential: rate must be positive"
        );
        Self { rate }
    }

    /// Creates an exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "Exponential: mean must be positive");
        Self::new(1.0 / mean)
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn cov(&self) -> f64 {
        1.0
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn tdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        -(1.0 - p).ln() / self.rate
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        -uniform01(rng).ln() / self.rate
    }

    fn mgf(&self, s: Complex64) -> Option<Complex64> {
        // Finite for Re s < λ.
        if s.re >= self.rate {
            return None;
        }
        Some(Complex64::from_real(self.rate) / (self.rate - s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_distribution;

    #[test]
    fn moments_and_cov() {
        let e = Exponential::new(0.5);
        assert_eq!(e.mean(), 2.0);
        assert_eq!(e.variance(), 4.0);
        assert_eq!(e.cov(), 1.0);
        let m = Exponential::with_mean(2.0);
        assert_eq!(m.rate(), 0.5);
    }

    #[test]
    fn memoryless_tail() {
        let e = Exponential::new(1.5);
        let (s, t) = (0.7, 1.1);
        let lhs = e.tdf(s + t);
        let rhs = e.tdf(s) * e.tdf(t);
        assert!((lhs - rhs).abs() < 1e-14);
    }

    #[test]
    fn quantile_closed_form() {
        let e = Exponential::new(2.0);
        assert!((e.quantile(0.5) - 0.5 * 2.0f64.ln()).abs() < 1e-14);
        assert!((e.cdf(e.quantile(0.999)) - 0.999).abs() < 1e-12);
    }

    #[test]
    fn mgf_pole_location() {
        let e = Exponential::new(3.0);
        assert!(e.mgf(Complex64::from_real(3.0)).is_none());
        assert!(e.mgf(Complex64::from_real(2.999)).is_some());
        let v = e.mgf(Complex64::from_real(1.0)).unwrap();
        assert!((v.re - 1.5).abs() < 1e-14); // 3/(3-1)
    }

    #[test]
    fn empirical_checks() {
        check_distribution(&Exponential::new(0.8), 200_000, 0.02);
    }
}
