//! # fpsping-dist
//!
//! Probability distributions and fitting procedures for the reproduction of
//! *"Modeling Ping times in First Person Shooter games"* (Degrande et al.,
//! CWI PNA-R0608, 2006).
//!
//! Section 2 of the paper builds FPS traffic models from a handful of
//! distribution families:
//!
//! * **Deterministic** `Det(d)` — client packet inter-arrival times
//!   (Färber's Det(40), Lang's Det(41)/Det(60)),
//! * **Extreme value (Gumbel)** `Ext(a, b)` of eq. (1) — Färber's fits for
//!   Counter-Strike packet sizes and inter-burst times,
//! * **Erlang(K, λ)** — the paper's own tail-faithful burst-size model
//!   (§2.3.2, Figure 1),
//! * **(log-)normal** — the Lang et al. Half-Life packet-size models,
//! * **Weibull / shifted variants** — alternatives Färber mentions.
//!
//! Every family implements the common [`Distribution`] trait (moments,
//! pdf/cdf/tdf, quantile, sampling, MGF where finite) so the traffic layer,
//! the queueing layer and the simulator all speak one language.
//!
//! The [`fit`] module implements the paper's three fitting procedures:
//! moment matching, Erlang-order selection from the CoV (`K ≈ 1/CoV²`, the
//! route that gives K = 28 in §2.3.2), and tail fitting on the log-TDF
//! (the route that gives K ∈ [15, 20] in Figure 1) — plus Färber's
//! least-squares PDF fit for the extreme distribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deterministic;
pub mod empirical;
pub mod erlang;
pub mod exponential;
pub mod extreme;
pub mod fit;
pub mod gamma;
pub mod lognormal;
pub mod mixture;
pub mod normal;
pub mod pareto;
pub mod shifted;
pub mod uniform;
pub mod weibull;

pub use deterministic::Deterministic;
pub use empirical::Empirical;
pub use erlang::Erlang;
pub use exponential::Exponential;
pub use extreme::Extreme;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use normal::Normal;
pub use pareto::Pareto;
pub use shifted::Shifted;
pub use uniform::Uniform;
pub use weibull::Weibull;

use fpsping_num::Complex64;
use rand::RngCore;

/// Draws a uniform variate in the open interval `(0, 1)`.
///
/// Open at both ends so that `ln(u)` and `ln(-ln u)` style inversions never
/// hit ±∞.
pub fn uniform01(rng: &mut dyn RngCore) -> f64 {
    loop {
        // 53 random mantissa bits → uniform on [0, 1) with full precision.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

/// A univariate distribution on the real line, as used throughout the
/// paper's traffic and queueing models.
///
/// All methods are object-safe so heterogeneous source models (e.g. the
/// per-game presets in `fpsping-traffic`) can hold `Box<dyn Distribution>`.
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// Expected value.
    fn mean(&self) -> f64;

    /// Variance.
    fn variance(&self) -> f64;

    /// Standard deviation.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/μ — the statistic reported in
    /// Tables 1–3 of the paper.
    fn cov(&self) -> f64 {
        self.std_dev() / self.mean()
    }

    /// Probability density at `x` (a Dirac mass reports 0 off the atom and
    /// +∞ on it).
    fn pdf(&self, x: f64) -> f64;

    /// `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Tail distribution function `P(X > x)` — the quantity plotted in
    /// Figure 1.
    fn tdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The p-quantile, `inf{x : F(x) ≥ p}` for `p ∈ (0, 1)`.
    ///
    /// The default implementation inverts [`Distribution::cdf`] by bracket
    /// expansion + Brent around the mean; families with closed forms
    /// override it.
    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        let f = |x: f64| self.cdf(x) - p;
        // Bracket the root around the mean with geometric expansion.
        let scale = self.std_dev().max(self.mean().abs()).max(1e-9);
        let mut lo = self.mean() - scale;
        let mut hi = self.mean() + scale;
        for _ in 0..200 {
            if f(lo) <= 0.0 {
                break;
            }
            lo -= (hi - lo).abs().max(scale);
        }
        for _ in 0..200 {
            if f(hi) >= 0.0 {
                break;
            }
            hi += (hi - lo).abs().max(scale);
        }
        fpsping_num::roots::brent(f, lo, hi, 1e-12 * scale.max(1.0), 200)
            .map(|r| r.root)
            .unwrap_or(f64::NAN)
    }

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Moment generating function `E[e^{sX}]` where it exists in a
    /// neighbourhood of the evaluation point; `None` for families with no
    /// usable closed form (e.g. lognormal for `Re s > 0`).
    fn mgf(&self, _s: Complex64) -> Option<Complex64> {
        None
    }

    /// Draws `n` samples into a vector.
    fn sample_n(&self, rng: &mut dyn RngCore, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Shared empirical-vs-analytic check used by every family's tests:
    /// sample moments within tolerance, CDF/quantile round trip, CDF
    /// monotone, tdf complement.
    pub fn check_distribution(d: &dyn Distribution, n: usize, mom_tol: f64) {
        let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
        let sample = d.sample_n(&mut rng, n);
        let m = fpsping_num::stats::mean(&sample);
        let v = fpsping_num::stats::variance(&sample);
        assert!(
            (m - d.mean()).abs() <= mom_tol * d.std_dev().max(1e-12),
            "mean: sample {m}, analytic {}",
            d.mean()
        );
        if d.variance() > 0.0 {
            assert!(
                (v - d.variance()).abs() <= 10.0 * mom_tol * d.variance(),
                "variance: sample {v}, analytic {}",
                d.variance()
            );
        }
        // CDF/TDF complement and monotonicity on a grid spanning the bulk.
        let (lo, hi) = (d.quantile(0.001), d.quantile(0.999));
        let mut prev = -0.1;
        for i in 0..=50 {
            let x = lo + (hi - lo) * i as f64 / 50.0;
            let c = d.cdf(x);
            assert!((c + d.tdf(x) - 1.0).abs() < 1e-12, "complement at {x}");
            assert!(c >= prev - 1e-12, "monotone at {x}: {c} < {prev}");
            assert!((-1e-12..=1.0 + 1e-12).contains(&c), "range at {x}: {c}");
            prev = c;
        }
        // Quantile inverts CDF where the CDF is continuous & increasing.
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let q = d.quantile(p);
            let back = d.cdf(q);
            assert!(
                (back - p).abs() < 1e-6,
                "quantile roundtrip p={p}: q={q}, F(q)={back}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform01_stays_in_open_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100_000 {
            let u = uniform01(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn uniform01_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let s: f64 = (0..n).map(|_| uniform01(&mut rng)).sum();
        assert!((s / n as f64 - 0.5).abs() < 2e-3);
    }
}
