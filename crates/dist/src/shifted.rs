//! A location-shift wrapper: `Y = X + shift`.
//!
//! Färber mentions *shifted* lognormal and *shifted* Weibull fits to the
//! Counter-Strike data; this adapter turns any base family into its shifted
//! version. Also useful for modeling a fixed protocol-header overhead added
//! to a random payload.

use crate::Distribution;
use fpsping_num::Complex64;
use rand::RngCore;

/// `Shifted(base, c)` is the law of `X + c` where `X ~ base`.
#[derive(Debug)]
pub struct Shifted<D: Distribution> {
    base: D,
    shift: f64,
}

impl<D: Distribution> Shifted<D> {
    /// Wraps `base`, adding the finite constant `shift` to every outcome.
    pub fn new(base: D, shift: f64) -> Self {
        assert!(shift.is_finite(), "Shifted: shift must be finite");
        Self { base, shift }
    }

    /// The underlying distribution.
    pub fn base(&self) -> &D {
        &self.base
    }

    /// The shift constant.
    pub fn shift(&self) -> f64 {
        self.shift
    }
}

impl<D: Distribution> Distribution for Shifted<D> {
    fn mean(&self) -> f64 {
        self.base.mean() + self.shift
    }

    fn variance(&self) -> f64 {
        self.base.variance()
    }

    fn pdf(&self, x: f64) -> f64 {
        self.base.pdf(x - self.shift)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.base.cdf(x - self.shift)
    }

    fn tdf(&self, x: f64) -> f64 {
        self.base.tdf(x - self.shift)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.base.quantile(p) + self.shift
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.base.sample(rng) + self.shift
    }

    fn mgf(&self, s: Complex64) -> Option<Complex64> {
        // E[e^{s(X+c)}] = e^{sc}·E[e^{sX}].
        self.base.mgf(s).map(|m| (s * self.shift).exp() * m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, LogNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shifted_lognormal_moments() {
        // Shifted lognormal à la Färber: payload ≥ 42-byte header.
        let d = Shifted::new(LogNormal::from_mean_cov(85.0, 0.4), 42.0);
        assert!((d.mean() - 127.0).abs() < 1e-9);
        assert!((d.variance() - d.base().variance()).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_translated() {
        let d = Shifted::new(Exponential::new(1.0), 5.0);
        assert_eq!(d.cdf(5.0), 0.0);
        assert!((d.cdf(6.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-14);
        assert!((d.quantile(0.5) - (5.0 + 2.0f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn mgf_picks_up_phase_factor() {
        let d = Shifted::new(Exponential::new(2.0), 1.0);
        let s = Complex64::from_real(0.5);
        let expect = (0.5f64).exp() * 2.0 / 1.5;
        assert!((d.mgf(s).unwrap().re - expect).abs() < 1e-12);
    }

    #[test]
    fn samples_respect_shift() {
        let d = Shifted::new(Exponential::new(1.0), 10.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 10.0);
        }
    }
}
