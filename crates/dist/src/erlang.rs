//! The Erlang(K, λ) distribution — the paper's server burst-size model.
//!
//! §2.3.2: *"We propose to model the server (burst) traffic size with an
//! Erlang distribution; this is because this distribution fits the tail of
//! the experimental results quite well, and because of its analytical
//! tractability."* Mean `K/λ`, variance `K/λ²`, CoV `1/√K`; Figure 1 plots
//! its tail for K = 15, 20, 25 against the measured burst sizes, and the
//! whole D/E_K/1 analysis of §3.2 is built on its MGF `(λ/(λ-s))^K`.

use crate::{uniform01, Distribution};
use fpsping_num::cmp::exact_zero;
use fpsping_num::special::{gamma_p, gamma_q, ln_gamma};
use fpsping_num::Complex64;
use rand::RngCore;

/// Erlang distribution of order `K ≥ 1` and rate `λ > 0`.
///
/// # Examples
///
/// ```
/// use fpsping_dist::{Distribution, Erlang};
///
/// // The paper's burst-size model: mean 1852 B, order K = 20.
/// let bursts = Erlang::with_mean(20, 1852.0);
/// assert!((bursts.mean() - 1852.0).abs() < 1e-9);
/// assert!((bursts.cov() - 1.0 / 20f64.sqrt()).abs() < 1e-12);
/// // Figure-1 style tail value:
/// assert!(bursts.tdf(3000.0) < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    rate: f64,
}

impl Erlang {
    /// Creates an `Erlang(k, rate)`.
    pub fn new(k: u32, rate: f64) -> Self {
        assert!(k >= 1, "Erlang: order must be >= 1");
        assert!(
            rate.is_finite() && rate > 0.0,
            "Erlang: rate must be positive"
        );
        Self { k, rate }
    }

    /// Creates an Erlang of order `k` with the given mean (`rate = k/mean`).
    ///
    /// This is the paper's construction: *"We determine the mean value by
    /// fitting it to the measured average burst size"*, then choose K
    /// separately.
    pub fn with_mean(k: u32, mean: f64) -> Self {
        assert!(mean > 0.0, "Erlang: mean must be positive");
        Self::new(k, k as f64 / mean)
    }

    /// The order `K`.
    pub fn order(&self) -> u32 {
        self.k
    }

    /// The rate `λ` (the paper's shape parameter).
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Erlang {
    fn mean(&self) -> f64 {
        self.k as f64 / self.rate
    }

    fn variance(&self) -> f64 {
        self.k as f64 / (self.rate * self.rate)
    }

    fn cov(&self) -> f64 {
        1.0 / (self.k as f64).sqrt()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if exact_zero(x) {
            return if self.k == 1 { self.rate } else { 0.0 };
        }
        // λ^K x^{K-1} e^{-λx} / (K-1)!  computed in log space.
        let k = self.k as f64;
        (k * self.rate.ln() + (k - 1.0) * x.ln() - self.rate * x - ln_gamma(k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.k as f64, self.rate * x)
        }
    }

    fn tdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            gamma_q(self.k as f64, self.rate * x)
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Sum of K exponentials; take the log of a product to use one ln.
        let mut acc = 0.0f64;
        let mut prod = 1.0f64;
        for _ in 0..self.k {
            prod *= uniform01(rng);
            // Guard against underflow for very large K.
            if prod < 1e-280 {
                acc += -prod.ln();
                prod = 1.0;
            }
        }
        (acc - prod.ln()) / self.rate
    }

    fn mgf(&self, s: Complex64) -> Option<Complex64> {
        if s.re >= self.rate {
            return None;
        }
        Some((Complex64::from_real(self.rate) / (self.rate - s)).powi(self.k as i32))
    }
}

#[cfg(test)]
#[allow(clippy::unnecessary_cast)] // literal-typing casts keep test formulas readable
mod tests {
    use super::*;
    use crate::test_util::check_distribution;

    #[test]
    fn order_one_is_exponential() {
        let e = Erlang::new(1, 2.0);
        for &x in &[0.1, 0.5, 2.0] {
            assert!((e.pdf(x) - 2.0 * (-2.0 * x as f64).exp()).abs() < 1e-12);
            assert!((e.tdf(x) - (-2.0 * x as f64).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_cov_identity() {
        // §2.3.2: CoV = 1/√K; CoV 0.19 → K = 1/0.19² ≈ 27.7 → 28.
        let k = (1.0 / (0.19f64 * 0.19)).round() as u32;
        assert_eq!(k, 28);
        let e = Erlang::new(28, 1.0);
        assert!((e.cov() - 1.0 / 28.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn figure1_parameterizations_have_mean_1852() {
        // Figure 1 legend: E(15, 0.008), E(20, 0.011), E(25, 0.013) with the
        // mean pre-fit to 1852 bytes. K/λ should be ≈ 1852 for each (the
        // legend rounds λ to 3 decimals, so allow that rounding).
        for &(k, lam) in &[(15u32, 0.008f64), (20, 0.011), (25, 0.013)] {
            let mean = k as f64 / lam;
            assert!(
                (mean - 1852.0).abs() / 1852.0 < 0.05,
                "E({k},{lam}) mean {mean}"
            );
        }
        // Exact construction used by our Figure-1 harness:
        let e = Erlang::with_mean(20, 1852.0);
        assert!((e.mean() - 1852.0).abs() < 1e-9);
        assert!((e.rate() - 20.0 / 1852.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_closed_form_k2() {
        // Erlang(2, λ): F(x) = 1 - e^{-λx}(1 + λx).
        let e = Erlang::new(2, 0.7);
        for &x in &[0.3, 1.0, 4.0, 9.0] {
            let lx = 0.7 * x;
            let expect = 1.0 - (-lx as f64).exp() * (1.0 + lx);
            assert!((e.cdf(x) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn mgf_matches_power_form() {
        let e = Erlang::new(3, 2.0);
        let s = Complex64::from_real(0.5);
        let v = e.mgf(s).unwrap();
        let expect = (2.0f64 / 1.5).powi(3);
        assert!((v.re - expect).abs() < 1e-12);
        assert!(e.mgf(Complex64::from_real(2.0)).is_none());
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let e = Erlang::new(9, 0.011);
        let x = 1000.0;
        let integral = fpsping_num::quad::adaptive_simpson(|t| e.pdf(t), 0.0, x, 1e-10);
        assert!((integral - e.cdf(x)).abs() < 1e-7);
    }

    #[test]
    fn sampling_large_order_no_underflow() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let e = Erlang::new(500, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let s = e.sample_n(&mut rng, 2_000);
        let m = fpsping_num::stats::mean(&s);
        assert!((m - 500.0).abs() < 5.0, "mean {m}");
        assert!(s.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn empirical_checks_k9() {
        check_distribution(&Erlang::new(9, 0.011), 100_000, 0.03);
    }

    #[test]
    fn empirical_checks_k20() {
        check_distribution(&Erlang::with_mean(20, 1852.0), 100_000, 0.03);
    }
}
