//! The Gamma distribution with arbitrary (non-integer) shape.
//!
//! The Erlang family of §2.3.2 is the integer-shape special case; the
//! general Gamma lets the fitting procedures interpolate between orders
//! (e.g. CoV 0.19 → shape 27.7 before rounding to K = 28) and provides
//! the Marsaglia–Tsang sampler the Erlang sampler cross-checks against.

use crate::{uniform01, Distribution, Normal};
use fpsping_num::cmp::exact_zero;
use fpsping_num::special::{gamma_p, gamma_q, ln_gamma};
use fpsping_num::Complex64;
use rand::RngCore;

/// Gamma distribution with shape `α > 0` and rate `λ > 0`
/// (mean `α/λ`, variance `α/λ²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a Gamma with the given shape and rate.
    pub fn new(shape: f64, rate: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "Gamma: shape must be positive"
        );
        assert!(
            rate.is_finite() && rate > 0.0,
            "Gamma: rate must be positive"
        );
        Self { shape, rate }
    }

    /// Moment-matched construction from mean and CoV: `shape = 1/CoV²`,
    /// `rate = shape/mean` — the un-rounded version of the paper's
    /// Erlang-order rule.
    pub fn from_mean_cov(mean: f64, cov: f64) -> Self {
        assert!(
            mean > 0.0 && cov > 0.0,
            "Gamma: mean and CoV must be positive"
        );
        let shape = 1.0 / (cov * cov);
        Self::new(shape, shape / mean)
    }

    /// Shape parameter α.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Marsaglia–Tsang sampling for shape ≥ 1; shape < 1 via the boost
    /// `X_α = X_{α+1}·U^{1/α}`.
    fn sample_standard(shape: f64, rng: &mut dyn RngCore) -> f64 {
        if shape < 1.0 {
            let x = Self::sample_standard(shape + 1.0, rng);
            return x * uniform01(rng).powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = Normal::sample_standard(rng);
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = uniform01(rng);
            if u < 1.0 - 0.0331 * z.powi(4) || u.ln() < 0.5 * z * z + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution for Gamma {
    fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    fn cov(&self) -> f64 {
        1.0 / self.shape.sqrt()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if exact_zero(x) {
            return match self.shape {
                a if a < 1.0 => f64::INFINITY,
                a if (a - 1.0).abs() < f64::EPSILON => self.rate,
                _ => 0.0,
            };
        }
        (self.shape * self.rate.ln() + (self.shape - 1.0) * x.ln()
            - self.rate * x
            - ln_gamma(self.shape))
        .exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, self.rate * x)
        }
    }

    fn tdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            gamma_q(self.shape, self.rate * x)
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        Self::sample_standard(self.shape, rng) / self.rate
    }

    fn mgf(&self, s: Complex64) -> Option<Complex64> {
        if s.re >= self.rate {
            return None;
        }
        // (λ/(λ-s))^α via the principal branch.
        Some(
            (Complex64::from_real(self.rate) / (self.rate - s))
                .powc(Complex64::from_real(self.shape)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_distribution;
    use crate::Erlang;

    #[test]
    fn integer_shape_matches_erlang() {
        let g = Gamma::new(9.0, 0.011);
        let e = Erlang::new(9, 0.011);
        for &x in &[100.0, 500.0, 1000.0, 2000.0] {
            assert!((g.pdf(x) - e.pdf(x)).abs() < 1e-12);
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
        assert!((g.mean() - e.mean()).abs() < 1e-12);
    }

    #[test]
    fn from_mean_cov_is_unrounded_paper_rule() {
        // §2.3.2: CoV 0.19 → 1/0.19² = 27.7 (rounded to 28 for Erlang).
        let g = Gamma::from_mean_cov(1852.0, 0.19);
        assert!((g.shape() - 27.70).abs() < 0.01);
        assert!((g.mean() - 1852.0).abs() < 1e-9);
        assert!((g.cov() - 0.19).abs() < 1e-12);
    }

    #[test]
    fn mgf_matches_erlang_form_for_integer_shape() {
        let g = Gamma::new(3.0, 2.0);
        let v = g.mgf(Complex64::from_real(0.5)).unwrap();
        assert!((v.re - (2.0f64 / 1.5).powi(3)).abs() < 1e-10);
        assert!(g.mgf(Complex64::from_real(2.0)).is_none());
    }

    #[test]
    fn sampler_handles_small_shape() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = Gamma::new(0.5, 1.0);
        let mut rng = StdRng::seed_from_u64(17);
        let s = g.sample_n(&mut rng, 100_000);
        let m = fpsping_num::stats::mean(&s);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
        assert!(s.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn empirical_checks() {
        check_distribution(&Gamma::new(27.7, 27.7 / 1852.0), 100_000, 0.03);
    }
}
