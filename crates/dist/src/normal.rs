//! The normal distribution.
//!
//! Lang et al. found that Half-Life client packet sizes are fit equally
//! well by normal and lognormal laws (Table 2); we provide both.

use crate::{uniform01, Distribution};
use fpsping_num::special::{std_normal_cdf, std_normal_inv_cdf};
use fpsping_num::Complex64;
use rand::RngCore;

/// Normal distribution `N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma²)` with `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma > 0.0,
            "Normal: need σ > 0"
        );
        Self { mu, sigma }
    }

    /// Mean parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard-deviation parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws a standard-normal variate (Box–Muller, one branch).
    pub fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        let u1 = uniform01(rng);
        let u2 = uniform01(rng);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution for Normal {
    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        self.mu + self.sigma * std_normal_inv_cdf(p)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.mu + self.sigma * Self::sample_standard(rng)
    }

    fn mgf(&self, s: Complex64) -> Option<Complex64> {
        Some((s * self.mu + s * s * (0.5 * self.sigma * self.sigma)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_distribution;

    #[test]
    fn standard_normal_values() {
        let n = Normal::new(0.0, 1.0);
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-13);
        assert!((n.cdf(1.96) - 0.975_002_104_851_779_7).abs() < 1e-9);
        assert!((n.pdf(0.0) - 1.0 / (2.0 * std::f64::consts::PI).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn quantile_matches_tables() {
        let n = Normal::new(0.0, 1.0);
        assert!((n.quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((n.quantile(0.5)).abs() < 1e-12);
    }

    #[test]
    fn mgf_real_axis() {
        // E[e^{sX}] = exp(μs + σ²s²/2).
        let n = Normal::new(1.0, 2.0);
        let v = n.mgf(Complex64::from_real(0.3)).unwrap();
        let expect = (1.0f64 * 0.3 + 4.0 * 0.09 / 2.0).exp();
        assert!((v.re - expect).abs() < 1e-12);
    }

    #[test]
    fn empirical_checks() {
        check_distribution(&Normal::new(75.0, 8.0), 100_000, 0.03);
    }
}
