//! The deterministic (Dirac) distribution `Det(d)`.
//!
//! The paper's client traffic model (§2.3.1) uses deterministic packet
//! inter-arrival times — Färber's `Det(40)` for Counter-Strike, Lang's
//! `Det(41)`/`Det(60)` for Half-Life — and the server burst clock is
//! `Det(T)` (§2.3.2).

use crate::Distribution;
use fpsping_num::Complex64;
use rand::RngCore;

/// A point mass at `value`; the paper writes `Det(value)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates `Det(value)`; `value` must be finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "Deterministic: value must be finite");
        Self { value }
    }

    /// The atom's location.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Distribution for Deterministic {
    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn cov(&self) -> f64 {
        0.0
    }

    fn pdf(&self, x: f64) -> f64 {
        if x == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        self.value
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn mgf(&self, s: Complex64) -> Option<Complex64> {
        Some((s * self.value).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn farber_det40_properties() {
        let d = Deterministic::new(40.0);
        assert_eq!(d.mean(), 40.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cov(), 0.0);
        assert_eq!(d.cdf(39.999), 0.0);
        assert_eq!(d.cdf(40.0), 1.0);
        assert_eq!(d.tdf(40.0), 0.0);
        assert_eq!(d.quantile(0.5), 40.0);
    }

    #[test]
    fn samples_are_constant() {
        let d = Deterministic::new(-3.25);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), -3.25);
        }
    }

    #[test]
    fn mgf_is_exponential_in_s() {
        let d = Deterministic::new(2.0);
        let v = d.mgf(Complex64::from_real(0.5)).unwrap();
        assert!((v.re - 1.0f64.exp()).abs() < 1e-14);
        assert!(v.im.abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Deterministic::new(f64::NAN);
    }
}
