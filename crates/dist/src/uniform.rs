//! The continuous uniform distribution on `[lo, hi]`.
//!
//! §3.2.2 of the paper models the position of a tagged packet within a
//! server burst as uniform on `[0, 1]` ("from burst to burst the packet can
//! reside anywhere in the burst") — the case the whole downstream analysis
//! ultimately uses.

use crate::{uniform01, Distribution};
use fpsping_num::Complex64;
use rand::RngCore;

/// Uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`, `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Uniform: need lo < hi"
        );
        Self { lo, hi }
    }

    /// The standard uniform on `[0, 1]` — the packet-position law of
    /// §3.2.2.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for Uniform {
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo && x <= self.hi {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        self.lo + p * (self.hi - self.lo)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.lo + uniform01(rng) * (self.hi - self.lo)
    }

    fn mgf(&self, s: Complex64) -> Option<Complex64> {
        if s == Complex64::ZERO {
            return Some(Complex64::ONE);
        }
        let num = (s * self.hi).exp() - (s * self.lo).exp();
        Some(num / (s * (self.hi - self.lo)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_distribution;

    #[test]
    fn standard_uniform_moments() {
        let u = Uniform::standard();
        assert_eq!(u.mean(), 0.5);
        assert!((u.variance() - 1.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn cdf_quantile_closed_forms() {
        let u = Uniform::new(2.0, 6.0);
        assert_eq!(u.cdf(2.0), 0.0);
        assert_eq!(u.cdf(4.0), 0.5);
        assert_eq!(u.cdf(7.0), 1.0);
        assert_eq!(u.quantile(0.25), 3.0);
        assert_eq!(u.pdf(3.0), 0.25);
        assert_eq!(u.pdf(1.0), 0.0);
    }

    #[test]
    fn mgf_at_zero_is_one_and_matches_series() {
        let u = Uniform::new(0.0, 1.0);
        assert_eq!(u.mgf(Complex64::ZERO).unwrap(), Complex64::ONE);
        // E[e^{sU}] = (e^s - 1)/s at s=1: e - 1.
        let v = u.mgf(Complex64::ONE).unwrap();
        assert!((v.re - (std::f64::consts::E - 1.0)).abs() < 1e-14);
    }

    #[test]
    fn empirical_checks() {
        check_distribution(&Uniform::new(-1.0, 3.0), 100_000, 0.02);
    }
}
