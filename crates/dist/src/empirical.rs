//! The empirical distribution of a recorded sample.
//!
//! Wraps `fpsping_num::stats::Ecdf` in the common [`Distribution`] trait so
//! measured traces (e.g. the synthetic Unreal Tournament burst sizes of
//! §2.2) can be resampled, compared against fitted families, and fed to the
//! simulator directly.

use crate::{uniform01, Distribution};
use fpsping_num::stats::Ecdf;
use rand::RngCore;

/// Empirical distribution: samples uniformly from the recorded
/// observations; CDF/TDF are the step functions of the sample.
#[derive(Debug, Clone)]
pub struct Empirical {
    ecdf: Ecdf,
    mean: f64,
    variance: f64,
}

impl Empirical {
    /// Builds the empirical law of `sample` (non-empty, NaN-free).
    pub fn new(sample: Vec<f64>) -> Self {
        let mean = fpsping_num::stats::mean(&sample);
        let variance = if sample.len() >= 2 {
            fpsping_num::stats::variance(&sample)
        } else {
            0.0
        };
        Self {
            ecdf: Ecdf::new(sample),
            mean,
            variance,
        }
    }

    /// The underlying ECDF.
    pub fn ecdf(&self) -> &Ecdf {
        &self.ecdf
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.ecdf.len()
    }

    /// Whether the sample is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ecdf.is_empty()
    }
}

impl Distribution for Empirical {
    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn pdf(&self, _x: f64) -> f64 {
        // A discrete sample has no density; callers wanting a density
        // should histogram (`fpsping_num::stats::Histogram`) instead.
        0.0
    }

    fn cdf(&self, x: f64) -> f64 {
        self.ecdf.cdf(x)
    }

    fn tdf(&self, x: f64) -> f64 {
        self.ecdf.tdf(x)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        self.ecdf.quantile(p)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let sorted = self.ecdf.sorted();
        let idx = (uniform01(rng) * sorted.len() as f64) as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_sample() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((e.mean() - 2.5).abs() < 1e-12);
        assert!((e.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn resampling_reproduces_distribution() {
        let e = Empirical::new(vec![1.0, 1.0, 1.0, 5.0]);
        let mut rng = StdRng::seed_from_u64(13);
        let s = e.sample_n(&mut rng, 20_000);
        let fives = s.iter().filter(|&&x| x == 5.0).count() as f64 / 20_000.0;
        assert!((fives - 0.25).abs() < 0.02);
    }

    #[test]
    fn tdf_steps() {
        let e = Empirical::new(vec![10.0, 20.0, 30.0]);
        assert_eq!(e.tdf(5.0), 1.0);
        assert!((e.tdf(10.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.tdf(30.0), 0.0);
    }
}
