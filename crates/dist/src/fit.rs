//! Fitting procedures used in §2 of the paper.
//!
//! Three routes appear in the text:
//!
//! 1. **Moment matching** — fix the mean (and possibly the CoV) to the
//!    measured values. For the Erlang burst-size model, §2.3.2 derives
//!    `K = 1/CoV²` (CoV 0.19 → K = 28): [`erlang_order_from_cov`].
//! 2. **Tail fitting** — the paper's preferred route: *"we focus on fitting
//!    the tail of the distribution, since this dominates also the tail of
//!    the corresponding queue"*. Figure 1 does this visually and lands on
//!    K between 15 and 20; [`fit_erlang_tail`] makes it quantitative by a
//!    least-squares fit on the log-TDF.
//! 3. **Färber's PDF least squares** — fit `Ext(a, b)` to a histogram
//!    density by least squares: [`fit_extreme_pdf`].

use crate::{Distribution, Erlang, Extreme};
use fpsping_num::stats::Ecdf;

/// Erlang order from the coefficient of variation: `K = round(1/CoV²)`,
/// clamped to at least 1.
///
/// §2.3.2: *"fitting the CoV and noticing from Table 3 that it is 0.19, we
/// derive that K is 28"*.
///
/// # Examples
///
/// ```
/// use fpsping_dist::fit::erlang_order_from_cov;
/// assert_eq!(erlang_order_from_cov(0.19), 28); // the paper's value
/// ```
pub fn erlang_order_from_cov(cov: f64) -> u32 {
    assert!(
        cov > 0.0 && cov.is_finite(),
        "erlang_order_from_cov: CoV must be positive"
    );
    (1.0 / (cov * cov)).round().max(1.0) as u32
}

/// Moment-matched Erlang: order from the CoV, rate from the mean.
pub fn fit_erlang_moments(mean: f64, cov: f64) -> Erlang {
    Erlang::with_mean(erlang_order_from_cov(cov), mean)
}

/// Result of the log-TDF least-squares Erlang order scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ErlangTailFit {
    /// The selected order.
    pub k: u32,
    /// The fitted distribution (mean pinned to the sample mean).
    pub erlang: Erlang,
    /// Sum of squared log₁₀-TDF errors at the optimum.
    pub sse: f64,
    /// `(k, sse)` for every candidate order, for diagnostics / plotting.
    pub scan: Vec<(u32, f64)>,
}

/// Fits the Erlang order by least squares on the **log tail distribution
/// function** — the quantitative version of the paper's Figure-1 "visual"
/// fit.
///
/// The mean is pinned to the sample mean (the paper fits it first), then
/// each candidate `K ∈ k_range` is scored by the sum of squared errors
/// between `log₁₀ TDF_emp(x)` and `log₁₀ TDF_Erlang(x)` on a uniform grid
/// over the region where the empirical TDF lies in `[tdf_floor, 0.5]` —
/// i.e. the tail, exactly the region Figure 1 plots.
pub fn fit_erlang_tail(
    sample: &[f64],
    k_range: std::ops::RangeInclusive<u32>,
    tdf_floor: f64,
    grid_points: usize,
) -> ErlangTailFit {
    assert!(sample.len() >= 10, "fit_erlang_tail: need a real sample");
    assert!(tdf_floor > 0.0 && tdf_floor < 0.5, "tdf_floor in (0, 0.5)");
    assert!(grid_points >= 4, "need a few grid points");
    let mean = fpsping_num::stats::mean(sample);
    let ecdf = Ecdf::new(sample.to_vec());
    // Grid between the empirical median and the last point where the
    // empirical TDF still clears the floor.
    let x_lo = ecdf.quantile(0.5);
    let x_hi = ecdf.quantile(1.0 - tdf_floor.max(1.0 / sample.len() as f64));
    let mut scan = Vec::new();
    let mut best: Option<(u32, f64)> = None;
    for k in k_range {
        let cand = Erlang::with_mean(k, mean);
        let mut sse = 0.0;
        let mut used = 0usize;
        for i in 0..grid_points {
            let x = x_lo + (x_hi - x_lo) * i as f64 / (grid_points - 1) as f64;
            let emp = ecdf.tdf(x);
            if emp < tdf_floor {
                continue;
            }
            let th = cand.tdf(x).max(1e-300);
            let d = emp.log10() - th.log10();
            sse += d * d;
            used += 1;
        }
        if used == 0 {
            continue;
        }
        let sse = sse / used as f64;
        scan.push((k, sse));
        if best.is_none_or(|(_, b)| sse < b) {
            best = Some((k, sse));
        }
    }
    // lint:allow(unwrap): an empty k_range or a grid entirely below tdf_floor is a caller error; the message names the cause
    let (k, sse) = best.expect("fit_erlang_tail: no candidate produced a score");
    ErlangTailFit {
        k,
        erlang: Erlang::with_mean(k, mean),
        sse,
        scan,
    }
}

/// Färber's procedure: least-squares fit of the `Ext(a, b)` density to a
/// histogram density (pairs of `(bin_center, density)`), by Nelder–Mead
/// from a moment-matched start.
pub fn fit_extreme_pdf(density: &[(f64, f64)], init: Extreme) -> Extreme {
    assert!(
        density.len() >= 3,
        "fit_extreme_pdf: need at least 3 histogram bins"
    );
    let objective = |a: f64, b: f64| -> f64 {
        if b <= 0.0 {
            return f64::INFINITY;
        }
        let d = Extreme::new(a, b);
        density
            .iter()
            .map(|&(x, p)| {
                let e = d.pdf(x) - p;
                e * e
            })
            .sum()
    };
    let (a, b) = nelder_mead_2d(
        |p| objective(p[0], p[1]),
        [init.location(), init.scale()],
        [init.scale().max(1.0), init.scale().max(1.0) * 0.5],
        1e-10,
        2_000,
    );
    Extreme::new(a, b.max(1e-9))
}

/// Minimal 2-D Nelder–Mead used by the PDF fit. Returns the best vertex.
fn nelder_mead_2d(
    f: impl Fn([f64; 2]) -> f64,
    start: [f64; 2],
    scale: [f64; 2],
    tol: f64,
    max_iter: usize,
) -> (f64, f64) {
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink
    let mut simplex = [
        start,
        [start[0] + scale[0], start[1]],
        [start[0], start[1] + scale[1]],
    ];
    let mut values = simplex.map(&f);
    for _ in 0..max_iter {
        // Order vertices by value.
        let mut idx = [0usize, 1, 2];
        idx.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
        let (best, mid, worst) = (idx[0], idx[1], idx[2]);
        if (values[worst] - values[best]).abs() < tol {
            break;
        }
        let centroid = [
            0.5 * (simplex[best][0] + simplex[mid][0]),
            0.5 * (simplex[best][1] + simplex[mid][1]),
        ];
        let reflect = [
            centroid[0] + ALPHA * (centroid[0] - simplex[worst][0]),
            centroid[1] + ALPHA * (centroid[1] - simplex[worst][1]),
        ];
        let fr = f(reflect);
        if fr < values[best] {
            let expand = [
                centroid[0] + GAMMA * (reflect[0] - centroid[0]),
                centroid[1] + GAMMA * (reflect[1] - centroid[1]),
            ];
            let fe = f(expand);
            if fe < fr {
                simplex[worst] = expand;
                values[worst] = fe;
            } else {
                simplex[worst] = reflect;
                values[worst] = fr;
            }
        } else if fr < values[mid] {
            simplex[worst] = reflect;
            values[worst] = fr;
        } else {
            let contract = [
                centroid[0] + RHO * (simplex[worst][0] - centroid[0]),
                centroid[1] + RHO * (simplex[worst][1] - centroid[1]),
            ];
            let fc = f(contract);
            if fc < values[worst] {
                simplex[worst] = contract;
                values[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                for i in 0..3 {
                    if i == best {
                        continue;
                    }
                    simplex[i] = [
                        simplex[best][0] + SIGMA * (simplex[i][0] - simplex[best][0]),
                        simplex[best][1] + SIGMA * (simplex[i][1] - simplex[best][1]),
                    ];
                    values[i] = f(simplex[i]);
                }
            }
        }
    }
    let mut best = 0;
    for i in 1..3 {
        if values[i] < values[best] {
            best = i;
        }
    }
    (simplex[best][0], simplex[best][1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsping_num::stats::Histogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cov_to_order_paper_values() {
        assert_eq!(erlang_order_from_cov(0.19), 28); // §2.3.2
        assert_eq!(erlang_order_from_cov(1.0), 1);
        assert_eq!(erlang_order_from_cov(0.5), 4);
        assert_eq!(erlang_order_from_cov(10.0), 1); // clamped
    }

    #[test]
    fn moment_fit_reproduces_mean_and_cov() {
        let e = fit_erlang_moments(1852.0, 0.19);
        assert_eq!(e.order(), 28);
        assert!((e.mean() - 1852.0).abs() < 1e-9);
    }

    #[test]
    fn tail_fit_recovers_true_order() {
        // Generate Erlang(20) data; the tail fit should land near 20, and
        // certainly distinguish it from 5 or 60.
        let truth = Erlang::with_mean(20, 1852.0);
        let mut rng = StdRng::seed_from_u64(42);
        let sample = truth.sample_n(&mut rng, 60_000);
        let fit = fit_erlang_tail(&sample, 5..=60, 1e-3, 40);
        assert!(
            (10..=32).contains(&fit.k),
            "expected K near 20, got {} (sse {})",
            fit.k,
            fit.sse
        );
        assert!(!fit.scan.is_empty());
        // The scan must actually prefer the chosen K.
        let min = fit
            .scan
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        assert!((min - fit.sse).abs() < 1e-15);
    }

    #[test]
    fn tail_fit_separates_low_from_high_order() {
        let truth = Erlang::with_mean(2, 1000.0);
        let mut rng = StdRng::seed_from_u64(7);
        let sample = truth.sample_n(&mut rng, 40_000);
        let fit = fit_erlang_tail(&sample, 1..=40, 1e-3, 40);
        assert!(fit.k <= 4, "expected small K, got {}", fit.k);
    }

    #[test]
    fn extreme_pdf_fit_recovers_farber_parameters() {
        // Synthesize Ext(120, 36) data, histogram it, and refit à la Färber.
        let truth = Extreme::new(120.0, 36.0);
        let mut rng = StdRng::seed_from_u64(99);
        let sample = truth.sample_n(&mut rng, 200_000);
        let mut h = Histogram::new(0.0, 500.0, 100);
        for &x in &sample {
            h.record(x);
        }
        let init = Extreme::from_moments(
            fpsping_num::stats::mean(&sample),
            fpsping_num::stats::std_dev(&sample),
        );
        let fit = fit_extreme_pdf(&h.density(), init);
        assert!(
            (fit.location() - 120.0).abs() < 3.0,
            "a = {}",
            fit.location()
        );
        assert!((fit.scale() - 36.0).abs() < 3.0, "b = {}", fit.scale());
    }

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let (x, y) = nelder_mead_2d(
            |p| (p[0] - 3.0).powi(2) + 2.0 * (p[1] + 1.0).powi(2),
            [0.0, 0.0],
            [1.0, 1.0],
            1e-14,
            1_000,
        );
        assert!((x - 3.0).abs() < 1e-5);
        assert!((y + 1.0).abs() < 1e-5);
    }
}
