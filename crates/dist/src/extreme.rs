//! The extreme-value (Gumbel) distribution `Ext(a, b)` of eq. (1).
//!
//! Färber's Counter-Strike fits (Table 1) are expressed in this family:
//! server packet sizes `Ext(120, 36)`, inter-burst times `Ext(55, 6)`,
//! client packet sizes `Ext(80, 5.7)`. Density and CDF per the paper:
//!
//! ```text
//! f(x) = (1/b)·exp(-(x-a)/b)·exp(-exp(-(x-a)/b)),
//! F(x) = exp(-exp(-(x-a)/b)).
//! ```

use crate::{uniform01, Distribution};
use fpsping_num::EULER_GAMMA;
use rand::RngCore;

/// Extreme-value (Gumbel) distribution with location `a` and scale `b`;
/// the paper writes `Ext(a, b)`.
///
/// # Examples
///
/// ```
/// use fpsping_dist::{Distribution, Extreme};
///
/// // Färber's Counter-Strike server packet-size fit (Table 1).
/// let sizes = Extreme::new(120.0, 36.0);
/// // F(a) = e^{-1} at the mode:
/// assert!((sizes.cdf(120.0) - (-1.0f64).exp()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extreme {
    a: f64,
    b: f64,
}

impl Extreme {
    /// Creates `Ext(a, b)` with scale `b > 0`.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a.is_finite() && b.is_finite() && b > 0.0,
            "Extreme: need finite a, b > 0"
        );
        Self { a, b }
    }

    /// Location parameter `a` (the mode).
    pub fn location(&self) -> f64 {
        self.a
    }

    /// Scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.b
    }

    /// Constructs the `Ext(a, b)` with a given mean and standard deviation
    /// (moment matching): `b = σ√6/π`, `a = μ - γ_E·b`.
    pub fn from_moments(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev > 0.0, "Extreme: std_dev must be positive");
        let b = std_dev * 6.0f64.sqrt() / std::f64::consts::PI;
        Self::new(mean - EULER_GAMMA * b, b)
    }
}

impl Distribution for Extreme {
    fn mean(&self) -> f64 {
        self.a + EULER_GAMMA * self.b
    }

    fn variance(&self) -> f64 {
        std::f64::consts::PI * std::f64::consts::PI / 6.0 * self.b * self.b
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.a) / self.b;
        ((-z - (-z).exp()).exp()) / self.b
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.a) / self.b;
        (-(-z).exp()).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        self.a - self.b * (-p.ln()).ln()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.a - self.b * (-uniform01(rng).ln()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_distribution;

    #[test]
    fn farber_server_packet_size_moments() {
        // Ext(120, 36): mean = 120 + γ·36 ≈ 140.8, σ = 36π/√6 ≈ 46.2.
        let d = Extreme::new(120.0, 36.0);
        assert!((d.mean() - (120.0 + EULER_GAMMA * 36.0)).abs() < 1e-12);
        let sigma = 36.0 * std::f64::consts::PI / 6.0f64.sqrt();
        assert!((d.std_dev() - sigma).abs() < 1e-12);
        // Färber reports mean 127 / CoV 0.74 for the raw data; the fit is on
        // the pdf, so moments differ — we only check the family is sane.
        assert!(d.mean() > 120.0);
    }

    #[test]
    fn cdf_at_mode_is_inv_e() {
        // F(a) = exp(-1).
        let d = Extreme::new(55.0, 6.0);
        assert!((d.cdf(55.0) - (-1.0f64).exp()).abs() < 1e-14);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Extreme::new(80.0, 5.7);
        for &p in &[0.01, 0.2, 0.5, 0.9, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn from_moments_round_trip() {
        let d = Extreme::from_moments(127.0, 94.0);
        assert!((d.mean() - 127.0).abs() < 1e-10);
        assert!((d.std_dev() - 94.0).abs() < 1e-10);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Extreme::new(0.0, 1.0);
        let total = fpsping_num::quad::adaptive_simpson(|x| d.pdf(x), -8.0, 30.0, 1e-10);
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn empirical_checks() {
        check_distribution(&Extreme::new(55.0, 6.0), 100_000, 0.03);
    }
}
