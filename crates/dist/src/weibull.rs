//! The Weibull distribution.
//!
//! Färber notes that shifted Weibull distributions fit the Counter-Strike
//! traffic about as well as the extreme distribution; included for the
//! model-sensitivity studies.

use crate::{uniform01, Distribution};
use fpsping_num::cmp::exact_zero;
use fpsping_num::special::ln_gamma;
use rand::RngCore;

/// Weibull distribution with shape `k > 0` and scale `λ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull with shape `k` and scale `λ`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "Weibull: shape must be positive"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "Weibull: scale must be positive"
        );
        Self { shape, scale }
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    fn gamma_moment(&self, n: f64) -> f64 {
        // E[X^n] = λ^n Γ(1 + n/k).
        (n * self.scale.ln() + ln_gamma(1.0 + n / self.shape)).exp()
    }
}

impl Distribution for Weibull {
    fn mean(&self) -> f64 {
        self.gamma_moment(1.0)
    }

    fn variance(&self) -> f64 {
        let m1 = self.gamma_moment(1.0);
        self.gamma_moment(2.0) - m1 * m1
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        if exact_zero(x) {
            return match self.shape {
                k if k < 1.0 => f64::INFINITY,
                k if (k - 1.0).abs() < f64::EPSILON => 1.0 / self.scale,
                _ => 0.0,
            };
        }
        self.shape / self.scale * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn tdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * (-uniform01(rng).ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
#[allow(clippy::unnecessary_cast)]
mod tests {
    use super::*;
    use crate::test_util::check_distribution;

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0);
        assert!((w.mean() - 2.0).abs() < 1e-12);
        for &x in &[0.5f64, 1.0, 4.0] {
            assert!((w.tdf(x) - (-x / 2.0).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let w = Weibull::new(2.5, 10.0);
        for &p in &[0.05, 0.5, 0.99] {
            assert!((w.cdf(w.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn rayleigh_mean() {
        // k = 2 (Rayleigh-like): mean = λΓ(1.5) = λ√π/2.
        let w = Weibull::new(2.0, 3.0);
        let expect = 3.0 * std::f64::consts::PI.sqrt() / 2.0;
        assert!((w.mean() - expect).abs() < 1e-10);
    }

    #[test]
    fn empirical_checks() {
        check_distribution(&Weibull::new(1.8, 60.0), 100_000, 0.03);
    }
}
