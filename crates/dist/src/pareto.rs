//! The Pareto distribution — a heavy-tailed counter-model.
//!
//! The paper's concluding remarks stress that the dimensioning results
//! "depend to some extent on the details of the downstream traffic
//! characteristics". Pareto burst sizes are the stress case: with a
//! power-law tail no exponential-tail analysis applies (the MGF does not
//! exist for `s > 0`), and the sensitivity experiments use it to show how
//! far a heavy-tailed burst law moves the measured quantiles away from
//! every Erlang prediction.

use crate::{uniform01, Distribution};
use rand::RngCore;

/// Pareto (Type I) distribution: `P(X > x) = (x_m/x)^α` for `x ≥ x_m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto with scale `x_m > 0` and tail index `α > 0`.
    pub fn new(scale: f64, alpha: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "Pareto: scale must be positive"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "Pareto: alpha must be positive"
        );
        Self { scale, alpha }
    }

    /// Pareto with a given mean and tail index `α > 1`
    /// (`x_m = mean·(α-1)/α`).
    pub fn with_mean(mean: f64, alpha: f64) -> Self {
        assert!(alpha > 1.0, "Pareto: finite mean requires alpha > 1");
        Self::new(mean * (alpha - 1.0) / alpha, alpha)
    }

    /// Scale (minimum value) `x_m`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Tail index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Distribution for Pareto {
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.scale / (self.alpha - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.scale * self.scale * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            self.alpha * self.scale.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.alpha)
        }
    }

    fn tdf(&self, x: f64) -> f64 {
        if x < self.scale {
            1.0
        } else {
            (self.scale / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        self.scale / (1.0 - p).powf(1.0 / self.alpha)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale / uniform01(rng).powf(1.0 / self.alpha)
    }

    // No `mgf` override: the Pareto MGF diverges for Re s > 0, which is
    // exactly why the paper's transform machinery cannot cover it.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_distribution;

    #[test]
    fn moments() {
        let p = Pareto::new(1.0, 3.0);
        assert!((p.mean() - 1.5).abs() < 1e-12);
        assert!((p.variance() - 3.0 / (4.0 * 1.0)).abs() < 1e-12);
        assert!(Pareto::new(1.0, 1.0).mean().is_infinite());
        assert!(Pareto::new(1.0, 1.5).variance().is_infinite());
    }

    #[test]
    fn with_mean_round_trip() {
        let p = Pareto::with_mean(1852.0, 2.5);
        assert!((p.mean() - 1852.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_tail() {
        let p = Pareto::new(2.0, 2.0);
        // Doubling x quarters the tail.
        assert!((p.tdf(4.0) / p.tdf(8.0) - 4.0).abs() < 1e-12);
        assert_eq!(p.tdf(1.0), 1.0);
    }

    #[test]
    fn quantile_inverts() {
        let p = Pareto::new(1.0, 2.5);
        for &q in &[0.1, 0.5, 0.99, 0.99999] {
            assert!((p.cdf(p.quantile(q)) - q).abs() < 1e-12);
        }
    }

    #[test]
    fn mgf_is_unavailable() {
        let p = Pareto::new(1.0, 3.0);
        assert!(p.mgf(fpsping_num::Complex64::from_real(0.1)).is_none());
    }

    #[test]
    fn empirical_checks() {
        // α = 4 keeps enough moments for the generic moment checks.
        check_distribution(&Pareto::new(100.0, 4.0), 200_000, 0.1);
    }
}
