//! The lognormal distribution.
//!
//! Lang et al. model Half-Life server-to-client packet sizes with
//! map-dependent lognormals (Table 2), and Färber notes shifted lognormals
//! also fit the Counter-Strike data.

use crate::{Distribution, Normal};
use fpsping_num::special::{std_normal_cdf, std_normal_inv_cdf};
use rand::RngCore;

/// Lognormal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal whose logarithm is `N(mu, sigma²)`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma > 0.0,
            "LogNormal: need σ > 0"
        );
        Self { mu, sigma }
    }

    /// Constructs the lognormal with given *linear-scale* mean and CoV
    /// (moment matching): `σ² = ln(1 + CoV²)`, `μ = ln m - σ²/2`.
    pub fn from_mean_cov(mean: f64, cov: f64) -> Self {
        assert!(
            mean > 0.0 && cov > 0.0,
            "LogNormal: mean and CoV must be positive"
        );
        let sigma2 = (1.0 + cov * cov).ln();
        Self::new(mean.ln() - 0.5 * sigma2, sigma2.sqrt())
    }

    /// Log-scale location μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-scale deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for LogNormal {
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        ((s2).exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must lie in (0,1), got {p}");
        (self.mu + self.sigma * std_normal_inv_cdf(p)).exp()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * Normal::sample_standard(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_distribution;

    #[test]
    fn moment_matching_round_trip() {
        // Half-Life-like packet sizes: mean 154 B, CoV 0.28.
        let d = LogNormal::from_mean_cov(154.0, 0.28);
        assert!((d.mean() - 154.0).abs() < 1e-9);
        assert!((d.cov() - 0.28).abs() < 1e-9);
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(2.0, 0.5);
        assert!((d.quantile(0.5) - 2.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn support_is_positive() {
        let d = LogNormal::new(0.0, 1.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.tdf(-5.0), 1.0);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let d = LogNormal::from_mean_cov(100.0, 0.3);
        let x = 130.0;
        let integral = fpsping_num::quad::adaptive_simpson(|t| d.pdf(t), 1e-9, x, 1e-10);
        assert!((integral - d.cdf(x)).abs() < 1e-7);
    }

    #[test]
    fn empirical_checks() {
        check_distribution(&LogNormal::from_mean_cov(154.0, 0.28), 100_000, 0.03);
    }
}
