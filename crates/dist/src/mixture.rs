//! Finite mixtures of distributions.
//!
//! Two uses in the reproduction: (1) the Halo client traffic of [17] is a
//! two-component mixture (33 % fixed 72-byte packets at 201 ms, 67 %
//! hardware-dependent); (2) §3.2 notes that traffic from several servers
//! multiplexed on one pipe has burst sizes distributed as a weighted mix of
//! Erlangs `G = ΣE_K`.

use crate::{uniform01, Distribution};
use fpsping_num::Complex64;
use rand::RngCore;

/// A finite mixture `Σ w_i · F_i` with positive weights summing to 1.
#[derive(Debug)]
pub struct Mixture {
    components: Vec<(f64, Box<dyn Distribution>)>,
}

impl Mixture {
    /// Builds a mixture; weights are normalized to sum to 1 and must be
    /// positive.
    pub fn new(components: Vec<(f64, Box<dyn Distribution>)>) -> Self {
        assert!(
            !components.is_empty(),
            "Mixture: need at least one component"
        );
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "Mixture: weights must sum to a positive value");
        assert!(
            components.iter().all(|(w, _)| *w > 0.0 && w.is_finite()),
            "Mixture: weights must be positive and finite"
        );
        let components = components
            .into_iter()
            .map(|(w, d)| (w / total, d))
            .collect();
        Self { components }
    }

    /// The normalized `(weight, component)` pairs.
    pub fn components(&self) -> &[(f64, Box<dyn Distribution>)] {
        &self.components
    }
}

impl Distribution for Mixture {
    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn variance(&self) -> f64 {
        // Var = Σw(σ² + μ²) - (Σwμ)².
        let m = self.mean();
        let second: f64 = self
            .components
            .iter()
            .map(|(w, d)| w * (d.variance() + d.mean() * d.mean()))
            .sum();
        second - m * m
    }

    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pdf(x)).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.cdf(x)).sum()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = uniform01(rng);
        for (w, d) in &self.components {
            if u < *w {
                return d.sample(rng);
            }
            u -= w;
        }
        // Floating-point residue: fall through to the last component.
        // lint:allow(unwrap): `new` rejects an empty component list, so `last()` always exists
        self.components.last().unwrap().1.sample(rng)
    }

    fn mgf(&self, s: Complex64) -> Option<Complex64> {
        let mut acc = Complex64::ZERO;
        for (w, d) in &self.components {
            acc += *w * d.mgf(s)?;
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deterministic, Erlang, Exponential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn halo_client_like() -> Mixture {
        // 33% fixed 72-byte packets, 67% size depending on players (we take
        // Det(100) as the second class for the test).
        Mixture::new(vec![
            (
                0.33,
                Box::new(Deterministic::new(72.0)) as Box<dyn Distribution>,
            ),
            (0.67, Box::new(Deterministic::new(100.0))),
        ])
    }

    #[test]
    fn weights_are_normalized() {
        let m = Mixture::new(vec![
            (
                2.0,
                Box::new(Exponential::new(1.0)) as Box<dyn Distribution>,
            ),
            (6.0, Box::new(Exponential::new(2.0))),
        ]);
        let ws: Vec<f64> = m.components().iter().map(|(w, _)| *w).collect();
        assert!((ws[0] - 0.25).abs() < 1e-15);
        assert!((ws[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn halo_mixture_mean() {
        let m = halo_client_like();
        assert!((m.mean() - (0.33 * 72.0 + 0.67 * 100.0)).abs() < 1e-12);
    }

    #[test]
    fn variance_law_of_total_variance() {
        let m = Mixture::new(vec![
            (
                0.5,
                Box::new(Exponential::new(1.0)) as Box<dyn Distribution>,
            ),
            (0.5, Box::new(Exponential::new(0.5))),
        ]);
        // E = 0.5·1 + 0.5·2 = 1.5; E[X²] = 0.5·2 + 0.5·8 = 5; Var = 2.75.
        assert!((m.mean() - 1.5).abs() < 1e-12);
        assert!((m.variance() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn erlang_mix_mgf_is_weighted_sum() {
        // The ΣE_K model of §3.2 for two servers.
        let m = Mixture::new(vec![
            (
                0.4,
                Box::new(Erlang::new(9, 0.011)) as Box<dyn Distribution>,
            ),
            (0.6, Box::new(Erlang::new(20, 0.011))),
        ]);
        let s = Complex64::from_real(0.001);
        let got = m.mgf(s).unwrap();
        let e1 = Erlang::new(9, 0.011).mgf(s).unwrap();
        let e2 = Erlang::new(20, 0.011).mgf(s).unwrap();
        let expect = 0.4 * e1 + 0.6 * e2;
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn sampling_hits_both_components() {
        let m = halo_client_like();
        let mut rng = StdRng::seed_from_u64(9);
        let s = m.sample_n(&mut rng, 10_000);
        let small = s.iter().filter(|&&x| x == 72.0).count() as f64 / 10_000.0;
        assert!(
            (small - 0.33).abs() < 0.02,
            "fraction of 72-byte packets: {small}"
        );
    }

    #[test]
    fn cdf_is_weighted() {
        let m = halo_client_like();
        assert_eq!(m.cdf(71.0), 0.0);
        assert!((m.cdf(72.0) - 0.33).abs() < 1e-12);
        assert_eq!(m.cdf(100.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        Mixture::new(vec![]);
    }
}
