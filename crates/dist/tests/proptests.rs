//! Property-based tests across the distribution families.

use fpsping_dist::{
    Deterministic, Distribution, Erlang, Exponential, Extreme, Gamma, LogNormal, Mixture, Normal,
    Pareto, Shifted, Uniform, Weibull,
};
use fpsping_num::Complex64;
use proptest::prelude::*;

/// CDF validity: bounds, monotonicity, TDF complement, quantile pseudo
/// inverse.
fn check_cdf_properties(d: &dyn Distribution, xs: &[f64]) -> Result<(), TestCaseError> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut prev = -1e-12;
    for &x in &sorted {
        let c = d.cdf(x);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c), "cdf({x}) = {c}");
        prop_assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
        prop_assert!((c + d.tdf(x) - 1.0).abs() < 1e-9, "complement at {x}");
        prev = c;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn erlang_properties(k in 1u32..40, mean in 0.01f64..1e4, p in 0.001f64..0.999) {
        let d = Erlang::with_mean(k, mean);
        prop_assert!((d.mean() - mean).abs() < 1e-9 * mean);
        let q = d.quantile(p);
        prop_assert!((d.cdf(q) - p).abs() < 1e-6);
        let grid: Vec<f64> = (0..20).map(|i| mean * i as f64 / 5.0).collect();
        check_cdf_properties(&d, &grid)?;
    }

    #[test]
    fn gamma_matches_erlang_at_integer_shape(k in 1u32..30, rate in 0.001f64..100.0, x_rel in 0.01f64..5.0) {
        let e = Erlang::new(k, rate);
        let g = Gamma::new(k as f64, rate);
        let x = x_rel * e.mean();
        prop_assert!((e.cdf(x) - g.cdf(x)).abs() < 1e-10);
        prop_assert!((e.pdf(x) - g.pdf(x)).abs() < 1e-8 * e.pdf(x).max(1e-12));
    }

    #[test]
    fn extreme_quantile_roundtrip(a in -100.0f64..500.0, b in 0.1f64..100.0, p in 0.001f64..0.999) {
        let d = Extreme::new(a, b);
        prop_assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-9);
        // Moment matching round-trips.
        let refit = Extreme::from_moments(d.mean(), d.std_dev());
        prop_assert!((refit.location() - a).abs() < 1e-6 * b.max(1.0));
        prop_assert!((refit.scale() - b).abs() < 1e-6 * b.max(1.0));
    }

    #[test]
    fn lognormal_moment_matching(mean in 0.1f64..1e4, cov in 0.01f64..2.0) {
        let d = LogNormal::from_mean_cov(mean, cov);
        prop_assert!((d.mean() - mean).abs() < 1e-6 * mean);
        prop_assert!((d.cov() - cov).abs() < 1e-6 * cov.max(1e-6));
        prop_assert!(d.cdf(0.0) == 0.0);
    }

    #[test]
    fn weibull_tail_is_stretch_exponential(shape in 0.3f64..8.0, scale in 0.1f64..1e3, x_rel in 0.1f64..4.0) {
        let d = Weibull::new(shape, scale);
        let x = x_rel * scale;
        let expect = (-(x / scale).powf(shape)).exp();
        prop_assert!((d.tdf(x) - expect).abs() < 1e-10);
    }

    #[test]
    fn pareto_tail_index(alpha in 1.1f64..6.0, scale in 0.5f64..1e3, m in 1.5f64..10.0) {
        let d = Pareto::new(scale, alpha);
        // Tail ratio over a factor m is m^{-α}.
        let x = scale * 2.0;
        let ratio = d.tdf(x * m) / d.tdf(x);
        prop_assert!((ratio - m.powf(-alpha)).abs() < 1e-9 * ratio.max(1e-12));
    }

    #[test]
    fn shifted_translates_quantiles(mean in 0.1f64..100.0, shift in -50.0f64..50.0, p in 0.01f64..0.99) {
        let base = Exponential::with_mean(mean);
        let d = Shifted::new(base, shift);
        let q_base = Exponential::with_mean(mean).quantile(p);
        prop_assert!((d.quantile(p) - (q_base + shift)).abs() < 1e-9);
    }

    #[test]
    fn mixture_mean_is_weighted(w in 0.05f64..0.95, m1 in 0.1f64..100.0, m2 in 0.1f64..100.0) {
        let mix = Mixture::new(vec![
            (w, Box::new(Deterministic::new(m1)) as Box<dyn Distribution>),
            (1.0 - w, Box::new(Deterministic::new(m2))),
        ]);
        prop_assert!((mix.mean() - (w * m1 + (1.0 - w) * m2)).abs() < 1e-9);
        prop_assert!(mix.variance() >= -1e-12);
    }

    #[test]
    fn normal_symmetry(mu in -100.0f64..100.0, sigma in 0.1f64..50.0, dx in 0.0f64..100.0) {
        let d = Normal::new(mu, sigma);
        // F(μ+d) + F(μ-d) = 1.
        prop_assert!((d.cdf(mu + dx) + d.cdf(mu - dx) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_mgf_vs_sampled_moments(lo in -10.0f64..10.0, width in 0.1f64..20.0) {
        let d = Uniform::new(lo, lo + width);
        // MGF'(0) ≈ mean by central difference. h = 1e-4 keeps the
        // (e^{s·hi}-e^{s·lo}) cancellation error ~1e-8 while the O(h²)
        // truncation stays far below the tolerance.
        let h = 1e-4;
        let m1 = d.mgf(Complex64::from_real(h)).unwrap().re;
        let m2 = d.mgf(Complex64::from_real(-h)).unwrap().re;
        let deriv = (m1 - m2) / (2.0 * h);
        prop_assert!((deriv - d.mean()).abs() < 1e-4 * d.mean().abs().max(1.0));
    }

    #[test]
    fn mgf_at_zero_is_one_everywhere(mean in 0.1f64..100.0, k in 1u32..20) {
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Deterministic::new(mean)),
            Box::new(Exponential::with_mean(mean)),
            Box::new(Erlang::with_mean(k, mean)),
            Box::new(Normal::new(mean, mean / 4.0)),
            Box::new(Uniform::new(0.0, 2.0 * mean)),
        ];
        for d in &dists {
            let v = d.mgf(Complex64::ZERO).expect("MGF exists at 0");
            prop_assert!((v - Complex64::ONE).abs() < 1e-10);
        }
    }
}
