//! `fpsping-loadgen` — synthetic query streams against a live
//! `fpsping-serve`, measuring what the serving stack actually delivers.
//!
//! Three workloads, chosen to exercise the three regimes of the sharded,
//! capacity-bounded solver caches:
//!
//! * **uniform** — independent draws over a ~10k-cell (K, T, ρ) grid:
//!   steady-state mixing of hits and (early) misses.
//! * **hotspot** — Zipf(1.1) over 4096 cells: the ISP-facing case where
//!   a handful of deployed configurations dominate; after warmup nearly
//!   every request is a whole-cell memo hit — the headline QPS number.
//! * **adversarial** — a golden-ratio low-discrepancy load sequence that
//!   never repeats a cell: every request is a cold solve, the cache
//!   budget forces continuous eviction, and resident set size must stay
//!   flat (the bound at work).
//!
//! Each workload reports pipelined throughput (blocks of 1024 binary
//! frames per write) and single-request ping-pong latency percentiles —
//! the two ends of the batching spectrum. Before any timing, an
//! in-process parity check asserts that a capacity-bounded bit-exact
//! engine reproduces the unbounded engine's surface to the last bit
//! under forced eviction (`max_abs_delta` must be exactly 0).
//!
//! `--smoke` runs a seconds-scale version and prints a one-line JSON
//! summary (tier1's serve smoke parses it); `--bench --emit-json FILE`
//! writes the committed `BENCH_serve.json`.

use fpsping::engine::{Engine, EngineConfig};
use fpsping::Scenario;
use fpsping_serve::protocol::{
    decode_response, encode_request, Request, RESP_FRAME_LEN, STATUS_OK, STAT_EVICTIONS, STAT_HITS,
    STAT_MISSES, STAT_REQUESTS, STAT_RSS_MIB, STAT_RSS_PEAK_MIB,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Requests per pipelined write (40 KiB of frames — one server burst).
const BLOCK: usize = 1024;
/// Ping-pong samples for the latency percentiles.
const LATENCY_SAMPLES: usize = 2000;

const USAGE: &str = "\
fpsping-loadgen — load generator for fpsping-serve

USAGE:
    fpsping-loadgen --addr <HOST:PORT> [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>   server address (required)
    --smoke              bounded burst + stats + shutdown, one JSON line to stdout
    --bench              full three-workload benchmark
    --emit-json <FILE>   write the benchmark report to FILE
    --seed <N>           RNG seed (default 0x5ca1e)
    --no-shutdown        leave the server running afterwards
    -h, --help           print this help
";

/// SplitMix64: tiny, seedable, and plenty for workload synthesis.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One measured workload, as it lands in the JSON report.
struct WorkloadReport {
    name: &'static str,
    requests: u64,
    wall_s: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    hit_rate: f64,
    evictions_delta: u64,
    rss_start_mib: f64,
    /// Sampled halfway through the throughput phase — by then a bounded
    /// cache has filled to its budget, so `rss_end ≈ rss_mid` is the
    /// flatness evidence under the adversarial stream.
    rss_mid_mib: f64,
    rss_end_mib: f64,
}

/// The precomputed request frames of one workload's key population.
fn grid_frames(rng: &mut Rng) -> Vec<[u8; 40]> {
    // K in 2..=20, T in {40, 60}, 256 loads in [0.05, 0.95): ~9.7k cells.
    let mut frames = Vec::new();
    for k in 2u32..=20 {
        for tick in [40.0, 60.0] {
            for li in 0..256 {
                let load = 0.05 + 0.9 * (li as f64 + 0.5) / 256.0;
                frames.push(encode_request(&Request::rtt(0, k, tick, load)));
            }
        }
    }
    // Shuffle so early blocks already span the whole key space.
    for i in (1..frames.len()).rev() {
        frames.swap(i, rng.below(i + 1));
    }
    frames
}

/// Zipf(s) CDF over `n` ranks, as cumulative weights for binary search.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 1..=n {
        total += 1.0 / (rank as f64).powf(s);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    /// Sends `frames` pipelined as one write, reads all responses, and
    /// returns how many came back `STATUS_OK`.
    fn pipeline(&mut self, frames: &[u8], responses: &mut Vec<u8>) -> std::io::Result<u64> {
        let n = frames.len() / 40;
        self.stream.write_all(frames)?;
        responses.resize(n * RESP_FRAME_LEN, 0);
        self.stream.read_exact(responses)?;
        let mut ok = 0;
        for chunk in responses.chunks_exact(RESP_FRAME_LEN) {
            if chunk[20] == STATUS_OK {
                ok += 1;
            }
        }
        Ok(ok)
    }

    /// One request, one response (the latency path).
    fn roundtrip(&mut self, req: &Request) -> std::io::Result<f64> {
        self.stream.write_all(&encode_request(req))?;
        let mut buf = [0u8; RESP_FRAME_LEN];
        self.stream.read_exact(&mut buf)?;
        decode_response(&buf)
            .map(|r| r.value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Fetches one binary statistic from the server.
    fn stat(&mut self, selector: u8) -> std::io::Result<f64> {
        let id = self.next_id;
        self.next_id += 1;
        self.roundtrip(&Request::stats(id, selector))
    }
}

/// Runs one workload: pipelined throughput over `total` requests drawn
/// by `pick`, then ping-pong latency over the same distribution.
fn run_workload(
    client: &mut Client,
    name: &'static str,
    total: u64,
    mut pick: impl FnMut() -> [u8; 40],
) -> std::io::Result<WorkloadReport> {
    let rss_start_mib = client.stat(STAT_RSS_MIB)?;
    let evictions_before = client.stat(STAT_EVICTIONS)? as u64;
    let hits_before = client.stat(STAT_HITS)?;
    let misses_before = client.stat(STAT_MISSES)?;
    // Throughput phase: pipelined blocks.
    let mut block = vec![0u8; BLOCK * 40];
    let mut responses = Vec::new();
    let mut sent = 0u64;
    let mut ok = 0u64;
    let mut rss_mid_mib = f64::NAN;
    let clock = Instant::now();
    while sent < total {
        let n = (total - sent).min(BLOCK as u64) as usize;
        for slot in 0..n {
            block[slot * 40..slot * 40 + 40].copy_from_slice(&pick());
        }
        ok += client.pipeline(&block[..n * 40], &mut responses)?;
        sent += n as u64;
        if rss_mid_mib.is_nan() && sent >= total / 2 {
            rss_mid_mib = client.stat(STAT_RSS_MIB)?;
        }
    }
    let wall_s = clock.elapsed().as_secs_f64();
    if ok < sent / 2 {
        return Err(std::io::Error::other(format!(
            "{name}: only {ok}/{sent} requests answered OK"
        )));
    }
    // Latency phase: unpipelined ping-pong on the same distribution.
    let mut lat_us = Vec::with_capacity(LATENCY_SAMPLES);
    for _ in 0..LATENCY_SAMPLES {
        let frame = pick();
        let t = Instant::now();
        client.stream.write_all(&frame)?;
        let mut buf = [0u8; RESP_FRAME_LEN];
        client.stream.read_exact(&mut buf)?;
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    // Per-workload hit rate: the delta of the server's cache counters
    // over this workload only.
    let hits = client.stat(STAT_HITS)? - hits_before;
    let misses = client.stat(STAT_MISSES)? - misses_before;
    let lookups = hits + misses;
    Ok(WorkloadReport {
        name,
        requests: sent,
        wall_s,
        qps: sent as f64 / wall_s,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        hit_rate: if lookups > 0.0 { hits / lookups } else { 0.0 },
        evictions_delta: (client.stat(STAT_EVICTIONS)? as u64).saturating_sub(evictions_before),
        rss_start_mib,
        rss_mid_mib,
        rss_end_mib: client.stat(STAT_RSS_MIB)?,
    })
}

/// The pre-timing parity gate: a capacity-bounded, bit-exact engine must
/// reproduce the unbounded engine's surface to the last bit even when
/// the bound forces eviction and re-solving. Returns the max absolute
/// delta (the report records it; anything nonzero aborts the run).
fn eviction_parity_max_delta() -> f64 {
    let bounded = Engine::new(EngineConfig {
        jobs: 1,
        cache_entries: 64, // far below the grid: constant eviction
        ..EngineConfig::bit_exact()
    });
    let unbounded = Engine::new(EngineConfig {
        jobs: 1,
        ..EngineConfig::bit_exact()
    });
    let ks = [2u32, 9, 20];
    let loads: Vec<f64> = (0..60).map(|i| 0.05 + 0.9 * i as f64 / 60.0).collect();
    let mut max_delta = 0.0f64;
    // Two passes: the second forces the bounded cache to re-solve what
    // the first pass evicted.
    for _ in 0..2 {
        let a = bounded.rtt_surface(&Scenario::paper_default(), &ks, &loads);
        let b = unbounded.rtt_surface(&Scenario::paper_default(), &ks, &loads);
        for (ra, rb) in a.iter().zip(&b) {
            for (ca, cb) in ra.iter().zip(rb) {
                match (ca, cb) {
                    (Some(x), Some(y)) => max_delta = max_delta.max((x - y).abs()),
                    (None, None) => {}
                    _ => max_delta = f64::INFINITY,
                }
            }
        }
    }
    let stats = bounded.cache_stats();
    assert!(
        stats.evictions() > 0,
        "parity gate must actually exercise eviction (cache_entries=64 vs 180-cell grid)"
    );
    max_delta
}

fn render_report(
    parity_delta: f64,
    workloads: &[WorkloadReport],
    rss_peak_mib: f64,
    server_requests: u64,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"workloads\": \"uniform random grid / hot-spot Zipf(1.1) / adversarial never-repeating loads, binary frames, 1024-request pipelined blocks + 2000 ping-pong latency samples\",\n");
    s.push_str("  \"host_cores\": 1,\n");
    s.push_str(&format!(
        "  \"eviction_parity_max_abs_delta\": {parity_delta:e},\n"
    ));
    s.push_str("  \"parity_note\": \"capacity-bounded bit-exact engine vs unbounded, 3x60 grid swept twice under forced eviction; must be exactly 0 (also asserted in tests/engine_parity.rs)\",\n");
    s.push_str("  \"runs\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"requests\": {}, \"wall_s\": {:.3}, \"qps\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"cache_hit_rate\": {:.4}, \
             \"evictions\": {}, \"rss_start_mib\": {:.1}, \"rss_mid_mib\": {:.1}, \
             \"rss_end_mib\": {:.1}}}{}\n",
            w.name,
            w.requests,
            w.wall_s,
            w.qps,
            w.p50_us,
            w.p99_us,
            w.hit_rate,
            w.evictions_delta,
            w.rss_start_mib,
            w.rss_mid_mib,
            w.rss_end_mib,
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"server_requests\": {server_requests},\n"));
    s.push_str(&format!("  \"server_peak_rss_mib\": {rss_peak_mib:.1},\n"));
    s.push_str("  \"rss_note\": \"rss_mid is sampled halfway through each throughput phase, after a bounded cache has filled to its budget; rss_end == rss_mid on the adversarial never-repeating stream is the CLOCK eviction bound at work\"\n");
    s.push_str("}\n");
    s
}

fn run_bench(
    addr: &str,
    seed: u64,
    emit_json: Option<&str>,
    shutdown: bool,
) -> std::io::Result<()> {
    eprintln!("parity gate: bounded vs unbounded bit-exact engine under eviction...");
    let parity_delta = eviction_parity_max_delta();
    assert!(
        // lint:allow(float_eq): the gate demands bit-identity, not approximation
        parity_delta == 0.0,
        "eviction parity violated: max_abs_delta = {parity_delta:e}"
    );
    eprintln!("parity gate: max_abs_delta = 0 (exact)");

    let mut client = Client::connect(addr)?;
    let mut rng = Rng(seed);
    let mut reports = Vec::new();

    // Uniform: independent draws over the full grid.
    let grid = grid_frames(&mut rng);
    let r = run_workload(&mut client, "uniform", 2_000_000, || {
        grid[rng.below(grid.len())]
    })?;
    eprintln!("uniform:     {:>9.0} qps, p99 {:.0} µs", r.qps, r.p99_us);
    reports.push(r);

    // Hot-spot: Zipf(1.1) over the first 4096 grid cells.
    let cdf = zipf_cdf(4096, 1.1);
    let r = run_workload(&mut client, "hotspot", 4_000_000, || {
        let u = rng.next_f64();
        let rank = cdf.partition_point(|&c| c < u);
        grid[rank.min(grid.len() - 1)]
    })?;
    eprintln!("hotspot:     {:>9.0} qps, p99 {:.0} µs", r.qps, r.p99_us);
    reports.push(r);

    // Adversarial: never repeat a load — every request is a fresh cell.
    // Golden-ratio rotation fills (0.05, 0.95) with low discrepancy, so
    // the stream stays feasible while defeating every cache level.
    let mut x = rng.next_f64();
    let mut k_cycle = 0u32;
    let r = run_workload(&mut client, "adversarial", 100_000, || {
        x = (x + 0.618_033_988_749_894_9).fract();
        k_cycle += 1;
        let k = 2 + (k_cycle % 19);
        encode_request(&Request::rtt(0, k, 40.0, 0.05 + 0.9 * x))
    })?;
    eprintln!("adversarial: {:>9.0} qps, p99 {:.0} µs", r.qps, r.p99_us);
    reports.push(r);

    let rss_peak = client.stat(STAT_RSS_PEAK_MIB)?;
    let server_requests = client.stat(STAT_REQUESTS)? as u64;
    let report = render_report(parity_delta, &reports, rss_peak, server_requests);
    match emit_json {
        Some(path) => std::fs::write(path, &report)?,
        None => print!("{report}"),
    }
    if shutdown {
        let _ = client.roundtrip(&Request::shutdown(u64::MAX));
    }
    Ok(())
}

fn run_smoke(addr: &str, seed: u64, shutdown: bool) -> std::io::Result<()> {
    let parity_delta = eviction_parity_max_delta();
    assert!(
        // lint:allow(float_eq): the gate demands bit-identity, not approximation
        parity_delta == 0.0,
        "eviction parity violated: max_abs_delta = {parity_delta:e}"
    );
    let mut client = Client::connect(addr)?;
    let mut rng = Rng(seed);
    let grid = grid_frames(&mut rng);
    // A hot-spot burst over 64 cells: mostly cache hits after the first
    // block, so even the smoke run demonstrates serving throughput.
    let r = run_workload(&mut client, "smoke", 200_000, || grid[rng.below(64)])?;
    let rss = client.stat(STAT_RSS_MIB)?;
    println!(
        "{{\"workload\": \"smoke\", \"requests\": {}, \"qps\": {:.0}, \"p99_us\": {:.1}, \
         \"cache_hit_rate\": {:.4}, \"rss_mib\": {:.1}, \"parity_max_abs_delta\": {:e}, \
         \"clean_shutdown\": {}}}",
        r.requests, r.qps, r.p99_us, r.hit_rate, rss, parity_delta, shutdown
    );
    if shutdown {
        let _ = client.roundtrip(&Request::shutdown(u64::MAX));
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut smoke = false;
    let mut bench = false;
    let mut emit_json = None;
    let mut seed = 0x5ca1eu64;
    let mut shutdown = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().cloned(),
            "--smoke" => smoke = true,
            "--bench" => bench = true,
            "--emit-json" => emit_json = it.next().cloned(),
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(seed),
            "--no-shutdown" => shutdown = false,
            "-h" | "--help" => {
                print!("{USAGE}");
                return std::process::ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other:?}\n\n{USAGE}");
                return std::process::ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: --addr is required\n\n{USAGE}");
        return std::process::ExitCode::from(2);
    };
    let result = if smoke {
        run_smoke(&addr, seed, shutdown)
    } else if bench {
        run_bench(&addr, seed, emit_json.as_deref(), shutdown)
    } else {
        eprintln!("error: pick --smoke or --bench\n\n{USAGE}");
        return std::process::ExitCode::from(2);
    };
    match result {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = Rng(42);
        let mut b = Rng(42);
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            assert!(a.below(7) < 7);
            b.below(7);
        }
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let cdf = zipf_cdf(100, 1.1);
        assert_eq!(cdf.len(), 100);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf[99] - 1.0).abs() < 1e-12);
        // Rank 1 dominates under Zipf.
        assert!(cdf[0] > 0.15);
    }

    #[test]
    fn grid_frames_cover_the_key_space_without_duplicates() {
        let mut rng = Rng(1);
        let frames = grid_frames(&mut rng);
        assert_eq!(frames.len(), 19 * 2 * 256);
        let mut keys: Vec<&[u8]> = frames.iter().map(|f| &f[8..36]).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), frames.len(), "all (K, T, load) cells distinct");
    }

    #[test]
    fn eviction_parity_holds_bit_exactly() {
        assert_eq!(eviction_parity_max_delta(), 0.0);
    }
}
