//! `fpsping-serve` — the dimensioning query server, as a process.
//!
//! Binds a TCP address, prints `listening on <addr>` (scripts parse this
//! to learn the ephemeral port), and serves until a `shutdown` request
//! arrives. See `fpsping_serve::protocol` for the wire format; try it
//! with `nc`:
//!
//! ```text
//! $ fpsping-serve --addr 127.0.0.1:0 &
//! listening on 127.0.0.1:40123
//! $ printf '{"id":1,"op":"dimension","k":9,"budget_ms":50}\n' | nc 127.0.0.1 40123
//! {"id":1,"ok":true,"value":0.4043,"n_max":80}
//! ```

use fpsping_serve::{ServeConfig, Server};
use std::process::ExitCode;

const USAGE: &str = "\
fpsping-serve — dimensioning query server for the fpsping model

USAGE:
    fpsping-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>       bind address (default 127.0.0.1:0; port 0 = ephemeral)
    --workers <N>            worker threads (default 2)
    --cache-entries <N>      per-cache entry budget, 0 = unbounded (default 262144)
    --bit-exact              answer with the bit-exact engine path (slower misses)
    --timeout-ms <MS>        per-batch service deadline (default 250)
    --metrics-out <FILE>     write an fpsping-obs JSON snapshot on shutdown
    -h, --help               print this help
";

fn parse_args(args: &[String]) -> Result<(ServeConfig, Option<String>), String> {
    let mut cfg = ServeConfig::default();
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--cache-entries" => {
                cfg.cache_entries = value("--cache-entries")?
                    .parse()
                    .map_err(|e| format!("--cache-entries: {e}"))?
            }
            "--bit-exact" => cfg.bit_exact = true,
            "--timeout-ms" => {
                cfg.request_timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((cfg, metrics_out))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, metrics_out) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts depend on this exact line to discover the ephemeral port.
    println!("listening on {}", server.local_addr());
    server.join();
    if let Some(path) = metrics_out {
        if let Err(e) = fpsping_obs::write_json(std::path::Path::new(&path)) {
            eprintln!("error: could not write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let (cfg, metrics) = parse_args(&strings(&[
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "4",
            "--cache-entries",
            "1024",
            "--bit-exact",
            "--timeout-ms",
            "50",
            "--metrics-out",
            "m.json",
        ]))
        .expect("valid args");
        assert_eq!(cfg.addr, "0.0.0.0:9000");
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.cache_entries, 1024);
        assert!(cfg.bit_exact);
        assert_eq!(cfg.request_timeout_ms, 50);
        assert_eq!(metrics.as_deref(), Some("m.json"));
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(parse_args(&strings(&["--frobnicate"])).is_err());
        assert!(parse_args(&strings(&["--workers"])).is_err());
        assert!(parse_args(&strings(&["--workers", "many"])).is_err());
    }
}
